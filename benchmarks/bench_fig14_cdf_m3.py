"""E-fig14 benchmark: CDF m=3 — connecting trees vs path stitching.

MoLESP answers the 3-way CTP natively; path engines must enumerate two
path sets and stitch them (with the Section 2 waste).
"""

import pytest

from repro.baselines.path_engines import jedi_like_engine, virtuoso_sql_like_engine
from repro.baselines.stitching import stitch_paths
from repro.query.evaluator import evaluate_query
from repro.workloads.cdf import cdf_query


def _endpoints(graph):
    sources = sorted({graph.edge(e).target for e in graph.edges_with_label("c")})
    targets_g = sorted({graph.edge(e).target for e in graph.edges_with_label("g")})
    targets_h = sorted({graph.edge(e).target for e in graph.edges_with_label("h")})
    return sources, targets_g, targets_h


def test_molesp_full_query(benchmark, cdf_m3):
    def run():
        return evaluate_query(cdf_m3.graph, cdf_query(3), default_timeout=60.0)

    result = benchmark(run)
    assert len(result) >= cdf_m3.expected_results


def test_uni_molesp_full_query(benchmark, cdf_m3):
    def run():
        return evaluate_query(cdf_m3.graph, cdf_query(3, "UNI"), default_timeout=60.0)

    result = benchmark(run)
    assert len(result) == cdf_m3.expected_results


def test_jedi_like_with_stitching(benchmark, cdf_m3):
    graph = cdf_m3.graph
    sources, targets_g, targets_h = _endpoints(graph)
    engine = jedi_like_engine(labels=("link",))

    def run():
        part_g = engine.run(graph, sources, targets_g, timeout=30.0)
        part_h = engine.run(graph, sources, targets_h, timeout=30.0)
        return stitch_paths(graph, part_g.paths, part_h.paths)

    stitched = benchmark(run)
    # stitching rejects the shared-stem joins (Section 2)
    assert stitched.non_tree_joins > 0


def test_check_only_pairwise(benchmark, cdf_m3):
    graph = cdf_m3.graph
    sources, targets_g, targets_h = _endpoints(graph)
    engine = virtuoso_sql_like_engine()

    def run():
        part_g = engine.run(graph, sources, targets_g, timeout=30.0)
        part_h = engine.run(graph, sources, targets_h, timeout=30.0)
        return part_g, part_h

    part_g, part_h = benchmark(run)
    assert part_g.connected_pairs and part_h.connected_pairs
