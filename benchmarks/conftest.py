"""Shared fixtures for the pytest-benchmark suite.

Each ``bench_*`` file benchmarks representative points of one paper
figure/table; the full parameter sweeps (and the paper-style reports) live
in ``repro.bench`` and are run with ``python -m repro.bench <exp>``.
"""

import pytest

from repro.workloads.cdf import cdf_graph
from repro.workloads.realworld import dbpedia_like, sample_ctp_workload, yago_like


@pytest.fixture(scope="session")
def cdf_m2():
    return cdf_graph(num_trees=20, num_links=40, link_length=3, m=2, seed=17)


@pytest.fixture(scope="session")
def cdf_m3():
    return cdf_graph(num_trees=12, num_links=24, link_length=3, m=3, seed=23)


@pytest.fixture(scope="session")
def dbpedia():
    return dbpedia_like(scale=0.03)


@pytest.fixture(scope="session")
def dbpedia_ctps(dbpedia):
    return sample_ctp_workload(dbpedia.graph, scale=0.03, seed=42)


@pytest.fixture(scope="session")
def yago():
    return yago_like(scale=0.04)
