"""E-fig12 benchmark: QGSTP vs GAM vs MoLESP on DBPedia-like CTPs.

The paper aligns semantics with UNI + LIMIT 1 (QGSTP returns one result).
We benchmark each system over the same sampled CTP workload, grouped by
the number of seed sets.
"""

import pytest

from repro.baselines.qgstp import QGSTPApproximation
from repro.ctp.config import SearchConfig
from repro.ctp.registry import get_algorithm

CONFIG = SearchConfig(uni=True, limit=1, timeout=10.0)


def _by_m(workload, m):
    return [ctp for ctp in workload if len(ctp) == m]


@pytest.mark.parametrize("m", [2, 3, 4])
@pytest.mark.parametrize("system", ["qgstp", "molesp", "gam"])
def test_system_by_m(benchmark, dbpedia, dbpedia_ctps, m, system):
    ctps = _by_m(dbpedia_ctps, m)[:3]
    assert ctps, "sampled workload must contain this m"
    if system == "qgstp":
        algo = QGSTPApproximation()
    else:
        algo = get_algorithm(system)
    graph = dbpedia.graph

    def run():
        outcomes = [algo.run(graph, ctp, CONFIG) for ctp in ctps]
        return outcomes

    outcomes = benchmark(run)
    assert len(outcomes) == len(ctps)
