"""E-tab1 benchmark: the J1-J3 EQL queries on the YAGO3-like graph.

J1: selective BGPs + 2 CTPs; J2: one very large seed set (Section 4.9 ii);
J3: an N (wildcard) seed set (Section 4.9 i).
"""

import pytest

from repro.query.evaluator import evaluate_query
from repro.workloads.realworld import j1_query, j2_query, j3_query


def test_j1(benchmark, yago):
    def run():
        return evaluate_query(yago.graph, j1_query("MAX 5 TIMEOUT 10"), default_timeout=10.0)

    result = benchmark(run)
    assert len(result.ctp_reports) == 2


def test_j2_large_seed_set(benchmark, yago):
    def run():
        return evaluate_query(yago.graph, j2_query("MAX 3 TIMEOUT 10"), default_timeout=10.0)

    result = benchmark(run)
    sizes = [s for s in result.ctp_reports[0].seed_set_sizes if s is not None]
    assert max(sizes) > 20


def test_j3_wildcard_seed_set(benchmark, yago):
    def run():
        return evaluate_query(yago.graph, j3_query("MAX 3 LIMIT 200 TIMEOUT 10"), default_timeout=10.0)

    result = benchmark(run)
    assert None in result.ctp_reports[0].seed_set_sizes
