"""Micro-benchmarks: dict backend vs the CSR backend (``Graph.freeze()``).

Run with ``pytest benchmarks/bench_backend_csr.py`` (pytest-benchmark
groups the dict/csr variants of each operation together).  The same
comparison, reported paper-style and wired into ``repro.bench``, lives in
``python -m repro.bench backend``.

The operations are the neighbor-expansion-heavy loops the backends exist
for: undirected BFS sweeps, label-constrained reachability (the
check-only path-engine regime), and end-to-end MoLESP.
"""

import pytest

from repro.baselines.path_engines import CheckOnlyPathEngine
from repro.ctp.config import SearchConfig
from repro.ctp.molesp import MoLESPSearch
from repro.graph.backend import resolve_backend
from repro.graph.traversal import bfs_distances
from repro.workloads.cdf import cdf_graph
from repro.workloads.synthetic import chain_graph, star_graph

BACKENDS = ("dict", "csr")


@pytest.fixture(scope="module")
def community():
    return cdf_graph(num_trees=30, num_links=60, link_length=3, m=2, seed=7).graph


@pytest.fixture(scope="module")
def star():
    return star_graph(6, 3)


@pytest.fixture(scope="module")
def chain():
    return chain_graph(10)


@pytest.mark.parametrize("backend", BACKENDS)
def test_bfs_sweep(benchmark, community, backend):
    graph = resolve_backend(community, backend)

    def run():
        total = 0
        for node in range(0, graph.num_nodes, 7):
            total += len(bfs_distances(graph, [node]))
        return total

    total = benchmark(run)
    assert total > 0


@pytest.mark.parametrize("backend", BACKENDS)
def test_labeled_reachability(benchmark, community, backend):
    graph = resolve_backend(community, backend)
    labels = sorted(graph.edge_labels())[:2]
    engine = CheckOnlyPathEngine(uni=False, labels=labels)
    sources = list(range(0, graph.num_nodes, 20))
    targets = list(range(5, graph.num_nodes, 20))

    def run():
        return engine.run(graph, sources, targets)

    report = benchmark(run)
    assert not report.timed_out


@pytest.mark.parametrize("backend", BACKENDS)
def test_molesp_star(benchmark, star, backend):
    graph, seeds = star
    algorithm = MoLESPSearch()
    config = SearchConfig(backend=backend)

    def run():
        return algorithm.run(graph, seeds, config)

    results = benchmark(run)
    assert results.complete


@pytest.mark.parametrize("backend", BACKENDS)
def test_molesp_chain(benchmark, chain, backend):
    graph, seeds = chain
    algorithm = MoLESPSearch()
    config = SearchConfig(backend=backend)

    def run():
        return algorithm.run(graph, seeds, config)

    results = benchmark(run)
    assert len(results) == 2**10
