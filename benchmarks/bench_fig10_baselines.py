"""E-fig10 benchmark: complete baselines (BFT family vs GAM, Figure 10).

Representative points of the Line/Comb/Star sweeps.  The expected ordering
— BFT variants slower than GAM, aggressive merging worst — is checked by
the experiment harness (``python -m repro.bench fig10``); here we measure
the four algorithms under pytest-benchmark on one mid-size point per
family.
"""

import pytest

from repro.ctp.config import SearchConfig
from repro.ctp.registry import get_algorithm
from repro.workloads.synthetic import comb_graph, line_graph, star_graph

CONFIG = SearchConfig(timeout=10.0)

POINTS = {
    "line": line_graph(5, 3),
    "comb": comb_graph(2, 2, 3),
    "star": star_graph(5, 2),
}


@pytest.mark.parametrize("family", ["line", "comb", "star"])
@pytest.mark.parametrize("algorithm", ["bft", "bft-m", "bft-am", "gam"])
def test_baseline(benchmark, family, algorithm):
    graph, seeds = POINTS[family]
    algo = get_algorithm(algorithm)

    def run():
        return algo.run(graph, seeds, CONFIG)

    results = benchmark(run)
    assert results.complete
    assert len(results) >= 1
