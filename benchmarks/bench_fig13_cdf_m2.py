"""E-fig13 benchmark: CDF m=2, all engines (Figure 13).

One CDF size, every engine of the paper's legend.  Check-only engines
must be fastest; the MoLESP rows run the full EQL query.
"""

import pytest

from repro.baselines.path_engines import (
    jedi_like_engine,
    postgres_like_engine,
    virtuoso_sparql_like_engine,
    virtuoso_sql_like_engine,
)
from repro.query.evaluator import evaluate_query
from repro.workloads.cdf import cdf_query


def _endpoints(graph):
    sources = sorted({graph.edge(e).target for e in graph.edges_with_label("c")})
    targets = sorted({graph.edge(e).target for e in graph.edges_with_label("g")})
    return sources, targets


def test_molesp_full_query(benchmark, cdf_m2):
    def run():
        return evaluate_query(cdf_m2.graph, cdf_query(2), default_timeout=30.0)

    result = benchmark(run)
    assert len(result) == cdf_m2.expected_results


def test_uni_molesp_full_query(benchmark, cdf_m2):
    def run():
        return evaluate_query(cdf_m2.graph, cdf_query(2, "UNI"), default_timeout=30.0)

    result = benchmark(run)
    assert len(result) == cdf_m2.expected_results


@pytest.mark.parametrize(
    "engine_factory",
    [
        lambda: virtuoso_sparql_like_engine(labels=("link",)),
        virtuoso_sql_like_engine,
        postgres_like_engine,
        lambda: jedi_like_engine(labels=("link",)),
    ],
    ids=["virtuoso-sparql-like", "virtuoso-sql-like", "postgres-like", "jedi-like"],
)
def test_baseline_engine(benchmark, cdf_m2, engine_factory):
    graph = cdf_m2.graph
    sources, targets = _endpoints(graph)
    engine = engine_factory()

    def run():
        return engine.run(graph, sources, targets, timeout=30.0)

    report = benchmark(run)
    assert not report.timed_out
    assert report.connected_pairs
