"""E-fig11 benchmark: the GAM algorithm family (Figure 11).

One representative point per family, large enough that the pruning
hierarchy is visible in the timings (GAM slowest, ESP fastest, MoLESP in
between but complete).
"""

import pytest

from repro.ctp.config import SearchConfig
from repro.ctp.registry import get_algorithm
from repro.workloads.synthetic import comb_graph, line_graph, star_graph

CONFIG = SearchConfig(timeout=30.0)

POINTS = {
    "line": line_graph(10, 3),
    "comb": comb_graph(4, 2, 4),
    "star": star_graph(7, 3),
}

#: Algorithms that find the (unique) result on each family's point.
FINDS_RESULT = {
    ("line", "gam"): True,
    ("line", "esp"): False,
    ("line", "moesp"): True,
    ("line", "lesp"): False,
    ("line", "molesp"): True,
    ("comb", "gam"): True,
    ("comb", "esp"): False,
    ("comb", "moesp"): True,
    ("comb", "lesp"): False,
    ("comb", "molesp"): True,
}


@pytest.mark.parametrize("family", ["line", "comb", "star"])
@pytest.mark.parametrize("algorithm", ["gam", "esp", "moesp", "lesp", "molesp"])
def test_variant(benchmark, family, algorithm):
    graph, seeds = POINTS[family]
    algo = get_algorithm(algorithm)

    def run():
        return algo.run(graph, seeds, CONFIG)

    results = benchmark(run)
    assert results.complete
    expected = FINDS_RESULT.get((family, algorithm))
    if expected is True:
        assert len(results) == 1
    elif expected is False:
        assert len(results) == 0  # the paper's missing curves
