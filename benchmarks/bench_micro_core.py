"""Micro-benchmarks of the core substrate operations.

Not tied to a paper figure; useful to catch performance regressions in the
pieces the algorithms hammer: adjacency iteration, BGP matching, joins,
and the Grow/Merge hot path.
"""

import pytest

from repro.graph.datasets import figure1, figure1_seed_sets
from repro.query.ast import BGP, Condition, EdgePattern, Predicate
from repro.query.bgp import evaluate_bgp
from repro.storage.relational import natural_join
from repro.storage.table import Table
from repro.workloads.realworld import yago_like


@pytest.fixture(scope="module")
def kg():
    return yago_like(scale=0.05).graph


def test_adjacency_scan(benchmark, kg):
    def run():
        total = 0
        for node in kg.node_ids():
            total += len(kg.adjacent(node))
        return total

    total = benchmark(run)
    assert total == 2 * kg.num_edges - sum(
        1 for e in kg.edges() if e.source == e.target
    )


def test_bgp_two_pattern_join(benchmark, kg):
    bgp = BGP(
        (
            EdgePattern(Predicate("x"), Predicate("e1", (Condition("label", "=", "linksTo"),)), Predicate("y")),
            EdgePattern(Predicate("y"), Predicate("e2", (Condition("label", "=", "locatedIn"),)), Predicate("z")),
        )
    )

    def run():
        return evaluate_bgp(kg, bgp)

    table = benchmark(run)
    assert table.columns


def test_natural_join_10k(benchmark):
    left = Table(("a", "b"), [(i, i % 100) for i in range(10_000)])
    right = Table(("b", "c"), [(i, -i) for i in range(100)])

    def run():
        return natural_join(left, right)

    joined = benchmark(run)
    assert len(joined) == 10_000


def test_molesp_figure1_end_to_end(benchmark):
    from repro.ctp.molesp import MoLESPSearch

    graph = figure1()
    seeds = figure1_seed_sets(graph)
    algorithm = MoLESPSearch()

    def run():
        return algorithm.run(graph, seeds)

    results = benchmark(run)
    assert len(results) == 64
