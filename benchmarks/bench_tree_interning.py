"""Micro-benchmarks: frozenset vs interned tree state (``repro.ctp.interning``).

Run with ``pytest benchmarks/bench_tree_interning.py`` (pytest-benchmark
groups the frozen/interned variants of each workload together).  The same
comparison, reported paper-style and wired into ``repro.bench``, lives in
``python -m repro.bench interning``; measured numbers are checked in as
``BENCH_interning.json``.

The engine benchmarks run the *same* engine with the two tree-state
representations (``SearchConfig(interning=...)``); the primitive benchmarks
hit the :class:`EdgeSetPool` constructors directly against plain frozenset
arithmetic.
"""

import pytest

from repro.bench.experiments.micro_interning import (
    _grow_stream,
    _merge_stream,
    grouped_star,
)
from repro.ctp.config import SearchConfig
from repro.ctp.gam import GAMSearch
from repro.ctp.moesp import MoESPSearch
from repro.ctp.molesp import MoLESPSearch
from repro.workloads.synthetic import chain_graph

MODES = ("frozen", "interned")


def _config(mode: str) -> SearchConfig:
    return SearchConfig(interning=mode == "interned")


@pytest.fixture(scope="module")
def star_groups():
    return grouped_star(4, 4, 2)


@pytest.fixture(scope="module")
def chain():
    return chain_graph(10)


@pytest.mark.parametrize("mode", MODES)
def test_molesp_star_groups(benchmark, star_groups, mode):
    graph, seeds = star_groups
    algorithm = MoLESPSearch()
    config = _config(mode)
    result = benchmark(lambda: algorithm.run(graph, seeds, config))
    assert result.complete


@pytest.mark.parametrize("mode", MODES)
def test_moesp_star_groups(benchmark, star_groups, mode):
    graph, seeds = star_groups
    algorithm = MoESPSearch()
    config = _config(mode)
    result = benchmark(lambda: algorithm.run(graph, seeds, config))
    assert result.complete


@pytest.mark.parametrize("mode", MODES)
def test_molesp_chain(benchmark, chain, mode):
    graph, seeds = chain
    algorithm = MoLESPSearch()
    config = _config(mode)
    result = benchmark(lambda: algorithm.run(graph, seeds, config))
    assert len(result) == 2**10


@pytest.mark.parametrize("mode", MODES)
def test_gam_chain(benchmark, mode):
    graph, seeds = chain_graph(8)
    algorithm = GAMSearch()
    config = _config(mode)
    result = benchmark(lambda: algorithm.run(graph, seeds, config))
    assert result.complete


@pytest.mark.parametrize("mode", MODES)
def test_primitive_grow_history(benchmark, mode):
    frozen_op, interned_op = _grow_stream(64, 50)
    total = benchmark(frozen_op if mode == "frozen" else interned_op)
    assert total == 64  # 64 distinct prefixes, every later round re-derives


@pytest.mark.parametrize("mode", MODES)
def test_primitive_merge_tournament(benchmark, mode):
    frozen_op, interned_op = _merge_stream(32, 50)
    total = benchmark(frozen_op if mode == "frozen" else interned_op)
    assert total == 31  # a 32-leaf tournament interns 31 distinct unions
