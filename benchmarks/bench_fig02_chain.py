"""E-fig2 benchmark: exponential chain enumeration (Figure 2).

Representative point: the 2^8 = 256 results of chain(8) must be fully
enumerated; the paper uses this graph to justify CTP filters/timeouts.
"""

import pytest

from repro.ctp.config import SearchConfig
from repro.ctp.molesp import MoLESPSearch
from repro.workloads.synthetic import chain_graph


@pytest.fixture(scope="module")
def chain8():
    return chain_graph(8)


def test_chain8_molesp_full_enumeration(benchmark, chain8):
    graph, seeds = chain8
    algorithm = MoLESPSearch()

    def run():
        return algorithm.run(graph, seeds)

    results = benchmark(run)
    assert len(results) == 256


def test_chain12_limit100(benchmark):
    """A budgeted partial enumeration (LIMIT pushes into the search)."""
    graph, seeds = chain_graph(12)
    algorithm = MoLESPSearch()
    config = SearchConfig(limit=100)

    def run():
        return algorithm.run(graph, seeds, config)

    results = benchmark(run)
    assert len(results) == 100
