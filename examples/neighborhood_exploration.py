"""Wildcard connection search: "show me everything around these entities".

Section 4.9 of the paper supports CTPs where a seed set is all of N —
query J3's shape ("1 CTP, N seed set").  That turns connection search
into neighbourhood exploration: every minimal tree from the explicit
seeds to *any* node is an answer, so MAX / LIMIT / SCORE filters control
the budget.  This is the workhorse query of investigative exploration:
you know one entity and want its connection fan-out ranked sensibly.

Run with::

    python examples/neighborhood_exploration.py
"""

from repro import SearchConfig, WILDCARD, evaluate_ctp, evaluate_query
from repro.query.scoring import hub_penalty_score
from repro.workloads.realworld import yago_like

dataset = yago_like(scale=0.03)
graph = dataset.graph
print(f"knowledge-graph substitute: {graph}")

# pick an 'interesting' person: a mid-degree node (hubs are boring)
persons = dataset.nodes_by_type["person"]
anchor = min(persons, key=lambda n: abs(graph.degree(n) - 5))
print(f"anchor entity: {graph.node(anchor).label} (degree {graph.degree(anchor)})")

# ----------------------------------------------------------------------
# 1. Programmatic API: all connections of <= 2 edges around the anchor.
# ----------------------------------------------------------------------
results = evaluate_ctp(
    graph,
    [[anchor], WILDCARD],
    "molesp",
    config=SearchConfig(max_edges=2, score=hub_penalty_score, top_k=5),
)
print(f"\ntop 5 of {results.stats.results_found} neighbourhood connections (hub-avoiding):")
for result in results.sorted_by_score():
    print(f"  score={result.score:.3f}  {result.describe(graph)}")

# ----------------------------------------------------------------------
# 2. The same as an EQL query (J3's shape), via the query pipeline.
# ----------------------------------------------------------------------
label = graph.node(anchor).label
query = f"""
SELECT ?e ?l WHERE {{
  CONNECT(?e, *) AS ?l MAX 2 LIMIT 40 TIMEOUT 5
  FILTER(?e = "{label}")
}}
"""
answer = evaluate_query(graph, query)
print(f"\nEQL wildcard query returned {len(answer)} rows; first few:")
print(answer.format(limit=5))

# ----------------------------------------------------------------------
# 3. Grow the radius: how fast does the neighbourhood explode?
# ----------------------------------------------------------------------
print("\nneighbourhood growth (results by MAX radius):")
for radius in (1, 2, 3):
    results = evaluate_ctp(
        graph, [[anchor], WILDCARD], "molesp", config=SearchConfig(max_edges=radius)
    )
    print(f"  MAX {radius}: {len(results)} connecting trees")
