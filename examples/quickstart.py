"""Quickstart: build a graph, search connections, run an EQL query.

Run with::

    python examples/quickstart.py
"""

from repro import GraphBuilder, evaluate_ctp, evaluate_query

# ----------------------------------------------------------------------
# 1. Build a small heterogeneous graph (label-addressed for readability).
# ----------------------------------------------------------------------
b = GraphBuilder("quickstart")
b.triple("Alice", "worksAt", "Inria")
b.triple("Bob", "studiedAt", "Inria")
b.triple("Alice", "livesIn", "Paris")
b.triple("Bob", "livesIn", "Lyon")
b.triple("Carol", "manages", "Inria")
b.triple("Carol", "livesIn", "Paris")
b.set_types("Alice", "person")
b.set_types("Bob", "person")
b.set_types("Carol", "person")
b.set_types("Inria", "organization")
graph = b.graph
print(f"graph: {graph}")

# ----------------------------------------------------------------------
# 2. Connection search: how are Alice and Bob connected?  A CTP returns
#    *trees* (here: paths), traversing edges in both directions — note
#    that worksAt/studiedAt both point *into* Inria.
# ----------------------------------------------------------------------
alice, bob, carol = b.ids_of("Alice", "Bob", "Carol")
results = evaluate_ctp(graph, [[alice], [bob]])
print(f"\nAlice <-> Bob: {len(results)} connection(s)")
for result in results:
    print("  ", result.describe(graph))

# ----------------------------------------------------------------------
# 3. Three-way connection search — this is what plain path queries in
#    SPARQL/Cypher cannot express (the paper's headline feature).
# ----------------------------------------------------------------------
results = evaluate_ctp(graph, [[alice], [bob], [carol]])
print(f"\nAlice <-> Bob <-> Carol: {len(results)} connecting tree(s)")
for result in results:
    print("  ", result.describe(graph))

# ----------------------------------------------------------------------
# 4. The same thing, declaratively: EQL = BGPs + CONNECT.
# ----------------------------------------------------------------------
query = """
SELECT ?p ?q ?tree WHERE {
  ?p livesIn "Paris" .
  ?q livesIn "Lyon" .
  FILTER(type(?p) = "person")
  CONNECT(?p, ?q) AS ?tree MAX 4
}
"""
answer = evaluate_query(graph, query)
print(f"\nEQL query answers: {len(answer)}")
print(answer.format())
