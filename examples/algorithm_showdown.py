"""Compare all eight CTP algorithms on the paper's synthetic graphs.

Reproduces, at glance scale, the story of Figures 10-11: the breadth-first
family drowns in duplicate trees and minimization; GAM is much faster but
redundant across roots; edge-set pruning (ESP) is fast but loses results;
MoESP/LESP each repair part of the damage; MoLESP is both fast and
complete for these workloads.

Run with::

    python examples/algorithm_showdown.py
"""

import time

from repro import evaluate_ctp
from repro.bench.reporting import render_table
from repro.workloads.synthetic import comb_graph, line_graph, star_graph

ALGORITHMS = ["bft", "bft-m", "bft-am", "gam", "esp", "moesp", "lesp", "molesp"]

WORKLOADS = [
    ("Line(m=5, sL=4)", *line_graph(5, 3)),
    ("Comb(nA=3, nS=2, sL=3) [m=9]", *comb_graph(3, 2, 3)),
    ("Star(m=6, sL=3)", *star_graph(6, 3)),
]

rows = []
for name, graph, seeds in WORKLOADS:
    for algorithm in ALGORITHMS:
        started = time.perf_counter()
        results = evaluate_ctp(graph, seeds, algorithm, timeout=5.0)
        elapsed = (time.perf_counter() - started) * 1000.0
        rows.append(
            {
                "workload": name,
                "algorithm": algorithm,
                "time_ms": round(elapsed, 2),
                "results": len(results),
                "provenances": results.stats.provenances,
                "complete_run": results.complete,
            }
        )

print(render_table(rows, ["workload", "algorithm", "time_ms", "results", "provenances", "complete_run"]))

print(
    "\nreading guide: esp/lesp report 0 results on Line/Comb (pruned away);"
    "\nmoesp/molesp find the result while building far fewer provenances than gam;"
    "\nbft variants build the most trees — Figure 10's story."
)
