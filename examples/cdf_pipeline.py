"""End-to-end EQL evaluation on a CDF benchmark graph (Section 5.5.1).

Generates a Connected Dense Forest (two forests of binary trees joined by
Y-shaped links), runs the paper's m=3 EQL query with MoLESP, and contrasts
it with the UNI variant and a path-engine baseline.

Run with::

    python examples/cdf_pipeline.py
"""

from repro.baselines.path_engines import postgres_like_engine, virtuoso_sql_like_engine
from repro.query.evaluator import evaluate_query
from repro.workloads.cdf import cdf_graph, cdf_query

dataset = cdf_graph(num_trees=12, num_links=24, link_length=3, m=3, seed=42)
graph = dataset.graph
print(f"CDF graph: {graph}")
print(f"expected answers (one per Y-link): {dataset.expected_results}")

# ----------------------------------------------------------------------
# Bidirectional MoLESP: finds extra grandparent-connected trees that the
# BGP join then filters (the Section 5.5.1 observation).
# ----------------------------------------------------------------------
result = evaluate_query(graph, dataset.query(), default_timeout=30.0)
ctp_results = len(result.ctp_reports[0].result_set)
print(f"\nbidirectional MoLESP: {ctp_results} CTP results -> {len(result)} joined answers")
print(
    f"  timings: BGP {result.timings.bgp_seconds * 1000:.1f}ms, "
    f"CTP {result.timings.ctp_seconds * 1000:.1f}ms, "
    f"join {result.timings.join_seconds * 1000:.1f}ms"
)

# ----------------------------------------------------------------------
# UNI MoLESP: only the Y-link arborescences survive - exactly N_L answers.
# ----------------------------------------------------------------------
uni = evaluate_query(graph, cdf_query(3, "UNI"), default_timeout=30.0)
print(f"UNI MoLESP: {len(uni)} answers (== N_L = {dataset.num_links})")

# show one answer
row = uni.rows[0]
tree = row[2]
print("  sample connecting tree:", tree.describe(graph))

# ----------------------------------------------------------------------
# What the baseline engines can and cannot do (Figure 14's story).
# ----------------------------------------------------------------------
sources = sorted({graph.edge(e).target for e in graph.edges_with_label("c")})
targets_g = sorted({graph.edge(e).target for e in graph.edges_with_label("g")})

check_only = virtuoso_sql_like_engine().run(graph, sources, targets_g, timeout=5.0)
print(
    f"\nVirtuoso-like (check-only): confirms {len(check_only.connected_pairs)} "
    f"connected (top, bottom) pairs in {check_only.elapsed_seconds * 1000:.1f}ms "
    "- but returns no trees, and cannot express the 3-way connection at all"
)

paths = postgres_like_engine().run(graph, sources, targets_g, timeout=5.0)
print(
    f"Postgres-like (returning paths): {paths.total_paths} paths in "
    f"{paths.elapsed_seconds * 1000:.1f}ms - pairs only; a 3-way answer "
    "needs stitching, which changes the semantics (Section 2)"
)
