"""The paper's running example (Figures 1, Sections 1-2).

An investigative-journalism graph of companies, entrepreneurs, politicians
and countries.  Query Q1 asks: "what are the connections between some
American entrepreneur, some French entrepreneur, and some French
politician?" — a three-way connection no path query can return.

Run with::

    python examples/investigation_figure1.py
"""

from repro import evaluate_query
from repro.graph.datasets import figure1, figure1_edge

graph = figure1()
print(f"Figure 1 graph: {graph}")
for node in graph.nodes():
    types = ",".join(sorted(node.types)) or "-"
    print(f"  n{node.id + 1}: {node.label} ({types})")

# The paper's query Q1 (Section 2), in EQL concrete syntax.
Q1 = """
SELECT ?x ?y ?z ?w
WHERE {
  ?x citizenOf "USA" .
  ?y citizenOf "France" .
  ?z citizenOf "France" .
  FILTER(type(?x) = "entrepreneur")
  FILTER(type(?y) = "entrepreneur")
  FILTER(type(?z) = "politician")
  CONNECT(?x, ?y, ?z) AS ?w
}
"""

result = evaluate_query(graph, Q1)
print(f"\nQ1 returns {len(result)} rows; evaluation breakdown:")
timings = result.timings
print(
    f"  BGPs {timings.bgp_seconds * 1000:.2f}ms | "
    f"CTP {timings.ctp_seconds * 1000:.2f}ms | "
    f"join {timings.join_seconds * 1000:.2f}ms"
)
report = result.ctp_reports[0]
print(f"  seed sets: {report.seed_set_sizes}, search stats: {report.result_set.stats.format()}")

# The two results spelled out in Section 2.
t_alpha = frozenset(figure1_edge(k) for k in (10, 9, 11))
t_beta = frozenset(figure1_edge(k) for k in (1, 2, 17, 16))
print("\nThe paper's example results:")
for row in result.rows:
    tree = row[3]
    if tree.edges == t_alpha:
        print("  t_alpha:", tree.describe(graph))
    elif tree.edges == t_beta:
        print("  t_beta: ", tree.describe(graph))

# t_beta only exists because CTP semantics is bidirectional (R3): under
# the UNI filter it disappears.
uni = evaluate_query(graph, Q1.replace("AS ?w", "AS ?w UNI"))
print(f"\nwith UNI filter: {len(uni)} rows (t_beta and friends are gone)")
assert all(row[3].edges != t_beta for row in uni.rows)

# Smallest is not always most interesting (R2): rank by hub avoidance.
scored = evaluate_query(graph, Q1.replace("AS ?w", "AS ?w SCORE hub_penalty TOP 3"))
print("\ntop 3 connections avoiding hub nodes:")
for row in scored.rows:
    tree = row[3]
    print(f"  score={tree.score:.3f}  {tree.describe(graph)}")
