"""Requirement R2: connection search orthogonal to the score function.

The paper's motivation: the *smallest* connection between two entities in
an investigation graph is often the least interesting one (everyone is
connected through a country node).  Because CTP evaluation enumerates all
results independently of the score, analysts can re-rank the same result
set with different scores — or push a score into the search as TOP-k.

Run with::

    python examples/score_functions.py
"""

from repro import GraphBuilder, evaluate_query
from repro.query.scoring import SCORE_FUNCTIONS, register_score_function

# An "offshore finance" toy graph: one boring hub (the country) and one
# interesting multi-hop money trail.
b = GraphBuilder("offshore")
b.triple("Mr. Shady", "citizenOf", "DEF Republic")
b.triple("Bank ABC", "registeredIn", "DEF Republic")
b.triple("Mr. Shady", "owns", "Shell Co 1")
b.triple("Shell Co 1", "hasAccount", "Account 17")
b.triple("Account 17", "heldAt", "Bank ABC")
b.triple("Tax Office", "audits", "Bank ABC")
b.triple("Tax Office", "locatedIn", "DEF Republic")
for label in ("Mr. Shady",):
    b.set_types(label, "person")
for label in ("Bank ABC", "Shell Co 1", "Tax Office"):
    b.set_types(label, "organization")
graph = b.graph

QUERY = """
SELECT ?w WHERE {{
  CONNECT("Mr. Shady", "Bank ABC", "Tax Office") AS ?w SCORE {score}
}}
"""

for score in ("size", "hub_penalty", "diversity"):
    result = evaluate_query(graph, QUERY.format(score=score))
    ranked = sorted((row[0] for row in result.rows), key=lambda t: -t.score)
    print(f"\nSCORE {score}: best of {len(ranked)} connections")
    print(f"  score={ranked[0].score:.3f}  {ranked[0].describe(graph)}")

# Custom scores are first-class: prefer trees mentioning an account.
def follow_the_money(graph, edges, nodes):
    labels = {graph.edge(e).label for e in edges}
    bonus = 1.0 if {"hasAccount", "heldAt"} <= labels else 0.0
    return bonus + 1.0 / (1.0 + len(edges))


register_score_function("follow_the_money", follow_the_money)
result = evaluate_query(graph, QUERY.format(score="follow_the_money"))
ranked = sorted((row[0] for row in result.rows), key=lambda t: -t.score)
print("\nSCORE follow_the_money: the money trail wins")
print(f"  score={ranked[0].score:.3f}  {ranked[0].describe(graph)}")
assert any(graph.edge(e).label == "hasAccount" for e in ranked[0].edges)
print(f"\nbuilt-in scores available: {', '.join(sorted(SCORE_FUNCTIONS))}")
