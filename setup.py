"""Setup shim.

The pinned environment ships setuptools without ``wheel``, so PEP 660
editable installs (which build a wheel) fail; this shim lets
``pip install -e .`` fall back to the classic ``setup.py develop`` path.
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
