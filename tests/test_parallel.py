"""Parallel CTP dispatch: concurrency is wall-clock only, never semantics.

Five layers:

* **determinism matrix** — every algorithm × interning on/off × 1/2/4/8
  workers produces *exactly* the serial rows (same order, same trees) on a
  multi-CTP query with a repeated CTP (exercising in-flight dedup);
* **sharded-pool safety** — a Hypothesis property that concurrent
  interning from several threads never hands out two handles for one edge
  set, plus internal-consistency checks (fingerprints, sizes, bijection);
* **size-aware ResultCache** — byte-bounded LRU eviction order pinned,
  serially and after a contention phase on the locked variant;
* **stats merging** — :meth:`SearchStats.merge`/``merged`` fold counters
  deterministically in the order given;
* **batch API** — ``evaluate_queries``: cross-query memo hits, empty
  batch, single query, growth invalidation via the fingerprint guard.
"""

from __future__ import annotations

import sys
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ctp.config import SearchConfig
from repro.ctp.interning import (
    EdgeSetPool,
    ResultCache,
    SearchContext,
    ShardedEdgeSetPool,
    approx_bytes,
    splitmix64,
)
from repro.ctp.registry import ALGORITHMS, evaluate_ctp
from repro.ctp.stats import SearchStats
from repro.graph.graph import Graph
from repro.query.evaluator import evaluate_query
from repro.query.parallel import effective_parallelism, evaluate_queries

MATRIX_QUERY = """
SELECT ?x ?w1 ?w2 ?w3 WHERE {
  ?x founded "OrgB" .
  CONNECT(?x, "France") AS ?w1 MAX 3
  CONNECT(?x, "National Liberal Party") AS ?w2 MAX 2
  CONNECT(?x, "France") AS ?w3 MAX 3
}
"""

WILDCARD_QUERY = """
SELECT ?x ?w WHERE {
  CONNECT(?x, *) AS ?w MAX 2
  FILTER(type(?x) = "politician")
}
"""

WORKER_COUNTS = (2, 4, 8)


def assert_pool_consistent(pool: EdgeSetPool) -> None:
    """Pool invariants: records match their metadata, interning is exact."""
    seen = {}
    for handle, (edges, fingerprint, size) in enumerate(pool._recs):
        assert len(edges) == size
        expected = 0
        for edge_id in edges:
            expected ^= splitmix64(edge_id)
        assert fingerprint == expected, f"handle {handle}: stale fingerprint"
        assert edges not in seen, f"set {set(edges)} interned twice: {seen[edges]}, {handle}"
        seen[edges] = handle


# ----------------------------------------------------------------------
# determinism matrix: rows identical to serial at every worker count
# ----------------------------------------------------------------------
_serial_rows = {}


def _serial(fig1, algo: str, interning: bool):
    key = (algo, interning)
    if key not in _serial_rows:
        _serial_rows[key] = evaluate_query(
            fig1,
            MATRIX_QUERY,
            algorithm=algo,
            base_config=SearchConfig(interning=interning, parallelism=1),
        )
    return _serial_rows[key]


@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("interning", [True, False], ids=["interned", "frozen"])
@pytest.mark.parametrize("algo", sorted(ALGORITHMS))
def test_parallel_rows_identical_to_serial(fig1, algo, interning, workers):
    serial = _serial(fig1, algo, interning)
    parallel = evaluate_query(
        fig1,
        MATRIX_QUERY,
        algorithm=algo,
        base_config=SearchConfig(interning=interning, parallelism=workers),
    )
    assert parallel.columns == serial.columns
    assert parallel.rows == serial.rows  # bit-identical, order included
    for par_report, ser_report in zip(parallel.ctp_reports, serial.ctp_reports):
        assert par_report.seed_set_sizes == ser_report.seed_set_sizes
        assert [r.edges for r in par_report.result_set] == [
            r.edges for r in ser_report.result_set
        ]
        assert [r.weight for r in par_report.result_set] == [
            r.weight for r in ser_report.result_set
        ]


def test_parallel_duplicate_ctp_in_flight_dedup(fig1):
    """The repeated CONNECT is evaluated once; the duplicate shares it."""
    result = evaluate_query(fig1, MATRIX_QUERY, base_config=SearchConfig(parallelism=4))
    first, _, third = result.ctp_reports
    assert not first.cache_hit
    assert third.cache_hit  # the ?w3 duplicate of ?w1
    assert third.result_set is first.result_set
    assert result.context_stats["runs"] == 2  # only two distinct searches


def test_parallel_truncated_duplicates_rerun(fig1):
    """LIMIT-truncated runs are never shared between duplicates (the memo
    rule): the follower re-runs, exactly as the serial path re-searches."""
    query = MATRIX_QUERY.replace("AS ?w1 MAX 3", "AS ?w1 MAX 3 LIMIT 1").replace(
        "AS ?w3 MAX 3", "AS ?w3 MAX 3 LIMIT 1"
    )
    serial = evaluate_query(fig1, query)
    parallel = evaluate_query(fig1, query, base_config=SearchConfig(parallelism=4))
    assert parallel.rows == serial.rows
    assert [r.cache_hit for r in parallel.ctp_reports] == [False, False, False]
    assert parallel.context_stats["runs"] == 3  # the duplicate searched again
    assert parallel.context_stats["ctp_cache_hits"] == 0


def test_parallel_wildcard_query(fig1):
    serial = evaluate_query(fig1, WILDCARD_QUERY)
    parallel = evaluate_query(fig1, WILDCARD_QUERY, base_config=SearchConfig(parallelism=4))
    assert parallel.rows == serial.rows


def test_parallel_without_shared_context(fig1):
    """parallelism composes with shared_context=False (private pools)."""
    config = SearchConfig(shared_context=False, parallelism=4)
    serial = evaluate_query(fig1, MATRIX_QUERY, base_config=SearchConfig(shared_context=False))
    parallel = evaluate_query(fig1, MATRIX_QUERY, base_config=config)
    assert parallel.rows == serial.rows
    assert parallel.context_stats is None
    assert [r.cache_hit for r in parallel.ctp_reports] == [False, False, False]


def test_parallel_csr_backend(fig1):
    serial = evaluate_query(fig1, MATRIX_QUERY, base_config=SearchConfig(backend="csr"))
    parallel = evaluate_query(
        fig1, MATRIX_QUERY, base_config=SearchConfig(backend="csr", parallelism=4)
    )
    assert parallel.rows == serial.rows
    # The pre-resolved snapshot is adopted by every worker: no rejects.
    assert parallel.context_stats["rejects"] == 0


def test_explicit_thread_safe_context_amortizes(fig1):
    context = SearchContext(thread_safe=True)
    config = SearchConfig(parallelism=4)
    first = evaluate_query(fig1, MATRIX_QUERY, base_config=config, context=context)
    second = evaluate_query(fig1, MATRIX_QUERY, base_config=config, context=context)
    assert first.rows == second.rows
    assert all(report.cache_hit for report in second.ctp_reports)


def test_explicit_unsafe_context_downgrades_to_serial(fig1):
    """A non-thread-safe context must never be shared across workers."""
    context = SearchContext()
    serial = evaluate_query(fig1, MATRIX_QUERY)
    result = evaluate_query(
        fig1, MATRIX_QUERY, base_config=SearchConfig(parallelism=8), context=context
    )
    assert result.rows == serial.rows
    assert context.runs == 2  # serial dispatch: dup was a memo hit


class TestEffectiveParallelism:
    def test_single_job_is_serial(self):
        assert effective_parallelism(8, 1, None) == 1

    def test_capped_by_jobs(self):
        assert effective_parallelism(8, 3, None) == 3

    def test_unsafe_context_forces_serial(self):
        assert effective_parallelism(8, 3, SearchContext()) == 1

    def test_thread_safe_context_allows_workers(self):
        assert effective_parallelism(2, 3, SearchContext(thread_safe=True)) == 2

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SearchConfig(parallelism=0)

    def test_fingerprint_ignores_parallelism(self):
        fingerprint = SearchContext.config_fingerprint
        assert fingerprint(SearchConfig(parallelism=8)) == fingerprint(SearchConfig())


# ----------------------------------------------------------------------
# sharded pool: concurrent interning safety
# ----------------------------------------------------------------------
class TestShardedPoolSerial:
    """The sharded pool is a drop-in EdgeSetPool in a single thread."""

    def test_same_handles_for_same_construction_paths(self):
        pool = ShardedEdgeSetPool()
        assert pool.EMPTY == 0 and not pool.EMPTY
        h_abc = pool.intern([1, 2, 3])
        assert pool.union1(pool.intern([1, 2]), 3) == h_abc
        assert pool.union2(pool.intern([1]), pool.intern([2, 3])) == h_abc
        assert pool.union2(pool.intern([1, 2]), pool.intern([2, 3])) == h_abc  # overlap
        assert pool.edges(h_abc) == frozenset({1, 2, 3})
        assert pool.size(h_abc) == 3
        assert_pool_consistent(pool)

    def test_matches_plain_pool_semantics(self):
        plain, sharded = EdgeSetPool(), ShardedEdgeSetPool()
        sets = [frozenset(range(i, i + 4)) for i in range(12)] + [frozenset()]
        for pool in (plain, sharded):
            handles = {s: pool.intern(s) for s in sets}
            for s, handle in handles.items():
                assert pool.edges(handle) == s
            assert pool.union2(handles[sets[0]], handles[sets[1]]) == pool.intern(
                sets[0] | sets[1]
            )
        assert len(plain) == len(sharded)


def _hammer_pool(pool, edge_sets, num_threads=4):
    """Interleave intern/union1/union2 from several threads; return the
    (frozenset -> handle) observations of every thread."""
    barrier = threading.Barrier(num_threads)
    observations = [[] for _ in range(num_threads)]
    errors = []

    def worker(tid):
        try:
            barrier.wait()
            out = observations[tid]
            for s in edge_sets:
                out.append((s, pool.intern(s)))
                if s:
                    pivot = max(s)
                    grown = pool.union1(pool.intern(s - {pivot}), pivot)
                    out.append((s, grown))
            for s1 in edge_sets[:8]:
                for s2 in edge_sets[:8]:
                    merged = pool.union2(pool.intern(s1), pool.intern(s2))
                    out.append((s1 | s2, merged))
        except Exception as error:  # pragma: no cover - only on real races
            errors.append(error)

    threads = [threading.Thread(target=worker, args=(tid,)) for tid in range(num_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors, errors
    return observations


@settings(max_examples=20, deadline=None)
@given(
    st.lists(
        st.frozensets(st.integers(0, 40), max_size=8),
        min_size=1,
        max_size=16,
    )
)
def test_concurrent_interning_never_splits_a_set(edge_sets):
    """Shard-consistency invariant: one edge set, one handle — across all
    threads and all construction paths (intern, Grow, Merge)."""
    pool = ShardedEdgeSetPool()
    observations = _hammer_pool(pool, edge_sets)
    mapping = {}
    for thread_observations in observations:
        for edge_set, handle in thread_observations:
            assert mapping.setdefault(edge_set, handle) == handle, (
                f"set {set(edge_set)} received handles {mapping[edge_set]} and {handle}"
            )
    assert_pool_consistent(pool)


def test_stress_shared_context_from_eight_threads(fig1, fig1_seeds):
    """Hammer one thread-safe context with concurrent engine runs."""
    context = SearchContext(thread_safe=True)
    config = SearchConfig(backend="dict")
    baseline = evaluate_ctp(fig1, fig1_seeds, "molesp", config=config)
    pair_baseline = evaluate_ctp(fig1, fig1_seeds[:2], "molesp", config=config)
    num_threads, iterations = 8, 4
    barrier = threading.Barrier(num_threads)
    failures = []

    def worker(tid):
        try:
            barrier.wait()
            for i in range(iterations):
                seeds = fig1_seeds if (tid + i) % 2 == 0 else fig1_seeds[:2]
                expected = baseline if (tid + i) % 2 == 0 else pair_baseline
                result = evaluate_ctp(fig1, seeds, "molesp", config=config, context=context)
                if [r.edges for r in result] != [r.edges for r in expected]:
                    failures.append(f"thread {tid} iteration {i}: rows diverged")
                if [r.seeds for r in result] != [r.seeds for r in expected]:
                    failures.append(f"thread {tid} iteration {i}: seeds diverged")
        except Exception as error:
            failures.append(f"thread {tid}: {error!r}")

    threads = [threading.Thread(target=worker, args=(tid,)) for tid in range(num_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not failures, failures
    assert context.runs == num_threads * iterations
    assert context.rejects == 0
    assert_pool_consistent(context.pool)


# ----------------------------------------------------------------------
# size-aware ResultCache
# ----------------------------------------------------------------------
class TestSizeAwareResultCache:
    def test_evicts_by_bytes_not_entries(self):
        payload = tuple(range(32))
        budget = approx_bytes(payload) * 2 + 16  # room for two payloads
        cache = ResultCache(maxsize=100, max_bytes=budget)
        cache.put("a", payload)
        cache.put("b", tuple(range(32, 64)))
        assert len(cache) == 2 and cache.evictions == 0
        cache.put("c", tuple(range(64, 96)))
        assert len(cache) == 2  # entry bound (100) untouched: bytes evicted
        assert cache.evictions == 1
        assert cache.get("a") is None  # LRU order: oldest went first
        assert cache.get("b") is not None and cache.get("c") is not None
        assert cache.total_bytes <= budget

    def test_hit_refresh_changes_eviction_victim(self):
        payload = tuple(range(32))
        cache = ResultCache(maxsize=100, max_bytes=approx_bytes(payload) * 2 + 16)
        cache.put("a", payload)
        cache.put("b", tuple(range(32, 64)))
        cache.get("a")  # refresh: "b" is now least recently used
        cache.put("c", tuple(range(64, 96)))
        assert cache.get("b") is None
        assert cache.get("a") is not None

    def test_replacement_updates_byte_accounting(self):
        cache = ResultCache(maxsize=10, max_bytes=10_000)
        cache.put("a", tuple(range(64)))
        first = cache.total_bytes
        cache.put("a", (1,))
        assert cache.total_bytes < first
        assert len(cache) == 1

    def test_single_oversized_value_never_retained(self):
        cache = ResultCache(maxsize=10, max_bytes=64)
        cache.put("huge", tuple(range(1024)))
        assert len(cache) == 0
        assert cache.total_bytes == 0
        assert cache.evictions == 1

    def test_entry_bound_still_enforced_without_bytes(self):
        cache = ResultCache(maxsize=2)
        for key in ("a", "b", "c"):
            cache.put(key, key)
        assert len(cache) == 2
        assert cache.total_bytes == 0  # sizing skipped when unbounded

    def test_bad_max_bytes(self):
        with pytest.raises(ValueError):
            ResultCache(4, max_bytes=0)

    def test_eviction_order_pinned_after_contention(self):
        """A contention phase must not corrupt the LRU bookkeeping: the
        eviction order afterwards is exactly the serial LRU order."""
        payload = tuple(range(16))
        budget = approx_bytes(payload) * 3 + 16
        cache = ResultCache(maxsize=1000, max_bytes=budget, thread_safe=True)
        barrier = threading.Barrier(8)

        def worker(tid):
            barrier.wait()
            for i in range(50):
                cache.put((tid, i % 5), tuple(range(16)))
                cache.get((tid, (i + 1) % 5))

        threads = [threading.Thread(target=worker, args=(tid,)) for tid in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Internal accounting survived the contention intact.
        assert cache.total_bytes == sum(cache._nbytes.values())
        assert set(cache._data) == set(cache._nbytes)
        assert cache.total_bytes <= budget
        # Now pin the order serially: x, y, z fit; refresh x; w evicts y.
        for key in ("x", "y", "z"):
            cache.put(key, tuple(range(16)))
        cache.get("x")
        cache.put("w", tuple(range(16)))
        assert "x" in cache and "z" in cache and "w" in cache

    def test_approx_bytes_walks_objects(self):
        class Slotted:
            __slots__ = ("a", "b")

            def __init__(self):
                self.a = list(range(10))
                self.b = "payload"

        assert approx_bytes(Slotted()) > approx_bytes("payload")
        shared = tuple(range(100))
        assert approx_bytes((shared, shared)) < 2 * approx_bytes(shared) + 128

    def test_approx_bytes_deeply_nested_payloads(self):
        """Regression: the size walk used to recurse once per nesting level
        and raise RecursionError on payloads a few thousand levels deep,
        killing the evaluation from inside a cache put."""
        depth = sys.getrecursionlimit() * 3
        nested = ()
        for _ in range(depth):
            nested = (nested,)
        assert approx_bytes(nested) >= depth * sys.getsizeof(())

        chain = {}
        for _ in range(depth):
            chain = {"next": chain}
        assert approx_bytes(chain) > 0

        deep_list = []
        for _ in range(depth):
            deep_list = [deep_list]
        assert approx_bytes(deep_list) > 0

    def test_deep_payload_in_bytes_bounded_cache(self):
        """The ISSUE scenario: storing a ~2000-deep nested tuple in a
        max_bytes-bounded ResultCache must size (and evict) it, not die."""
        nested = ()
        for _ in range(2000):
            nested = (nested,)
        size = approx_bytes(nested)
        cache = ResultCache(maxsize=10, max_bytes=size + 1024)
        cache.put("deep", nested)
        assert cache.get("deep") is nested
        assert cache.total_bytes >= size
        # An oversized deep payload is sized without recursion and dropped.
        tiny = ResultCache(maxsize=10, max_bytes=64)
        tiny.put("deep", nested)
        assert len(tiny) == 0 and tiny.evictions == 1


# ----------------------------------------------------------------------
# stats merging
# ----------------------------------------------------------------------
class TestStatsMerge:
    def test_merge_sums_every_field(self):
        a = SearchStats(grows=3, merges=1, results_found=2, elapsed_seconds=0.5)
        b = SearchStats(grows=4, merges=2, results_found=1, elapsed_seconds=0.25)
        merged = SearchStats.merged([a, b])
        assert merged.grows == 7
        assert merged.merges == 3
        assert merged.results_found == 3
        assert merged.elapsed_seconds == pytest.approx(0.75)
        assert merged.provenances == a.provenances + b.provenances

    def test_merge_in_place_returns_self(self):
        a = SearchStats(grows=1)
        assert a.merge(SearchStats(grows=2)) is a
        assert a.grows == 3

    def test_merged_empty_is_zero(self):
        assert SearchStats.merged([]).as_dict() == SearchStats().as_dict()

    def test_counter_merge_is_order_independent(self):
        runs = [SearchStats(grows=i, trees_kept=i * 2, pool_sets=i % 3) for i in range(6)]
        forward = SearchStats.merged(runs)
        backward = SearchStats.merged(reversed(runs))
        assert forward.as_dict() == backward.as_dict()

    def test_query_reports_merge_deterministically(self, fig1):
        serial = evaluate_query(fig1, MATRIX_QUERY)
        parallel = evaluate_query(fig1, MATRIX_QUERY, base_config=SearchConfig(parallelism=4))
        merge = lambda result: SearchStats.merged(
            r.result_set.stats for r in result.ctp_reports
        )
        serial_merged, parallel_merged = merge(serial), merge(parallel)
        # Search-outcome counters are dispatch-independent; pool/timing
        # attribution is not (shared-pool deltas overlap under concurrency).
        for field in ("grows", "merges", "trees_kept", "results_found", "init_trees"):
            assert getattr(parallel_merged, field) == getattr(serial_merged, field)


# ----------------------------------------------------------------------
# evaluate_queries: the batch front-end
# ----------------------------------------------------------------------
TWO_CTP = """
SELECT ?x ?w1 ?w2 WHERE {
  ?x founded "OrgB" .
  CONNECT(?x, "France") AS ?w1 MAX 3
  CONNECT(?x, "National Liberal Party") AS ?w2 MAX 2
}
"""


class TestEvaluateQueries:
    def test_empty_batch(self, fig1):
        batch = evaluate_queries(fig1, [])
        assert len(batch) == 0
        assert list(batch) == []
        assert batch.context is not None  # created, simply unused
        assert batch.merged_ctp_stats().as_dict() == SearchStats().as_dict()

    def test_single_query_matches_evaluate_query(self, fig1):
        single = evaluate_query(fig1, TWO_CTP)
        batch = evaluate_queries(fig1, [TWO_CTP])
        assert len(batch) == 1
        assert batch[0].rows == single.rows

    def test_cross_query_memo_hits_counted(self, fig1):
        batch = evaluate_queries(fig1, [TWO_CTP, TWO_CTP, TWO_CTP])
        assert [r.cache_hit for r in batch[0].ctp_reports] == [False, False]
        for repeat in batch.results[1:]:
            assert all(report.cache_hit for report in repeat.ctp_reports)
            assert repeat.rows == batch[0].rows
        stats = batch.context_stats()
        assert stats["ctp_cache_hits"] == 4  # 2 CTPs x 2 repeated queries
        assert stats["runs"] == 2  # only the first query searched

    def test_parallel_batch_rows_identical(self, fig1):
        serial = evaluate_queries(fig1, [MATRIX_QUERY, TWO_CTP])
        parallel = evaluate_queries(
            fig1, [MATRIX_QUERY, TWO_CTP], base_config=SearchConfig(parallelism=4)
        )
        assert parallel.context.thread_safe
        assert not serial.context.thread_safe
        for a, b in zip(serial, parallel):
            assert a.rows == b.rows

    def test_no_shared_context_baseline(self, fig1):
        batch = evaluate_queries(
            fig1, [TWO_CTP, TWO_CTP], base_config=SearchConfig(shared_context=False)
        )
        assert batch.context is None
        assert batch.context_stats() is None
        assert all(not r.cache_hit for result in batch for r in result.ctp_reports)
        assert batch[0].rows == batch[1].rows

    def test_graph_growth_rejected_by_fingerprint_guard(self):
        """Reusing a batch context after the graph grew must re-search:
        the memo key's size fingerprint invalidates pre-growth entries."""
        graph = Graph("growing")
        a, b = graph.add_node("A"), graph.add_node("B")
        mid = graph.add_node("M")
        graph.add_edge(a, mid, "e")
        graph.add_edge(mid, b, "e")
        query = 'SELECT ?w WHERE { CONNECT("A", "B") AS ?w }'
        context = SearchContext(thread_safe=True)
        config = SearchConfig(parallelism=2)
        first = evaluate_queries(graph, [query, query], base_config=config, context=context)
        assert len(first[0]) == 1
        assert all(r.cache_hit for r in first[1].ctp_reports)
        mid2 = graph.add_node("M2")
        graph.add_edge(a, mid2, "e")
        graph.add_edge(mid2, b, "e")
        second = evaluate_queries(graph, [query], base_config=config, context=context)
        assert not second[0].ctp_reports[0].cache_hit  # guard rejected reuse
        assert len(second[0]) == 2  # the new connection, not the stale set

    def test_merged_ctp_stats_counts_all_queries(self, fig1):
        batch = evaluate_queries(fig1, [TWO_CTP, TWO_CTP])
        merged = batch.merged_ctp_stats()
        per_query = [
            SearchStats.merged(r.result_set.stats for r in result.ctp_reports)
            for result in batch
        ]
        assert merged.results_found == sum(s.results_found for s in per_query)
