"""Tests for the triple-table view (the paper's PostgreSQL storage model)."""

import pytest

from repro.graph.datasets import figure1
from repro.storage.triple_store import TRIPLE_COLUMNS, TripleStore


@pytest.fixture
def store() -> TripleStore:
    return TripleStore(figure1())


def test_full_table(store):
    assert len(store) == 19
    assert store.table.columns == TRIPLE_COLUMNS


def test_scan_unbound_returns_all(store):
    assert len(store.scan()) == 19


def test_scan_by_label(store):
    citizen = store.scan(label="citizenOf")
    assert len(citizen) == 5
    assert all(store.graph.edge(e).label == "citizenOf" for e in citizen)


def test_scan_by_source(store):
    bob = store.graph.find_node_by_label("Bob")
    edges = store.scan(source=bob)
    assert {store.graph.edge(e).label for e in edges} == {"founded", "citizenOf"}


def test_scan_by_target(store):
    usa = store.graph.find_node_by_label("USA")
    edges = store.scan(target=usa)
    assert len(edges) == 3  # Bob, Carole citizenships + OrgC locatedIn


def test_scan_combined(store):
    bob = store.graph.find_node_by_label("Bob")
    usa = store.graph.find_node_by_label("USA")
    edges = store.scan(source=bob, label="citizenOf", target=usa)
    assert len(edges) == 1


def test_scan_no_match(store):
    assert store.scan(label="ghost") == []


def test_triples_table(store):
    table = store.triples(label="founded")
    assert table.columns == TRIPLE_COLUMNS
    assert len(table) == 3


def test_estimated_count_uses_cheapest_path(store):
    bob = store.graph.find_node_by_label("Bob")
    assert store.estimated_count() == 19
    assert store.estimated_count(source=bob) == 2
    assert store.estimated_count(source=bob, label="citizenOf") == 2
