"""Tests for label-oriented graph construction."""

import pytest

from repro.graph.builder import GraphBuilder, graph_from_triples


class TestGraphBuilder:
    def test_triple_creates_nodes(self):
        b = GraphBuilder()
        edge_id = b.triple("Alice", "knows", "Bob")
        assert edge_id == 0
        assert b.graph.num_nodes == 2
        assert b.graph.node(b.id_of("Alice")).label == "Alice"

    def test_node_reuse_by_label(self):
        b = GraphBuilder()
        first = b.node("Alice")
        second = b.node("Alice")
        assert first == second
        assert b.graph.num_nodes == 1

    def test_types_merge_on_later_calls(self):
        b = GraphBuilder()
        b.node("Alice", types=("person",))
        b.node("Alice", types=("entrepreneur",))
        assert b.graph.node(b.id_of("Alice")).types == frozenset({"person", "entrepreneur"})
        # the type index picks up late-added types, without duplicates
        assert b.graph.nodes_with_type("entrepreneur") == [b.id_of("Alice")]
        b.node("Alice", types=("entrepreneur",))
        assert b.graph.nodes_with_type("entrepreneur") == [b.id_of("Alice")]

    def test_props_merge(self):
        b = GraphBuilder()
        b.node("Alice", age=30)
        b.node("Alice", city="Paris")
        node = b.graph.node(b.id_of("Alice"))
        assert node.props == {"age": 30, "city": "Paris"}

    def test_set_types(self):
        b = GraphBuilder()
        b.set_types("Alice", "person", "founder")
        assert b.graph.node(b.id_of("Alice")).types == frozenset({"person", "founder"})

    def test_triples_bulk(self):
        b = GraphBuilder()
        b.triples([("a", "x", "b"), ("b", "y", "c")])
        assert b.graph.num_edges == 2
        assert b.graph.num_nodes == 3

    def test_ids_of(self):
        b = GraphBuilder()
        b.triple("a", "x", "b")
        assert b.ids_of("a", "b") == (b.id_of("a"), b.id_of("b"))

    def test_id_of_missing_raises(self):
        b = GraphBuilder()
        with pytest.raises(KeyError):
            b.id_of("ghost")

    def test_edge_weight_and_props(self):
        b = GraphBuilder()
        edge_id = b.triple("a", "x", "b", weight=4.5, year=2020)
        edge = b.graph.edge(edge_id)
        assert edge.weight == 4.5
        assert edge.props["year"] == 2020


class TestGraphFromTriples:
    def test_basic(self):
        g = graph_from_triples([("a", "r", "b"), ("b", "r", "c")], name="t")
        assert g.num_nodes == 3
        assert g.num_edges == 2
        assert g.name == "t"

    def test_types_argument(self):
        g = graph_from_triples(
            [("Alice", "worksAt", "Inria")],
            types={"Alice": ("person",), "Inria": ("organization",)},
        )
        assert g.nodes_with_type("person") == [g.find_node_by_label("Alice")]
        assert g.nodes_with_type("organization") == [g.find_node_by_label("Inria")]
