"""Tests for score functions (requirement R2)."""

import pytest

from repro.errors import QueryError
from repro.graph.datasets import figure1, figure1_edge
from repro.query.scoring import (
    SCORE_FUNCTIONS,
    get_score_function,
    hub_penalty_score,
    label_diversity_score,
    register_score_function,
    size_score,
    specificity_score,
    weight_score,
)


@pytest.fixture
def fig1():
    return figure1()


def _tree(graph, paper_edge_numbers):
    edges = frozenset(figure1_edge(k) for k in paper_edge_numbers)
    nodes = set()
    for edge_id in edges:
        edge = graph.edge(edge_id)
        nodes.add(edge.source)
        nodes.add(edge.target)
    return edges, frozenset(nodes)


def test_size_score_prefers_smaller(fig1):
    t_alpha = _tree(fig1, (10, 9, 11))
    t_beta = _tree(fig1, (1, 2, 17, 16))
    assert size_score(fig1, *t_alpha) > size_score(fig1, *t_beta)


def test_size_score_single_node(fig1):
    assert size_score(fig1, frozenset(), frozenset({0})) == 1.0


def test_weight_score_uses_edge_weights():
    from repro.graph.graph import Graph

    g = Graph()
    a, b = g.add_node("a"), g.add_node("b")
    light = g.add_edge(a, b, "x", weight=1.0)
    heavy = g.add_edge(a, b, "y", weight=10.0)
    assert weight_score(g, frozenset({light}), frozenset({a, b})) > weight_score(
        g, frozenset({heavy}), frozenset({a, b})
    )


def test_label_diversity(fig1):
    diverse = _tree(fig1, (1, 2, 17, 16))  # founded, investsIn, funds, affiliation
    uniform = _tree(fig1, (5, 6))  # two citizenOf edges
    assert label_diversity_score(fig1, *diverse) == 1.0
    assert label_diversity_score(fig1, *uniform) == 0.5


def test_label_diversity_empty(fig1):
    assert label_diversity_score(fig1, frozenset(), frozenset({0})) == 0.0


def test_hub_penalty_decreases_with_degree(fig1):
    # going through the high-degree NLP/OrgC nodes scores lower than a
    # two-leaf tree of low-degree nodes of same size
    through_hub = _tree(fig1, (16, 18))  # via National Liberal Party
    small = _tree(fig1, (3,))
    assert hub_penalty_score(fig1, *small) > hub_penalty_score(fig1, *through_hub)


def test_specificity_is_blend(fig1):
    tree = _tree(fig1, (10, 9, 11))
    value = specificity_score(fig1, *tree)
    assert 0.0 < value <= 1.0


def test_registry_contains_builtins():
    for name in ("size", "weight", "diversity", "hub_penalty", "specificity"):
        assert name in SCORE_FUNCTIONS
        assert get_score_function(name) is SCORE_FUNCTIONS[name]


def test_unknown_score_raises():
    with pytest.raises(QueryError):
        get_score_function("nope")


def test_register_custom_score(fig1):
    def always_42(graph, edges, nodes):
        return 42.0

    register_score_function("answer", always_42)
    try:
        assert get_score_function("answer") is always_42
    finally:
        SCORE_FUNCTIONS.pop("answer")


def test_scores_monotone_in_size(fig1):
    one = _tree(fig1, (1,))
    two = _tree(fig1, (1, 17))
    assert size_score(fig1, *one) > size_score(fig1, *two) > 0
