"""Tests for the two DESIGN.md §1.3 ablation switches.

These pin down *why* the library departs from two literal readings of the
paper's pseudocode — the departures are requirements, not preferences.
"""

import pytest

from repro.ctp.config import SearchConfig
from repro.ctp.gam import GAMSearch
from repro.ctp.moesp import MoESPSearch
from repro.ctp.molesp import MoLESPSearch
from repro.graph.datasets import figure3, figure4, figure4_result_edges
from repro.workloads.synthetic import comb_graph, line_graph, star_graph


class TestStrictMerge2:
    def test_breaks_gam_completeness_on_figure4(self):
        """Figure 4's results branch at seed B; the literal Merge2 blocks
        every merge at B, so strict GAM loses all of them — contradicting
        Property 1 and justifying the relaxed reading."""
        graph, seeds = figure4()
        relaxed = GAMSearch().run(graph, seeds)
        strict = GAMSearch().run(graph, seeds, SearchConfig(strict_merge2=True))
        assert len(relaxed) == 4
        assert len(strict) == 0

    def test_breaks_completeness_on_comb(self):
        graph, seeds = comb_graph(3, 2, 3)
        relaxed = GAMSearch().run(graph, seeds)
        strict = GAMSearch().run(graph, seeds, SearchConfig(strict_merge2=True))
        assert len(relaxed) == 1
        assert len(strict) == 0

    def test_agrees_when_no_seed_branches(self):
        """On Star graphs every merge happens at the non-seed center, so
        both readings coincide."""
        graph, seeds = star_graph(5, 2)
        relaxed = GAMSearch().run(graph, seeds)
        strict = GAMSearch().run(graph, seeds, SearchConfig(strict_merge2=True))
        assert relaxed.edge_sets() == strict.edge_sets()

    def test_strict_never_finds_more(self):
        for graph, seeds in (figure3(), line_graph(4, 2), star_graph(4, 3)):
            relaxed = MoLESPSearch().run(graph, seeds)
            strict = MoLESPSearch().run(graph, seeds, SearchConfig(strict_merge2=True))
            assert strict.edge_sets() <= relaxed.edge_sets()


class TestMoInjectAlways:
    @pytest.mark.parametrize(
        "make",
        [figure4, lambda: line_graph(5, 2), lambda: comb_graph(3, 2, 3), lambda: star_graph(5, 2)],
    )
    def test_same_results_more_work(self, make):
        graph, seeds = make()
        gain_only = MoLESPSearch().run(graph, seeds)
        always = MoLESPSearch().run(graph, seeds, SearchConfig(mo_inject_always=True))
        assert always.edge_sets() == gain_only.edge_sets()
        assert always.stats.provenances > gain_only.stats.provenances

    def test_minimality_guard_active(self):
        """Without the guard, literal injection reports non-minimal trees;
        the guard counts them as filter-pruned."""
        graph, seeds = figure4()
        always = MoLESPSearch().run(graph, seeds, SearchConfig(mo_inject_always=True))
        assert always.stats.pruned_filters > 0
        target = figure4_result_edges(graph)
        assert target in always.edge_sets()

    def test_moesp_variant_too(self):
        graph, seeds = figure3()
        gain_only = MoESPSearch().run(graph, seeds)
        always = MoESPSearch().run(graph, seeds, SearchConfig(mo_inject_always=True))
        assert always.edge_sets() == gain_only.edge_sets()
