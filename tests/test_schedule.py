"""Cost-model-driven CTP scheduling: the property-test harness.

The scheduling layer (``repro.query.costmodel`` + the dispatch hooks in
``repro.query.parallel``) makes four decisions — auto mode selection,
longest-first submission, deadline-budget rebalancing, pipelined (A)→(B)
overlap — and every one of them must be **representation-only**: rows are
bit-identical to serial dispatch whatever the scheduler decided.  Five
layers pin that:

* **determinism matrix** — every algorithm × serial/thread/process/auto
  dispatch × scheduling on/off (with and without a deadline ledger)
  produces exactly the serial rows on the multi-CTP query with a
  repeated CTP;
* **fake-clock ledger** — :class:`DeadlineLedger` build budgets are
  cost-proportional and sum to the deadline, grants never drop below the
  build budget (even past the deadline) and never exceed the intrinsic
  timeout, settled budget flows to pending CTPs — exact arithmetic via
  ``repro.testing.FakeClock``, no wall-clock races;
* **inline-executor ordering** — ``_fan_out`` submits leaders
  longest-first with ties broken by CTP index, recorded deterministically
  by ``repro.testing.InlineExecutor``, and in-flight dedup survives
  reordering;
* **Hypothesis properties** — *arbitrary* estimate assignments (any
  permutation the cost model could ever produce) leave thread-dispatch
  rows identical to serial, and ledger invariants hold for random
  costs/clock advances;
* **satellite regressions** — ``ResultCache.size_walks`` (one deep walk
  per distinct inserted value), tolerant ``SearchStats`` merge/round-trip,
  and per-response schedule telemetry through the query server.
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ctp.config import SearchConfig
from repro.ctp.interning import ResultCache
from repro.ctp.registry import ALGORITHMS
from repro.ctp.stats import SearchStats
from repro.errors import ConfigError
from repro.graph.graph import Graph
from repro.query.costmodel import (
    LEDGER_FLOOR,
    DeadlineLedger,
    QuerySchedule,
    choose_mode,
)
from repro.query.evaluator import evaluate_query
from repro.query.parallel import CTPJob, _fan_out, run_ctp_jobs
from repro.serve import STATUS_OK, QueryRequest, QueryServer
from repro.testing import FakeClock, InlineExecutor

SETTINGS = settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])

MATRIX_QUERY = """
SELECT ?x ?w1 ?w2 ?w3 WHERE {
  ?x founded "OrgB" .
  CONNECT(?x, "France") AS ?w1 MAX 3
  CONNECT(?x, "National Liberal Party") AS ?w2 MAX 2
  CONNECT(?x, "France") AS ?w3 MAX 3
}
"""

#: The third CONNECT has constant-only seeds: no BGP variable binds it, so
#: the pipelined path may start it before step (A) runs at all.
PIPELINE_QUERY = """
SELECT ?x ?w1 ?w4 WHERE {
  ?x founded "OrgB" .
  CONNECT(?x, "France") AS ?w1 MAX 3
  CONNECT("France", "National Liberal Party") AS ?w4 MAX 3
}
"""

# ----------------------------------------------------------------------
# determinism matrix: scheduled rows identical to serial, every algorithm
# ----------------------------------------------------------------------
SCHED_VARIANTS = {
    "serial-nosched": dict(parallelism=1),
    "serial-sched": dict(parallelism=1, scheduling=True),
    "serial-deadline-sched": dict(parallelism=1, scheduling=True, deadline=60.0),
    "thread-nosched": dict(parallelism=4),
    "thread-sched": dict(parallelism=4, scheduling=True),
    "thread-deadline-sched": dict(parallelism=4, scheduling=True, deadline=60.0),
    "process-nosched": dict(parallelism=2, parallelism_mode="process"),
    "process-sched": dict(parallelism=2, parallelism_mode="process", scheduling=True),
    "auto-sched": dict(parallelism=4, parallelism_mode="auto", scheduling=True),
}

_serial_rows = {}


def _serial(fig1, algo: str):
    if algo not in _serial_rows:
        _serial_rows[algo] = evaluate_query(fig1, MATRIX_QUERY, algorithm=algo)
    return _serial_rows[algo]


@pytest.mark.parametrize("variant", sorted(SCHED_VARIANTS))
@pytest.mark.parametrize("algo", sorted(ALGORITHMS))
def test_scheduled_rows_identical_to_serial(fig1, algo, variant):
    serial = _serial(fig1, algo)
    scheduled = evaluate_query(
        fig1,
        MATRIX_QUERY,
        algorithm=algo,
        base_config=SearchConfig(**SCHED_VARIANTS[variant]),
    )
    assert scheduled.columns == serial.columns
    assert scheduled.rows == serial.rows  # bit-identical, order included
    for sched_report, ser_report in zip(scheduled.ctp_reports, serial.ctp_reports):
        assert sched_report.seed_set_sizes == ser_report.seed_set_sizes
        assert [r.edges for r in sched_report.result_set] == [
            r.edges for r in ser_report.result_set
        ]
    if SCHED_VARIANTS[variant].get("scheduling") or "auto" in variant:
        assert scheduled.schedule is not None
        assert len(scheduled.schedule.estimates) == 3
        assert all(estimate > 0 for estimate in scheduled.schedule.estimates)
    else:
        assert scheduled.schedule is None  # cost model never ran


def test_scheduled_dedup_still_shares_the_repeated_ctp(fig1):
    result = evaluate_query(
        fig1, MATRIX_QUERY, base_config=SearchConfig(parallelism=4, scheduling=True)
    )
    first, _, third = result.ctp_reports
    assert not first.cache_hit
    assert third.cache_hit  # the ?w3 duplicate of ?w1
    assert third.result_set is first.result_set


# ----------------------------------------------------------------------
# pipelined (A)→(B) overlap
# ----------------------------------------------------------------------
def test_pipelined_free_ctp_overlaps_bgp(fig1):
    serial = evaluate_query(fig1, PIPELINE_QUERY)
    result = evaluate_query(
        fig1, PIPELINE_QUERY, base_config=SearchConfig(parallelism=4, scheduling=True)
    )
    assert result.columns == serial.columns and result.rows == serial.rows
    assert result.schedule is not None
    assert result.schedule.mode_selected == "thread"
    # The constant-seeded CONNECT was submitted while the BGP still ran.
    assert result.schedule.pipeline_overlaps == 1


def test_pipelined_bound_ctps_wait_for_their_bgp(fig1):
    serial = evaluate_query(fig1, MATRIX_QUERY)
    result = evaluate_query(
        fig1, MATRIX_QUERY, base_config=SearchConfig(parallelism=4, scheduling=True)
    )
    assert result.rows == serial.rows
    # Every CONNECT seeds from ?x, bound by the one BGP: nothing overlaps.
    assert result.schedule.pipeline_overlaps == 0


def test_pipelined_with_deadline_keeps_rows(fig1):
    serial = evaluate_query(fig1, PIPELINE_QUERY)
    result = evaluate_query(
        fig1,
        PIPELINE_QUERY,
        base_config=SearchConfig(parallelism=4, scheduling=True, deadline=60.0),
    )
    assert result.rows == serial.rows
    assert result.schedule.pipeline_overlaps == 1


# ----------------------------------------------------------------------
# auto mode selection
# ----------------------------------------------------------------------
def test_auto_mode_single_ctp_stays_serial(fig1):
    query = 'SELECT ?w WHERE { CONNECT("France", "National Liberal Party") AS ?w MAX 3 }'
    serial = evaluate_query(fig1, query)
    result = evaluate_query(
        fig1, query, base_config=SearchConfig(parallelism=4, parallelism_mode="auto")
    )
    assert result.rows == serial.rows
    assert result.schedule is not None
    assert result.schedule.mode_requested == "auto"
    assert result.schedule.mode_selected == "serial"  # one job: nothing to overlap
    assert result.schedule.enabled is False  # auto alone keeps decisions off


def test_auto_mode_selection_consistent_with_choose_mode(fig1):
    result = evaluate_query(
        fig1,
        MATRIX_QUERY,
        algorithm="bft",
        base_config=SearchConfig(parallelism=4, parallelism_mode="auto", scheduling=True),
    )
    report = result.schedule
    assert report.mode_requested == "auto"
    assert report.mode_selected == choose_mode(sum(report.estimates), len(report.estimates), 4)


# ----------------------------------------------------------------------
# DeadlineLedger: exact arithmetic under a fake clock
# ----------------------------------------------------------------------
def test_ledger_rejects_non_positive_deadline():
    with pytest.raises(ConfigError):
        DeadlineLedger(0.0, started=0.0)


def test_ledger_primed_builds_are_cost_proportional():
    ledger = DeadlineLedger(10.0, started=0.0, workers=1, clock=FakeClock())
    ledger.prime({0: 3.0, 1: 1.0})
    # The cost passed to register is ignored for a primed index (idempotence).
    assert ledger.register(0, 999.0, None) == pytest.approx(7.5)
    assert ledger.register(1, 999.0, None) == pytest.approx(2.5)
    # Serial shares sum to the whole deadline — no budget is stranded.
    assert ledger.build_budget(0) + ledger.build_budget(1) == pytest.approx(10.0)


def test_ledger_unprimed_first_register_sees_only_itself():
    # The pipelined path's documented heuristic: incremental registration
    # gives early CTPs generous shares (pending pool = themselves).
    ledger = DeadlineLedger(10.0, started=0.0, clock=FakeClock())
    assert ledger.register(0, 3.0, None) == pytest.approx(10.0)
    assert ledger.register(1, 1.0, None) == pytest.approx(2.5)  # 10 * 1/4


def test_ledger_workers_degenerate_to_full_remaining():
    # With every CTP on its own worker the shares hit the min(1, ...) cap:
    # the historical full-remaining behaviour.
    ledger = DeadlineLedger(10.0, started=0.0, workers=2, clock=FakeClock())
    ledger.prime({0: 1.0, 1: 1.0})
    assert ledger.register(0, 1.0, None) == pytest.approx(10.0)
    assert ledger.register(1, 1.0, None) == pytest.approx(10.0)


def test_ledger_grant_never_below_build_even_past_deadline():
    clock = FakeClock()
    ledger = DeadlineLedger(1.0, started=0.0, clock=clock)
    ledger.prime({0: 1.0, 1: 1.0})
    ledger.register(0, 1.0, None)
    build = ledger.register(1, 1.0, None)
    clock.advance(5.0)  # deadline long gone
    assert ledger.remaining() == LEDGER_FLOOR
    assert ledger.grant(1) == pytest.approx(build)  # the pinned invariant
    assert ledger.rebalances == 0


def test_ledger_settled_budget_flows_to_pending_ctp():
    clock = FakeClock()
    ledger = DeadlineLedger(10.0, started=0.0, clock=clock)
    ledger.prime({0: 1.0, 1: 9.0})
    ledger.register(0, 1.0, None)
    build = ledger.register(1, 9.0, None)
    assert build == pytest.approx(9.0)
    clock.advance(0.5)
    ledger.settle(0)  # the cheap CTP finished half its share early
    granted = ledger.grant(1)
    assert granted == pytest.approx(9.5)  # all 9.5s remaining, alone in the pool
    assert granted > build
    assert ledger.rebalances == 1
    assert ledger.rebalanced_seconds == pytest.approx(0.5)


def test_ledger_grant_capped_by_intrinsic_timeout():
    ledger = DeadlineLedger(10.0, started=0.0, clock=FakeClock())
    ledger.prime({0: 1.0, 1: 1.0})
    assert ledger.register(0, 1.0, 0.25) == pytest.approx(0.25)  # tighter than share
    ledger.register(1, 1.0, None)
    ledger.settle(1)
    # Fair share is now the whole remaining deadline; intrinsic still caps.
    assert ledger.grant(0) == pytest.approx(0.25)
    assert ledger.rebalances == 0


@SETTINGS
@given(
    costs=st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False), min_size=1, max_size=6
    ),
    advance=st.floats(min_value=0.0, max_value=20.0, allow_nan=False),
    intrinsic=st.one_of(st.none(), st.floats(min_value=1e-3, max_value=8.0, allow_nan=False)),
    workers=st.integers(min_value=1, max_value=4),
)
def test_ledger_grant_invariants_property(costs, advance, intrinsic, workers):
    clock = FakeClock()
    ledger = DeadlineLedger(5.0, started=0.0, workers=workers, clock=clock)
    ledger.prime(dict(enumerate(costs)))
    builds = {i: ledger.register(i, cost, intrinsic) for i, cost in enumerate(costs)}
    clock.advance(advance)
    for index in range(len(costs) // 2):
        ledger.settle(index)
    for index in range(len(costs)):
        granted = ledger.grant(index)
        assert granted >= builds[index] - 1e-12  # never below the build budget
        if intrinsic is not None:
            assert granted <= intrinsic + 1e-12  # never above the intrinsic cap


# ----------------------------------------------------------------------
# QuerySchedule: grants applied to run configs
# ----------------------------------------------------------------------
def test_config_for_run_applies_upward_grant_only():
    clock = FakeClock()
    ledger = DeadlineLedger(10.0, started=0.0, clock=clock)
    ledger.prime({0: 1.0, 1: 9.0})
    build0 = ledger.register(0, 1.0, None)
    build1 = ledger.register(1, 9.0, None)
    schedule = QuerySchedule(estimates={0: 1.0, 1: 9.0}, ledger=ledger)
    job0 = CTPJob(index=0, seed_sets=[], config=SearchConfig(timeout=build0))
    # Grant equals the build budget: the very same config object comes back.
    assert schedule.config_for_run(job0) is job0.config
    clock.advance(0.5)
    schedule.settle(0)
    job1 = CTPJob(index=1, seed_sets=[], config=SearchConfig(timeout=build1))
    regranted = schedule.config_for_run(job1)
    assert regranted is not job1.config
    assert regranted.timeout == pytest.approx(9.5)


def test_config_for_run_disabled_schedule_is_identity():
    ledger = DeadlineLedger(10.0, started=0.0, clock=FakeClock())
    ledger.prime({0: 1.0})
    ledger.register(0, 1.0, None)
    schedule = QuerySchedule(estimates={0: 1.0}, ledger=ledger, enabled=False)
    job = CTPJob(index=0, seed_sets=[], config=SearchConfig(timeout=1.0))
    assert schedule.config_for_run(job) is job.config


def test_finalize_folds_estimates_actuals_and_ledger_counters():
    ledger = DeadlineLedger(10.0, started=0.0, clock=FakeClock())
    ledger.rebalances = 2
    ledger.rebalanced_seconds = 0.75
    schedule = QuerySchedule(estimates={1: 4.0}, ledger=ledger)
    outcomes = [SimpleNamespace(seconds=0.1), SimpleNamespace(seconds=0.2), None]
    report = schedule.finalize(outcomes)
    assert report.estimates == [0.0, 4.0, 0.0]  # padded to outcome count
    assert report.actual_seconds == [0.1, 0.2, 0.0]
    assert report.rebalances == 2
    assert report.rebalanced_seconds == 0.75
    assert set(report.as_dict()) >= {"estimates", "submit_order", "rebalances"}


# ----------------------------------------------------------------------
# _fan_out ordering: longest-first, deterministic, dedup-preserving
# ----------------------------------------------------------------------
class _FakeResultSet:
    complete = True
    timed_out = False


def _submit_one(pool, job):
    return pool.submit(lambda j: (_FakeResultSet(), 0.0), job)


def test_fan_out_submits_longest_first_ties_by_index():
    executor = InlineExecutor()
    jobs = [CTPJob(index=i, seed_sets=[], config=SearchConfig()) for i in range(4)]
    schedule = QuerySchedule(estimates={0: 1.0, 1: 9.0, 2: 9.0, 3: 4.0})
    outcomes, followers = _fan_out(jobs, None, executor, _submit_one, schedule=schedule)
    assert [args[0].index for _, args in executor.submitted] == [1, 2, 3, 0]
    assert schedule.report.submit_order == [1, 2, 3, 0]
    assert followers == []
    assert all(outcome is not None for outcome in outcomes)


def test_fan_out_disabled_schedule_keeps_ctp_order():
    executor = InlineExecutor()
    jobs = [CTPJob(index=i, seed_sets=[], config=SearchConfig()) for i in range(3)]
    schedule = QuerySchedule(estimates={0: 1.0, 1: 9.0, 2: 4.0}, enabled=False)
    _fan_out(jobs, None, executor, _submit_one, schedule=schedule)
    assert [args[0].index for _, args in executor.submitted] == [0, 1, 2]


def test_fan_out_dedup_survives_reordering():
    executor = InlineExecutor()
    jobs = [
        CTPJob(index=0, seed_sets=[], config=SearchConfig(), memo_key="dup"),
        CTPJob(index=1, seed_sets=[], config=SearchConfig(), memo_key="solo"),
        CTPJob(index=2, seed_sets=[], config=SearchConfig(), memo_key="dup"),
    ]
    schedule = QuerySchedule(estimates={0: 1.0, 1: 9.0, 2: 1.0})
    outcomes, followers = _fan_out(jobs, None, executor, _submit_one, schedule=schedule)
    # Two leaders only (the duplicate shares), ordered longest-first.
    assert [args[0].index for _, args in executor.submitted] == [1, 0]
    assert followers == [2]
    assert outcomes[2].cache_hit
    assert outcomes[2].result_set is outcomes[0].result_set


# ----------------------------------------------------------------------
# Hypothesis: rows identical to serial under ANY estimate assignment
# ----------------------------------------------------------------------
def _chain_graph() -> Graph:
    graph = Graph("sched-chain")
    for index in range(8):
        graph.add_node(f"c{index}")
    for index in range(7):
        graph.add_edge(index, index + 1, "e")
    graph.add_edge(0, 4, "f")
    graph.add_edge(3, 7, "f")
    return graph


_CHAIN = _chain_graph()
_CHAIN_PAIRS = (((0,), (3,)), ((1,), (5,)), ((2,), (7,)), ((0,), (7,)))


def _chain_jobs():
    return [
        CTPJob(index=i, seed_sets=list(pair), config=SearchConfig(max_edges=7))
        for i, pair in enumerate(_CHAIN_PAIRS)
    ]


_chain_serial = None


def _chain_reference():
    global _chain_serial
    if _chain_serial is None:
        outcomes = run_ctp_jobs(_CHAIN, "bft", _chain_jobs(), None, parallelism=1)
        _chain_serial = [[r.edges for r in o.result_set] for o in outcomes]
    return _chain_serial


@SETTINGS
@given(
    estimates=st.lists(
        st.floats(min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False),
        min_size=4,
        max_size=4,
    )
)
def test_any_estimate_assignment_keeps_rows_identical(estimates):
    schedule = QuerySchedule(estimates=dict(enumerate(estimates)))
    outcomes = run_ctp_jobs(
        _CHAIN, "bft", _chain_jobs(), None, parallelism=4, mode="thread", schedule=schedule
    )
    assert [[r.edges for r in o.result_set] for o in outcomes] == _chain_reference()
    assert all(outcome.mode == "thread" for outcome in outcomes)
    expected = sorted(range(4), key=lambda i: (-estimates[i], i))
    assert schedule.report.submit_order == expected


# ----------------------------------------------------------------------
# satellite: ResultCache size-walk accounting
# ----------------------------------------------------------------------
def test_result_cache_one_size_walk_per_distinct_value():
    cache = ResultCache(maxsize=8, max_bytes=1 << 20)
    value = [list(range(10))]
    cache.put("k", value)
    assert cache.size_walks == 1
    # Memo-replay refile of the identical object: recency refresh only.
    cache.put("k", value)
    assert cache.size_walks == 1
    assert cache.get("k") is value
    # Replacing with a different (even equal) object must re-walk.
    cache.put("k", [list(range(10))])
    assert cache.size_walks == 2


def test_result_cache_unbounded_bytes_never_walks():
    cache = ResultCache(maxsize=4)
    cache.put("a", [1])
    cache.put("a", [2])
    assert cache.size_walks == 0
    assert cache.total_bytes == 0


def test_result_cache_replacement_keeps_total_bytes_exact():
    cache = ResultCache(maxsize=4, max_bytes=1 << 20)
    cache.put("k", list(range(100)))
    grown = cache.total_bytes
    cache.put("k", [1])
    assert 0 < cache.total_bytes < grown


# ----------------------------------------------------------------------
# satellite: tolerant SearchStats merge / round-trip
# ----------------------------------------------------------------------
def test_search_stats_merge_tolerates_older_instances():
    stats = SearchStats(grows=3, pool_sets=2)
    # An instance unpickled from an older worker: newer counters absent.
    vintage = SimpleNamespace(grows=1, merges=4)
    stats.merge(vintage)
    assert stats.grows == 4
    assert stats.merges == 4
    assert stats.pool_sets == 2  # missing on `vintage`: merged as zero


def test_search_stats_dict_round_trip():
    stats = SearchStats(grows=2, merges=1, trees_kept=5, elapsed_seconds=0.5)
    data = stats.as_dict()
    assert data["provenances"] == stats.provenances  # derived key present
    assert SearchStats.from_dict(data) == stats  # round-trip, derived key ignored
    # Vintage dict: missing counters default, unknown counters are ignored.
    legacy = SearchStats.from_dict({"grows": 7, "future_counter": 3})
    assert legacy.grows == 7
    assert legacy.pool_sets == 0


# ----------------------------------------------------------------------
# satellite: per-response schedule telemetry through the server
# ----------------------------------------------------------------------
def test_server_response_carries_schedule_telemetry(fig1):
    config = SearchConfig(scheduling=True)
    with QueryServer(fig1, dispatch_mode="serial", base_config=config) as server:
        response = server.handle(QueryRequest(query=MATRIX_QUERY))
        assert response.status == STATUS_OK
        telemetry = response.stats.schedule
        assert telemetry is not None
        assert telemetry["enabled"] is True
        assert len(telemetry["estimates"]) == 3
        assert len(telemetry["actual_seconds"]) == 3


def test_server_response_omits_schedule_when_off(fig1):
    with QueryServer(fig1, dispatch_mode="serial") as server:
        response = server.handle(QueryRequest(query=MATRIX_QUERY))
        assert response.status == STATUS_OK
        assert response.stats.schedule is None
