"""Structure and semantics checks for CDF graphs (Figure 9, Section 5.3)."""

import pytest

from repro.errors import WorkloadError
from repro.query.evaluator import evaluate_query
from repro.workloads.cdf import cdf_graph, cdf_query


class TestStructureM2:
    def test_edge_count_formula(self):
        """A CDF has 12*N_T + N_L*S_L edges (Section 5.3)."""
        for n_t, n_l, s_l in ((5, 10, 3), (8, 16, 6)):
            dataset = cdf_graph(n_t, n_l, s_l, m=2, seed=0)
            assert dataset.graph.num_edges == 12 * n_t + n_l * s_l

    def test_node_count_formula(self):
        """14*N_T + N_L*(S_L - 1) nodes for m=2 (Section 5.3)."""
        for n_t, n_l, s_l in ((5, 10, 3), (8, 16, 6)):
            dataset = cdf_graph(n_t, n_l, s_l, m=2, seed=0)
            assert dataset.graph.num_nodes == 14 * n_t + n_l * (s_l - 1)

    def test_eligibility_rules(self):
        dataset = cdf_graph(6, 12, 3, m=2, seed=1)
        g = dataset.graph
        c_targets = {g.edge(e).target for e in g.edges_with_label("c")}
        g_targets = {g.edge(e).target for e in g.edges_with_label("g")}
        # 50% of c-targets / g-targets participate: one per tree
        assert len(dataset.eligible_top) == 6
        assert set(dataset.eligible_top) <= c_targets
        assert len(dataset.eligible_bottom) == 6
        assert set(dataset.eligible_bottom) <= g_targets

    def test_links_connect_eligible_leaves(self):
        dataset = cdf_graph(4, 8, 4, m=2, seed=2)
        for top, bottom in dataset.links:
            assert top in dataset.eligible_top
            assert bottom in dataset.eligible_bottom

    def test_deterministic_by_seed(self):
        a = cdf_graph(4, 8, 3, m=2, seed=7)
        b = cdf_graph(4, 8, 3, m=2, seed=7)
        assert a.links == b.links


class TestStructureM3:
    def test_edge_count(self):
        """Y links contribute S_L edges each (stem + two branches)."""
        dataset = cdf_graph(4, 6, 4, m=3, seed=0)
        assert dataset.graph.num_edges == 12 * 4 + 6 * 4

    def test_y_links_use_sibling_pairs(self):
        dataset = cdf_graph(5, 10, 3, m=3, seed=3)
        g = dataset.graph
        for top, bottom1, bottom2 in dataset.links:
            # bl1 is a g-target, bl2 the h-target of the same mid node
            (g_edge,) = [e for e in g.edges_with_label("g") if g.edge(e).target == bottom1]
            (h_edge,) = [e for e in g.edges_with_label("h") if g.edge(e).target == bottom2]
            assert g.edge(g_edge).source == g.edge(h_edge).source

    def test_minimum_link_length(self):
        with pytest.raises(WorkloadError):
            cdf_graph(3, 3, 2, m=3)


class TestQueries:
    def test_m2_query_has_nl_answers(self):
        """'Each CDF query has N_L answers, one for each link.'"""
        dataset = cdf_graph(6, 12, 3, m=2, seed=5)
        result = evaluate_query(dataset.graph, dataset.query(), default_timeout=30.0)
        assert len(result) == dataset.expected_results

    def test_m2_answers_match_links(self):
        dataset = cdf_graph(5, 8, 4, m=2, seed=6)
        result = evaluate_query(dataset.graph, dataset.query(), default_timeout=30.0)
        answered = {(row[1], ) for row in result.rows}  # tl column
        expected_tops = {(top,) for top, _ in dataset.links}
        assert answered == expected_tops or len(result) == dataset.expected_results

    def test_m3_bidirectional_finds_extra_ctp_results(self):
        """Section 5.5.1: bidirectional MoLESP finds several times more CTP
        results than N_L (grandparent connections), partially filtered by
        the BGP join."""
        dataset = cdf_graph(8, 12, 3, m=3, seed=7)
        result = evaluate_query(dataset.graph, dataset.query(), default_timeout=30.0)
        ctp_count = len(result.ctp_reports[0].result_set)
        assert ctp_count > 3 * dataset.expected_results
        assert len(result) >= dataset.expected_results
        assert len(result) < ctp_count

    def test_m3_uni_query_exact_links(self):
        """Under UNI only the Y-link arborescences survive."""
        dataset = cdf_graph(6, 9, 3, m=3, seed=8)
        query = cdf_query(3, "UNI")
        result = evaluate_query(dataset.graph, query, default_timeout=30.0)
        assert len(result) == dataset.expected_results

    def test_invalid_m(self):
        with pytest.raises(WorkloadError):
            cdf_graph(3, 3, 3, m=4)
        with pytest.raises(WorkloadError):
            cdf_query(5)
