"""Structure checks for the Line / Comb / Star / chain generators (Fig 8/2)."""

import pytest

from repro.ctp.molesp import MoLESPSearch
from repro.errors import WorkloadError
from repro.workloads.synthetic import chain_graph, comb_graph, line_graph, star_graph


class TestLine:
    def test_counts(self):
        graph, seeds = line_graph(4, 2)
        # 4 seeds + 3 segments * 2 intermediates
        assert graph.num_nodes == 4 + 3 * 2
        assert graph.num_edges == 3 * 3  # s_L = n_L + 1 edges per segment
        assert len(seeds) == 4

    def test_seed_distance(self):
        graph, seeds = line_graph(2, 3)
        assert graph.num_edges == 4

    def test_endpoints_are_seeds(self):
        graph, seeds = line_graph(3, 1)
        degrees = {n: graph.degree(n) for n in graph.node_ids()}
        leaf_nodes = {n for n, d in degrees.items() if d == 1}
        assert leaf_nodes == {seeds[0][0], seeds[-1][0]}

    def test_unique_result(self):
        graph, seeds = line_graph(4, 1)
        results = MoLESPSearch().run(graph, seeds)
        assert len(results) == 1
        assert results.results[0].size == graph.num_edges

    def test_bad_params(self):
        with pytest.raises(WorkloadError):
            line_graph(1, 1)
        with pytest.raises(WorkloadError):
            line_graph(3, -1)


class TestComb:
    def test_seed_count_formula(self):
        """m = n_A * (n_S + 1) (Section 5.3)."""
        for n_a, n_s in ((2, 1), (3, 2), (4, 2)):
            _, seeds = comb_graph(n_a, n_s, 2)
            assert len(seeds) == n_a * (n_s + 1)

    def test_figure8_comb_shape(self):
        """Comb(3, 1, 2): 3 anchors, one 2-edge bristle segment each."""
        graph, seeds = comb_graph(3, 1, 2)
        assert len(seeds) == 6
        # anchors have degree: main line (1 or 2) + bristle (1)
        anchor_ids = [s[0] for s in seeds[:1]]
        assert graph.degree(anchor_ids[0]) == 2  # first anchor: line + bristle

    def test_default_dba(self):
        graph_default, _ = comb_graph(2, 1, 3)
        graph_explicit, _ = comb_graph(2, 1, 3, d_ba=2)
        assert graph_default.num_edges == graph_explicit.num_edges

    def test_unique_result_spans_everything(self):
        graph, seeds = comb_graph(2, 1, 2)
        results = MoLESPSearch().run(graph, seeds)
        assert len(results) == 1

    def test_bad_params(self):
        with pytest.raises(WorkloadError):
            comb_graph(0, 1, 2)
        with pytest.raises(WorkloadError):
            comb_graph(2, 1, 0)


class TestStar:
    def test_counts(self):
        graph, seeds = star_graph(5, 3)
        assert len(seeds) == 5
        assert graph.num_edges == 5 * 3
        assert graph.num_nodes == 1 + 5 * 3

    def test_center_degree(self):
        graph, _ = star_graph(6, 2)
        center_degrees = [graph.degree(n) for n in graph.node_ids()]
        assert max(center_degrees) == 6

    def test_result_is_rooted_merge(self):
        graph, seeds = star_graph(4, 2)
        results = MoLESPSearch().run(graph, seeds)
        assert len(results) == 1
        assert results.results[0].size == 8

    def test_bad_params(self):
        with pytest.raises(WorkloadError):
            star_graph(1, 2)


class TestChain:
    def test_counts(self):
        graph, seeds = chain_graph(5)
        assert graph.num_nodes == 6
        assert graph.num_edges == 10  # two parallel edges per segment
        assert len(seeds) == 2

    def test_exponential_results(self):
        for n in (1, 3, 6):
            graph, seeds = chain_graph(n)
            assert len(MoLESPSearch().run(graph, seeds)) == 2**n

    def test_labels_alternate(self):
        graph, _ = chain_graph(2, labels=("p", "q"))
        assert set(graph.edge_labels()) == {"p", "q"}

    def test_bad_params(self):
        with pytest.raises(WorkloadError):
            chain_graph(0)
