"""Tests for the command-line interfaces."""

import json
import subprocess
import sys

import pytest

from repro.cli import main
from repro.graph.datasets import figure1
from repro.graph.io import save_graph_json, save_graph_tsv


class TestQueryCommand:
    def test_query_on_demo_graph(self, capsys):
        code = main(["query", 'SELECT ?w WHERE { CONNECT("Bob", "Alice") AS ?w MAX 3 }'])
        assert code == 0
        out = capsys.readouterr().out
        assert "row(s)" in out
        assert "?w" in out

    def test_query_on_tsv_file(self, tmp_path, capsys):
        path = tmp_path / "g.tsv"
        save_graph_tsv(figure1(), path)
        code = main(
            [
                "query",
                'SELECT ?w WHERE { CONNECT("Bob", "Alice") AS ?w MAX 3 }',
                "--graph",
                str(path),
            ]
        )
        assert code == 0

    def test_query_on_json_file(self, tmp_path, capsys):
        path = tmp_path / "g.json"
        save_graph_json(figure1(), path)
        code = main(
            [
                "query",
                'SELECT ?z ?w WHERE { CONNECT("OrgB", ?z) AS ?w MAX 3 FILTER(type(?z) = "politician") }',
                "--graph",
                str(path),
                "--algorithm",
                "gam",
            ]
        )
        assert code == 0
        assert "Elon" in capsys.readouterr().out

    def test_query_with_parallelism(self, capsys):
        query = (
            'SELECT ?w1 ?w2 WHERE { CONNECT("Bob", "Alice") AS ?w1 MAX 3 '
            'CONNECT("Bob", "USA") AS ?w2 MAX 3 }'
        )
        serial = main(["query", query])
        serial_out = capsys.readouterr().out
        parallel = main(["query", query, "--parallelism", "4"])
        parallel_out = capsys.readouterr().out
        assert serial == 0 and parallel == 0
        assert "merged in CTP order" in parallel_out
        # Identical rows: the whole row block (everything above the blank
        # line that precedes the timing summary) matches exactly.
        serial_rows = serial_out.split("\n\n")[0]
        assert "|" in serial_rows  # the block really is the result table
        assert serial_rows == parallel_out.split("\n\n")[0]

    def test_parallelism_must_be_positive(self, capsys):
        code = main(
            ["query", 'SELECT ?w WHERE { CONNECT("Bob", "Alice") AS ?w }', "--parallelism", "0"]
        )
        assert code == 1
        assert "parallelism" in capsys.readouterr().err

    def test_negative_parallelism_is_a_clean_user_error(self, capsys):
        """--parallelism -3 must exit 1 with a clear message, not traceback."""
        code = main(
            ["query", 'SELECT ?w WHERE { CONNECT("Bob", "Alice") AS ?w }', "--parallelism", "-3"]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "error:" in err and "parallelism" in err and ">= 1" in err

    def test_parallelism_mode_process(self, capsys):
        query = (
            'SELECT ?w1 ?w2 WHERE { CONNECT("Bob", "Alice") AS ?w1 MAX 3 '
            'CONNECT("Bob", "USA") AS ?w2 MAX 3 }'
        )
        serial = main(["query", query])
        serial_out = capsys.readouterr().out
        process = main(
            ["query", query, "--parallelism", "2", "--parallelism-mode", "process"]
        )
        process_out = capsys.readouterr().out
        assert serial == 0 and process == 0
        assert serial_out.split("\n\n")[0] == process_out.split("\n\n")[0]

    def test_parallelism_mode_rejects_unknown_value(self):
        with pytest.raises(SystemExit):  # argparse choices
            main(["query", "SELECT ?w WHERE { CONNECT(\"A\", \"B\") AS ?w }",
                  "--parallelism-mode", "fibers"])

    def test_bad_query_reports_error(self, capsys):
        code = main(["query", "SELECT ?w WHERE {"])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestSnapshotCommands:
    def test_snapshot_roundtrip_through_cli(self, tmp_path, capsys):
        graph_path = tmp_path / "g.json"
        save_graph_json(figure1(), graph_path)
        snap_path = tmp_path / "g.snapshot"
        code = main(["snapshot", "--graph", str(graph_path), "--out", str(snap_path)])
        assert code == 0
        assert "wrote" in capsys.readouterr().out
        assert snap_path.exists()

        query = 'SELECT ?w WHERE { CONNECT("Bob", "Alice") AS ?w MAX 3 }'
        plain = main(["query", query, "--graph", str(graph_path)])
        plain_out = capsys.readouterr().out
        snapped = main(["query", query, "--snapshot", str(snap_path)])
        snapped_out = capsys.readouterr().out
        assert plain == 0 and snapped == 0
        assert plain_out.split("\n\n")[0] == snapped_out.split("\n\n")[0]

    def test_info_on_snapshot(self, tmp_path, capsys):
        snap_path = tmp_path / "fig1.snapshot"
        assert main(["snapshot", "--out", str(snap_path)]) == 0
        capsys.readouterr()
        assert main(["info", "--snapshot", str(snap_path)]) == 0
        assert "nodes=12" in capsys.readouterr().out

    def test_graph_and_snapshot_are_mutually_exclusive(self, tmp_path, capsys):
        snap_path = tmp_path / "fig1.snapshot"
        assert main(["snapshot", "--out", str(snap_path)]) == 0
        capsys.readouterr()
        code = main(
            ["query", 'SELECT ?w WHERE { CONNECT("Bob", "Alice") AS ?w }',
             "--graph", str(snap_path), "--snapshot", str(snap_path)]
        )
        assert code == 1
        assert "either --graph or --snapshot" in capsys.readouterr().err

    def test_corrupt_snapshot_is_a_clean_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.snapshot"
        bad.write_bytes(b"this is not a snapshot")
        code = main(["info", "--snapshot", str(bad)])
        assert code == 1
        assert "bad magic" in capsys.readouterr().err


class TestOtherCommands:
    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "Q1" in out

    def test_info_default_graph(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "nodes=12" in out

    def test_bench_delegation(self, capsys, tmp_path):
        code = main(["bench", "abl01", "--no-save", "--timeout", "2"])
        assert code == 0
        assert "abl01" in capsys.readouterr().out


class TestBenchCli:
    def test_saves_json(self, tmp_path, capsys):
        from repro.bench.cli import main as bench_main

        code = bench_main(["fig02", "--scale", "0.2", "--out", str(tmp_path)])
        assert code == 0
        saved = json.loads((tmp_path / "fig02.json").read_text())
        assert saved["experiment"] == "fig02"
        assert saved["rows"]

    def test_unknown_experiment_raises(self):
        from repro.bench.cli import main as bench_main
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            bench_main(["fig99", "--no-save"])


def test_module_entrypoint_runs():
    completed = subprocess.run(
        [sys.executable, "-m", "repro", "demo"],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert completed.returncode == 0
