"""Tests for CTP result types and the Definition 2.8 validator."""

import pytest

from repro.ctp.results import (
    CTPResultSet,
    ResultTree,
    is_tree,
    tree_leaves,
    validate_result,
)
from repro.ctp.stats import SearchStats
from repro.graph.graph import Graph


@pytest.fixture
def path_graph():
    g = Graph()
    a, x, b, dead = (g.add_node(n) for n in ("a", "x", "b", "dead"))
    g.add_edge(a, x, "e")  # 0
    g.add_edge(x, b, "e")  # 1
    g.add_edge(x, dead, "e")  # 2
    g.add_edge(a, b, "d")  # 3 (makes a cycle with 0,1)
    return g


class TestTreePredicates:
    def test_is_tree_true(self, path_graph):
        assert is_tree(path_graph, frozenset({0, 1}))
        assert is_tree(path_graph, frozenset())

    def test_is_tree_cycle(self, path_graph):
        assert not is_tree(path_graph, frozenset({0, 1, 3}))

    def test_is_tree_disconnected(self, path_graph):
        g = path_graph
        extra = g.add_node("z")
        extra2 = g.add_node("z2")
        edge = g.add_edge(extra, extra2, "e")
        assert not is_tree(g, frozenset({0, edge}))

    def test_tree_leaves(self, path_graph):
        assert sorted(tree_leaves(path_graph, frozenset({0, 1, 2}))) == [0, 2, 3]


class TestValidateResult:
    def test_valid(self, path_graph):
        result = ResultTree(frozenset({0, 1}), frozenset({0, 1, 2}), (0, 2))
        assert validate_result(path_graph, result, [[0], [2]]) == []

    def test_not_a_tree(self, path_graph):
        result = ResultTree(frozenset({0, 1, 3}), frozenset({0, 1, 2}), (0, 2))
        problems = validate_result(path_graph, result, [[0], [2]])
        assert problems == ["edge set is not a tree"]

    def test_non_seed_leaf(self, path_graph):
        result = ResultTree(frozenset({0, 1, 2}), frozenset({0, 1, 2, 3}), (0, 2))
        problems = validate_result(path_graph, result, [[0], [2]])
        assert any("not minimal" in p for p in problems)

    def test_two_seeds_same_set(self, path_graph):
        result = ResultTree(frozenset({0, 1}), frozenset({0, 1, 2}), (0, 2))
        problems = validate_result(path_graph, result, [[0], [1, 2]])
        assert any("expected exactly 1" in p for p in problems)

    def test_wrong_recorded_seed(self, path_graph):
        result = ResultTree(frozenset({0, 1}), frozenset({0, 1, 2}), (0, 1))
        problems = validate_result(path_graph, result, [[0], [2]])
        assert any("recorded seed" in p for p in problems)

    def test_wildcard_allows_one_non_seed_leaf(self, path_graph):
        # path a - x with x a non-seed leaf bound to the wildcard set
        result = ResultTree(frozenset({0}), frozenset({0, 1}), (0, 1))
        assert validate_result(path_graph, result, [[0], []], wildcard_positions=[1]) == []


class TestResultSetHelpers:
    def _set(self, results):
        return CTPResultSet(results=results, stats=SearchStats(), complete=True)

    def test_edge_sets(self):
        r1 = ResultTree(frozenset({1}), frozenset({0, 1}), (0,))
        r2 = ResultTree(frozenset({2}), frozenset({0, 2}), (0,))
        assert self._set([r1, r2]).edge_sets() == frozenset({frozenset({1}), frozenset({2})})

    def test_best_by_score(self):
        r1 = ResultTree(frozenset({1}), frozenset({0, 1}), (0,), score=0.5)
        r2 = ResultTree(frozenset({2}), frozenset({0, 2}), (0,), score=0.9)
        assert self._set([r1, r2]).best() is r2

    def test_best_unscored_falls_back_to_smallest(self):
        r1 = ResultTree(frozenset({1, 2}), frozenset({0, 1, 2}), (0,))
        r2 = ResultTree(frozenset({3}), frozenset({0, 3}), (0,))
        assert self._set([r1, r2]).best() is r2

    def test_best_empty(self):
        assert self._set([]).best() is None

    def test_sorted_by_score(self):
        r1 = ResultTree(frozenset({1}), frozenset({0, 1}), (0,), score=0.5)
        r2 = ResultTree(frozenset({2}), frozenset({0, 2}), (0,), score=0.9)
        assert self._set([r1, r2]).sorted_by_score()[0] is r2

    def test_describe(self, path_graph):
        result = ResultTree(frozenset({0}), frozenset({0, 1}), (0, None))
        text = result.describe(path_graph)
        assert "a" in text and "*" in text

    def test_len_and_iter(self):
        r1 = ResultTree(frozenset({1}), frozenset({0, 1}), (0,))
        result_set = self._set([r1])
        assert len(result_set) == 1
        assert list(result_set) == [r1]
