"""Delta-overlay MVCC: frozen edges, overlay equivalence, generations, ingest.

The PR-8 suite.  The tentpole has one invariant to hold everywhere: a
generation fully determines content.  Whatever view serves a read — the
frozen base, a base ∪ delta overlay, a worker's reconstructed overlay, a
post-compaction refreeze — the rows must be bit-identical to a fresh
full ``freeze()`` of the graph at that generation.  The suite pins that
invariant at three layers:

1. **protocol** — ``OverlayGraph`` answers the whole ``GraphBackend``
   surface exactly like a full refreeze (goldens + a Hypothesis sweep);
2. **dispatch** — the worker pool ships deltas instead of re-snapshots,
   compacts at its threshold, flags thrash, and refuses stale views
   without charging the breaker;
3. **serving** — concurrent ``ingest()`` + queries on a ``QueryServer``
   return rows matching a full freeze at each response's recorded
   generation, under serial, thread, and process dispatch alike.
"""

from __future__ import annotations

import pickle
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.ctp import ALGORITHMS
from repro.ctp.config import SearchConfig
from repro.ctp.registry import evaluate_ctp
from repro.errors import GraphError, PoolThrashWarning, StaleViewError
from repro.graph import CSRGraph, Edge, Graph, GraphDelta, OverlayGraph
from repro.query.evaluator import evaluate_query
from repro.query.pool import WorkerPool
from repro.serve import (
    DISPATCH_MODES,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_REJECTED,
    IngestRequest,
    QueryRequest,
    QueryServer,
)

PROCESS_CONFIG = SearchConfig(parallelism=2, parallelism_mode="process")


def _chain_graph():
    """A -r-> B -r-> C, frozen base at generation 3."""
    graph = Graph("golden")
    a, b, c = graph.add_node("A"), graph.add_node("B"), graph.add_node("C")
    graph.add_edge(a, b, "r", 1.0)
    graph.add_edge(b, c, "r", 1.0)
    graph.ensure_base()
    return graph, (a, b, c)


def _assert_backend_equivalent(view, full):
    """``view`` answers the whole GraphBackend surface exactly like ``full``."""
    assert view.num_nodes == full.num_nodes
    assert view.num_edges == full.num_edges
    assert [(n.id, n.label, n.types, n.props) for n in view.nodes()] == [
        (n.id, n.label, n.types, n.props) for n in full.nodes()
    ]
    assert [(e.id, e.source, e.target, e.label, e.weight) for e in view.edges()] == [
        (e.id, e.source, e.target, e.label, e.weight) for e in full.edges()
    ]
    labels = sorted(view.edge_labels())
    assert labels == sorted(full.edge_labels())
    assert sorted(view.node_labels()) == sorted(full.node_labels())
    for node in range(full.num_nodes):
        assert view.adjacent(node) == full.adjacent(node), node
        assert view.degree(node) == full.degree(node)
        assert list(view.neighbor_ids(node)) == list(full.neighbor_ids(node))
        assert [e.id for e in view.out_edges(node)] == [e.id for e in full.out_edges(node)]
        assert [e.id for e in full.in_edges(node)] == [e.id for e in view.in_edges(node)]
        for label in labels:
            assert view.adjacent_filtered(node, [label]) == full.adjacent_filtered(
                node, [label]
            ), (node, label)
    for edge_id in range(full.num_edges):
        assert view.edge_weight(edge_id) == full.edge_weight(edge_id)
        assert view.edge_label(edge_id) == full.edge_label(edge_id)
        assert view.edge_endpoints(edge_id) == full.edge_endpoints(edge_id)
    for label in labels:
        assert list(view.edges_with_label(label)) == list(full.edges_with_label(label))
    for node in full.nodes():
        assert list(view.nodes_with_label(node.label)) == list(full.nodes_with_label(node.label))
        for node_type in node.types:
            assert list(view.nodes_with_type(node_type)) == list(full.nodes_with_type(node_type))


# ----------------------------------------------------------------------
# 1. frozen Edge objects (satellite: direct mutation impossible)
# ----------------------------------------------------------------------
class TestFrozenEdge:
    def test_setattr_raises(self):
        graph = Graph()
        a, b = graph.add_node("A"), graph.add_node("B")
        e = graph.add_edge(a, b, "x", weight=1.0)
        with pytest.raises(GraphError):
            graph.edge(e).weight = 9.0
        with pytest.raises(GraphError):
            graph.edge(e).label = "y"
        assert graph.edge(e).weight == 1.0

    def test_delattr_raises(self):
        edge = Edge(0, 0, 1, "x", 1.0)
        with pytest.raises(GraphError):
            del edge.weight

    def test_pickle_round_trip(self):
        edge = Edge(3, 1, 2, "rel", 2.5, {"k": "v"})
        clone = pickle.loads(pickle.dumps(edge))
        assert (clone.id, clone.source, clone.target) == (3, 1, 2)
        assert (clone.label, clone.weight, clone.props) == ("rel", 2.5, {"k": "v"})
        with pytest.raises(GraphError):
            clone.weight = 0.0  # immutability survives the round trip

    def test_replace_weight_returns_new_object(self):
        edge = Edge(0, 0, 1, "x", 1.0)
        heavier = edge.replace_weight(4.0)
        assert heavier is not edge
        assert heavier.weight == 4.0 and edge.weight == 1.0
        assert (heavier.id, heavier.source, heavier.target) == (0, 0, 1)

    def test_set_edge_weight_keeps_pinned_views(self):
        graph = Graph()
        a, b = graph.add_node("A"), graph.add_node("B")
        e = graph.add_edge(a, b, "x", weight=1.0)
        frozen = graph.freeze()
        generation = graph.generation
        graph.set_edge_weight(e, 7.0)
        assert graph.generation > generation  # tracked mutation
        assert frozen.edge(e).weight == 1.0  # pinned view untouched
        assert graph.edge(e).weight == 7.0


# ----------------------------------------------------------------------
# 2. Graph MVCC state: base, delta, read_view, compact
# ----------------------------------------------------------------------
class TestGraphGenerations:
    def test_read_view_is_base_when_unmutated(self):
        graph, _ = _chain_graph()
        view = graph.read_view()
        assert isinstance(view, CSRGraph)
        assert view is graph.read_view()  # memoized per generation

    def test_read_view_is_overlay_after_mutation(self):
        graph, (a, _b, _c) = _chain_graph()
        graph.add_node("D")
        view = graph.read_view()
        assert isinstance(view, OverlayGraph)
        assert view.generation == graph.generation
        assert view.base_generation == graph.base_generation
        assert view is graph.read_view()
        graph.add_edge(a, 3, "r")
        assert graph.read_view() is not view  # new generation, new view

    def test_overlay_views_are_frozen(self):
        graph, _ = _chain_graph()
        graph.add_node("D")
        view = graph.read_view()
        with pytest.raises(GraphError):
            view.add_node("nope")
        with pytest.raises(GraphError):
            view.add_edge(0, 1, "nope")
        assert view.freeze() is view

    def test_compact_keeps_generation_resets_delta(self):
        graph, (a, _b, c) = _chain_graph()
        graph.add_edge(c, a, "back")
        generation = graph.generation
        assert graph.delta_size == 1
        graph.compact()
        assert graph.generation == generation  # content unchanged
        assert graph.delta_size == 0
        assert graph.compactions == 1
        assert graph.base_generation == generation
        assert isinstance(graph.read_view(), CSRGraph)
        graph.compact()  # idempotent at the same generation
        assert graph.compactions == 1

    def test_delta_pickles_and_rebuilds_overlay(self):
        graph, (a, _b, _c) = _chain_graph()
        base = graph.ensure_base()
        d = graph.add_node("D", types=("t",))
        graph.add_edge(a, d, "r", 2.0)
        graph.set_edge_weight(0, 5.0)
        delta = graph.delta_since_base()
        clone = pickle.loads(pickle.dumps(delta))
        assert isinstance(clone, GraphDelta)
        assert clone.size == delta.size == 3
        overlay = OverlayGraph(base, clone)
        _assert_backend_equivalent(overlay, graph.freeze())

    def test_overlay_rejects_mismatched_base(self):
        graph, _ = _chain_graph()
        graph.add_node("D")
        delta = graph.delta_since_base()
        graph.compact()
        foreign = graph.freeze()  # new base: counts include the delta
        with pytest.raises(GraphError):
            OverlayGraph(foreign, delta)

    def test_pickled_graph_restores_mvcc_state(self):
        graph, (a, _b, _c) = _chain_graph()
        graph.add_node("D")
        graph.add_edge(a, 3, "r")
        clone = pickle.loads(pickle.dumps(graph))
        assert clone.generation == graph.generation
        assert clone.delta_size == 0  # base is per-process state, dropped
        _assert_backend_equivalent(clone.freeze(), graph.freeze())


# ----------------------------------------------------------------------
# 3. overlay ≡ full refreeze: goldens at 3 generations, all algorithms
# ----------------------------------------------------------------------
class TestOverlayEquivalence:
    def test_backend_surface_across_generations(self):
        graph, (a, _b, c) = _chain_graph()
        _assert_backend_equivalent(graph.read_view(), graph.freeze())  # gen 1: base
        graph.add_node("D", types=("t",))
        graph.add_edge(c, 3, "r", 2.0)
        graph.add_edge(3, a, "s", 0.5)
        _assert_backend_equivalent(graph.read_view(), graph.freeze())  # gen 2: overlay
        graph.set_edge_weight(0, 9.0)
        _assert_backend_equivalent(graph.read_view(), graph.freeze())  # gen 3: override
        graph.compact()
        _assert_backend_equivalent(graph.read_view(), graph.freeze())  # gen 3: compacted

    @pytest.mark.parametrize("algo", sorted(ALGORITHMS))
    def test_ctp_golden_rows_across_generations(self, algo):
        graph, (a, _b, c) = _chain_graph()
        seeds = [(a,), (c,)]

        def edge_sets(view):
            return sorted(sorted(edges) for edges in evaluate_ctp(view, seeds, algo).edge_sets())

        # Generation 1 — the frozen base: only the chain connects A and C.
        assert edge_sets(graph.read_view()) == [[0, 1]]
        # Generation 2 — a delta edge A->C opens the direct connection.
        graph.add_edge(a, c, "r", 1.0)
        assert edge_sets(graph.read_view()) == [[0, 1], [2]]
        # Generation 3 — a weight override; then the same generation
        # served post-compaction must answer identically.
        graph.set_edge_weight(2, 0.5)
        assert edge_sets(graph.read_view()) == [[0, 1], [2]]
        by_edges = {frozenset(t.edges): t.weight for t in evaluate_ctp(graph.read_view(), seeds, algo)}
        assert by_edges[frozenset({2})] == 0.5  # override visible through CTP weights
        graph.compact()
        assert edge_sets(graph.read_view()) == [[0, 1], [2]]
        assert {
            frozenset(t.edges): t.weight for t in evaluate_ctp(graph.read_view(), seeds, algo)
        } == by_edges

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(data=st.data())
    def test_overlay_rows_match_full_freeze_property(self, data):
        """Hypothesis sweep: any mutation schedule, overlay ≡ full refreeze."""
        num_nodes = data.draw(st.integers(3, 7), label="nodes")
        graph = Graph("prop")
        for index in range(num_nodes):
            graph.add_node(f"n{index}", types=(f"t{index % 2}",))
        for node in range(1, num_nodes):
            graph.add_edge(node, data.draw(st.integers(0, node - 1), label="parent"), "l")
        graph.ensure_base()
        steps = data.draw(
            st.lists(
                st.tuples(st.sampled_from(["node", "edge", "weight"]), st.integers(0, 10 ** 6)),
                min_size=1,
                max_size=6,
            ),
            label="steps",
        )
        for kind, value in steps:
            if kind == "node":
                graph.add_node(f"x{value}", types=(f"t{value % 2}",))
            elif kind == "edge":
                graph.add_edge(value % graph.num_nodes, (value // 7) % graph.num_nodes, "l")
            else:
                graph.set_edge_weight(value % graph.num_edges, 0.5 + (value % 5))
            view, full = graph.read_view(), graph.freeze()
            seeds = [(0,), (graph.num_nodes - 1,)]
            left = evaluate_ctp(view, seeds, "molesp", max_edges=6)
            right = evaluate_ctp(full, seeds, "molesp", max_edges=6)
            assert [sorted(t.edges) for t in left] == [sorted(t.edges) for t in right]
            assert [t.weight for t in left] == [t.weight for t in right]
        graph.compact()
        _assert_backend_equivalent(graph.read_view(), graph.freeze())


# ----------------------------------------------------------------------
# 4. pool dispatch: deltas ship, compaction triggers, stale views refuse
# ----------------------------------------------------------------------
class TestPoolDelta:
    QUERY = 'SELECT ?t WHERE { CONNECT("A", "C") AS ?t }'

    def test_compaction_at_threshold_crossing(self):
        graph, (a, _b, _c) = _chain_graph()
        with WorkerPool(graph, workers=1, compaction_threshold=2) as pool:
            pool.prepare()
            first_path = pool.snapshot_path
            graph.add_node("D")
            graph.add_edge(a, 3, "r")
            assert pool.prepare_for(graph) is not None  # delta of 2: under threshold
            assert pool.resnapshots == 0 and pool.compactions == 0
            assert pool.snapshot_path == first_path
            graph.add_node("E")
            assert pool.prepare_for(graph) is None  # 3 > 2: compacted, base is current
            assert pool.compactions == 1 and pool.resnapshots == 1
            assert graph.delta_size == 0
            assert pool.snapshot_path != first_path

    def test_resnapshots_avoided_counted_once_per_generation(self):
        graph, _ = _chain_graph()
        with WorkerPool(graph, workers=1) as pool:
            pool.prepare()
            graph.add_node("D")
            assert pool.prepare_for(graph) is not None
            assert pool.prepare_for(graph) is not None  # same generation again
            assert pool.resnapshots_avoided == 1
            assert pool.resnapshots == 0

    def test_thrash_warning_on_rapid_resnapshots(self):
        graph, _ = _chain_graph()
        with WorkerPool(graph, workers=1, compaction_threshold=0) as pool:
            pool.prepare()
            graph.add_node("D")
            pool.prepare_for(graph)  # first resnapshot: no prior episode, no warning
            assert pool.resnapshot_thrash == 0
            graph.add_node("E")
            with pytest.warns(PoolThrashWarning):
                pool.prepare_for(graph)  # consecutive resnapshot, zero dispatches apart
            assert pool.resnapshot_thrash == 1
            assert pool.resnapshots == 2

    def test_stale_view_raises_without_breaker_charge(self):
        graph, _ = _chain_graph()
        with WorkerPool(graph, workers=1, compaction_threshold=0) as pool:
            pool.prepare()
            graph.add_node("D")
            stale = graph.read_view()
            graph.add_node("E")
            pool.prepare_for(graph)  # compacts: the pool's base moves past `stale`
            with pytest.raises(StaleViewError):
                pool.prepare_for(stale)
            assert pool.breaker.state == "closed"

    def test_stale_view_dispatch_degrades_with_correct_rows(self):
        graph, _ = _chain_graph()
        with WorkerPool(graph, workers=1, compaction_threshold=0) as pool:
            pool.prepare()
            graph.add_node("D")
            stale = graph.read_view()
            graph.add_node("E")
            pool.prepare_for(graph)
            serial = evaluate_query(stale, self.QUERY)
            result = evaluate_query(stale, self.QUERY, base_config=PROCESS_CONFIG, pool=pool)
            assert result.rows == serial.rows
            assert result.generation == stale.generation
            assert pool.breaker.state == "closed"  # stale view is not a pool fault

    def test_pinned_head_view_dispatches_after_compaction(self):
        graph, _ = _chain_graph()
        with WorkerPool(graph, workers=1, compaction_threshold=0) as pool:
            pool.prepare()
            graph.add_node("D")
            head = graph.read_view()
            assert pool.prepare_for(head) is None  # compaction landed at head's generation
            assert pool.compactions == 1
            serial = evaluate_query(head, self.QUERY)
            result = evaluate_query(head, self.QUERY, base_config=PROCESS_CONFIG, pool=pool)
            assert result.rows == serial.rows

    def test_pool_rejects_bad_threshold(self):
        graph, _ = _chain_graph()
        from repro.errors import PoolError

        with pytest.raises(PoolError):
            WorkerPool(graph, workers=1, compaction_threshold=-1)


# ----------------------------------------------------------------------
# 5. server ingest: atomic batches, typed errors, telemetry
# ----------------------------------------------------------------------
class TestServerIngest:
    def test_batch_applies_and_reports_ids(self):
        graph, (a, _b, c) = _chain_graph()
        with QueryServer(graph, dispatch_mode="serial", max_pending=2) as server:
            result = server.ingest(
                IngestRequest(
                    nodes=(("D", "t"), ("E", "")),
                    edges=((c, 3, "r", 2.0), (3, 4, "r", 1.0)),
                    weights=((0, 5.0),),
                )
            )
            assert result.ok
            assert result.node_ids == (3, 4)
            assert result.edge_ids == (2, 3)
            assert result.generation == graph.generation
            assert result.delta_size == graph.delta_size
            assert graph.edge(0).weight == 5.0
            assert server.stats()["ingests"] == 1

    def test_invalid_batch_is_atomic(self):
        graph, _ = _chain_graph()
        before = (graph.num_nodes, graph.num_edges, graph.generation)
        with QueryServer(graph, dispatch_mode="serial", max_pending=2) as server:
            result = server.ingest(
                IngestRequest(nodes=(("D", ""),), edges=((0, 99, "r", 1.0),))
            )
            assert result.status == STATUS_ERROR
            assert "node id" in result.error
            # Nothing landed: not even the valid node of the batch.
            assert (graph.num_nodes, graph.num_edges, graph.generation) == before
            bad_weight = server.ingest(IngestRequest(weights=((99, 1.0),)))
            assert bad_weight.status == STATUS_ERROR
            assert server.stats()["errors"] == 2

    def test_empty_batch_rejected_at_validation(self):
        from repro.errors import ValidationError

        with pytest.raises(ValidationError):
            IngestRequest()

    def test_closed_server_rejects_ingest(self):
        graph, _ = _chain_graph()
        server = QueryServer(graph, dispatch_mode="serial", max_pending=2)
        server.close()
        result = server.ingest(IngestRequest(nodes=(("D", ""),)))
        assert result.status == STATUS_REJECTED

    def test_serial_dispatch_compacts_inline(self):
        graph, _ = _chain_graph()
        with QueryServer(
            graph, dispatch_mode="serial", max_pending=2, compaction_threshold=1
        ) as server:
            server.ingest(IngestRequest(nodes=(("D", ""), ("E", ""))))
            assert graph.delta_size == 0  # 2 > 1: compacted inside ingest
            assert graph.compactions == 1

    def test_response_stats_carry_generation(self):
        graph, _ = _chain_graph()
        query = 'SELECT ?t WHERE { CONNECT("A", "C") AS ?t }'
        with QueryServer(graph, dispatch_mode="serial", max_pending=2) as server:
            ingest = server.ingest(IngestRequest(nodes=(("D", ""),)))
            response = server.handle(QueryRequest(query=query))
            assert response.ok
            assert response.stats.generation == ingest.generation
            assert response.stats.delta_size == 1


# ----------------------------------------------------------------------
# 6. concurrent ingest + queries: every response ≡ full freeze at its
#    recorded generation, under every dispatch mode (the tentpole gate)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("mode", DISPATCH_MODES)
def test_concurrent_ingest_and_queries_are_generation_consistent(mode):
    graph = Graph("live")
    hub = graph.add_node("hub")
    for group in range(2):
        for tip in range(2):
            node = graph.add_node(f"s{group}_{tip}", types=(f"g{group}",))
            graph.add_edge(hub, node, "e", 1.0)
    query = """
    SELECT ?t WHERE {
      FILTER(type(?x) = "g0")
      FILTER(type(?y) = "g1")
      CONNECT(?x, ?y) AS ?t MAX 4
    }
    """
    rounds, queries = 5, 8
    snapshots = {}

    with QueryServer(
        graph,
        dispatch_mode=mode,
        workers=1,
        max_pending=queries + 1,
        compaction_threshold=3,
    ) as server:
        server.prewarm()
        snapshots[graph.generation] = pickle.dumps(graph)

        def writer():
            for round_index in range(rounds):
                new_id = graph.num_nodes
                result = server.ingest(
                    IngestRequest(
                        nodes=((f"d{round_index}", f"g{round_index % 2}"),),
                        edges=((hub, new_id, "e", 1.0),),
                    )
                )
                assert result.ok, result.error
                # Sole writer: the graph cannot move between the ingest
                # returning and this pickle, so the snapshot is exactly
                # the content of `result.generation`.
                snapshots[result.generation] = pickle.dumps(graph)

        def reader(_index):
            response = server.handle(QueryRequest(query=query))
            assert response.status == STATUS_OK, response.error
            return response

        # One response before any write pins the initial generation...
        responses = [reader(-1)]
        with ThreadPoolExecutor(max_workers=3) as executor:
            ingest_future = executor.submit(writer)
            responses.extend(executor.map(reader, range(queries)))
            ingest_future.result()
        # ...and one after all writes covers the final generation too.
        responses.append(reader(queries))

    observed = set()
    for response in responses:
        generation = response.stats.generation
        assert generation in snapshots  # atomic batches: no torn generation
        observed.add(generation)
        replay = pickle.loads(snapshots[generation])
        expected = evaluate_query(replay.freeze(), query)
        assert response.columns == expected.columns
        assert response.rows == expected.rows, (mode, generation)
    assert len(observed) >= 2  # traffic genuinely spanned generations
