"""The error hierarchy and registry behaviour."""

import pytest

from repro.ctp.registry import ALGORITHMS, COMPLETE_ALGORITHMS, evaluate_ctp, get_algorithm
from repro.errors import (
    BudgetExceeded,
    ConfigError,
    EvaluationError,
    GraphError,
    ParseError,
    QueryError,
    ReproError,
    SearchError,
    SnapshotError,
    StorageError,
    ValidationError,
    WorkloadError,
)


def test_hierarchy():
    for error_class in (
        GraphError,
        StorageError,
        QueryError,
        SearchError,
        BudgetExceeded,
        WorkloadError,
    ):
        assert issubclass(error_class, ReproError)
    assert issubclass(ParseError, QueryError)
    assert issubclass(ValidationError, QueryError)
    assert issubclass(EvaluationError, QueryError)
    assert issubclass(SnapshotError, GraphError)
    # ConfigError keeps historical `except ValueError` call sites working
    # while still being catchable as a library error.
    assert issubclass(ConfigError, SearchError)
    assert issubclass(ConfigError, ValueError)


def test_parse_error_position_rendering():
    error = ParseError("bad token", line=4)
    assert "line 4" in str(error)
    error = ParseError("bad char", position=17)
    assert "offset 17" in str(error)


def test_registry_contents():
    assert set(ALGORITHMS) == {"bft", "bft-m", "bft-am", "gam", "esp", "moesp", "lesp", "molesp"}
    for name in COMPLETE_ALGORITHMS:
        assert name in ALGORITHMS


def test_get_algorithm_case_insensitive():
    assert get_algorithm("MoLESP").name == "molesp"


def test_get_algorithm_unknown():
    with pytest.raises(SearchError) as info:
        get_algorithm("dijkstra")
    assert "known:" in str(info.value)


def test_evaluate_ctp_smoke(fig1, fig1_seeds):
    results = evaluate_ctp(fig1, fig1_seeds, "esp")
    assert results.algorithm == "esp"
