"""Tests for the QGSTP-style approximation baseline."""

import pytest

from repro.baselines.dpbf import dpbf_optimal_tree
from repro.baselines.qgstp import QGSTPApproximation
from repro.ctp.config import WILDCARD, SearchConfig
from repro.ctp.results import is_tree
from repro.errors import SearchError
from repro.graph.graph import Graph
from repro.workloads.realworld import dbpedia_like, sample_ctp_workload
from repro.workloads.synthetic import line_graph, star_graph


@pytest.fixture(scope="module")
def kg():
    return dbpedia_like(scale=0.02).graph


def test_returns_at_most_one_result(kg):
    workload = sample_ctp_workload(kg, scale=0.03, seed=3)
    algo = QGSTPApproximation()
    for seed_sets in workload:
        results = algo.run(kg, seed_sets)
        assert len(results) <= 1
        assert results.algorithm == "qgstp"


def test_result_is_a_connecting_tree(kg):
    workload = sample_ctp_workload(kg, scale=0.03, seed=5)
    algo = QGSTPApproximation()
    for seed_sets in workload:
        results = algo.run(kg, seed_sets)
        for result in results:
            assert is_tree(kg, result.edges)
            for index, seed_set in enumerate(seed_sets):
                assert result.seeds[index] in seed_set
                assert result.seeds[index] in result.nodes


def test_exact_on_star():
    graph, seeds = star_graph(4, 2)
    results = QGSTPApproximation().run(graph, seeds)
    assert len(results) == 1
    assert results.results[0].size == 8  # the star is the unique solution


def test_exact_on_line():
    graph, seeds = line_graph(3, 1)
    results = QGSTPApproximation().run(graph, seeds)
    assert results.results[0].size == 4


def test_approximation_within_factor_of_optimum(kg):
    """Star-rooted shortest paths give at most m * OPT; check a loose bound."""
    workload = sample_ctp_workload(kg, scale=0.03, seed=11)
    algo = QGSTPApproximation()
    for seed_sets in workload:
        results = algo.run(kg, seed_sets)
        optimum = dpbf_optimal_tree(kg, seed_sets, timeout=10.0)
        if optimum is None:
            assert len(results) == 0
            continue
        assert len(results) == 1
        m = len(seed_sets)
        assert results.results[0].weight <= m * max(optimum.weight, 1.0) + 1e-9


def test_disconnected_no_result():
    g = Graph()
    a = g.add_node("a")
    b = g.add_node("b")
    results = QGSTPApproximation().run(g, [[a], [b]])
    assert len(results) == 0


def test_deterministic(kg):
    workload = sample_ctp_workload(kg, scale=0.02, seed=2)
    algo = QGSTPApproximation()
    first = [algo.run(kg, s).edge_sets() for s in workload]
    second = [algo.run(kg, s).edge_sets() for s in workload]
    assert first == second


def test_uni_result_is_arborescence():
    # r -> a, r -> m -> b : under UNI the solution must be directed
    g = Graph()
    r, a, m, b = (g.add_node(x) for x in "ramb")
    g.add_edge(r, a)
    g.add_edge(r, m)
    g.add_edge(m, b)
    results = QGSTPApproximation().run(g, [[a], [b]], SearchConfig(uni=True))
    assert len(results) == 1
    result = results.results[0]
    in_deg = {n: 0 for n in result.nodes}
    for e in result.edges:
        in_deg[g.edge(e).target] += 1
    assert sum(1 for d in in_deg.values() if d == 0) == 1


def test_uni_infeasible():
    g = Graph()
    a, x, b = g.add_node("a"), g.add_node("x"), g.add_node("b")
    g.add_edge(a, x)
    g.add_edge(b, x)
    results = QGSTPApproximation().run(g, [[a], [b]], SearchConfig(uni=True))
    assert len(results) == 0


def test_wildcard_rejected():
    g = Graph()
    a = g.add_node("a")
    with pytest.raises(SearchError):
        QGSTPApproximation().run(g, [[a], WILDCARD])
