"""Dense search-local node identity: dense and legacy runs are bit-identical.

The dense-ids refactor (``repro.ctp.idremap`` + the flat pools in
``repro.ctp.interning``) re-keys every node bitmask by a search-local
compact index and moves the interning pool's hot maps into flat arrays.
All of it is *representation*: because the remap is injective, every mask
predicate (Merge1's shared-node test, BFT's common-mask recovery) decides
exactly what it decided over global-id masks, so the search trajectory —
and with it every row, seed tuple, weight, and order-sensitive counter —
must be identical with ``dense_ids=True`` and ``dense_ids=False``.

Three layers:

* the **matrix**: all 8 search algorithms x the golden workload graphs,
  dense vs legacy snapshots compared field by field (pool counters
  included — the flat pools must also assign the *same handle numbering*);
* **DPBF**: packed small-int DP state keys vs legacy ``(v, X)`` tuples;
* a **Hypothesis property** over graphs with sparse huge node ids (up to
  10^9, a handful of nodes): the dense path's outcome depends only on the
  graph's shape, never on the magnitude of its node ids.  This is the
  scenario the refactor exists for — a legacy ``1 << node_id`` mask at
  id 10^9 is a 125MB integer per tree.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.ctp.bft import BFTAMSearch, BFTMSearch, BFTSearch
from repro.ctp.config import SearchConfig
from repro.ctp.esp import ESPSearch
from repro.ctp.gam import GAMSearch
from repro.ctp.idremap import IDENTITY_REMAP, IdRemap, make_remap
from repro.ctp.interning import EdgeSetPool, FlatEdgeSetPool, ShardedFlatEdgeSetPool
from repro.ctp.lesp import LESPSearch
from repro.ctp.moesp import MoESPSearch
from repro.ctp.molesp import MoLESPSearch
from repro.baselines.dpbf import dpbf_optimal_tree
from repro.graph.datasets import figure1, figure1_seed_sets, figure3, figure5, figure6
from repro.testing import random_graph, random_seed_sets
from repro.workloads.synthetic import chain_graph, comb_graph, star_graph

ALGORITHMS = {
    "gam": GAMSearch,
    "esp": ESPSearch,
    "moesp": MoESPSearch,
    "lesp": LESPSearch,
    "molesp": MoLESPSearch,
    "bft": BFTSearch,
    "bft-m": BFTMSearch,
    "bft-am": BFTAMSearch,
}

#: Only timing may differ between the two runs.  Unlike the interning
#: equivalence suite we keep ``merges_attempted``: dense vs legacy use the
#: *same* engine code path, so even that counter must replay exactly.
UNSTABLE_STATS = {"elapsed_seconds"}


def _graphs():
    fig1 = figure1()
    g3, s3 = figure3()
    g5, s5 = figure5()
    g6, s6 = figure6()
    chain, chain_seeds = chain_graph(5)
    star, star_seeds = star_graph(4, 2)
    comb, comb_seeds = comb_graph(2, 1, 2)
    rng = random.Random(11)
    rnd = random_graph(rng, 10, 16, num_labels=3)
    rnd_seeds = random_seed_sets(random.Random(12), rnd, 3, max_size=2)
    return {
        "fig1": (fig1, figure1_seed_sets(fig1)),
        "fig3": (g3, s3),
        "fig5": (g5, s5),
        "fig6": (g6, s6),
        "chain5": (chain, chain_seeds),
        "star": (star, star_seeds),
        "comb": (comb, comb_seeds),
        "random": (rnd, rnd_seeds),
    }


def _snapshot(result_set):
    results = sorted(
        (
            tuple(sorted(r.edges)),
            tuple(sorted(r.nodes)),
            r.seeds,
            round(r.weight, 9),
            r.score,
        )
        for r in result_set
    )
    stats = {k: v for k, v in result_set.stats.as_dict().items() if k not in UNSTABLE_STATS}
    return {
        "results": results,
        "stats": stats,
        "complete": result_set.complete,
        "algorithm": result_set.algorithm,
    }


MAX_TREES = {"bft": 3000, "bft-m": 3000, "bft-am": 3000}


def _run(algo_name, graph, seeds, dense_ids, **overrides):
    overrides.setdefault("max_trees", MAX_TREES.get(algo_name, 20000))
    config = SearchConfig(dense_ids=dense_ids, **overrides)
    return ALGORITHMS[algo_name]().run(graph, seeds, config)


# ----------------------------------------------------------------------
# the matrix: 8 algorithms x workload graphs, dense vs legacy
# ----------------------------------------------------------------------
def _matrix_cases():
    for graph_name, (graph, seeds) in _graphs().items():
        for algo_name in ALGORITHMS:
            yield graph_name, graph, seeds, algo_name


@pytest.mark.parametrize(
    "graph_name,graph,seeds,algo_name",
    [pytest.param(*case, id=f"{case[0]}|{case[3]}") for case in _matrix_cases()],
)
def test_dense_matches_legacy(graph_name, graph, seeds, algo_name):
    dense = _snapshot(_run(algo_name, graph, seeds, dense_ids=True))
    legacy = _snapshot(_run(algo_name, graph, seeds, dense_ids=False))
    assert dense == legacy, f"{graph_name}|{algo_name}: dense ids changed the outcome"


@pytest.mark.parametrize("algo_name", sorted(ALGORITHMS))
@pytest.mark.parametrize(
    "overrides",
    [
        {"uni": True},
        {"limit": 5},
        {"max_edges": 4},
        {"balanced_queues": True},
        {"interning": False},
        {"backend": "csr"},
    ],
    ids=lambda o: next(iter(o)),
)
def test_dense_matches_legacy_under_config_variants(algo_name, overrides):
    graph = figure1()
    seeds = figure1_seed_sets(graph)
    dense = _snapshot(_run(algo_name, graph, seeds, dense_ids=True, **overrides))
    legacy = _snapshot(_run(algo_name, graph, seeds, dense_ids=False, **overrides))
    assert dense == legacy


# ----------------------------------------------------------------------
# DPBF: packed state keys vs legacy tuples
# ----------------------------------------------------------------------
@pytest.mark.parametrize("graph_name", ["fig1", "fig3", "chain5", "star", "comb", "random"])
def test_dpbf_dense_matches_legacy(graph_name):
    graph, seeds = _graphs()[graph_name]
    for uni in (False, True):
        dense = dpbf_optimal_tree(graph, seeds, uni=uni, dense_ids=True)
        legacy = dpbf_optimal_tree(graph, seeds, uni=uni, dense_ids=False)
        if dense is None or legacy is None:
            assert dense is None and legacy is None
        else:
            assert (dense.edges, dense.nodes, dense.seeds, dense.weight) == (
                legacy.edges,
                legacy.nodes,
                legacy.seeds,
                legacy.weight,
            )


# ----------------------------------------------------------------------
# sparse huge node ids: outcome independent of id magnitude (Hypothesis)
# ----------------------------------------------------------------------
class RelabeledGraph:
    """Test-only ``GraphBackend`` view exposing huge sparse node ids.

    Wraps a dense graph and an injective dense-id -> huge-id relabeling.
    Edge ids stay dense (the pool's Zobrist code table is sized by the max
    edge id, which production graphs keep dense), so the wrapper stresses
    exactly the axis the remap handles: node-id magnitude.
    """

    def __init__(self, base, mapping):
        self._base = base
        self._fwd = mapping
        self._rev = {huge: dense for dense, huge in mapping.items()}

    @property
    def num_nodes(self):
        return self._base.num_nodes

    @property
    def num_edges(self):
        return self._base.num_edges

    def node(self, node_id):
        return self._base.node(self._rev[node_id])

    def degree(self, node_id):
        return self._base.degree(self._rev[node_id])

    def adjacent(self, node_id):
        fwd = self._fwd
        return tuple((e, fwd[other], out) for e, other, out in self._base.adjacent(self._rev[node_id]))

    def adjacent_filtered(self, node_id, labels=None):
        fwd = self._fwd
        return tuple(
            (e, fwd[other], out)
            for e, other, out in self._base.adjacent_filtered(self._rev[node_id], labels)
        )

    def edge_endpoints(self, edge_id):
        source, target = self._base.edge_endpoints(edge_id)
        return self._fwd[source], self._fwd[target]

    def edge_target(self, edge_id):
        return self._fwd[self._base.edge_target(edge_id)]

    def edge_weight(self, edge_id):
        return self._base.edge_weight(edge_id)


def _relabeled(seed: int, huge: bool):
    rng = random.Random(seed)
    base = random_graph(rng, rng.randint(4, 9), rng.randint(4, 14), num_labels=2)
    seeds = random_seed_sets(random.Random(seed + 1), base, rng.randint(2, 3), max_size=2)
    bound = 10**9 if huge else 10 * base.num_nodes
    ids = random.Random(seed + 2).sample(range(bound), base.num_nodes)
    mapping = dict(zip(range(base.num_nodes), ids))
    relabeled_seeds = [tuple(mapping[n] for n in s) for s in seeds]
    return base, seeds, RelabeledGraph(base, mapping), relabeled_seeds, mapping


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6), algo_name=st.sampled_from(["gam", "molesp", "bft"]))
def test_huge_sparse_ids_match_dense_twin(seed, algo_name):
    """Relabeling nodes to ids up to 10^9 changes nothing but the labels.

    The huge-id graph runs the dense path only (a legacy mask at id 10^9
    is a ~125MB bigint per tree — the pathology the remap removes); its
    rows must be the dense twin's rows under the relabeling.
    """
    base, seeds, relabeled, relabeled_seeds, mapping = _relabeled(seed, huge=True)
    expected = _run(algo_name, base, seeds, dense_ids=True)
    got = _run(algo_name, relabeled, relabeled_seeds, dense_ids=True)
    remap_rows = sorted(
        (tuple(sorted(r.edges)), tuple(sorted(mapping[n] for n in r.nodes)),
         tuple(None if s is None else mapping[s] for s in r.seeds), round(r.weight, 9))
        for r in expected
    )
    got_rows = sorted(
        (tuple(sorted(r.edges)), tuple(sorted(r.nodes)), r.seeds, round(r.weight, 9))
        for r in got
    )
    assert got_rows == remap_rows
    assert got.complete == expected.complete


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_moderately_relabeled_dense_matches_legacy(seed):
    """Where legacy masks are still tractable, dense == legacy on the
    relabeled graph too (both paths, same rows)."""
    _, _, relabeled, relabeled_seeds, _ = _relabeled(seed, huge=False)
    dense = _snapshot(_run("molesp", relabeled, relabeled_seeds, dense_ids=True))
    legacy = _snapshot(_run("molesp", relabeled, relabeled_seeds, dense_ids=False))
    assert dense == legacy


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_dpbf_huge_sparse_ids_match_dense_twin(seed):
    base, seeds, relabeled, relabeled_seeds, mapping = _relabeled(seed, huge=True)
    expected = dpbf_optimal_tree(base, seeds)
    got = dpbf_optimal_tree(relabeled, relabeled_seeds)
    if expected is None or got is None:
        assert expected is None and got is None
        return
    assert got.edges == expected.edges
    assert got.nodes == frozenset(mapping[n] for n in expected.nodes)
    assert got.weight == expected.weight


# ----------------------------------------------------------------------
# the remap itself
# ----------------------------------------------------------------------
def test_idremap_assigns_first_touch_order_and_inverts():
    remap = IdRemap()
    assert remap.index(10**9) == 0
    assert remap.index(7) == 1
    assert remap.index(10**9) == 0  # stable on re-touch
    assert remap.bit(7) == 1 << 1
    assert remap.bit(123456789) == 1 << 2
    assert remap.node(0) == 10**9
    assert remap.node(2) == 123456789
    assert len(remap) == 3


def test_identity_remap_is_the_legacy_semantics():
    assert IDENTITY_REMAP.index(42) == 42
    assert IDENTITY_REMAP.bit(42) == 1 << 42
    assert IDENTITY_REMAP.node(42) == 42
    assert make_remap(False) is IDENTITY_REMAP
    assert isinstance(make_remap(True), IdRemap)


def test_dense_mask_width_is_bounded_by_nodes_touched():
    """The point of the refactor, stated directly: masks scale with the
    number of distinct nodes touched, not with the largest node id."""
    remap = IdRemap()
    for node in (10**9, 5 * 10**8, 999_999_937):
        remap.bit(node)
    combined = remap.bit(10**9) | remap.bit(5 * 10**8) | remap.bit(999_999_937)
    assert combined.bit_length() <= 3
    assert IDENTITY_REMAP.bit(10**9).bit_length() == 10**9 + 1


# ----------------------------------------------------------------------
# flat pools: exact parity with the dict pools, op for op
# ----------------------------------------------------------------------
@pytest.mark.parametrize("flat_cls", [FlatEdgeSetPool, ShardedFlatEdgeSetPool])
def test_flat_pool_exact_parity_with_dict_pool(flat_cls):
    """Randomized op-sequence parity: identical handles, sets, and
    counters — the property that makes dense and legacy searches (and
    their pool stats) bit-identical."""
    rng = random.Random(7)
    legacy, flat = EdgeSetPool(), flat_cls()
    handles = [(legacy.EMPTY, flat.EMPTY)]
    for step in range(8000):
        op = rng.random()
        if op < 0.5:
            l, f = handles[rng.randrange(len(handles))]
            edge = rng.randrange(300)
            a, b = legacy.union1(l, edge), flat.union1(f, edge)
        elif op < 0.8:
            (l1, f1), (l2, f2) = (handles[rng.randrange(len(handles))] for _ in range(2))
            a, b = legacy.union2(l1, l2), flat.union2(f1, f2)
        else:
            edges = [rng.randrange(300) for _ in range(rng.randrange(6))]
            a, b = legacy.intern(edges), flat.intern(edges)
        assert a == b, f"step {step}: handle divergence"
        assert legacy.edges(a) == flat.edges(b)
        handles.append((a, b))
    assert len(legacy) == len(flat)
    assert (legacy.union_hits, legacy.union_misses, legacy.collisions) == (
        flat.union_hits,
        flat.union_misses,
        flat.collisions,
    )


def test_flat_pool_grows_past_initial_capacity():
    """Push well past the tables' initial 1024 slots so growth (and the
    rehash it implies) is exercised, then verify exactness survived."""
    pool = FlatEdgeSetPool()
    handle = pool.EMPTY
    chain = [handle]
    for edge in range(3000):
        handle = pool.union1(handle, edge)
        chain.append(handle)
    assert pool.size(handle) == 3000
    # Every prefix re-derives to the same handle (memo or fingerprint hit).
    probe = pool.EMPTY
    for edge in range(3000):
        probe = pool.union1(probe, edge)
        assert probe == chain[edge + 1]
    assert len(pool) == 3001


def test_flat_pool_accepts_overlapping_unions():
    pool, dictpool = FlatEdgeSetPool(), EdgeSetPool()
    for p in (pool, dictpool):
        a = p.intern([1, 2, 3])
        b = p.intern([3, 4])
        u = p.union2(a, b)
        assert p.edges(u) == frozenset({1, 2, 3, 4})
        assert p.union1(u, 2) == u  # already-present edge is a no-op
    assert len(pool) == len(dictpool)
