"""Property and unit tests for the edge-set interning layer.

``EdgeSetPool`` (repro.ctp.interning) is the foundation the GAM-family
bookkeeping now stands on, so it gets the strongest tests in the suite:

* Hypothesis-driven model checks — every pool operation is mirrored
  against plain frozenset arithmetic on random workloads;
* hash-consing exactness — equal sets always intern to the same handle,
  distinct sets never share one, regardless of construction path
  (union1 vs union2 vs intern), including associativity/commutativity;
* fingerprint hygiene — no 64-bit Zobrist collisions on generated
  workloads (collisions are *handled*, but should be unobservable);
* isolation — pools are engine-local: runs never share handles, and a
  second run cannot perturb the first run's pool or results;
* the engine-level structures riding on the pool: the sat-bucketed merge
  index, the balanced-queue size heap, and the pool telemetry counters.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.ctp.bft import BFTAMSearch, BFTMSearch, BFTSearch
from repro.ctp.config import SearchConfig
from repro.ctp.esp import ESPSearch
from repro.ctp.gam import GAMSearch
from repro.ctp.interning import EdgeSetPool, FrozenEdgeSets, make_pool, splitmix64
from repro.ctp.lesp import LESPSearch
from repro.ctp.moesp import MoESPSearch
from repro.ctp.molesp import MoLESPSearch
from repro.ctp.tree import make_grow, make_init
from repro.graph.datasets import figure1, figure1_seed_sets
from repro.testing import random_graph, random_seed_sets
from repro.workloads.synthetic import chain_graph, star_graph

SETTINGS = settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])

GAM_FAMILY = (GAMSearch, ESPSearch, MoESPSearch, LESPSearch, MoLESPSearch)
BFT_FAMILY = (BFTSearch, BFTMSearch, BFTAMSearch)


# ----------------------------------------------------------------------
# pool basics
# ----------------------------------------------------------------------
class TestPoolBasics:
    def test_empty_handle_is_zero_and_falsy(self):
        pool = EdgeSetPool()
        assert pool.EMPTY == 0
        assert not pool.EMPTY
        assert pool.edges(pool.EMPTY) == frozenset()
        assert pool.size(pool.EMPTY) == 0
        assert pool.fingerprint(pool.EMPTY) == 0

    def test_union1_interns_and_memoizes(self):
        pool = EdgeSetPool()
        a = pool.union1(pool.EMPTY, 7)
        assert pool.edges(a) == frozenset({7})
        assert pool.size(a) == 1
        misses = pool.union_misses
        assert pool.union1(pool.EMPTY, 7) == a  # memo hit
        assert pool.union_misses == misses
        assert pool.union_hits >= 1

    def test_union1_with_present_edge_is_identity(self):
        pool = EdgeSetPool()
        a = pool.union1(pool.EMPTY, 3)
        assert pool.union1(a, 3) == a

    def test_union2_identity_and_empty(self):
        pool = EdgeSetPool()
        a = pool.intern([1, 2])
        assert pool.union2(a, a) == a
        assert pool.union2(a, pool.EMPTY) == a
        assert pool.union2(pool.EMPTY, a) == a

    def test_same_set_same_handle_across_paths(self):
        pool = EdgeSetPool()
        via_union1 = pool.union1(pool.union1(pool.EMPTY, 1), 2)
        via_intern = pool.intern([2, 1])
        via_union2 = pool.union2(pool.intern([1]), pool.intern([2]))
        assert via_union1 == via_intern == via_union2

    def test_distinct_sets_distinct_handles(self):
        pool = EdgeSetPool()
        handles = {pool.intern(s) for s in ([1], [2], [1, 2], [1, 3], [])}
        assert len(handles) == 5

    def test_overlapping_union2_fingerprint_is_exact(self):
        pool = EdgeSetPool()
        a = pool.intern([1, 2, 3])
        b = pool.intern([2, 3, 4])
        u = pool.union2(a, b)
        assert pool.edges(u) == frozenset({1, 2, 3, 4})
        # The union must be indistinguishable from a directly interned set.
        assert pool.intern([1, 2, 3, 4]) == u
        assert pool.fingerprint(u) == pool.fingerprint(pool.intern([4, 3, 2, 1]))

    def test_splitmix64_deterministic(self):
        assert splitmix64(0) == splitmix64(0)
        assert splitmix64(1) != splitmix64(2)
        values = {splitmix64(i) for i in range(10_000)}
        assert len(values) == 10_000  # no collisions in the code stream

    def test_make_pool_dispatch(self):
        assert isinstance(make_pool(True), EdgeSetPool)
        assert isinstance(make_pool(False), FrozenEdgeSets)

    def test_frozen_shim_mirrors_frozenset_arithmetic(self):
        shim = FrozenEdgeSets()
        a = shim.intern([1, 2])
        assert shim.union1(a, 3) == frozenset({1, 2, 3})
        assert shim.union2(a, frozenset({4})) == frozenset({1, 2, 4})
        assert shim.size(a) == 2
        assert shim.edges(a) is a
        assert not shim.EMPTY


# ----------------------------------------------------------------------
# Hypothesis: the pool against the frozenset model
# ----------------------------------------------------------------------
@st.composite
def pool_programs(draw):
    """A random program of union1/union2/intern operations."""
    num_ops = draw(st.integers(min_value=1, max_value=40))
    ops = []
    for _ in range(num_ops):
        kind = draw(st.sampled_from(("union1", "union2", "intern")))
        if kind == "union1":
            ops.append(("union1", draw(st.integers(0, 200))))
        elif kind == "union2":
            ops.append(("union2", draw(st.integers(0, 10_000))))
        else:
            ops.append(("intern", draw(st.lists(st.integers(0, 200), max_size=12))))
    return ops


@SETTINGS
@given(pool_programs())
def test_pool_matches_frozenset_model(program):
    """Every handle's materialized set equals the frozenset-model value."""
    pool = EdgeSetPool()
    handles = [pool.EMPTY]
    model = {pool.EMPTY: frozenset()}
    for op in program:
        if op[0] == "union1":
            base = handles[op[1] % len(handles)]
            out = pool.union1(base, op[1])
            expected = model[base] | {op[1]}
        elif op[0] == "union2":
            a = handles[op[1] % len(handles)]
            b = handles[(op[1] // 7) % len(handles)]
            out = pool.union2(a, b)
            expected = model[a] | model[b]
        else:
            out = pool.intern(op[1])
            expected = frozenset(op[1])
        assert pool.edges(out) == expected
        assert pool.size(out) == len(expected)
        previous = model.get(out)
        assert previous is None or previous == expected  # handles never alias
        model[out] = expected
        handles.append(out)
    # Hash-consing exactness: one handle per distinct set, and re-interning
    # any materialized set returns its existing handle.
    by_set = {}
    for handle, edges in model.items():
        assert by_set.setdefault(edges, handle) == handle
        assert pool.intern(edges) == handle
    # 64-bit Zobrist fingerprints should never collide on workloads this
    # size; collisions are survivable but must stay unobservable.
    assert pool.collisions == 0


@SETTINGS
@given(pool_programs(), pool_programs())
def test_pool_runs_are_isolated(left, right):
    """Interleaving two pools never lets one contaminate the other."""

    def replay(pool, program):
        handles = [pool.EMPTY]
        for op in program:
            if op[0] == "union1":
                handles.append(pool.union1(handles[op[1] % len(handles)], op[1]))
            elif op[0] == "union2":
                handles.append(
                    pool.union2(handles[op[1] % len(handles)], handles[(op[1] // 7) % len(handles)])
                )
            else:
                handles.append(pool.intern(op[1]))
        return [pool.edges(h) for h in handles]

    solo_left = replay(EdgeSetPool(), left)
    solo_right = replay(EdgeSetPool(), right)
    pool_a, pool_b = EdgeSetPool(), EdgeSetPool()
    assert replay(pool_a, left) == solo_left
    assert replay(pool_b, right) == solo_right
    # Replaying on a *used* pool still yields the same sets (ids may differ).
    assert replay(pool_a, right) == solo_right


@SETTINGS
@given(st.lists(st.frozensets(st.integers(0, 500), max_size=10), min_size=3, max_size=12))
def test_union2_associative_and_commutative(sets):
    pool = EdgeSetPool()
    handles = [pool.intern(s) for s in sets]
    for a in handles[:4]:
        for b in handles[:4]:
            assert pool.union2(a, b) == pool.union2(b, a)
            for c in handles[:4]:
                assert pool.union2(pool.union2(a, b), c) == pool.union2(a, pool.union2(b, c))


# ----------------------------------------------------------------------
# trees on the pool
# ----------------------------------------------------------------------
class TestTreeHandles:
    def test_grow_produces_interned_handles(self):
        pool = EdgeSetPool()
        base = make_init(pool, 0, 0b1, uni=False)
        assert base.eset == pool.EMPTY
        assert base.node_mask == 1
        grown = make_grow(base, 10, 1, 0, False, 1.0, outgoing=True, uni=False)
        assert grown.edges == frozenset({10})
        assert grown.node_mask == 0b11
        again = make_grow(base, 10, 1, 0, False, 1.0, outgoing=True, uni=False)
        assert again.eset == grown.eset  # hash-consed, not merely equal

    def test_rooted_key_is_int_pair(self):
        pool = EdgeSetPool()
        base = make_init(pool, 3, 1, uni=False)
        grown = make_grow(base, 5, 4, 0, False, 1.0, outgoing=True, uni=False)
        root, eset = grown.rooted_key()
        assert isinstance(root, int) and isinstance(eset, int)


# ----------------------------------------------------------------------
# engine-level: telemetry, bucket index, balanced pops, isolation
# ----------------------------------------------------------------------
class TestEngineIntegration:
    def test_pool_telemetry_reported(self):
        graph, seeds = chain_graph(6)
        stats = MoLESPSearch().run(graph, seeds, SearchConfig()).stats
        assert stats.pool_sets > 0
        assert stats.pool_union_misses > 0
        # The chain re-derives the same edge sets through many different
        # union pairs: hash-consing coalesces them into far fewer handles.
        assert stats.pool_sets < stats.pool_union_misses

    def test_fallback_reports_zero_pool_stats(self):
        graph, seeds = chain_graph(4)
        stats = MoLESPSearch().run(graph, seeds, SearchConfig(interning=False)).stats
        assert stats.pool_sets == 0
        assert stats.pool_union_hits == 0
        assert stats.pool_union_misses == 0

    def test_merge_buckets_skipped_on_star(self):
        graph, seeds = star_graph(5, 2)
        stats = MoLESPSearch().run(graph, seeds, SearchConfig()).stats
        assert stats.merge_buckets_skipped > 0

    def test_balanced_pop_scans_counted(self):
        fig1 = figure1()
        seeds = figure1_seed_sets(fig1)
        balanced = GAMSearch().run(fig1, seeds, SearchConfig(balanced_queues=True)).stats
        single = GAMSearch().run(fig1, seeds, SearchConfig(balanced_queues=False)).stats
        assert balanced.balanced_pop_scans >= balanced.grows > 0
        assert single.balanced_pop_scans == 0

    def test_repeat_runs_identical(self):
        """Each run owns a fresh pool: repeated runs cannot interfere."""
        graph, seeds = star_graph(4, 2)
        algorithm = MoLESPSearch()
        first = algorithm.run(graph, seeds, SearchConfig())
        second = algorithm.run(graph, seeds, SearchConfig())
        assert first.edge_sets() == second.edge_sets()
        assert first.stats.as_dict().keys() == second.stats.as_dict().keys()
        assert first.stats.pool_sets == second.stats.pool_sets


# ----------------------------------------------------------------------
# Hypothesis: interned engines vs the frozenset fallback, live
# ----------------------------------------------------------------------
def _outcome(result_set):
    stats = result_set.stats
    return (
        sorted((tuple(sorted(r.edges)), r.seeds, round(r.weight, 9)) for r in result_set),
        stats.grows,
        stats.merges,
        stats.trees_kept,
        stats.mo_copies,
        stats.queue_pushes,
        stats.results_found,
        result_set.complete,
    )


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(0, 10_000), st.booleans(), st.booleans())
def test_interned_engines_match_fallback_on_random_graphs(seed, uni, balanced):
    rng = random.Random(seed)
    graph = random_graph(rng, rng.randint(5, 11), rng.randint(6, 18), num_labels=2)
    seed_sets = random_seed_sets(random.Random(seed + 1), graph, rng.randint(2, 3), max_size=2)
    config = dict(uni=uni, balanced_queues=balanced, max_trees=20000)
    for algorithm_cls in GAM_FAMILY + BFT_FAMILY:
        algorithm = algorithm_cls()
        interned = algorithm.run(graph, seed_sets, SearchConfig(interning=True, **config))
        fallback = algorithm.run(graph, seed_sets, SearchConfig(interning=False, **config))
        assert _outcome(interned) == _outcome(fallback), algorithm.name
