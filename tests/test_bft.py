"""Tests for the BFT family (Sections 4.1, 4.3)."""

import random

import pytest

from repro.testing import assert_all_valid, assert_same_results, random_graph, random_seed_sets
from repro.ctp.bft import BFTAMSearch, BFTMSearch, BFTSearch
from repro.ctp.config import WILDCARD, SearchConfig
from repro.ctp.gam import GAMSearch
from repro.errors import SearchError
from repro.graph.graph import Graph
from repro.workloads.synthetic import chain_graph, line_graph, star_graph


class TestBFTCompleteness:
    def test_figure1(self, fig1, fig1_seeds):
        bft = BFTSearch().run(fig1, fig1_seeds)
        gam = GAMSearch().run(fig1, fig1_seeds)
        assert_same_results(bft, gam)
        assert len(bft) == 64

    def test_chain_exponential(self):
        graph, seeds = chain_graph(6)
        results = BFTSearch().run(graph, seeds)
        assert len(results) == 64

    def test_star(self):
        graph, seeds = star_graph(4, 2)
        results = BFTSearch().run(graph, seeds)
        assert len(results) == 1

    @pytest.mark.parametrize("seed", range(4))
    def test_random_graphs_match_gam(self, seed):
        rng = random.Random(seed + 100)
        graph = random_graph(rng, num_nodes=7, num_edges=10)
        seed_sets = random_seed_sets(rng, graph, m=2)
        assert_same_results(BFTSearch().run(graph, seed_sets), GAMSearch().run(graph, seed_sets))


class TestBFTVariantsAgree:
    """BFT-M and BFT-AM are complete too: same result sets as BFT."""

    @pytest.mark.parametrize("algo_class", [BFTMSearch, BFTAMSearch])
    def test_figure1(self, fig1, fig1_seeds, algo_class):
        variant = algo_class().run(fig1, fig1_seeds)
        baseline = BFTSearch().run(fig1, fig1_seeds)
        assert_same_results(variant, baseline)

    @pytest.mark.parametrize("algo_class", [BFTMSearch, BFTAMSearch])
    @pytest.mark.parametrize("seed", range(3))
    def test_random(self, algo_class, seed):
        rng = random.Random(seed + 37)
        graph = random_graph(rng, num_nodes=7, num_edges=9)
        seed_sets = random_seed_sets(rng, graph, m=3)
        assert_same_results(algo_class().run(graph, seed_sets), BFTSearch().run(graph, seed_sets))


class TestMinimization:
    def test_dead_branch_is_stripped(self):
        """The paper's Section 4.1 example: BFT grows a useless edge, then
        minimization removes it before reporting."""
        g = Graph()
        a = g.add_node("A")
        x = g.add_node("x")
        b = g.add_node("B")
        dead = g.add_node("dead")
        g.add_edge(a, x, "e")
        g.add_edge(x, b, "e")
        g.add_edge(x, dead, "e")
        results = BFTSearch().run(g, [[a], [b]])
        assert len(results) == 1
        (result,) = results.results
        assert dead not in result.nodes
        assert result.size == 2
        assert_all_valid(g, results, [[a], [b]])

    def test_results_valid_after_minimization(self, fig1, fig1_seeds):
        results = BFTSearch().run(fig1, fig1_seeds)
        assert_all_valid(fig1, results, fig1_seeds)


class TestBFTConfig:
    def test_wildcard_rejected(self, fig1):
        with pytest.raises(SearchError):
            BFTSearch().run(fig1, [[0], WILDCARD])

    def test_max_edges(self, fig1, fig1_seeds):
        results = BFTSearch().run(fig1, fig1_seeds, SearchConfig(max_edges=3))
        assert all(r.size <= 3 for r in results)
        assert len(results) > 0

    def test_limit(self, fig1, fig1_seeds):
        results = BFTSearch().run(fig1, fig1_seeds, SearchConfig(limit=2))
        assert len(results) == 2
        assert not results.complete

    def test_labels(self, fig1, fig1_seeds):
        allowed = frozenset({"citizenOf", "parentOf", "founded", "investsIn"})
        results = BFTSearch().run(fig1, fig1_seeds, SearchConfig(labels=allowed))
        for result in results:
            assert {fig1.edge(e).label for e in result.edges} <= allowed

    def test_uni_matches_gam_uni_on_star(self):
        # star arms point away from the center, so the single result is an
        # arborescence: BFT's UNI post-filter and GAM's pushed UNI agree
        graph, seeds = star_graph(4, 2)
        uni_bft = BFTSearch().run(graph, seeds, SearchConfig(uni=True))
        uni_gam = GAMSearch().run(graph, seeds, SearchConfig(uni=True))
        assert len(uni_bft) == 1
        assert uni_bft.edge_sets() == uni_gam.edge_sets()

    def test_uni_empty_when_no_arborescence_exists(self, fig1, fig1_seeds):
        # none of the 64 Q1 connections is unidirectional in Figure 1
        uni = BFTSearch().run(fig1, fig1_seeds, SearchConfig(uni=True))
        uni_gam = GAMSearch().run(fig1, fig1_seeds, SearchConfig(uni=True))
        assert uni.edge_sets() == uni_gam.edge_sets()

    def test_timeout_partial(self):
        graph, seeds = chain_graph(14)
        results = BFTSearch().run(graph, seeds, SearchConfig(timeout=0.005))
        assert not results.complete
        assert results.timed_out


class TestCostOrdering:
    def test_bft_builds_more_trees_than_gam(self, fig1, fig1_seeds):
        """Figure 10's root cause: the BFT family builds the same tree in
        many more ways and keeps non-minimal trees around."""
        bft = BFTSearch().run(fig1, fig1_seeds)
        gam = GAMSearch().run(fig1, fig1_seeds)
        assert bft.stats.provenances > gam.stats.provenances

    def test_star_graph_ordering(self):
        # branching topologies show the BFT blow-up even at tiny scale
        graph, seeds = star_graph(5, 3)
        bft = BFTSearch().run(graph, seeds)
        gam = GAMSearch().run(graph, seeds)
        assert_same_results(bft, gam)
        assert bft.stats.provenances > gam.stats.provenances

    def test_line_graph_same_results(self):
        # on path-shaped graphs BFT's unrooted identity builds *fewer*
        # trees than GAM's rooted one — its cost there is the repeated
        # grow attempts and minimization, not the tree count
        graph, seeds = line_graph(5, 2)
        bft = BFTSearch().run(graph, seeds)
        gam = GAMSearch().run(graph, seeds)
        assert_same_results(bft, gam)
        assert bft.stats.grows > gam.stats.grows
