"""The pluggable backend layer: CSR <-> dict equivalence and freeze semantics.

Two groups of tests:

* property-style equivalence — on randomized graphs (several seeds) the
  dict backend (:class:`Graph`) and the CSR backend (:class:`CSRGraph`)
  must agree on every read the algorithms perform: adjacency entries and
  their order, degrees, neighbor sets, label-filtered expansion, BFS /
  Dijkstra distances, traversal order, and the full MoLESP/BFT result
  trees;
* freeze edge cases — empty graphs, self-loops, parallel edges,
  unknown-label queries, memoization, and mutation-after-freeze errors.
"""

from __future__ import annotations

import random

import pytest

from repro.ctp.bft import BFTSearch
from repro.ctp.config import SearchConfig
from repro.ctp.esp import ESPSearch
from repro.ctp.molesp import MoLESPSearch
from repro.errors import GraphError
from repro.graph.backend import BACKENDS, CSRGraph, GraphBackend, backend_name, resolve_backend
from repro.graph.graph import Graph
from repro.graph.traversal import ball, bfs_distances, dijkstra_distances
from repro.testing import assert_all_valid, random_graph, random_seed_sets

SEEDS = (1, 2, 3, 5, 8, 13)


def _normalize(entries):
    return [(edge, other, bool(outgoing)) for edge, other, outgoing in entries]


# ----------------------------------------------------------------------
# protocol / selection
# ----------------------------------------------------------------------
class TestBackendSelection:
    def test_both_backends_satisfy_protocol(self):
        graph = random_graph(random.Random(0), num_nodes=6, num_edges=9)
        assert isinstance(graph, GraphBackend)
        assert isinstance(graph.freeze(), GraphBackend)

    def test_backend_names(self):
        graph = Graph()
        assert backend_name(graph) == "dict"
        assert backend_name(graph.freeze()) == "csr"
        assert backend_name(object()) == "dict"

    def test_resolve_backend(self):
        graph = random_graph(random.Random(0), num_nodes=5, num_edges=7)
        assert resolve_backend(graph, "auto") is graph
        assert resolve_backend(graph, "dict") is graph
        frozen = resolve_backend(graph, "csr")
        assert isinstance(frozen, CSRGraph)
        # already-frozen graphs pass through every mode untouched
        assert resolve_backend(frozen, "csr") is frozen
        assert resolve_backend(frozen, "auto") is frozen
        with pytest.raises(GraphError, match="unknown graph backend"):
            resolve_backend(graph, "gpu")
        assert set(BACKENDS) == {"auto", "dict", "csr"}

    def test_config_validates_backend(self):
        assert SearchConfig(backend="csr").backend == "csr"
        with pytest.raises(ValueError, match="unknown backend"):
            SearchConfig(backend="gpu")


# ----------------------------------------------------------------------
# equivalence properties (dict vs CSR)
# ----------------------------------------------------------------------
class TestBackendEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_topology_reads_identical(self, seed):
        rng = random.Random(seed)
        graph = random_graph(rng, num_nodes=12, num_edges=24, num_labels=4)
        frozen = graph.freeze()
        assert frozen.num_nodes == graph.num_nodes
        assert frozen.num_edges == graph.num_edges
        for node in graph.node_ids():
            assert _normalize(frozen.adjacent(node)) == _normalize(graph.adjacent(node))
            assert frozen.degree(node) == graph.degree(node)
            assert frozen.neighbors(node) == graph.neighbors(node)
            assert list(frozen.neighbor_ids(node)) == list(graph.neighbor_ids(node))
        for edge_id in graph.edge_ids():
            assert frozen.edge_weight(edge_id) == graph.edge_weight(edge_id)
            assert frozen.edge_label(edge_id) == graph.edge_label(edge_id)
            assert frozen.edge(edge_id) is graph.edge(edge_id)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_label_indexes_identical(self, seed):
        rng = random.Random(seed)
        graph = random_graph(rng, num_nodes=10, num_edges=20, num_labels=3)
        frozen = graph.freeze()
        for label in graph.edge_labels():
            assert frozen.edges_with_label(label) == graph.edges_with_label(label)
            labels = frozenset((label,))
            for node in graph.node_ids():
                assert _normalize(frozen.adjacent_filtered(node, labels)) == _normalize(
                    graph.adjacent_filtered(node, labels)
                )
        assert sorted(frozen.edge_labels()) == sorted(graph.edge_labels())
        assert sorted(frozen.node_labels()) == sorted(graph.node_labels())
        for label in graph.node_labels():
            assert frozen.nodes_with_label(label) == graph.nodes_with_label(label)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_traversal_identical(self, seed):
        rng = random.Random(seed)
        graph = random_graph(rng, num_nodes=14, num_edges=28)
        frozen = graph.freeze()
        for direction in ("both", "out", "in"):
            assert bfs_distances(frozen, [0], direction) == bfs_distances(graph, [0], direction)
            assert dijkstra_distances(frozen, [0], direction) == dijkstra_distances(
                graph, [0], direction
            )
        # traversal order, not just distances
        assert ball(frozen, 0, radius=3) == ball(graph, 0, radius=3)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_molesp_results_identical(self, seed):
        rng = random.Random(seed)
        graph = random_graph(rng, num_nodes=8, num_edges=12)
        seed_sets = random_seed_sets(rng, graph, m=3)
        algorithm = MoLESPSearch()
        via_dict = algorithm.run(graph, seed_sets, SearchConfig(backend="dict"))
        via_csr = algorithm.run(graph, seed_sets, SearchConfig(backend="csr"))
        via_frozen = algorithm.run(graph.freeze(), seed_sets)
        assert via_dict.edge_sets() == via_csr.edge_sets() == via_frozen.edge_sets()
        assert_all_valid(graph, via_csr, seed_sets)

    @pytest.mark.parametrize("seed", SEEDS[:3])
    def test_esp_and_bft_results_identical(self, seed):
        rng = random.Random(seed)
        graph = random_graph(rng, num_nodes=7, num_edges=10)
        seed_sets = random_seed_sets(rng, graph, m=2)
        for algorithm in (ESPSearch(), BFTSearch()):
            via_dict = algorithm.run(graph, seed_sets, SearchConfig(backend="dict"))
            via_csr = algorithm.run(graph, seed_sets, SearchConfig(backend="csr"))
            assert via_dict.edge_sets() == via_csr.edge_sets()

    @pytest.mark.parametrize("seed", SEEDS[:3])
    def test_label_filtered_search_identical(self, seed):
        rng = random.Random(seed)
        graph = random_graph(rng, num_nodes=9, num_edges=18, num_labels=2)
        seed_sets = random_seed_sets(rng, graph, m=2)
        algorithm = MoLESPSearch()
        labels = frozenset(("l0", "l1"))
        via_dict = algorithm.run(graph, seed_sets, SearchConfig(labels=labels, backend="dict"))
        via_csr = algorithm.run(graph, seed_sets, SearchConfig(labels=labels, backend="csr"))
        assert via_dict.edge_sets() == via_csr.edge_sets()


# ----------------------------------------------------------------------
# freeze edge cases
# ----------------------------------------------------------------------
class TestFreeze:
    def test_empty_graph(self):
        frozen = Graph("empty").freeze()
        assert frozen.num_nodes == 0
        assert frozen.num_edges == 0
        assert list(frozen.nodes()) == []
        assert frozen.edges_with_label("nope") == []
        with pytest.raises(GraphError):
            frozen.node(0)

    def test_self_loop_appears_once(self):
        graph = Graph()
        a = graph.add_node("A")
        loop = graph.add_edge(a, a, "self")
        frozen = graph.freeze()
        assert _normalize(frozen.adjacent(a)) == [(loop, a, True)]
        assert frozen.degree(a) == 1
        assert frozen.neighbors(a) == [a]

    def test_parallel_edges_kept(self):
        graph = Graph()
        a, b = graph.add_node("A"), graph.add_node("B")
        e1 = graph.add_edge(a, b, "x")
        e2 = graph.add_edge(a, b, "x")
        frozen = graph.freeze()
        assert _normalize(frozen.adjacent(a)) == [(e1, b, True), (e2, b, True)]
        assert frozen.degree(a) == 2
        assert frozen.neighbors(a) == [b]  # distinct neighbors deduplicate
        assert frozen.edges_with_label("x") == [e1, e2]

    def test_unknown_label_queries(self):
        graph = Graph()
        a, b = graph.add_node("A"), graph.add_node("B")
        graph.add_edge(a, b, "x")
        frozen = graph.freeze()
        assert frozen.nodes_with_label("nope") == []
        assert frozen.nodes_with_type("nope") == []
        assert frozen.edges_with_label("nope") == []
        assert frozen.adjacent_filtered(a, frozenset(("nope",))) == ()
        with pytest.raises(GraphError, match="expected exactly one node"):
            frozen.find_node_by_label("nope")

    def test_mutation_after_freeze_raises(self):
        graph = Graph()
        graph.add_node("A")
        frozen = graph.freeze()
        with pytest.raises(GraphError, match="frozen CSRGraph"):
            frozen.add_node("B")
        with pytest.raises(GraphError, match="frozen CSRGraph"):
            frozen.add_edge(0, 0)

    def test_freeze_is_memoized_and_invalidated(self):
        graph = Graph()
        a = graph.add_node("A")
        frozen = graph.freeze()
        assert graph.freeze() is frozen  # same snapshot while unchanged
        assert frozen.freeze() is frozen  # idempotent on the frozen view
        b = graph.add_node("B")
        graph.add_edge(a, b, "x")
        refrozen = graph.freeze()
        assert refrozen is not frozen  # mutation invalidates the memo
        assert refrozen.num_nodes == 2
        assert frozen.num_nodes == 1  # the old snapshot is unchanged

    def test_frozen_graph_snapshot_is_stable(self):
        graph = Graph()
        a, b = graph.add_node("A"), graph.add_node("B")
        graph.add_edge(a, b, "x")
        frozen = graph.freeze()
        graph.add_edge(b, a, "y")  # mutate the source afterwards
        assert frozen.num_edges == 1
        assert _normalize(frozen.adjacent(b)) == [(0, a, False)]

    def test_adjacent_filtered_accepts_any_iterable(self):
        graph = Graph()
        a, b = graph.add_node("A"), graph.add_node("B")
        e = graph.add_edge(a, b, "x")
        frozen = graph.freeze()
        # dict backend takes any iterable of labels; CSR must too
        assert _normalize(frozen.adjacent_filtered(a, ["x"])) == [(e, b, True)]
        assert _normalize(frozen.adjacent_filtered(a, {"x"})) == _normalize(
            graph.adjacent_filtered(a, ["x"])
        )

    def test_refreeze_picks_up_weight_mutation(self):
        graph = Graph()
        a, b = graph.add_node("A"), graph.add_node("B")
        e = graph.add_edge(a, b, "x", weight=1.0)
        frozen = graph.freeze()
        # In-place Edge mutation is impossible (frozen objects are shared
        # with pinned views); the supported path bumps the generation, so
        # the freeze memo sees it without force=True.
        with pytest.raises(GraphError):
            graph.edge(e).weight = 9.0
        graph.set_edge_weight(e, 9.0)
        assert frozen.edge_weight(e) == 1.0  # pinned view keeps its weight
        refrozen = graph.freeze()
        assert refrozen is not frozen
        assert refrozen.edge_weight(e) == 9.0
        assert refrozen.freeze(force=True) is refrozen  # idempotent on frozen views

    def test_describe_helpers_match(self):
        graph = Graph()
        a, b = graph.add_node("A"), graph.add_node("B")
        e = graph.add_edge(a, b, "x")
        frozen = graph.freeze()
        assert frozen.describe_edge(e) == graph.describe_edge(e)
        assert frozen.describe_tree([e]) == graph.describe_tree([e])
        assert frozen.describe_tree([]) == "(single node)"
        assert "CSRGraph" in repr(frozen)
