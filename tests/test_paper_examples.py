"""The worked examples of Sections 4.4-4.7, as executable tests.

These tests pin down the exact pruning phenomena the paper uses to motivate
each algorithm.  Guaranteed outcomes (the formal Properties) are asserted
unconditionally; incompleteness phenomena are order-dependent, so we assert
them under this implementation's deterministic smallest-first/FIFO order —
the same order the paper's experiments use (Section 5.4) — and at minimum
that the incomplete algorithm finds no *more* than the complete one.
"""

import pytest

from repro.ctp.bft import BFTSearch
from repro.ctp.esp import ESPSearch
from repro.ctp.gam import GAMSearch
from repro.ctp.lesp import LESPSearch
from repro.ctp.moesp import MoESPSearch
from repro.ctp.molesp import MoLESPSearch
from repro.graph.datasets import (
    figure1_edge,
    figure3,
    figure4,
    figure4_result_edges,
    figure5,
    figure6,
    figure7,
)
from repro.workloads.synthetic import chain_graph, comb_graph, line_graph


class TestSection2Figure1:
    """The running example: t_alpha and t_beta (Section 2)."""

    def test_t_alpha_and_t_beta_are_results(self, fig1, fig1_seeds):
        results = MoLESPSearch().run(fig1, fig1_seeds)
        edge_sets = results.edge_sets()
        t_alpha = frozenset(figure1_edge(k) for k in (10, 9, 11))
        t_beta = frozenset(figure1_edge(k) for k in (1, 2, 17, 16))
        assert t_alpha in edge_sets
        assert t_beta in edge_sets

    def test_t_beta_requires_bidirectional_search(self, fig1, fig1_seeds):
        """Under UNI, t_beta disappears (the paper's R3 motivation)."""
        from repro.ctp.config import SearchConfig

        results = MoLESPSearch().run(fig1, fig1_seeds, SearchConfig(uni=True))
        t_beta = frozenset(figure1_edge(k) for k in (1, 2, 17, 16))
        assert t_beta not in results.edge_sets()


class TestFigure2Chain:
    def test_exponential_result_count(self):
        for n in (2, 4, 7):
            graph, seeds = chain_graph(n)
            results = MoLESPSearch().run(graph, seeds)
            assert len(results) == 2**n


class TestFigure3ESP:
    """Section 4.4: ESP may lose the only result; MoESP recovers it."""

    def test_gam_finds_the_result(self):
        graph, seeds = figure3()
        assert len(GAMSearch().run(graph, seeds)) == 1

    def test_esp_misses_under_smallest_first_order(self):
        graph, seeds = figure3()
        results = ESPSearch().run(graph, seeds)
        assert results.complete  # the search exhausted its space...
        assert len(results) == 0  # ...but pruning lost the single result

    def test_moesp_guaranteed(self):
        """The result is 2ps — Property 4 guarantees MoESP finds it."""
        graph, seeds = figure3()
        assert len(MoESPSearch().run(graph, seeds)) == 1

    def test_molesp_guaranteed(self):
        graph, seeds = figure3()
        assert len(MoLESPSearch().run(graph, seeds)) == 1


class TestFigure4MoESP:
    """Section 4.5: the 6-seed 2ps result of Figure 4 (Property 4)."""

    def test_moesp_finds_2ps_result(self):
        graph, seeds = figure4()
        target = figure4_result_edges(graph)
        assert target in MoESPSearch().run(graph, seeds).edge_sets()

    def test_molesp_finds_2ps_result(self):
        graph, seeds = figure4()
        target = figure4_result_edges(graph)
        assert target in MoLESPSearch().run(graph, seeds).edge_sets()

    def test_gam_complete_reference(self):
        graph, seeds = figure4()
        gam = GAMSearch().run(graph, seeds).edge_sets()
        moesp = MoESPSearch().run(graph, seeds).edge_sets()
        assert moesp <= gam


class TestFigure5LESP:
    """Section 4.6: the 3-simple star result; LESP's guarantee (Lemma 4.2)."""

    def test_only_result_is_the_star(self):
        graph, seeds = figure5()
        gam = GAMSearch().run(graph, seeds)
        assert len(gam) == 1
        assert gam.results[0].size == 6

    def test_lesp_guaranteed(self):
        """The result is a (3, x)-rooted merge — Lemma 4.2 / Property 6."""
        graph, seeds = figure5()
        assert len(LESPSearch().run(graph, seeds)) == 1

    def test_molesp_guaranteed(self):
        graph, seeds = figure5()
        assert len(MoLESPSearch().run(graph, seeds)) == 1


class TestFigure6FourSeeds:
    """Section 4.6 end: with 4 seed sets, results that are not rooted
    merges escape every pruning guarantee (Properties 7-9 do not apply).
    The incomplete variants may or may not find them — never more than GAM."""

    def test_gam_finds_the_result(self):
        graph, seeds = figure6()
        gam = GAMSearch().run(graph, seeds)
        assert len(gam) == 1
        assert gam.results[0].size == 8  # the whole graph

    def test_pruned_variants_bounded_by_gam(self):
        graph, seeds = figure6()
        gam = GAMSearch().run(graph, seeds).edge_sets()
        for algo in (ESPSearch(), MoESPSearch(), LESPSearch(), MoLESPSearch()):
            found = algo.run(graph, seeds).edge_sets()
            assert found <= gam

    def test_esp_and_moesp_miss_under_our_order(self):
        graph, seeds = figure6()
        assert len(ESPSearch().run(graph, seeds)) == 0
        assert len(MoESPSearch().run(graph, seeds)) == 0


class TestFigure7Property9:
    """A result whose decomposition consists of rooted merges sharing seeds
    is guaranteed for MoLESP (Property 9), for any m."""

    def test_molesp_guaranteed(self):
        graph, seeds = figure7()
        results = MoLESPSearch().run(graph, seeds)
        assert len(results) == 1
        assert results.results[0].size == 14

    def test_matches_complete_reference(self):
        graph, seeds = figure7()
        gam = GAMSearch().run(graph, seeds)
        molesp = MoLESPSearch().run(graph, seeds)
        assert molesp.edge_sets() == gam.edge_sets()


class TestSection541Shapes:
    """Sanity-check the experimental claims of Section 5.4 at tiny scale."""

    def test_esp_lesp_lose_results_on_line(self):
        graph, seeds = line_graph(3, 2)
        assert len(ESPSearch().run(graph, seeds)) == 0
        assert len(LESPSearch().run(graph, seeds)) == 0
        assert len(MoESPSearch().run(graph, seeds)) == 1
        assert len(MoLESPSearch().run(graph, seeds)) == 1

    def test_esp_lesp_lose_results_on_comb(self):
        graph, seeds = comb_graph(2, 2, 2)
        assert len(ESPSearch().run(graph, seeds)) == 0
        assert len(MoLESPSearch().run(graph, seeds)) == len(GAMSearch().run(graph, seeds))

    def test_moesp_and_molesp_same_provenances_on_line(self):
        """Paper: 'MoESP and MoLESP build the same number of provenances on
        Line and Comb graphs.'"""
        graph, seeds = line_graph(5, 3)
        moesp = MoESPSearch().run(graph, seeds)
        molesp = MoLESPSearch().run(graph, seeds)
        assert moesp.stats.provenances == molesp.stats.provenances

    def test_molesp_prunes_vs_gam_on_comb(self):
        graph, seeds = comb_graph(4, 2, 3)
        gam = GAMSearch().run(graph, seeds)
        molesp = MoLESPSearch().run(graph, seeds)
        assert molesp.edge_sets() == gam.edge_sets()
        assert molesp.stats.provenances < gam.stats.provenances

    def test_bft_slower_in_provenances_than_gam_on_comb(self):
        graph, seeds = comb_graph(3, 2, 4)
        bft = BFTSearch().run(graph, seeds)
        gam = GAMSearch().run(graph, seeds)
        assert bft.edge_sets() == gam.edge_sets()
        assert bft.stats.provenances > gam.stats.provenances
