"""Core engine behaviour: seed normalization, growth rules, invariants."""

import random

import pytest

from repro.testing import assert_all_valid, random_graph, random_seed_sets
from repro.ctp.config import WILDCARD, SearchConfig
from repro.ctp.engine import normalize_seed_sets
from repro.ctp.molesp import MoLESPSearch
from repro.ctp.gam import GAMSearch
from repro.errors import GraphError, SearchError
from repro.graph.graph import Graph


class TestNormalizeSeedSets:
    def test_dedups_within_set(self, fig1):
        normalized, wildcard = normalize_seed_sets(fig1, [[0, 0, 1], [2]])
        assert normalized == [(0, 1), (2,)]
        assert wildcard == []

    def test_wildcard_positions(self, fig1):
        normalized, wildcard = normalize_seed_sets(fig1, [[0], WILDCARD, [1]])
        assert normalized[1] is None
        assert wildcard == [1]

    def test_unknown_node_rejected(self, fig1):
        with pytest.raises(GraphError):
            normalize_seed_sets(fig1, [[999], [0]])

    def test_empty_input_rejected(self, fig1):
        with pytest.raises(SearchError):
            normalize_seed_sets(fig1, [])

    def test_all_wildcard_rejected(self, fig1):
        with pytest.raises(SearchError):
            normalize_seed_sets(fig1, [WILDCARD, WILDCARD])


class TestBasicSearch:
    def test_single_node_result(self):
        """s1 = s2 = s3: the single node is the whole result (Property 8 case i)."""
        g = Graph()
        a = g.add_node("a")
        g.add_node("b")
        g.add_edge(0, 1)
        results = MoLESPSearch().run(g, [[a], [a]])
        assert len(results) == 1
        (result,) = results.results
        assert result.edges == frozenset()
        assert result.seeds == (a, a)

    def test_one_edge_result(self, tiny_path_graph):
        graph, seeds = tiny_path_graph
        results = MoLESPSearch().run(graph, seeds)
        assert len(results) == 1
        assert results.results[0].size == 2

    def test_node_in_two_seed_sets(self):
        g = Graph()
        a = g.add_node("a")
        b = g.add_node("b")
        g.add_edge(a, b)
        # a belongs to both sets, so the single node {a} is a result.  The
        # edge a-b is NOT one: it would contain two nodes of the second set
        # (a and b), violating minimality condition (ii) of Definition 2.8.
        results = MoLESPSearch().run(g, [[a], [a, b]])
        assert results.edge_sets() == frozenset({frozenset()})

    def test_disconnected_seeds_no_result(self):
        g = Graph()
        a = g.add_node("a")
        b = g.add_node("b")
        results = MoLESPSearch().run(g, [[a], [b]])
        assert len(results) == 0
        assert results.complete

    def test_empty_seed_set_no_result(self, tiny_path_graph):
        graph, (s1, _) = tiny_path_graph
        results = MoLESPSearch().run(graph, [s1, []])
        assert len(results) == 0
        assert results.complete

    def test_self_loops_never_used(self):
        g = Graph()
        a = g.add_node("a")
        b = g.add_node("b")
        g.add_edge(a, a, "loop")
        g.add_edge(a, b, "x")
        results = MoLESPSearch().run(g, [[a], [b]])
        assert results.edge_sets() == frozenset({frozenset({1})})

    def test_parallel_edges_distinct_results(self):
        g = Graph()
        a = g.add_node("a")
        b = g.add_node("b")
        g.add_edge(a, b, "x")
        g.add_edge(b, a, "y")
        results = MoLESPSearch().run(g, [[a], [b]])
        assert len(results) == 2


class TestMinimality:
    """Every reported tree satisfies Definition 2.8 (checked structurally)."""

    @pytest.mark.parametrize("seed", range(6))
    def test_random_graphs_all_results_valid(self, seed):
        rng = random.Random(seed)
        graph = random_graph(rng, num_nodes=8, num_edges=12)
        seed_sets = random_seed_sets(rng, graph, m=3)
        for algo in (GAMSearch(), MoLESPSearch()):
            results = algo.run(graph, seed_sets)
            assert_all_valid(graph, results, seed_sets)

    def test_one_node_per_seed_set(self, fig1, fig1_seeds):
        results = MoLESPSearch().run(fig1, fig1_seeds)
        for result in results:
            for index, seed_set in enumerate(fig1_seeds):
                assert len(result.nodes & set(seed_set)) == 1
                assert result.seeds[index] in seed_set


class TestStats:
    def test_counters_consistent(self, fig1, fig1_seeds):
        results = MoLESPSearch().run(fig1, fig1_seeds)
        stats = results.stats
        assert stats.init_trees == 5
        assert stats.results_found == len(results)
        assert stats.provenances == stats.trees_kept + stats.mo_copies
        assert stats.merges <= stats.merges_attempted
        assert stats.elapsed_seconds > 0

    def test_molesp_builds_fewer_provenances_than_gam(self, fig1, fig1_seeds):
        gam = GAMSearch().run(fig1, fig1_seeds)
        molesp = MoLESPSearch().run(fig1, fig1_seeds)
        assert molesp.stats.provenances < gam.stats.provenances

    def test_max_trees_valve(self, fig1, fig1_seeds):
        results = MoLESPSearch().run(fig1, fig1_seeds, SearchConfig(max_trees=10))
        assert not results.complete
        assert results.stats.trees_kept <= 11


class TestDuplicateHandling:
    def test_gam_results_deduplicated_by_edge_set(self, fig1, fig1_seeds):
        results = GAMSearch().run(fig1, fig1_seeds)
        edge_sets = [r.edges for r in results]
        assert len(edge_sets) == len(set(edge_sets))

    def test_config_kwargs_and_object_conflict(self, fig1, fig1_seeds):
        from repro.ctp.registry import evaluate_ctp

        with pytest.raises(SearchError):
            evaluate_ctp(fig1, fig1_seeds, config=SearchConfig(), max_edges=3)
