"""Shared fixtures for the test suite.

The randomized-graph helpers live in :mod:`repro.testing`; test modules
import them explicitly (``from repro.testing import ...``) rather than via
the bare ``conftest`` module name, which ``benchmarks/conftest.py`` shadows
when pytest runs from the repository root.  They are re-exported here only
for backward compatibility.
"""

from __future__ import annotations

from typing import Tuple

import pytest

from repro.graph.datasets import figure1, figure1_seed_sets
from repro.graph.graph import Graph
from repro.testing import (  # noqa: F401  (re-exported for back-compat)
    assert_all_valid,
    assert_same_results,
    random_graph,
    random_seed_sets,
)


@pytest.fixture
def fig1() -> Graph:
    return figure1()


@pytest.fixture
def fig1_seeds(fig1) -> Tuple[Tuple[int, ...], ...]:
    return figure1_seed_sets(fig1)


@pytest.fixture
def tiny_path_graph() -> Tuple[Graph, Tuple[Tuple[int, ...], ...]]:
    """A - x - B with singleton seed sets {A}, {B}."""
    graph = Graph("tiny-path")
    a = graph.add_node("A")
    x = graph.add_node("x")
    b = graph.add_node("B")
    graph.add_edge(a, x, "e")
    graph.add_edge(x, b, "e")
    return graph, ((a,), (b,))


