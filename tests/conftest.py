"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

import pytest

from repro.ctp.results import CTPResultSet, validate_result
from repro.graph.datasets import figure1, figure1_seed_sets
from repro.graph.graph import Graph


@pytest.fixture
def fig1() -> Graph:
    return figure1()


@pytest.fixture
def fig1_seeds(fig1) -> Tuple[Tuple[int, ...], ...]:
    return figure1_seed_sets(fig1)


@pytest.fixture
def tiny_path_graph() -> Tuple[Graph, Tuple[Tuple[int, ...], ...]]:
    """A - x - B with singleton seed sets {A}, {B}."""
    graph = Graph("tiny-path")
    a = graph.add_node("A")
    x = graph.add_node("x")
    b = graph.add_node("B")
    graph.add_edge(a, x, "e")
    graph.add_edge(x, b, "e")
    return graph, ((a,), (b,))


def random_graph(
    rng: random.Random,
    num_nodes: int,
    num_edges: int,
    num_labels: int = 3,
) -> Graph:
    """A random connected multigraph for cross-checking algorithms."""
    graph = Graph("random")
    for index in range(num_nodes):
        graph.add_node(f"n{index}")
    for node in range(1, num_nodes):
        partner = rng.randrange(node)
        label = f"l{rng.randrange(num_labels)}"
        if rng.random() < 0.5:
            graph.add_edge(node, partner, label)
        else:
            graph.add_edge(partner, node, label)
    for _ in range(max(0, num_edges - (num_nodes - 1))):
        a = rng.randrange(num_nodes)
        b = rng.randrange(num_nodes)
        if a == b:
            continue
        label = f"l{rng.randrange(num_labels)}"
        graph.add_edge(a, b, label)
    return graph


def random_seed_sets(
    rng: random.Random,
    graph: Graph,
    m: int,
    max_size: int = 2,
) -> Tuple[Tuple[int, ...], ...]:
    """m pairwise-disjoint random seed sets."""
    nodes = list(graph.node_ids())
    rng.shuffle(nodes)
    seed_sets: List[Tuple[int, ...]] = []
    cursor = 0
    for _ in range(m):
        size = rng.randint(1, max_size)
        seed_sets.append(tuple(nodes[cursor : cursor + size]))
        cursor += size
    return tuple(seed_sets)


def assert_all_valid(graph: Graph, results: CTPResultSet, seed_sets: Sequence, wildcard=()):
    """Every result satisfies Definition 2.8 (tree, one seed/set, minimal)."""
    for result in results:
        problems = validate_result(graph, result, seed_sets, wildcard)
        assert not problems, f"invalid result {sorted(result.edges)}: {problems}"


def assert_same_results(left: CTPResultSet, right: CTPResultSet):
    """Two complete algorithms must return the same set of edge sets."""
    assert left.edge_sets() == right.edge_sets()
