"""Unit tests for the relational Table."""

import pytest

from repro.errors import StorageError
from repro.storage.table import Table


@pytest.fixture
def people() -> Table:
    return Table(("name", "city"), [("alice", "paris"), ("bob", "lyon"), ("carol", "paris")])


class TestConstruction:
    def test_basic(self, people):
        assert len(people) == 3
        assert people.columns == ("name", "city")

    def test_duplicate_columns_rejected(self):
        with pytest.raises(StorageError):
            Table(("a", "a"), [])

    def test_arity_mismatch_rejected(self):
        with pytest.raises(StorageError):
            Table(("a", "b"), [(1,)])

    def test_empty(self):
        table = Table.empty(("a",))
        assert len(table) == 0

    def test_from_dicts(self):
        table = Table.from_dicts(("a", "b"), [{"a": 1, "b": 2}, {"b": 4, "a": 3}])
        assert table.rows == [(1, 2), (3, 4)]

    def test_iteration_and_repr(self, people):
        assert list(people)[0] == ("alice", "paris")
        assert "3 rows" in repr(people)


class TestColumnAccess:
    def test_column(self, people):
        assert people.column("city") == ["paris", "lyon", "paris"]

    def test_unknown_column(self, people):
        with pytest.raises(StorageError):
            people.column("ghost")

    def test_distinct_values_order(self, people):
        assert people.distinct_values("city") == ["paris", "lyon"]

    def test_to_dicts(self, people):
        assert people.to_dicts()[1] == {"name": "bob", "city": "lyon"}


class TestOperators:
    def test_project(self, people):
        projected = people.project(["city"])
        assert projected.columns == ("city",)
        assert len(projected) == 3

    def test_project_distinct(self, people):
        projected = people.project(["city"], distinct=True)
        assert projected.rows == [("paris",), ("lyon",)]

    def test_select(self, people):
        selected = people.select(lambda row: row["city"] == "paris")
        assert len(selected) == 2

    def test_select_eq(self, people):
        assert len(people.select_eq("name", "bob")) == 1

    def test_select_in(self, people):
        assert len(people.select_in("name", ["alice", "carol"])) == 2

    def test_rename(self, people):
        renamed = people.rename({"name": "person"})
        assert renamed.columns == ("person", "city")
        assert renamed.rows == people.rows

    def test_distinct(self):
        table = Table(("a",), [(1,), (1,), (2,)])
        assert table.distinct().rows == [(1,), (2,)]

    def test_union(self, people):
        doubled = people.union(people)
        assert len(doubled) == 6

    def test_union_schema_mismatch(self, people):
        with pytest.raises(StorageError):
            people.union(Table(("x",), []))

    def test_cross(self):
        left = Table(("a",), [(1,), (2,)])
        right = Table(("b",), [(10,), (20,)])
        product = left.cross(right)
        assert len(product) == 4
        assert product.columns == ("a", "b")

    def test_cross_shared_columns_rejected(self, people):
        with pytest.raises(StorageError):
            people.cross(people)

    def test_sort(self, people):
        ordered = people.sort(["city", "name"])
        assert [r[0] for r in ordered.rows] == ["bob", "alice", "carol"]
