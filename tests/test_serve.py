"""Persistent worker pool + query server: warmth, health, admission, deadlines.

The PR-6 suite.  The amortization tentpole has three claims to hold:

1. **Determinism** — rows produced through a *reused* warm pool are
   bit-identical to serial dispatch for every algorithm (a warm worker's
   long-lived context must never leak one request's state into another's
   rows);
2. **Resilience** — a crashed worker costs one respawn, not silent
   thread-fallback forever, and a closed/mismatched pool degrades to the
   historical dispatch chain instead of failing the query;
3. **Serving discipline** — admission control rejects (never queues
   unboundedly), expired deadlines are refused up front, live deadlines
   cap per-CTP budgets, and every refusal is a typed response.

Plus the satellite regressions: mutation generations invalidating memo
entries and snapshots, and eager auto-snapshot temp-file reaping.
"""

from __future__ import annotations

import os
import signal

import pytest

from repro.ctp import ALGORITHMS
from repro.ctp.config import SearchConfig
from repro.ctp.interning import SearchContext
from repro.errors import ConfigError, PoolError, ValidationError
from repro.graph.graph import Graph
from repro.graph.snapshot import (
    _AUTO_SNAPSHOTS,
    _reap_stale_snapshots,
    ensure_snapshot,
    release_auto_snapshot,
)
from repro.query.evaluator import evaluate_query
from repro.query.parallel import evaluate_queries
from repro.query.pool import WorkerPool
from repro.serve import (
    STATUS_ERROR,
    STATUS_EXPIRED,
    STATUS_OK,
    STATUS_REJECTED,
    QueryRequest,
    QueryServer,
)

MATRIX_QUERY = """
SELECT ?x ?w1 ?w2 ?w3 WHERE {
  ?x founded "OrgB" .
  CONNECT(?x, "France") AS ?w1 MAX 3
  CONNECT(?x, "National Liberal Party") AS ?w2 MAX 2
  CONNECT(?x, "France") AS ?w3 MAX 3
}
"""

PROCESS_CONFIG = SearchConfig(parallelism=2, parallelism_mode="process")


def _pool_eval(graph, pool, algorithm="molesp", query=MATRIX_QUERY, config=PROCESS_CONFIG):
    return evaluate_query(graph, query, algorithm=algorithm, base_config=config, pool=pool)


# ----------------------------------------------------------------------
# 1. warm-pool determinism: rows identical cold vs reused pool, all algos
# ----------------------------------------------------------------------
@pytest.mark.parametrize("algo", sorted(ALGORITHMS))
def test_warm_pool_rows_identical_to_serial(fig1, algo):
    serial = evaluate_query(fig1, MATRIX_QUERY, algorithm=algo)
    with WorkerPool(fig1, workers=2) as pool:
        cold = _pool_eval(fig1, pool, algorithm=algo)
        warm = _pool_eval(fig1, pool, algorithm=algo)
        assert pool.warm
    assert cold.columns == serial.columns and cold.rows == serial.rows
    assert warm.columns == serial.columns and warm.rows == serial.rows


def test_pool_persists_across_queries(fig1):
    """One executor epoch serves many queries — the amortization claim."""
    with WorkerPool(fig1, workers=1) as pool:
        assert not pool.warm  # lazy: nothing spawned yet
        first = _pool_eval(fig1, pool)
        assert pool.warm
        dispatches_after_first = pool.dispatches
        second = _pool_eval(fig1, pool)
        assert pool.respawns == 0 and pool.resnapshots == 0
        # The second query reused the SAME executor (more dispatches, no
        # rebuild) — not a fresh one per call.
        assert pool.dispatches > dispatches_after_first
    assert first.rows == second.rows
    assert [r.dispatch_mode for r in first.ctp_reports] == ["process", "process", "memo"]


def test_pool_ping_reports_loaded_worker(fig1):
    with WorkerPool(fig1, workers=1) as pool:
        probe = pool.ping()
        assert probe["graph_loaded"]
        assert probe["pid"] != os.getpid()
        assert pool.healthy()
        assert pool.warm  # a served probe proves spawned workers
    assert not pool.healthy()  # closed pools are never healthy


# ----------------------------------------------------------------------
# 2. resilience: respawn after a crash, degrade when the pool is unusable
# ----------------------------------------------------------------------
def test_pool_respawns_after_worker_crash(fig1):
    serial = evaluate_query(fig1, MATRIX_QUERY)
    with WorkerPool(fig1, workers=1) as pool:
        _pool_eval(fig1, pool)
        # Kill every live worker: the next fan-out hits BrokenProcessPool
        # and must rebuild the executor, not fall back to threads forever.
        for pid in list(pool._executor._processes):
            os.kill(pid, signal.SIGKILL)
        result = _pool_eval(fig1, pool)
        assert pool.respawns == 1
        assert result.rows == serial.rows
        assert [r.dispatch_mode for r in result.ctp_reports] == ["process", "process", "memo"]
        # ...and the respawned executor keeps serving.
        again = _pool_eval(fig1, pool)
        assert again.rows == serial.rows
        assert pool.respawns == 1


def test_explicit_respawn_counts_and_recovers(fig1):
    with WorkerPool(fig1, workers=1) as pool:
        _pool_eval(fig1, pool)
        pool.respawn()
        assert pool.respawns == 1
        assert not pool.warm  # a respawned-but-idle executor is cold again
        assert pool.healthy()


def test_closed_pool_rejects_and_evaluator_degrades(fig1):
    pool = WorkerPool(fig1, workers=1)
    pool.close()
    with pytest.raises(PoolError):
        pool.submit("molesp", [[0]], SearchConfig())
    with pytest.raises(PoolError):
        pool.respawn()
    pool.close()  # idempotent
    # An injected-but-closed pool must not fail the query: the dispatch
    # gate ignores it and the per-call chain runs.
    serial = evaluate_query(fig1, MATRIX_QUERY)
    result = _pool_eval(fig1, pool)
    assert result.rows == serial.rows


def test_pool_ignored_for_other_graphs(fig1):
    other = Graph()
    a, b = other.add_node("A"), other.add_node("B")
    other.add_edge(a, b, "e")
    with WorkerPool(other, workers=1) as pool:
        serial = evaluate_query(fig1, MATRIX_QUERY)
        result = _pool_eval(fig1, pool)  # bound to `other`, not fig1
        assert result.rows == serial.rows
        assert pool.dispatches == 0  # never trusted with a foreign graph


def test_pool_validates_workers(fig1):
    with pytest.raises(PoolError):
        WorkerPool(fig1, workers=0)


# ----------------------------------------------------------------------
# snapshot generations: deltas ship to warm workers, compaction re-snapshots
# ----------------------------------------------------------------------
def test_pool_ships_delta_after_mutation(fig1):
    # Default MVCC behavior: a small mutation rides the delta overlay to
    # the existing workers — no resnapshot, no respawn, same base path.
    with WorkerPool(fig1, workers=1) as pool:
        _pool_eval(fig1, pool)
        first_path = pool.snapshot_path
        node = fig1.add_node("Zed")
        fig1.add_edge(node, 0, "rel")
        serial = evaluate_query(fig1, MATRIX_QUERY)
        result = _pool_eval(fig1, pool)
        assert pool.resnapshots == 0
        assert pool.resnapshots_avoided >= 1
        assert pool.snapshot_path == first_path
        assert os.path.exists(first_path)
        assert result.rows == serial.rows


def test_pool_resnapshots_after_mutation_legacy_threshold(fig1):
    # compaction_threshold=0 restores the legacy contract: any mutation
    # compacts at the next dispatch boundary, which re-snapshots and
    # releases the stale temp file eagerly.
    with WorkerPool(fig1, workers=1, compaction_threshold=0) as pool:
        _pool_eval(fig1, pool)
        first_path = pool.snapshot_path
        node = fig1.add_node("Zed")
        fig1.add_edge(node, 0, "rel")
        serial = evaluate_query(fig1, MATRIX_QUERY)
        result = _pool_eval(fig1, pool)
        assert pool.resnapshots == 1
        assert pool.compactions == 1
        assert pool.snapshot_path != first_path
        assert not os.path.exists(first_path)  # stale file released eagerly
        assert result.rows == serial.rows


def test_pool_close_releases_auto_snapshot(fig1):
    with WorkerPool(fig1, workers=1) as pool:
        pool.prepare()
        path = pool.snapshot_path
        assert path is not None and os.path.exists(path)
    assert not os.path.exists(path)
    assert path not in _AUTO_SNAPSHOTS


def test_release_auto_snapshot_ignores_foreign_paths(tmp_path):
    foreign = tmp_path / "explicit.snapshot"
    foreign.write_bytes(b"not ours")
    assert release_auto_snapshot(str(foreign)) is False
    assert foreign.exists()  # explicitly saved files are never touched
    assert release_auto_snapshot(None) is False


def test_reap_stale_snapshots(tmp_path):
    dead = tmp_path / "repro-csr-999999999-abc.snapshot"
    dead.write_bytes(b"orphan")
    own = tmp_path / f"repro-csr-{os.getpid()}-def.snapshot"
    own.write_bytes(b"mine")
    unrelated = tmp_path / "keep.snapshot"
    unrelated.write_bytes(b"keep")
    reaped = _reap_stale_snapshots(str(tmp_path))
    assert reaped == 1
    assert not dead.exists()
    assert own.exists() and unrelated.exists()


def test_auto_snapshots_are_pid_tagged(fig1):
    _, path = ensure_snapshot(fig1.freeze())
    try:
        assert f"repro-csr-{os.getpid()}-" in os.path.basename(path)
    finally:
        release_auto_snapshot(path)


# ----------------------------------------------------------------------
# mutation generations: memo + freeze() can no longer serve stale results
# ----------------------------------------------------------------------
def _weighted_path_graph():
    graph = Graph("weighted")
    a = graph.add_node("A", types=("src",))
    b = graph.add_node("B", types=("dst",))
    mid1 = graph.add_node("m1")
    mid2 = graph.add_node("m2")
    graph.add_edge(a, mid1, "e", weight=1.0)   # edges 0/1: light route
    graph.add_edge(mid1, b, "e", weight=1.0)
    graph.add_edge(a, mid2, "e", weight=5.0)   # edges 2/3: heavy route
    graph.add_edge(mid2, b, "e", weight=5.0)
    return graph


WEIGHT_QUERY = """
SELECT ?w WHERE {
  FILTER(type(?x) = "src")
  FILTER(type(?y) = "dst")
  CONNECT(?x, ?y) AS ?w SCORE weight TOP 1
}
"""


def test_generation_counter_bumps_on_every_mutator():
    graph = Graph()
    assert graph.generation == 0
    a = graph.add_node("A")
    b = graph.add_node("B")
    edge = graph.add_edge(a, b, "e")
    after_build = graph.generation
    assert after_build == 3
    graph.set_edge_weight(edge, 2.5)
    assert graph.generation == after_build + 1
    assert graph.edge(edge).weight == 2.5
    with pytest.raises(Exception):
        graph.set_edge_weight(999, 1.0)


def test_freeze_memo_invalidated_by_weight_update():
    graph = _weighted_path_graph()
    frozen = graph.freeze()
    assert graph.freeze() is frozen  # memoized while untouched
    graph.set_edge_weight(0, 50.0)   # same size, different weights
    refrozen = graph.freeze()
    assert refrozen is not frozen
    assert refrozen.edge(0).weight == 50.0


def test_same_size_mutation_invalidates_cross_query_memo():
    """The PR-5 fingerprint (num_nodes, num_edges) missed this exact case:
    a weight update changes the best-scoring tree but not the graph size,
    so a shared context replayed the stale winner."""
    graph = _weighted_path_graph()
    context = SearchContext()
    first = evaluate_query(graph, WEIGHT_QUERY, context=context)
    assert len(first.rows) == 1
    assert first.rows[0][0].edges == frozenset({0, 1})  # light route wins
    graph.set_edge_weight(0, 50.0)  # now the old light route is heaviest
    graph.set_edge_weight(1, 50.0)
    second = evaluate_query(graph, WEIGHT_QUERY, context=context)
    assert second.rows[0][0].edges == frozenset({2, 3})
    assert context.generation_flushes >= 1


def test_batch_memo_invalidated_by_same_size_mutation():
    graph = _weighted_path_graph()
    batch1 = evaluate_queries(graph, [WEIGHT_QUERY], context=SearchContext())
    context = SearchContext()
    evaluate_queries(graph, [WEIGHT_QUERY], context=context)
    graph.set_edge_weight(0, 50.0)
    graph.set_edge_weight(1, 50.0)
    batch2 = evaluate_queries(graph, [WEIGHT_QUERY], context=context)
    assert batch1[0].rows[0][0].edges == frozenset({0, 1})
    assert batch2[0].rows[0][0].edges == frozenset({2, 3})


def test_graph_fingerprint_tracks_generation():
    graph = _weighted_path_graph()
    before = SearchContext.graph_fingerprint(graph)
    graph.set_edge_weight(0, 9.0)
    after = SearchContext.graph_fingerprint(graph)
    assert before != after
    assert before[:2] == after[:2]  # same size — only the generation moved


# ----------------------------------------------------------------------
# 3. serving discipline: deadlines, admission, typed statuses
# ----------------------------------------------------------------------
def test_config_rejects_non_positive_deadline():
    with pytest.raises(ConfigError):
        SearchConfig(deadline=0.0)
    with pytest.raises(ConfigError):
        SearchConfig(deadline=-1.0)


def test_deadline_caps_per_ctp_timeout(fig1):
    # A generous CTP timeout must be capped to the query's deadline: the
    # effective budget can never exceed what the whole query was given.
    result = evaluate_query(
        fig1,
        MATRIX_QUERY,
        base_config=SearchConfig(deadline=5.0, timeout=3600.0),
    )
    assert len(result.rows) > 0  # fig1 finishes far inside 5s


def test_server_basic_roundtrip(fig1):
    serial = evaluate_query(fig1, MATRIX_QUERY)
    with QueryServer(fig1, workers=1, max_pending=4) as server:
        assert server.prewarm()
        first = server.handle(QueryRequest(query=MATRIX_QUERY, tag="t1"))
        second = server.handle(QueryRequest(query=MATRIX_QUERY))
        assert first.status == STATUS_OK and first.tag == "t1"
        assert first.columns == serial.columns and first.rows == serial.rows
        assert first.stats.warm_pool  # prewarmed before traffic
        assert second.rows == serial.rows
        # Same query again: the shared context serves it from the memo.
        assert second.stats.memo_hits == second.stats.ctp_count
        counters = server.stats()
        assert counters["served"] == 2 and counters["rejected"] == 0


def test_server_rejects_at_capacity(fig1):
    with QueryServer(fig1, workers=1, max_pending=1) as server:
        # Deterministic: occupy the only slot directly, no timing races.
        assert server._slots.acquire(blocking=False)
        try:
            response = server.handle(QueryRequest(query=MATRIX_QUERY))
        finally:
            server._slots.release()
        assert response.status == STATUS_REJECTED
        assert "capacity" in response.error
        assert server.stats()["rejected"] == 1
        # Slot free again: the next request is served normally.
        assert server.handle(QueryRequest(query=MATRIX_QUERY)).status == STATUS_OK


def test_server_expires_spent_deadline(fig1):
    with QueryServer(fig1, workers=1) as server:
        response = server.handle(QueryRequest(query=MATRIX_QUERY, deadline=0))
        assert response.status == STATUS_EXPIRED
        assert response.rows == []
        assert server.stats()["expired"] == 1


def test_server_error_statuses(fig1):
    with QueryServer(fig1, workers=1) as server:
        bad_parse = server.handle(QueryRequest(query="SELECT nonsense"))
        bad_algo = server.handle(QueryRequest(query=MATRIX_QUERY, algorithm="nope"))
        bad_score = server.handle(QueryRequest(query=MATRIX_QUERY, score="nope"))
        assert {r.status for r in (bad_parse, bad_algo, bad_score)} == {STATUS_ERROR}
        assert server.stats()["errors"] == 3


def test_server_rejects_after_close(fig1):
    server = QueryServer(fig1, workers=1)
    server.close()
    response = server.handle(QueryRequest(query=MATRIX_QUERY))
    assert response.status == STATUS_REJECTED
    assert "closed" in response.error


def test_server_pagination(fig1):
    with QueryServer(fig1, workers=1) as server:
        full = server.handle(QueryRequest(query=MATRIX_QUERY))
        page = server.handle(QueryRequest(query=MATRIX_QUERY, limit=1, offset=1))
        assert page.total_rows == full.total_rows
        assert page.rows == full.rows[1:2]
        beyond = server.handle(QueryRequest(query=MATRIX_QUERY, offset=10_000))
        assert beyond.status == STATUS_OK and beyond.rows == []


def test_server_per_request_overrides(fig1):
    with QueryServer(fig1, workers=1) as server:
        default = server.handle(QueryRequest(query=MATRIX_QUERY))
        other_algo = server.handle(QueryRequest(query=MATRIX_QUERY, algorithm="bft"))
        assert default.status == STATUS_OK and other_algo.status == STATUS_OK
        assert default.rows == other_algo.rows  # algorithms agree on answers


def test_request_validation():
    with pytest.raises(ValidationError):
        QueryRequest(query="")
    with pytest.raises(ValidationError):
        QueryRequest(query=MATRIX_QUERY, offset=-1)
    with pytest.raises(ValidationError):
        QueryRequest(query=MATRIX_QUERY, limit=-5)


def test_response_to_dict_is_json_ready(fig1):
    import json

    with QueryServer(fig1, workers=1) as server:
        response = server.handle(QueryRequest(query=MATRIX_QUERY, tag="j"))
    payload = json.loads(json.dumps(response.to_dict()))
    assert payload["status"] == "ok" and payload["tag"] == "j"
    assert payload["total_rows"] == len(response.rows)
