"""Section 4.9: very large and wildcard (N) seed sets."""

import pytest

from repro.ctp.config import WILDCARD, SearchConfig
from repro.ctp.molesp import MoLESPSearch
from repro.ctp.results import validate_result
from repro.graph.datasets import figure1
from repro.graph.graph import Graph
from repro.workloads.realworld import yago_like


class TestWildcardSeedSets:
    def test_connections_from_one_node(self, fig1):
        bob = fig1.find_node_by_label("Bob")
        results = MoLESPSearch().run(fig1, [[bob], WILDCARD], SearchConfig(max_edges=2))
        # Bob itself, every incident edge, and every 2-edge path around Bob
        assert len(results) > 1 + fig1.degree(bob)
        for result in results:
            assert bob in result.nodes

    def test_wildcard_binding_is_tree_node(self, fig1):
        bob = fig1.find_node_by_label("Bob")
        results = MoLESPSearch().run(fig1, [[bob], WILDCARD], SearchConfig(max_edges=2))
        for result in results:
            assert result.seeds[1] in result.nodes

    def test_single_node_result_included(self, fig1):
        bob = fig1.find_node_by_label("Bob")
        results = MoLESPSearch().run(fig1, [[bob], WILDCARD], SearchConfig(max_edges=1))
        assert frozenset() in results.edge_sets()

    def test_results_valid_with_wildcard(self, fig1):
        bob = fig1.find_node_by_label("Bob")
        results = MoLESPSearch().run(fig1, [[bob], WILDCARD], SearchConfig(max_edges=3))
        for result in results:
            problems = validate_result(fig1, result, [[bob], []], wildcard_positions=[1])
            assert not problems, problems

    def test_wildcard_between_two_explicit_sets(self, fig1):
        bob = fig1.find_node_by_label("Bob")
        elon = fig1.find_node_by_label("Elon")
        with_wildcard = MoLESPSearch().run(
            fig1, [[bob], WILDCARD, [elon]], SearchConfig(max_edges=4)
        )
        without = MoLESPSearch().run(fig1, [[bob], [elon]], SearchConfig(max_edges=4))
        # every plain (bob, elon) connection is also a wildcard result
        assert without.edge_sets() <= with_wildcard.edge_sets()

    def test_max_edges_bounds_wildcard_explosion(self, fig1):
        bob = fig1.find_node_by_label("Bob")
        small = MoLESPSearch().run(fig1, [[bob], WILDCARD], SearchConfig(max_edges=1))
        large = MoLESPSearch().run(fig1, [[bob], WILDCARD], SearchConfig(max_edges=3))
        assert len(small) < len(large)

    def test_limit_stops_wildcard_search(self, fig1):
        bob = fig1.find_node_by_label("Bob")
        results = MoLESPSearch().run(fig1, [[bob], WILDCARD], SearchConfig(limit=4))
        assert len(results) == 4
        assert not results.complete


class TestBalancedQueues:
    def test_auto_enables_on_skewed_sets(self):
        graph = yago_like(scale=0.01).graph
        small = [0]
        big = list(graph.node_ids())[: graph.num_nodes // 2]
        config = SearchConfig(max_edges=3, balanced_queues="auto", balance_ratio=8.0)
        results = MoLESPSearch().run(graph, [small, big], config)
        baseline = MoLESPSearch().run(graph, [small, big], SearchConfig(max_edges=3, balanced_queues=False))
        assert results.edge_sets() == baseline.edge_sets()

    def test_explicit_on_off_same_results(self, fig1, fig1_seeds):
        on = MoLESPSearch().run(fig1, fig1_seeds, SearchConfig(balanced_queues=True))
        off = MoLESPSearch().run(fig1, fig1_seeds, SearchConfig(balanced_queues=False))
        assert on.edge_sets() == off.edge_sets()

    def test_balanced_explores_small_side_first(self):
        """With one tiny and one huge seed set, balancing lets the search
        finish earlier under a LIMIT (the Section 4.9 motivation): the tiny
        side's queue stays small, so its trees grow first and meet the big
        side's Init trees quickly."""
        graph = yago_like(scale=0.02).graph
        persons = graph.nodes_with_type("person")
        assert len(persons) > 50
        anchor = [persons[0]]
        config_balanced = SearchConfig(limit=5, balanced_queues=True)
        config_single = SearchConfig(limit=5, balanced_queues=False)
        balanced = MoLESPSearch().run(graph, [anchor, persons[1:]], config_balanced)
        single = MoLESPSearch().run(graph, [anchor, persons[1:]], config_single)
        assert len(balanced) == 5
        assert len(single) == 5
        # both find results; balancing should not do more work
        assert balanced.stats.grows <= single.stats.grows * 2


class TestJ2J3Style:
    """The query shapes of Table 1 exercised directly on the engine."""

    def test_j2_large_seed_set(self):
        dataset = yago_like(scale=0.02)
        graph = dataset.graph
        persons = dataset.nodes_by_type["person"]
        works = dataset.nodes_by_type["work"][:3]
        config = SearchConfig(max_edges=3, timeout=10.0)
        results = MoLESPSearch().run(graph, [works, persons], config)
        for result in results:
            assert result.size <= 3

    def test_j3_wildcard(self):
        dataset = yago_like(scale=0.02)
        graph = dataset.graph
        events = dataset.nodes_by_type["event"][:5]
        config = SearchConfig(max_edges=2, limit=100)
        results = MoLESPSearch().run(graph, [events, WILDCARD], config)
        assert len(results) == 100
