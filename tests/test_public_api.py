"""Public API hygiene: exports exist, are documented, and stay stable."""

import importlib
import inspect

import pytest

PUBLIC_MODULES = [
    "repro",
    "repro.graph",
    "repro.storage",
    "repro.query",
    "repro.ctp",
    "repro.baselines",
    "repro.workloads",
    "repro.bench",
]


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} needs a module docstring"
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module_name}.__all__ lists missing {name!r}"


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_public_callables_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name in getattr(module, "__all__", []):
        item = getattr(module, name)
        if (inspect.isfunction(item) or inspect.isclass(item)) and not inspect.getdoc(item):
            undocumented.append(name)
    assert not undocumented, f"{module_name}: undocumented public items {undocumented}"


def test_top_level_surface():
    import repro

    for name in (
        "Graph",
        "GraphBuilder",
        "evaluate_ctp",
        "evaluate_query",
        "parse_query",
        "SearchConfig",
        "WILDCARD",
        "ResultTree",
    ):
        assert name in repro.__all__

    assert repro.__version__


def test_algorithm_classes_have_paper_docs():
    """Each algorithm's docstring must cite its paper section."""
    from repro.ctp import registry

    expected_sections = {
        "bft": "4.1",
        "bft-m": "4.3",
        "bft-am": "4.3",
        "gam": "4.2",
        "esp": "4.4",
        "moesp": "4.5",
        "lesp": "4.6",
        "molesp": "4.7",
    }
    for name, section in expected_sections.items():
        algo_class = registry.ALGORITHMS[name]
        module = importlib.import_module(algo_class.__module__)
        assert section in (module.__doc__ or "") or section in (algo_class.__doc__ or ""), (
            f"{name}: docstring should reference paper Section {section}"
        )


def test_errors_all_exported():
    from repro import errors

    public = [n for n in dir(errors) if n.endswith("Error") or n == "BudgetExceeded"]
    import repro

    for name in ("ReproError", "GraphError", "QueryError", "SearchError"):
        assert name in public
        assert hasattr(repro, name)
