"""Tests for internal utilities."""

import time

from repro._util import Counter, Deadline, bits, full_mask, mask_of, popcount, stable_unique


class TestDeadline:
    def test_unbounded_never_expires(self):
        deadline = Deadline(None)
        assert not deadline.expired()
        assert deadline.remaining() is None

    def test_never_constructor(self):
        assert not Deadline.never().expired()

    def test_expires(self):
        deadline = Deadline(0.0)
        assert deadline.expired()
        assert deadline.remaining() == 0.0

    def test_elapsed_grows(self):
        deadline = Deadline(10.0)
        first = deadline.elapsed()
        time.sleep(0.01)
        assert deadline.elapsed() > first

    def test_remaining_positive(self):
        deadline = Deadline(60.0)
        remaining = deadline.remaining()
        assert 0 < remaining <= 60.0


class TestBitmasks:
    def test_popcount(self):
        assert popcount(0) == 0
        assert popcount(0b1011) == 3

    def test_bits(self):
        assert list(bits(0b1011)) == [0, 1, 3]
        assert list(bits(0)) == []

    def test_mask_of(self):
        assert mask_of([0, 2]) == 0b101
        assert mask_of([]) == 0

    def test_full_mask(self):
        assert full_mask(0) == 0
        assert full_mask(3) == 0b111

    def test_roundtrip(self):
        for mask in (0, 1, 0b1010, 0b11111):
            assert mask_of(bits(mask)) == mask


def test_counter_monotonic():
    counter = Counter()
    values = [counter.next() for _ in range(5)]
    assert values == [0, 1, 2, 3, 4]


def test_stable_unique():
    assert stable_unique([3, 1, 3, 2, 1]) == [3, 1, 2]
    assert stable_unique([]) == []
