"""Property-based tests (hypothesis): the paper's guarantees on random graphs.

Strategy: generate small random multigraphs and disjoint seed sets, then
cross-check every algorithm against the complete references.  These are the
strongest correctness tests in the suite — they explore execution orders
and graph shapes no hand-written example covers.
"""

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.testing import assert_all_valid
from repro.baselines.dpbf import dpbf_optimal_tree
from repro.ctp.bft import BFTSearch
from repro.ctp.config import SearchConfig
from repro.ctp.esp import ESPSearch
from repro.ctp.gam import GAMSearch
from repro.ctp.moesp import MoESPSearch
from repro.ctp.molesp import MoLESPSearch
from repro.graph.graph import Graph

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def graph_and_seeds(draw, max_m: int = 3, singleton: bool = False):
    """A connected random multigraph with m disjoint seed sets.

    ``singleton=True`` restricts every set to one node — required when
    comparing against classic GST semantics (see
    :func:`test_dpbf_optimum_matches_smallest_result`).
    """
    num_nodes = draw(st.integers(min_value=3, max_value=9))
    extra_edges = draw(st.integers(min_value=0, max_value=6))
    rng_seed = draw(st.integers(min_value=0, max_value=2**16))
    rng = random.Random(rng_seed)
    graph = Graph("hyp")
    for index in range(num_nodes):
        graph.add_node(f"n{index}")
    for node in range(1, num_nodes):
        partner = rng.randrange(node)
        if rng.random() < 0.5:
            graph.add_edge(node, partner, "e")
        else:
            graph.add_edge(partner, node, "e")
    for _ in range(extra_edges):
        a, b = rng.randrange(num_nodes), rng.randrange(num_nodes)
        if a != b:
            graph.add_edge(a, b, "e")
    m = draw(st.integers(min_value=2, max_value=min(max_m, num_nodes)))
    nodes = list(range(num_nodes))
    rng.shuffle(nodes)
    seed_sets = []
    cursor = 0
    for _ in range(m):
        size = 1 if singleton else draw(st.integers(min_value=1, max_value=2))
        size = min(size, num_nodes - cursor)
        if size == 0:
            size = 1
            cursor = 0  # reuse nodes only if we ran out (sets stay disjoint otherwise)
        seed_sets.append(tuple(nodes[cursor : cursor + size]))
        cursor += size
    return graph, tuple(seed_sets)


@SETTINGS
@given(data=graph_and_seeds(max_m=3))
def test_molesp_complete_for_m_le_3(data):
    """Property 8: MoLESP == GAM == BFT for m <= 3."""
    graph, seed_sets = data
    gam = GAMSearch().run(graph, seed_sets)
    molesp = MoLESPSearch().run(graph, seed_sets)
    bft = BFTSearch().run(graph, seed_sets)
    assert molesp.edge_sets() == gam.edge_sets() == bft.edge_sets()


@SETTINGS
@given(data=graph_and_seeds(max_m=3))
def test_all_results_satisfy_definition_2_8(data):
    graph, seed_sets = data
    results = MoLESPSearch().run(graph, seed_sets)
    assert_all_valid(graph, results, seed_sets)


@SETTINGS
@given(data=graph_and_seeds(max_m=2))
def test_esp_complete_for_two_seed_sets(data):
    """Property 3."""
    graph, seed_sets = data
    esp = ESPSearch().run(graph, seed_sets)
    gam = GAMSearch().run(graph, seed_sets)
    assert esp.edge_sets() == gam.edge_sets()


@SETTINGS
@given(data=graph_and_seeds(max_m=4))
def test_pruned_variants_never_exceed_gam(data):
    graph, seed_sets = data
    gam = GAMSearch().run(graph, seed_sets).edge_sets()
    moesp = MoESPSearch().run(graph, seed_sets).edge_sets()
    molesp = MoLESPSearch().run(graph, seed_sets).edge_sets()
    assert moesp <= molesp <= gam


@SETTINGS
@given(data=graph_and_seeds(max_m=3, singleton=True))
def test_dpbf_optimum_matches_smallest_result(data):
    """DPBF's minimum weight equals the size of the smallest CTP result
    (unit weights, singleton seed sets), and no CTP result is smaller.

    Restricted to singleton sets on purpose: with multi-node sets, classic
    GST semantics may route a tree through *two* members of one group,
    which Definition 2.8 (ii) forbids — see
    ``test_dpbf_diverges_from_ctp_on_overlapping_sets``.
    """
    graph, seed_sets = data
    complete = GAMSearch().run(graph, seed_sets)
    optimal = dpbf_optimal_tree(graph, seed_sets)
    if len(complete) == 0:
        assert optimal is None
    else:
        smallest = min(result.size for result in complete)
        assert optimal is not None
        assert optimal.size == smallest


def test_dpbf_diverges_from_ctp_on_overlapping_sets():
    """The hypothesis-found counterexample, pinned: on the path 0-1-2 with
    S1={0,1}, S2={2}, S3={0}, classic GST connects the groups via the tree
    0-1-2 (two S1 members!), while CTP semantics has *no* result because
    every 0-2 connection passes through the second S1 node."""
    graph = Graph("counterexample")
    for index in range(3):
        graph.add_node(f"n{index}")
    graph.add_edge(0, 1, "e")
    graph.add_edge(1, 2, "e")
    seed_sets = ((0, 1), (2,), (0,))
    assert len(GAMSearch().run(graph, seed_sets)) == 0
    optimal = dpbf_optimal_tree(graph, seed_sets)
    assert optimal is not None and optimal.size == 2


@SETTINGS
@given(data=graph_and_seeds(max_m=3))
def test_max_filter_equals_post_filter(data):
    graph, seed_sets = data
    complete = MoLESPSearch().run(graph, seed_sets)
    bounded = MoLESPSearch().run(graph, seed_sets, SearchConfig(max_edges=3))
    expected = frozenset(r.edges for r in complete if r.size <= 3)
    assert bounded.edge_sets() == expected


@SETTINGS
@given(data=graph_and_seeds(max_m=3))
def test_balanced_queues_preserve_completeness(data):
    """Section 4.9 (ii) is a scheduling change, not a semantic one."""
    graph, seed_sets = data
    single = MoLESPSearch().run(graph, seed_sets, SearchConfig(balanced_queues=False))
    balanced = MoLESPSearch().run(graph, seed_sets, SearchConfig(balanced_queues=True))
    assert single.edge_sets() == balanced.edge_sets()


@SETTINGS
@given(data=graph_and_seeds(max_m=3))
def test_results_independent_of_queue_order(data):
    """Section 4.8: completeness guarantees hold for any exploration order."""
    graph, seed_sets = data
    default = MoLESPSearch().run(graph, seed_sets)
    reversed_order = MoLESPSearch().run(graph, seed_sets, SearchConfig(order=lambda t: -t.size))
    assert default.edge_sets() == reversed_order.edge_sets()
