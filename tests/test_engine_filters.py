"""CTP filters pushed into the search (Sections 2 and 4.8)."""

import random

import pytest

from repro.testing import random_graph, random_seed_sets
from repro.ctp.config import SearchConfig
from repro.ctp.gam import GAMSearch
from repro.ctp.molesp import MoLESPSearch
from repro.query.scoring import size_score
from repro.workloads.synthetic import chain_graph, star_graph


class TestUni:
    def _in_degrees(self, graph, result):
        degrees = {node: 0 for node in result.nodes}
        for edge_id in result.edges:
            degrees[graph.edge(edge_id).target] += 1
        return degrees

    def test_results_are_arborescences(self):
        graph, seeds = star_graph(4, 2)
        results = MoLESPSearch().run(graph, seeds, SearchConfig(uni=True))
        assert len(results) == 1
        for result in results:
            degrees = self._in_degrees(graph, result)
            roots = [n for n, d in degrees.items() if d == 0]
            assert len(roots) == 1
            assert all(d <= 1 for d in degrees.values())

    def test_uni_is_subset_of_bidirectional(self, fig1, fig1_seeds):
        uni = MoLESPSearch().run(fig1, fig1_seeds, SearchConfig(uni=True))
        both = MoLESPSearch().run(fig1, fig1_seeds)
        assert uni.edge_sets() <= both.edge_sets()

    @pytest.mark.parametrize("seed", range(6))
    def test_uni_complete_m2(self, seed):
        """UNI-filtered search equals brute-force UNI filtering of the
        complete result set (cross-check on random graphs, m=2)."""
        rng = random.Random(seed + 7)
        graph = random_graph(rng, num_nodes=8, num_edges=11)
        seed_sets = random_seed_sets(rng, graph, m=2)
        pushed = MoLESPSearch().run(graph, seed_sets, SearchConfig(uni=True)).edge_sets()
        complete = MoLESPSearch().run(graph, seed_sets)
        expected = set()
        for result in complete:
            degrees = self._in_degrees(graph, result)
            roots = [n for n, d in degrees.items() if d == 0]
            if len(roots) == 1 and all(d <= 1 for d in degrees.values()):
                expected.add(result.edges)
        assert pushed == frozenset(expected)

    def test_chain_uni_still_exponential(self):
        # all chain edges point forward: every one of the 2^N paths is UNI
        graph, seeds = chain_graph(5)
        results = MoLESPSearch().run(graph, seeds, SearchConfig(uni=True))
        assert len(results) == 32


class TestLabels:
    def test_only_allowed_labels_used(self, fig1, fig1_seeds):
        allowed = frozenset({"founded", "investsIn", "parentOf"})
        results = MoLESPSearch().run(fig1, fig1_seeds, SearchConfig(labels=allowed))
        assert len(results) > 0
        for result in results:
            assert {fig1.edge(e).label for e in result.edges} <= allowed

    def test_label_filter_equals_subgraph_search(self, fig1, fig1_seeds):
        """LABEL-filtered search == search on the label-induced subgraph."""
        from repro.graph.graph import Graph

        allowed = frozenset({"founded", "investsIn", "parentOf", "citizenOf"})
        filtered = MoLESPSearch().run(fig1, fig1_seeds, SearchConfig(labels=allowed))
        # build the induced subgraph with identical node ids
        sub = Graph()
        for node in fig1.nodes():
            sub.add_node(node.label, node.types)
        id_map = {}
        for edge in fig1.edges():
            if edge.label in allowed:
                new_id = sub.add_edge(edge.source, edge.target, edge.label)
                id_map[new_id] = edge.id
        seeds = fig1_seeds
        on_sub = MoLESPSearch().run(sub, seeds)
        translated = {frozenset(id_map[e] for e in r.edges) for r in on_sub}
        assert filtered.edge_sets() == frozenset(translated)

    def test_impossible_labels_no_results(self, fig1, fig1_seeds):
        results = MoLESPSearch().run(fig1, fig1_seeds, SearchConfig(labels=frozenset({"ghost"})))
        assert len(results) == 0


class TestMaxEdges:
    def test_bound_respected(self, fig1, fig1_seeds):
        results = MoLESPSearch().run(fig1, fig1_seeds, SearchConfig(max_edges=4))
        assert all(r.size <= 4 for r in results)

    def test_equals_post_filtering(self, fig1, fig1_seeds):
        pushed = MoLESPSearch().run(fig1, fig1_seeds, SearchConfig(max_edges=4)).edge_sets()
        complete = MoLESPSearch().run(fig1, fig1_seeds)
        expected = frozenset(r.edges for r in complete if r.size <= 4)
        assert pushed == expected

    def test_zero_allows_single_node_results(self):
        from repro.graph.graph import Graph

        g = Graph()
        a = g.add_node("a")
        g.add_edge(a, a)
        results = MoLESPSearch().run(g, [[a], [a]], SearchConfig(max_edges=0))
        assert results.edge_sets() == frozenset({frozenset()})


class TestTimeoutAndLimit:
    def test_timeout_flags_partial(self):
        graph, seeds = chain_graph(16)
        results = MoLESPSearch().run(graph, seeds, SearchConfig(timeout=0.01))
        assert results.timed_out
        assert not results.complete
        assert len(results) < 2**16

    def test_limit_stops_early(self, fig1, fig1_seeds):
        results = MoLESPSearch().run(fig1, fig1_seeds, SearchConfig(limit=3))
        assert len(results) == 3
        assert not results.complete

    def test_limit_one_like_figure12(self, fig1, fig1_seeds):
        results = MoLESPSearch().run(fig1, fig1_seeds, SearchConfig(limit=1))
        assert len(results) == 1


class TestScoreAndTopK:
    def test_scores_attached(self, fig1, fig1_seeds):
        results = MoLESPSearch().run(fig1, fig1_seeds, SearchConfig(score=size_score))
        assert all(r.score is not None for r in results)

    def test_top_k_keeps_best(self, fig1, fig1_seeds):
        config = SearchConfig(score=size_score, top_k=4)
        top = MoLESPSearch().run(fig1, fig1_seeds, config)
        complete = MoLESPSearch().run(fig1, fig1_seeds, SearchConfig(score=size_score))
        assert len(top) == 4
        best_scores = sorted((r.score for r in complete), reverse=True)[:4]
        assert sorted((r.score for r in top), reverse=True) == best_scores

    def test_best_helper(self, fig1, fig1_seeds):
        results = MoLESPSearch().run(fig1, fig1_seeds, SearchConfig(score=size_score))
        best = results.best()
        assert best.score == max(r.score for r in results)

    def test_score_guided_order_same_results(self, fig1, fig1_seeds):
        """Section 4.8: MoLESP's guarantees are order-independent, so a
        score-guided queue returns the same complete result set (m=3)."""
        guided = MoLESPSearch().run(
            fig1, fig1_seeds, SearchConfig(score=size_score, order="score")
        )
        default = MoLESPSearch().run(fig1, fig1_seeds)
        assert guided.edge_sets() == default.edge_sets()

    def test_custom_order_callable(self, fig1, fig1_seeds):
        custom = MoLESPSearch().run(
            fig1, fig1_seeds, SearchConfig(order=lambda tree: -tree.size)
        )
        default = MoLESPSearch().run(fig1, fig1_seeds)
        assert custom.edge_sets() == default.edge_sets()


class TestConfigValidation:
    def test_top_k_requires_score(self):
        with pytest.raises(ValueError):
            SearchConfig(top_k=3)

    def test_bad_limit(self):
        with pytest.raises(ValueError):
            SearchConfig(limit=0)

    def test_bad_order(self):
        with pytest.raises(ValueError):
            SearchConfig(order="chaos")

    def test_order_score_requires_score(self):
        with pytest.raises(ValueError):
            SearchConfig(order="score")

    def test_with_copies(self):
        config = SearchConfig(max_edges=5)
        updated = config.with_(uni=True)
        assert updated.uni and updated.max_edges == 5
        assert not config.uni


class TestCombinedFilters:
    def test_uni_label_max_together(self, fig1, fig1_seeds):
        config = SearchConfig(
            uni=True, labels=frozenset({"citizenOf", "parentOf", "founded", "investsIn"}), max_edges=5
        )
        results = MoLESPSearch().run(fig1, fig1_seeds, config)
        for result in results:
            assert result.size <= 5
            assert {fig1.edge(e).label for e in result.edges} <= config.labels

    def test_filters_identical_across_gam_variants_m2(self):
        graph, seeds = chain_graph(4)
        config = SearchConfig(max_edges=4, uni=True)
        gam = GAMSearch().run(graph, seeds, config)
        molesp = MoLESPSearch().run(graph, seeds, config)
        assert gam.edge_sets() == molesp.edge_sets()
