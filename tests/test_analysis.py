"""Tests for the structural result analysis (Definitions 4.2, 4.4-4.8).

The crown jewel is the *guarantee classifier* cross-check: any result of a
complete search that :func:`molesp_guaranteed` marks as covered by
Properties 4/7/9 must appear in MoLESP's output — on every graph we can
throw at it.
"""

import random

import pytest

from repro.testing import random_graph, random_seed_sets
from repro.ctp.analysis import (
    classify_piece,
    is_edge_set,
    is_p_piecewise_simple,
    molesp_guaranteed,
    result_shape,
    simple_tree_decomposition,
    tree_degrees,
)
from repro.ctp.gam import GAMSearch
from repro.ctp.molesp import MoLESPSearch
from repro.errors import SearchError
from repro.graph.datasets import figure4, figure4_result_edges, figure5, figure6, figure7
from repro.graph.graph import Graph


def _seed_nodes(seeds):
    return {node for seed_set in seeds for node in seed_set}


class TestDecomposition:
    def test_figure4_decomposition(self):
        """Figure 4's result decomposes into the five 2-simple pieces the
        paper lists: {A-4-D, A-1-2-B, B-7-E, B-8-F, B-3-C}."""
        graph, seeds = figure4()
        result = figure4_result_edges(graph)
        pieces = simple_tree_decomposition(graph, result, _seed_nodes(seeds))
        assert len(pieces) == 5
        sizes = sorted(len(piece) for piece in pieces)
        assert sizes == [2, 2, 2, 2, 3]
        for piece in pieces:
            assert classify_piece(graph, piece, _seed_nodes(seeds)).kind == "path"

    def test_figure5_single_rooted_merge(self):
        graph, seeds = figure5()
        result = frozenset(graph.edge_ids())
        pieces = simple_tree_decomposition(graph, result, _seed_nodes(seeds))
        assert len(pieces) == 1
        shape = classify_piece(graph, pieces[0], _seed_nodes(seeds))
        assert shape.kind == "rooted-merge"
        assert shape.leaves == 3
        assert shape.center == graph.find_node_by_label("x")

    def test_figure6_complex_piece(self):
        """Figure 6's result has two branching nodes: outside all guarantees."""
        graph, seeds = figure6()
        result = frozenset(graph.edge_ids())
        pieces = simple_tree_decomposition(graph, result, _seed_nodes(seeds))
        assert len(pieces) == 1
        assert classify_piece(graph, pieces[0], _seed_nodes(seeds)).kind == "complex"
        assert not molesp_guaranteed(graph, result, _seed_nodes(seeds))

    def test_figure7_two_rooted_merges(self):
        graph, seeds = figure7()
        result = frozenset(graph.edge_ids())
        seed_nodes = _seed_nodes(seeds)
        pieces = simple_tree_decomposition(graph, result, seed_nodes)
        assert len(pieces) == 2
        kinds = {classify_piece(graph, piece, seed_nodes).kind for piece in pieces}
        assert kinds == {"rooted-merge"}
        assert molesp_guaranteed(graph, result, seed_nodes)

    def test_decomposition_requires_result(self):
        g = Graph()
        a, x = g.add_node("a"), g.add_node("x")
        g.add_edge(a, x)
        with pytest.raises(SearchError):
            simple_tree_decomposition(g, frozenset({0}), {a})  # x is a non-seed leaf

    def test_empty_edges(self):
        g = Graph()
        g.add_node("a")
        assert simple_tree_decomposition(g, frozenset(), {0}) == []

    def test_pieces_partition_edges(self):
        graph, seeds = figure7()
        result = frozenset(graph.edge_ids())
        pieces = simple_tree_decomposition(graph, result, _seed_nodes(seeds))
        union = frozenset().union(*pieces)
        assert union == result
        assert sum(len(p) for p in pieces) == len(result)


class TestPredicates:
    def test_is_edge_set(self):
        g = Graph()
        a, x, b = g.add_node("a"), g.add_node("x"), g.add_node("b")
        g.add_edge(a, x)
        g.add_edge(x, b)
        assert is_edge_set(g, frozenset({0}), {a})  # one non-seed leaf (x)
        assert is_edge_set(g, frozenset({0, 1}), {a, b})
        assert not is_edge_set(g, frozenset({0, 1}), set())  # two non-seed leaves

    def test_p_piecewise_simple(self):
        graph, seeds = figure4()
        result = figure4_result_edges(graph)
        seed_nodes = _seed_nodes(seeds)
        assert is_p_piecewise_simple(graph, result, seed_nodes, 2)
        graph5, seeds5 = figure5()
        result5 = frozenset(graph5.edge_ids())
        assert not is_p_piecewise_simple(graph5, result5, _seed_nodes(seeds5), 2)
        assert is_p_piecewise_simple(graph5, result5, _seed_nodes(seeds5), 3)

    def test_tree_degrees(self):
        g = Graph()
        a, b, c = g.add_node("a"), g.add_node("b"), g.add_node("c")
        g.add_edge(a, b)
        g.add_edge(b, c)
        assert tree_degrees(g, [0, 1]) == {a: 1, b: 2, c: 1}

    def test_result_shape(self):
        g = Graph()
        nodes = [g.add_node(str(i)) for i in range(5)]
        e1 = g.add_edge(nodes[0], nodes[1])
        e2 = g.add_edge(nodes[1], nodes[2])
        e3 = g.add_edge(nodes[1], nodes[3])
        e4 = g.add_edge(nodes[3], nodes[4])
        assert result_shape(g, frozenset()) == "node"
        assert result_shape(g, frozenset({e1})) == "edge"
        assert result_shape(g, frozenset({e1, e2})) == "path"
        assert result_shape(g, frozenset({e1, e2, e3})) == "star"
        # two branching nodes needs 6+ edges; fake with another fork
        e5 = g.add_edge(nodes[3], nodes[0])  # creates branching at 3 and 1
        assert result_shape(g, frozenset({e2, e3, e4, e5, e1})) in ("tree", "star")


class TestGuaranteeCrossCheck:
    """The big one: Properties 4/7/9 verified via classification."""

    @pytest.mark.parametrize("seed", range(12))
    def test_guaranteed_results_always_found(self, seed):
        rng = random.Random(seed * 101 + 3)
        graph = random_graph(rng, num_nodes=9, num_edges=13)
        m = rng.randint(2, 5)
        seed_sets = random_seed_sets(rng, graph, m=m, max_size=1)
        seed_nodes = _seed_nodes(seed_sets)
        complete = GAMSearch().run(graph, seed_sets)
        found = MoLESPSearch().run(graph, seed_sets).edge_sets()
        for result in complete:
            if molesp_guaranteed(graph, result.edges, seed_nodes):
                assert result.edges in found, (
                    f"guaranteed result {sorted(result.edges)} missed "
                    f"(m={m}, seed={seed})"
                )

    @pytest.mark.parametrize("seed", range(6))
    def test_guarantee_covers_all_results_for_m3(self, seed):
        """For m <= 3, Property 8 says everything is found; consistency
        check: every missed result would have to be non-guaranteed, so for
        m <= 3 none may be missed at all."""
        rng = random.Random(seed * 55 + 9)
        graph = random_graph(rng, num_nodes=8, num_edges=12)
        seed_sets = random_seed_sets(rng, graph, m=3, max_size=1)
        complete = GAMSearch().run(graph, seed_sets)
        found = MoLESPSearch().run(graph, seed_sets).edge_sets()
        assert {r.edges for r in complete} == found
