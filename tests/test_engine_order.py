"""Exploration-order behaviour (Sections 4.2 and 4.8).

The paper's experiments favour the smallest trees in the priority queue;
Section 4.8 observes that any order can be combined with MoLESP because
its guarantees are order-independent.  These tests observe the order
through LIMIT: the first result produced under a given order must be the
one that order favours.
"""

import pytest

from repro.ctp.config import WILDCARD, SearchConfig
from repro.ctp.molesp import MoLESPSearch
from repro.graph.graph import Graph
from repro.query.scoring import size_score


@pytest.fixture
def two_route_graph():
    """A short (1 edge via hub) and a long (3 edges) route between a, b."""
    g = Graph()
    a, b = g.add_node("a"), g.add_node("b")
    hub = g.add_node("hub")
    x1, x2 = g.add_node("x1"), g.add_node("x2")
    g.add_edge(a, hub, "short")  # 0
    g.add_edge(hub, b, "short")  # 1
    g.add_edge(a, x1, "long")  # 2
    g.add_edge(x1, x2, "long")  # 3
    g.add_edge(x2, b, "long")  # 4
    return g, a, b


def test_smallest_first_order_finds_short_route_first(two_route_graph):
    g, a, b = two_route_graph
    results = MoLESPSearch().run(g, [[a], [b]], SearchConfig(limit=1))
    assert len(results) == 1
    assert results.results[0].size == 2  # the 2-edge hub route


def test_merge_opportunities_bypass_queue_order(two_route_graph):
    """Section 4.2: the enumeration order is set 'first, by the priority of
    the queue, and second, by the available Merge opportunities'.  Merges
    fire eagerly, so even a largest-first queue yields the short hub route
    first — its two half-paths meet and merge before the long route's
    chain of Grow steps completes."""
    g, a, b = two_route_graph
    config = SearchConfig(limit=1, order=lambda tree: -tree.size)
    results = MoLESPSearch().run(g, [[a], [b]], config)
    assert results.results[0].size == 2


def test_score_guided_order_prefers_high_scores(two_route_graph):
    g, a, b = two_route_graph
    config = SearchConfig(limit=1, score=size_score, order="score")
    results = MoLESPSearch().run(g, [[a], [b]], config)
    # size_score favours small trees, so the hub route comes first
    assert results.results[0].size == 2


def test_order_does_not_change_complete_result_set(two_route_graph):
    g, a, b = two_route_graph
    default = MoLESPSearch().run(g, [[a], [b]])
    reverse = MoLESPSearch().run(g, [[a], [b]], SearchConfig(order=lambda t: -t.size))
    assert default.edge_sets() == reverse.edge_sets()
    assert len(default) == 2


class TestWildcardWithFilters:
    def test_wildcard_uni_results_are_arborescences(self):
        g = Graph()
        a = g.add_node("a")
        out1 = g.add_node("o1")
        out2 = g.add_node("o2")
        inc = g.add_node("i")
        g.add_edge(a, out1, "e")  # a -> o1
        g.add_edge(out1, out2, "e")  # o1 -> o2
        g.add_edge(inc, a, "e")  # i -> a
        config = SearchConfig(uni=True, max_edges=2)
        results = MoLESPSearch().run(g, [[a], WILDCARD], config)
        for result in results:
            in_deg = {node: 0 for node in result.nodes}
            for edge_id in result.edges:
                in_deg[g.edge(edge_id).target] += 1
            roots = [n for n, d in in_deg.items() if d == 0]
            assert len(roots) == 1 or not result.edges

    def test_wildcard_label_filter(self, fig1):
        bob = fig1.find_node_by_label("Bob")
        config = SearchConfig(labels=frozenset({"founded"}), max_edges=2)
        results = MoLESPSearch().run(fig1, [[bob], WILDCARD], config)
        for result in results:
            assert all(fig1.edge(e).label == "founded" for e in result.edges)

    def test_wildcard_with_score_top_k(self, fig1):
        bob = fig1.find_node_by_label("Bob")
        config = SearchConfig(score=size_score, top_k=3, max_edges=3)
        results = MoLESPSearch().run(fig1, [[bob], WILDCARD], config)
        assert len(results) == 3
        # size_score: the single-node tree scores 1.0 and must be kept
        assert frozenset() in results.edge_sets()
