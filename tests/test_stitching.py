"""Tests for path stitching (the strategy Section 2 argues against)."""

import pytest

from repro.baselines.path_engines import AllPathsEngine
from repro.baselines.stitching import stitch_paths
from repro.ctp.molesp import MoLESPSearch
from repro.graph.graph import Graph
from repro.workloads.cdf import cdf_graph


@pytest.fixture
def y_graph():
    """r -> s2 and r -> s3 arms, plus a second route r -> x -> s2."""
    g = Graph()
    r, s2, s3, x = (g.add_node(n) for n in ("r", "s2", "s3", "x"))
    g.add_edge(r, s2, "a")
    g.add_edge(r, s3, "b")
    g.add_edge(r, x, "c")
    g.add_edge(x, s2, "d")
    return g, r, s2, s3


def test_stitch_produces_trees(y_graph):
    g, r, s2, s3 = y_graph
    engine = AllPathsEngine(undirected=False)
    paths_a = engine.run(g, [r], [s2]).paths
    paths_b = engine.run(g, [r], [s3]).paths
    report = stitch_paths(g, paths_a, paths_b)
    assert len(report.trees) == 2  # direct Y and via-x Y
    assert report.joins_attempted == 2
    assert report.non_tree_joins == 0


def test_stitch_rejects_overlapping_paths():
    """Joined paths sharing a node beyond the root are not trees (Section 2)."""
    g = Graph()
    r, x, s2, s3 = (g.add_node(n) for n in ("r", "x", "s2", "s3"))
    g.add_edge(r, x, "a")
    g.add_edge(x, s2, "b")
    g.add_edge(x, s3, "c")
    engine = AllPathsEngine(undirected=False)
    paths_a = engine.run(g, [r], [s2]).paths
    paths_b = engine.run(g, [r], [s3]).paths
    report = stitch_paths(g, paths_a, paths_b)
    # both paths pass through x: their union is a tree only by accident of
    # edge sets — here they share node x, so the join must be rejected
    assert report.non_tree_joins == 1
    assert len(report.trees) == 0


def test_stitch_counts_duplicates():
    """The same edge set reached via different join orders is a duplicate."""
    g = Graph()
    r, s2 = g.add_node("r"), g.add_node("s2")
    g.add_edge(r, s2, "a")
    paths = {(r, s2): [(0,)]}
    # stitch the collection with itself: r->s2 joined with r->s2 shares s2
    report = stitch_paths(g, paths, paths)
    assert report.joins_attempted == 1
    assert report.non_tree_joins == 1  # identical paths share both nodes


def test_stitch_differs_from_ctp_semantics_on_cdf():
    """Section 2's core argument: stitching seed-rooted paths is NOT CTP
    evaluation.  On CDF m=3 graphs, joining the ``tl -> bl1`` and
    ``tl -> bl2`` path sets (the only stitch a path engine can do):

    * **misses** every Y-link result — its two branch paths share the stem,
      so their union is rejected as a non-tree;
    * **fabricates** trees that pair branches of *different* Y-links of the
      same top leaf, which are not minimal CTP results for the Y semantics.
    """
    dataset = cdf_graph(6, 10, 3, m=3, seed=4)
    g = dataset.graph
    sources = sorted({g.edge(e).target for e in g.edges_with_label("c")})
    targets_g = sorted({g.edge(e).target for e in g.edges_with_label("g")})
    targets_h = sorted({g.edge(e).target for e in g.edges_with_label("h")})
    engine = AllPathsEngine(undirected=False, labels=("link",))
    paths_g = engine.run(g, sources, targets_g).paths
    paths_h = engine.run(g, sources, targets_h).paths
    stitched = stitch_paths(g, paths_g, paths_h)
    from repro.ctp.config import SearchConfig

    ctp = MoLESPSearch().run(g, [sources, targets_g, targets_h], SearchConfig(uni=True))
    ctp_link_trees = {
        r.edges for r in ctp if all(g.edge(e).label == "link" for e in r.edges)
    }
    # Every single-Y result (the 3-edge link trees) is missed by the
    # stitch: its two branch paths share the stem, so the join is rejected.
    y_trees = {r.edges for r in ctp if r.size == 3}
    assert y_trees  # the expected N_L answers exist
    assert y_trees <= ctp_link_trees
    assert not (y_trees & stitched.trees)
    assert stitched.non_tree_joins >= len(y_trees)
    # What the stitch does produce (cross-link trees rooted at a shared top
    # leaf) are themselves valid CTP results — a strict subset of them.
    assert stitched.trees < ctp_link_trees


def test_wasted_fraction():
    g = Graph()
    r, s2 = g.add_node("r"), g.add_node("s2")
    g.add_edge(r, s2, "a")
    paths = {(r, s2): [(0,)]}
    report = stitch_paths(g, paths, paths)
    assert report.wasted_fraction == 1.0
    empty = stitch_paths(g, {}, {})
    assert empty.wasted_fraction == 0.0


def test_max_joins_truncates():
    g = Graph()
    r = g.add_node("r")
    lefts = [g.add_node(f"l{i}") for i in range(5)]
    rights = [g.add_node(f"r{i}") for i in range(5)]
    paths_a = {(r, left): [(g.add_edge(r, left, "a"),)] for left in lefts}
    paths_b = {(r, right): [(g.add_edge(r, right, "b"),)] for right in rights}
    full = stitch_paths(g, paths_a, paths_b)
    assert full.joins_attempted == 25
    assert not full.truncated
    capped = stitch_paths(g, paths_a, paths_b, max_joins=7)
    assert capped.truncated
    assert capped.joins_attempted == 7
    assert len(capped.trees) <= 7
