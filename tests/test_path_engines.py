"""Tests for the baseline engine simulators (Section 5.5)."""

import pytest

from repro.baselines.path_engines import (
    AllPathsEngine,
    CheckOnlyPathEngine,
    jedi_like_engine,
    neo4j_like_engine,
    postgres_like_engine,
    virtuoso_sparql_like_engine,
    virtuoso_sql_like_engine,
)
from repro.graph.graph import Graph
from repro.workloads.cdf import cdf_graph
from repro.workloads.synthetic import chain_graph


@pytest.fixture
def diamond():
    """a -> b -> d and a -> c -> d, plus a backward edge d -> a."""
    g = Graph()
    a, b, c, d = (g.add_node(x) for x in "abcd")
    g.add_edge(a, b, "x")
    g.add_edge(b, d, "x")
    g.add_edge(a, c, "y")
    g.add_edge(c, d, "y")
    g.add_edge(d, a, "back")
    return g, a, d


class TestCheckOnly:
    def test_reachability(self, diamond):
        g, a, d = diamond
        report = CheckOnlyPathEngine(uni=True).run(g, [a], [d])
        assert report.connected_pairs == {(a, d)}
        assert report.paths == {}

    def test_direction_respected(self):
        g = Graph()
        a, b = g.add_node("a"), g.add_node("b")
        g.add_edge(b, a, "x")  # only b -> a
        assert CheckOnlyPathEngine(uni=True).run(g, [a], [b]).connected_pairs == set()
        assert CheckOnlyPathEngine(uni=False).run(g, [a], [b]).connected_pairs == {(a, b)}

    def test_label_constraint(self, diamond):
        g, a, d = diamond
        engine = CheckOnlyPathEngine(uni=True, labels=("x",))
        assert engine.run(g, [a], [d]).connected_pairs == {(a, d)}
        engine = CheckOnlyPathEngine(uni=True, labels=("ghost",))
        assert engine.run(g, [a], [d]).connected_pairs == set()

    def test_max_hops(self, diamond):
        g, a, d = diamond
        engine = CheckOnlyPathEngine(uni=True)
        assert engine.run(g, [a], [d], max_hops=1).connected_pairs == set()
        assert engine.run(g, [a], [d], max_hops=2).connected_pairs == {(a, d)}

    def test_source_equals_target(self, diamond):
        g, a, _ = diamond
        report = CheckOnlyPathEngine(uni=True).run(g, [a], [a])
        assert (a, a) in report.connected_pairs

    def test_multiple_pairs(self):
        dataset = cdf_graph(4, 8, 3, m=2, seed=1)
        g = dataset.graph
        sources = sorted({g.edge(e).target for e in g.edges_with_label("c")})
        targets = sorted({g.edge(e).target for e in g.edges_with_label("g")})
        report = virtuoso_sql_like_engine().run(g, sources, targets)
        expected = {(top, bottom) for top, bottom in dataset.links}
        assert expected <= report.connected_pairs


class TestAllPaths:
    def test_counts_distinct_paths(self, diamond):
        g, a, d = diamond
        report = AllPathsEngine(undirected=False).run(g, [a], [d])
        assert report.total_paths == 2
        assert {len(p) for p in report.paths[(a, d)]} == {2}

    def test_chain_exponential_paths(self):
        graph, ((start,), (end,)) = chain_graph(5)
        report = AllPathsEngine(undirected=False).run(graph, [start], [end])
        assert report.total_paths == 32  # 2^5 label choices

    def test_undirected_finds_more(self):
        g = Graph()
        a, x, b = g.add_node("a"), g.add_node("x"), g.add_node("b")
        g.add_edge(a, x, "e")
        g.add_edge(b, x, "e")  # b -> x: directed search from a cannot use it
        directed = AllPathsEngine(undirected=False).run(g, [a], [b])
        undirected = AllPathsEngine(undirected=True).run(g, [a], [b])
        assert directed.total_paths == 0
        assert undirected.total_paths == 1

    def test_simple_paths_only(self, diamond):
        g, a, d = diamond
        # the back edge d -> a could loop forever without simplicity
        report = AllPathsEngine(undirected=False).run(g, [a], [d])
        for paths in report.paths.values():
            for path in paths:
                assert len(set(path)) == len(path)

    def test_max_hops_cuts_paths(self, diamond):
        g, a, d = diamond
        report = AllPathsEngine(undirected=False, max_hops=1).run(g, [a], [d])
        assert report.total_paths == 0

    def test_label_constraint(self, diamond):
        g, a, d = diamond
        report = AllPathsEngine(undirected=False, labels=("x",)).run(g, [a], [d])
        assert report.total_paths == 1

    def test_per_pair_mode(self, diamond):
        g, a, d = diamond
        report = AllPathsEngine(undirected=False, per_pair=True).run(g, [a], [d])
        assert report.total_paths == 2

    def test_max_paths_cap(self):
        graph, ((start,), (end,)) = chain_graph(6)
        report = AllPathsEngine(undirected=False).run(graph, [start], [end], max_paths=5)
        assert report.total_paths == 5

    def test_timeout(self):
        graph, ((start,), (end,)) = chain_graph(18)
        report = AllPathsEngine(undirected=False).run(graph, [start], [end], timeout=0.01)
        assert report.timed_out

    def test_paths_stop_at_target(self):
        # a -> t -> u -> t' : paths from a to {t} do not continue through t
        g = Graph()
        a, t, u = g.add_node("a"), g.add_node("t"), g.add_node("u")
        g.add_edge(a, t, "e")
        g.add_edge(t, u, "e")
        report = AllPathsEngine(undirected=False).run(g, [a], [t, u])
        assert report.paths[(a, t)] == [(0,)]
        # u is reached by a longer simple path that passes through t? no —
        # paths stop at the first target, so (a, u) is absent
        assert (a, u) not in report.paths


class TestFactories:
    def test_factory_semantics(self):
        assert virtuoso_sparql_like_engine(("l",)).labels == frozenset({"l"})
        assert virtuoso_sql_like_engine().labels is None
        assert postgres_like_engine().undirected is False
        assert jedi_like_engine().per_pair is True
        assert neo4j_like_engine().undirected is True

    def test_neo4j_like_explodes_on_cdf(self):
        """The per-pair undirected regime that makes Cypher time out
        (Section 5.5.1): every binding pair re-explores the graph, and
        paths wander through other pairs' endpoints."""
        dataset = cdf_graph(12, 24, 3, m=2, seed=2)
        g = dataset.graph
        sources = sorted({g.edge(e).target for e in g.edges_with_label("c")})
        targets = sorted({g.edge(e).target for e in g.edges_with_label("g")})
        report = neo4j_like_engine().run(g, sources, targets, timeout=0.2)
        jedi = jedi_like_engine(labels=("link",)).run(g, sources, targets, timeout=0.2)
        assert report.timed_out  # undirected pairwise enumeration blows up
        assert not jedi.timed_out  # label-constrained directed pairs stay cheap

    def test_postgres_like_expands_past_targets(self):
        # a -> t -> u, both t and u are endpoints: the CTE reports both
        # paths, the pruning engine stops at t
        g = Graph()
        a, t, u = g.add_node("a"), g.add_node("t"), g.add_node("u")
        g.add_edge(a, t, "e")
        g.add_edge(t, u, "e")
        cte = postgres_like_engine().run(g, [a], [t, u])
        assert cte.total_paths == 2
        pruning = AllPathsEngine(undirected=False).run(g, [a], [t, u])
        assert pruning.total_paths == 1

    def test_postgres_like_filters_sources_after_expansion(self):
        # x -> t exists but x is not a requested source: the CTE explores
        # it (base case = all edges) yet the outer WHERE drops the row
        g = Graph()
        a, x, t = g.add_node("a"), g.add_node("x"), g.add_node("t")
        g.add_edge(a, t, "e")
        g.add_edge(x, t, "e")
        report = postgres_like_engine().run(g, [a], [t])
        assert report.connected_pairs == {(a, t)}
        assert report.total_paths == 1

    def test_postgres_like_costs_scale_with_whole_graph(self):
        # the CTE regime must explore from every node, so adding structure
        # unrelated to the endpoints still shows up as work; verify it at
        # least stays correct when such structure exists
        g = Graph()
        a, t = g.add_node("a"), g.add_node("t")
        g.add_edge(a, t, "e")
        previous = g.add_node("c0")
        for i in range(1, 30):
            node = g.add_node(f"c{i}")
            g.add_edge(previous, node, "noise")
            previous = node
        report = postgres_like_engine().run(g, [a], [t])
        assert report.connected_pairs == {(a, t)}
