"""Tests for BGP evaluation (Definition 2.7, step A of Section 3)."""

import pytest

from repro.graph.datasets import figure1
from repro.graph.graph import Graph
from repro.query.ast import BGP, Condition, EdgePattern, Predicate
from repro.query.bgp import candidate_edges, evaluate_bgp, match_pattern


@pytest.fixture
def fig1():
    return figure1()


def P(var, **kwargs):
    conditions = []
    if "label" in kwargs:
        conditions.append(Condition("label", "=", kwargs["label"]))
    if "type" in kwargs:
        conditions.append(Condition("type", "=", kwargs["type"]))
    return Predicate(var, tuple(conditions))


class TestMatchPattern:
    def test_edge_label_constant(self, fig1):
        pattern = EdgePattern(P("x"), P("e", label="citizenOf"), P("y"))
        table = match_pattern(fig1, pattern)
        assert len(table) == 5
        assert set(table.columns) == {"x", "e", "y"}

    def test_source_and_target_conditions(self, fig1):
        pattern = EdgePattern(
            P("x", type="entrepreneur"), P("e", label="citizenOf"), P("y", label="USA")
        )
        table = match_pattern(fig1, pattern)
        labels = {fig1.node(v).label for v in table.column("x")}
        assert labels == {"Bob", "Carole"}

    def test_edge_var_binds_edge_ids(self, fig1):
        pattern = EdgePattern(P("x", label="Bob"), P("e"), P("y"))
        table = match_pattern(fig1, pattern)
        assert {fig1.edge(v).label for v in table.column("e")} == {"founded", "citizenOf"}

    def test_repeated_variable_self_loop(self):
        g = Graph()
        a = g.add_node("a")
        b = g.add_node("b")
        g.add_edge(a, a, "self")
        g.add_edge(a, b, "out")
        pattern = EdgePattern(P("x"), P("e"), P("x"))
        table = match_pattern(g, pattern)
        assert len(table) == 1
        assert table.columns == ("x", "e")

    def test_no_match(self, fig1):
        pattern = EdgePattern(P("x"), P("e", label="ghost"), P("y"))
        assert len(match_pattern(fig1, pattern)) == 0


class TestCandidateEdges:
    def test_prefers_edge_label_index(self, fig1):
        pattern = EdgePattern(P("x"), P("e", label="founded"), P("y"))
        candidates = list(candidate_edges(fig1, pattern))
        assert len(candidates) == 3

    def test_prefers_selective_node_index(self, fig1):
        # "Bob" matches one node; its out-edges are fewer than all edges
        pattern = EdgePattern(P("x", label="Bob"), P("e"), P("y"))
        candidates = list(candidate_edges(fig1, pattern))
        assert len(candidates) == 2

    def test_target_index(self, fig1):
        pattern = EdgePattern(P("x"), P("e"), P("y", label="USA"))
        candidates = list(candidate_edges(fig1, pattern))
        assert len(candidates) == 3

    def test_fallback_all_edges(self, fig1):
        pattern = EdgePattern(P("x"), P("e"), P("y"))
        assert len(list(candidate_edges(fig1, pattern))) == 19

    def test_type_index(self, fig1):
        pattern = EdgePattern(P("x", type="politician"), P("e"), P("y"))
        candidates = list(candidate_edges(fig1, pattern))
        # Elon has 3 outgoing, Falcon 2
        assert len(candidates) == 5


class TestEvaluateBGP:
    def test_join_two_patterns(self, fig1):
        # b1 of Section 2: x citizenOf USA and x founded OrgB => x = Bob
        bgp = BGP(
            (
                EdgePattern(P("x"), P("e1", label="citizenOf"), P("u", label="USA")),
                EdgePattern(P("x"), P("e2", label="founded"), P("o", label="OrgB")),
            )
        )
        table = evaluate_bgp(fig1, bgp)
        assert len(table) == 1
        assert fig1.node(table.column("x")[0]).label == "Bob"

    def test_chain_join(self, fig1):
        # who founded a company located in the USA?
        bgp = BGP(
            (
                EdgePattern(P("x"), P("e1", label="founded"), P("c")),
                EdgePattern(P("c"), P("e2", label="locatedIn"), P("u", label="USA")),
            )
        )
        table = evaluate_bgp(fig1, bgp)
        assert {fig1.node(v).label for v in table.column("x")} == {"Carole"}

    def test_empty_join(self, fig1):
        bgp = BGP(
            (
                EdgePattern(P("x"), P("e1", label="founded"), P("c", label="OrgB")),
                EdgePattern(P("c"), P("e2", label="locatedIn"), P("u")),
            )
        )
        assert len(evaluate_bgp(fig1, bgp)) == 0

    def test_matches_brute_force(self, fig1):
        """Index-driven evaluation equals the naive nested-loop semantics."""
        bgp = BGP(
            (
                EdgePattern(P("x"), P("e1", label="citizenOf"), P("y")),
                EdgePattern(P("x"), P("e2", label="investsIn"), P("z")),
            )
        )
        table = evaluate_bgp(fig1, bgp)
        expected = set()
        for e1 in fig1.edges():
            if e1.label != "citizenOf":
                continue
            for e2 in fig1.edges():
                if e2.label != "investsIn" or e2.source != e1.source:
                    continue
                expected.add((e1.source, e1.id, e1.target, e2.id, e2.target))
        got = set()
        for row in table.rows:
            record = dict(zip(table.columns, row))
            got.add((record["x"], record["e1"], record["y"], record["e2"], record["z"]))
        assert got == expected
