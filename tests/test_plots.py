"""Tests for the ASCII figure renderer."""

import pytest

from repro.bench.plots import (
    CHART_SPECS,
    charts_for_experiment,
    render_series_chart,
    sparkline,
    _log_scale,
)


class TestLogScale:
    def test_monotone(self):
        levels = _log_scale([1.0, 10.0, 100.0, 1000.0])
        assert levels == sorted(levels)
        assert levels[0] == 0
        assert levels[-1] == 7

    def test_none_passthrough(self):
        assert _log_scale([None, 1.0])[0] is None

    def test_all_none(self):
        assert _log_scale([None, None]) == [None, None]

    def test_constant_series(self):
        levels = _log_scale([5.0, 5.0, 5.0])
        assert len(set(levels)) == 1

    def test_zero_clamped(self):
        levels = _log_scale([0.0, 1.0, 100.0])
        assert levels[0] == 0


class TestSparkline:
    def test_length_matches(self):
        assert len(sparkline([1, 2, 3])) == 3

    def test_gaps_for_timeouts(self):
        line = sparkline([1.0, None, 100.0])
        assert line[1] == " "


class TestRenderSeriesChart:
    ROWS = [
        {"sL": 2, "algorithm": "gam", "time_ms": 1.0, "timed_out": False},
        {"sL": 4, "algorithm": "gam", "time_ms": 10.0, "timed_out": False},
        {"sL": 6, "algorithm": "gam", "time_ms": 100.0, "timed_out": True},
        {"sL": 2, "algorithm": "molesp", "time_ms": 0.5, "timed_out": False},
        {"sL": 4, "algorithm": "molesp", "time_ms": 2.0, "timed_out": False},
        {"sL": 6, "algorithm": "molesp", "time_ms": 5.0, "timed_out": False},
    ]

    def test_renders_all_series(self):
        chart = render_series_chart(self.ROWS, "sL", "algorithm", "time_ms", "t")
        assert "gam" in chart and "molesp" in chart
        assert "== t ==" in chart

    def test_timeout_becomes_gap_and_annotation(self):
        chart = render_series_chart(self.ROWS, "sL", "algorithm", "time_ms")
        gam_line = next(line for line in chart.splitlines() if line.startswith("gam"))
        assert "(1 timeouts)" in gam_line

    def test_value_range_annotation(self):
        chart = render_series_chart(self.ROWS, "sL", "algorithm", "time_ms")
        molesp_line = next(line for line in chart.splitlines() if line.startswith("molesp"))
        assert "0.5" in molesp_line and "5" in molesp_line

    def test_all_timed_out_series(self):
        rows = [{"x": 1, "s": "a", "v": 1.0, "timed_out": True}]
        chart = render_series_chart(rows, "x", "s", "v")
        assert "(all timed out)" in chart


class TestChartsForExperiment:
    def test_known_experiments_have_specs(self):
        for name in ("fig02", "fig10", "fig11", "fig12", "fig13", "fig14"):
            assert name in CHART_SPECS

    def test_unknown_experiment_empty(self):
        assert charts_for_experiment("table1", [{"a": 1}]) == ""

    def test_panels_grouped(self):
        rows = [
            {"family": "line", "m": 3, "sL": 2, "algorithm": "gam", "time_ms": 1.0, "timed_out": False},
            {"family": "line", "m": 5, "sL": 2, "algorithm": "gam", "time_ms": 2.0, "timed_out": False},
        ]
        charts = charts_for_experiment("fig11", rows)
        assert "family=line, m=3" in charts
        assert "family=line, m=5" in charts

    def test_cli_chart_flag(self, capsys):
        from repro.bench.cli import main as bench_main

        code = bench_main(["fig02", "--scale", "0.2", "--no-save", "--chart"])
        assert code == 0
        out = capsys.readouterr().out
        assert "(log) over N" in out
