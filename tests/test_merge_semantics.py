"""Dedicated tests for the Merge pre-conditions (Section 4.2, DESIGN §1.3).

The relaxed Merge2 — overlap of satisfied seed sets allowed only through
the shared root — is the single most consequential interpretation choice
in this reproduction; these tests nail its behaviour from first
principles, independent of any workload.
"""

import pytest

from repro.ctp.config import SearchConfig
from repro.ctp.gam import GAMSearch
from repro.ctp.molesp import MoLESPSearch
from repro.graph.graph import Graph


class TestMergeThroughSeedRoot:
    """Merging two subtrees at a *seed* node they both count."""

    @pytest.fixture
    def seed_bridge(self):
        """A - x - B - y - C: B (a seed) is the only bridge node, and the
        full result must merge two subtrees that both contain B."""
        g = Graph()
        a, x, b, y, c = (g.add_node(n) for n in "axbyc")
        g.add_edge(a, x, "e")
        g.add_edge(x, b, "e")
        g.add_edge(b, y, "e")
        g.add_edge(y, c, "e")
        return g, a, b, c

    def test_result_found(self, seed_bridge):
        g, a, b, c = seed_bridge
        results = MoLESPSearch().run(g, [[a], [b], [c]])
        assert len(results) == 1
        assert results.results[0].size == 4

    def test_branching_at_seed(self):
        """Result with a *degree-3* seed node: only constructible by
        merging at the seed, impossible under strict Merge2."""
        g = Graph()
        b = g.add_node("B")
        arms = {}
        for name in ("A", "C", "D"):
            mid = g.add_node(f"m{name}")
            leaf = g.add_node(name)
            g.add_edge(b, mid, "e")
            g.add_edge(mid, leaf, "e")
            arms[name] = leaf
        seeds = [[arms["A"]], [b], [arms["C"]], [arms["D"]]]
        relaxed = GAMSearch().run(g, seeds)
        assert len(relaxed) == 1
        assert relaxed.results[0].size == 6
        strict = GAMSearch().run(g, seeds, SearchConfig(strict_merge2=True))
        assert len(strict) == 0


class TestMergeBlockedCorrectly:
    def test_two_seeds_of_same_set_never_merged(self):
        """Two different seeds of one set reaching the same node must not
        combine (Definition 2.8 minimality condition ii)."""
        g = Graph()
        s1, s2, hub, t = (g.add_node(n) for n in ("s1", "s2", "hub", "t"))
        g.add_edge(s1, hub, "e")
        g.add_edge(s2, hub, "e")
        g.add_edge(hub, t, "e")
        results = MoLESPSearch().run(g, [[s1, s2], [t]])
        # valid: s1-hub-t and s2-hub-t; invalid: anything with both s1, s2
        assert len(results) == 2
        for result in results:
            assert not ({s1, s2} <= result.nodes)

    def test_merge1_requires_single_shared_node(self):
        """Trees overlapping in two nodes (a cycle) must not merge."""
        g = Graph()
        a, b = g.add_node("a"), g.add_node("b")
        x, y = g.add_node("x"), g.add_node("y")
        g.add_edge(a, x, "e")
        g.add_edge(x, y, "p1")
        g.add_edge(x, y, "p2")  # parallel edge: potential cycle
        g.add_edge(y, b, "e")
        results = MoLESPSearch().run(g, [[a], [b]])
        assert len(results) == 2  # one result per parallel edge, no cycles
        for result in results:
            assert len(result.edges) == 3

    def test_no_self_merge(self, fig1, fig1_seeds):
        """A tree never merges with itself (tp is t1 check)."""
        results = MoLESPSearch().run(fig1, fig1_seeds)
        # if self-merges happened, edge sets would double and is_tree
        # validation in other tests would fail; here check stats coherence
        assert results.stats.merges <= results.stats.merges_attempted


class TestMergeUniInteraction:
    def test_merge_rejected_when_two_arb_roots(self):
        """a -> x <- b: both paths are arborescences rooted at their seed,
        neither rooted at the shared node x, so the UNI merge is invalid."""
        g = Graph()
        a, x, b = g.add_node("a"), g.add_node("x"), g.add_node("b")
        g.add_edge(a, x, "e")
        g.add_edge(b, x, "e")
        bidirectional = MoLESPSearch().run(g, [[a], [b]])
        uni = MoLESPSearch().run(g, [[a], [b]], SearchConfig(uni=True))
        assert len(bidirectional) == 1
        assert len(uni) == 0

    def test_merge_accepted_when_one_side_rooted_at_shared(self):
        """x -> a and x -> b: x reaches both seeds."""
        g = Graph()
        a, x, b = g.add_node("a"), g.add_node("x"), g.add_node("b")
        g.add_edge(x, a, "e")
        g.add_edge(x, b, "e")
        uni = MoLESPSearch().run(g, [[a], [b]], SearchConfig(uni=True))
        assert len(uni) == 1
