"""Tests for the DPBF exact group-Steiner baseline."""

import pytest

from repro.baselines.dpbf import dpbf_optimal_tree
from repro.ctp.config import WILDCARD
from repro.errors import SearchError
from repro.graph.graph import Graph
from repro.workloads.synthetic import line_graph, star_graph


def test_line_optimum():
    graph, seeds = line_graph(3, 2)
    result = dpbf_optimal_tree(graph, seeds)
    assert result.size == 6
    assert result.weight == 6.0


def test_star_optimum():
    graph, seeds = star_graph(5, 2)
    result = dpbf_optimal_tree(graph, seeds)
    assert result.size == 10


def test_single_node_solution():
    g = Graph()
    a = g.add_node("a")
    g.add_node("b")
    g.add_edge(0, 1)
    result = dpbf_optimal_tree(g, [[a], [a]])
    assert result.size == 0
    assert result.nodes == frozenset({a})
    assert result.seeds == (a, a)


def test_weights_drive_choice():
    """Parallel edges with different weights: DPBF takes the light one."""
    g = Graph()
    a, b = g.add_node("a"), g.add_node("b")
    heavy = g.add_edge(a, b, "h", weight=5.0)
    light = g.add_edge(a, b, "l", weight=1.0)
    result = dpbf_optimal_tree(g, [[a], [b]])
    assert result.edges == frozenset({light})
    assert result.weight == 1.0


def test_detour_cheaper_than_direct():
    g = Graph()
    a, b, c = g.add_node("a"), g.add_node("b"), g.add_node("c")
    g.add_edge(a, b, "direct", weight=10.0)
    e1 = g.add_edge(a, c, "via", weight=1.0)
    e2 = g.add_edge(c, b, "via", weight=1.0)
    result = dpbf_optimal_tree(g, [[a], [b]])
    assert result.edges == frozenset({e1, e2})


def test_multi_node_seed_sets_choose_best_pair():
    g = Graph()
    a1, a2, b1, b2 = (g.add_node(n) for n in ("a1", "a2", "b1", "b2"))
    g.add_edge(a1, b1, weight=7.0)
    cheap = g.add_edge(a2, b2, weight=1.0)
    result = dpbf_optimal_tree(g, [[a1, a2], [b1, b2]])
    assert result.edges == frozenset({cheap})
    assert result.seeds == (a2, b2)


def test_disconnected_returns_none():
    g = Graph()
    a = g.add_node("a")
    b = g.add_node("b")
    assert dpbf_optimal_tree(g, [[a], [b]]) is None


def test_empty_seed_set_returns_none():
    g = Graph()
    a = g.add_node("a")
    assert dpbf_optimal_tree(g, [[a], []]) is None


def test_wildcard_rejected():
    g = Graph()
    a = g.add_node("a")
    with pytest.raises(SearchError):
        dpbf_optimal_tree(g, [[a], WILDCARD])


def test_uni_requires_directed_reachability():
    """a -> x <- b: bidirectionally connected, but no node reaches both
    seeds along edge directions, so the UNI optimum does not exist."""
    g = Graph()
    a, x, b = g.add_node("a"), g.add_node("x"), g.add_node("b")
    g.add_edge(a, x)
    g.add_edge(b, x)
    assert dpbf_optimal_tree(g, [[a], [b]]) is not None
    assert dpbf_optimal_tree(g, [[a], [b]], uni=True) is None


def test_uni_arborescence_found():
    """r -> a, r -> b: r reaches both seeds."""
    g = Graph()
    r, a, b = g.add_node("r"), g.add_node("a"), g.add_node("b")
    e1 = g.add_edge(r, a)
    e2 = g.add_edge(r, b)
    result = dpbf_optimal_tree(g, [[a], [b]], uni=True)
    assert result is not None
    assert result.edges == frozenset({e1, e2})


def test_m4_star():
    graph, seeds = star_graph(4, 3)
    result = dpbf_optimal_tree(graph, seeds)
    assert result.size == 12


def test_timeout_returns_none():
    graph, seeds = star_graph(8, 6)
    assert dpbf_optimal_tree(graph, seeds, timeout=0.0) is None
