"""Query-scoped SearchContext: sharing is reuse, never a semantics change.

Three layers:

* unit tests of :class:`~repro.ctp.interning.ResultCache` (the eviction
  bound) and :class:`~repro.ctp.interning.SearchContext` (adoption rules,
  handle interning);
* engine-level tests that re-running a search inside one context serves
  pool unions and rooted results from the shared state while producing
  byte-identical result sets;
* evaluator-level equivalence: ``shared_context=True`` vs the
  pool-per-CTP baseline across the golden-matrix configurations (same
  rows, same per-result seeds and weights), plus cache-hit counter
  assertions on multi-CTP overlapping-seed queries.
"""

from __future__ import annotations

import pytest

from repro.ctp.config import SearchConfig
from repro.ctp.interning import EdgeSetPool, ResultCache, SearchContext
from repro.ctp.molesp import MoLESPSearch
from repro.ctp.registry import evaluate_ctp
from repro.ctp.results import ResultTree
from repro.graph.datasets import figure1
from repro.graph.graph import Graph
from repro.query.evaluator import evaluate_query

Q1 = """
SELECT ?x ?y ?z ?w
WHERE {
  ?x citizenOf "USA" .
  ?y citizenOf "France" .
  ?z citizenOf "France" .
  FILTER(type(?x) = "entrepreneur")
  FILTER(type(?y) = "entrepreneur")
  FILTER(type(?z) = "politician")
  CONNECT(?x, ?y, ?z) AS ?w
}
"""

TWO_CTP = """
SELECT ?x ?w1 ?w2 WHERE {
  ?x founded "OrgB" .
  CONNECT(?x, "France") AS ?w1 MAX 3
  CONNECT(?x, "National Liberal Party") AS ?w2 MAX 2
}
"""

DUP_CTP = """
SELECT ?x ?w1 ?w2 WHERE {
  ?x founded "OrgB" .
  CONNECT(?x, "France") AS ?w1 MAX 3
  CONNECT(?x, "France") AS ?w2 MAX 3
}
"""

WILDCARD_Q = """
SELECT ?x ?w WHERE {
  CONNECT(?x, *) AS ?w MAX 2
  FILTER(type(?x) = "politician")
}
"""


def canonical_rows(result):
    """Row identity with trees collapsed to (edges, seeds, weight)."""
    rows = [
        tuple(
            (tuple(sorted(v.edges)), v.seeds, round(v.weight, 9))
            if isinstance(v, ResultTree)
            else v
            for v in row
        )
        for row in result.rows
    ]
    return sorted(rows)


# ----------------------------------------------------------------------
# ResultCache: the eviction bound
# ----------------------------------------------------------------------
class TestResultCache:
    def test_hit_miss_counters(self):
        cache = ResultCache(4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert (cache.hits, cache.misses) == (1, 1)

    def test_eviction_bound(self):
        cache = ResultCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert len(cache) == 2
        assert cache.evictions == 1
        assert cache.get("a") is None  # the oldest entry was evicted

    def test_lru_order_hits_refresh(self):
        cache = ResultCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a": "b" becomes least recently used
        cache.put("c", 3)
        assert cache.get("a") == 1
        assert cache.get("b") is None

    def test_none_rejected(self):
        cache = ResultCache(2)
        with pytest.raises(ValueError):
            cache.put("a", None)

    def test_bad_maxsize(self):
        with pytest.raises(ValueError):
            ResultCache(0)


# ----------------------------------------------------------------------
# SearchContext: adoption rules and handles
# ----------------------------------------------------------------------
class TestSearchContext:
    def test_adopt_binds_first_graph(self, fig1):
        context = SearchContext()
        pool = context.adopt(fig1, True)
        assert isinstance(pool, EdgeSetPool)
        assert context.adopt(fig1, True) is pool
        assert context.runs == 2

    def test_adopt_rejects_other_graph(self, fig1):
        context = SearchContext()
        assert context.adopt(fig1, True) is not None
        other = Graph("other")
        assert context.adopt(other, True) is None
        assert context.rejects == 1

    def test_adopt_rejects_interning_mismatch(self, fig1):
        context = SearchContext(interning=True)
        assert context.adopt(fig1, False) is None
        assert context.rejects == 1

    def test_frozen_pool_context(self, fig1):
        context = SearchContext(interning=False)
        pool = context.adopt(fig1, False)
        assert pool is context.pool
        assert not isinstance(pool, EdgeSetPool)

    def test_fingerprint_distinguishes_configs(self):
        fingerprint = SearchContext.config_fingerprint
        assert fingerprint(SearchConfig()) == fingerprint(SearchConfig())
        assert fingerprint(SearchConfig()) != fingerprint(SearchConfig(max_edges=3))
        assert fingerprint(SearchConfig()) != fingerprint(SearchConfig(uni=True))
        # shared_context itself is representation-only: same fingerprint.
        assert fingerprint(SearchConfig()) == fingerprint(SearchConfig(shared_context=False))


# ----------------------------------------------------------------------
# Engine-level sharing: identical outcomes, shared work
# ----------------------------------------------------------------------
class TestEngineContextSharing:
    def test_second_run_reuses_pool_and_rooted_cache(self, fig1, fig1_seeds):
        context = SearchContext()
        config = SearchConfig(backend="dict")
        first = MoLESPSearch().run(fig1, fig1_seeds, config, context=context)
        second = MoLESPSearch().run(fig1, fig1_seeds, config, context=context)
        assert [r.edges for r in second] == [r.edges for r in first]
        assert [r.seeds for r in second] == [r.seeds for r in first]
        # Every edge set the second run derives was already interned.
        assert second.stats.pool_sets == 0
        assert second.stats.pool_union_hits > 0
        # Every reported result is served by the per-root cache.
        assert second.stats.ctx_rooted_hits == second.stats.results_found
        assert first.stats.ctx_rooted_hits == 0
        assert context.runs == 2

    def test_shared_run_matches_private_run(self, fig1, fig1_seeds):
        context = SearchContext()
        config = SearchConfig(backend="dict")
        shared = MoLESPSearch().run(fig1, fig1_seeds, config, context=context)
        private = MoLESPSearch().run(fig1, fig1_seeds, config)
        assert [r.edges for r in shared] == [r.edges for r in private]
        assert [r.seeds for r in shared] == [r.seeds for r in private]
        assert [r.weight for r in shared] == [r.weight for r in private]
        # Order-sensitive search counters are unchanged by sharing.
        for key in ("grows", "merges", "trees_kept", "results_found", "pruned_history"):
            assert getattr(shared.stats, key) == getattr(private.stats, key)

    def test_incompatible_context_falls_back(self, fig1, fig1_seeds):
        context = SearchContext(interning=False)
        result = MoLESPSearch().run(fig1, fig1_seeds, SearchConfig(backend="dict"), context=context)
        baseline = MoLESPSearch().run(fig1, fig1_seeds, SearchConfig(backend="dict"))
        assert context.rejects == 1
        assert [r.edges for r in result] == [r.edges for r in baseline]

    def test_evaluate_ctp_accepts_context(self, fig1, fig1_seeds):
        context = SearchContext()
        first = evaluate_ctp(fig1, fig1_seeds, "molesp", context=context, backend="dict")
        second = evaluate_ctp(fig1, fig1_seeds, "molesp", context=context, backend="dict")
        assert context.runs == 2
        assert second.stats.pool_sets == 0
        assert [r.edges for r in first] == [r.edges for r in second]


# ----------------------------------------------------------------------
# Evaluator-level equivalence: shared context vs pool per CTP
# ----------------------------------------------------------------------
QUERIES = {
    "q1": Q1,
    "q1-uni": Q1.replace("AS ?w", "AS ?w UNI"),
    "q1-max": Q1.replace("AS ?w", "AS ?w MAX 3"),
    "q1-label": Q1.replace("AS ?w", 'AS ?w LABEL("citizenOf", "parentOf")'),
    "q1-top": Q1.replace("AS ?w", "AS ?w SCORE size TOP 5"),
    "two-ctp": TWO_CTP,
    "dup-ctp": DUP_CTP,
    "wildcard": WILDCARD_Q,
}

CONFIGS = {
    "default": {},
    "csr": {"backend": "csr"},
    "no-interning": {"interning": False},
    "balanced": {"balanced_queues": True},
}

ALGORITHMS = ("molesp", "gam")


def _cases():
    for query_name, query in QUERIES.items():
        for config_name, overrides in CONFIGS.items():
            for algo in ALGORITHMS:
                if algo == "gam" and (config_name != "default" or query_name not in ("q1", "two-ctp")):
                    continue  # keep the matrix fast; gam is the completeness cross-check
                yield query_name, query, config_name, overrides, algo


@pytest.mark.parametrize(
    "query_name,query,config_name,overrides,algo",
    [pytest.param(*case, id=f"{case[0]}|{case[2]}|{case[4]}") for case in _cases()],
)
def test_shared_context_row_equivalence(fig1, query_name, query, config_name, overrides, algo):
    """Shared-context evaluation is row-for-row the pool-per-CTP evaluation."""
    shared = evaluate_query(
        fig1, query, algorithm=algo, base_config=SearchConfig(shared_context=True, **overrides)
    )
    baseline = evaluate_query(
        fig1, query, algorithm=algo, base_config=SearchConfig(shared_context=False, **overrides)
    )
    assert shared.columns == baseline.columns
    assert canonical_rows(shared) == canonical_rows(baseline)
    assert baseline.context_stats is None
    assert shared.context_stats is not None
    for shared_report, base_report in zip(shared.ctp_reports, baseline.ctp_reports):
        assert shared_report.seed_set_sizes == base_report.seed_set_sizes
        assert [r.weight for r in shared_report.result_set] == [
            r.weight for r in base_report.result_set
        ]


def test_bft_shared_context_equivalence(fig1):
    shared = evaluate_query(fig1, TWO_CTP, algorithm="bft-am", base_config=SearchConfig(shared_context=True))
    baseline = evaluate_query(fig1, TWO_CTP, algorithm="bft-am", base_config=SearchConfig(shared_context=False))
    assert canonical_rows(shared) == canonical_rows(baseline)
    assert shared.context_stats["runs"] == 2


# ----------------------------------------------------------------------
# Cache-hit accounting on multi-CTP queries
# ----------------------------------------------------------------------
class TestCacheCounters:
    def test_duplicate_ctp_is_memo_hit(self, fig1):
        result = evaluate_query(fig1, DUP_CTP)
        first, second = result.ctp_reports
        assert not first.cache_hit
        assert second.cache_hit
        assert second.result_set is first.result_set
        stats = result.context_stats
        assert stats["ctp_cache_hits"] == 1
        assert stats["runs"] == 1  # only the first CTP ran a search
        assert stats["seed_cache_hits"] == 2  # both seed sets re-derived from cache

    def test_overlapping_seed_ctps_share_pool(self, fig1):
        result = evaluate_query(fig1, TWO_CTP)
        assert [r.cache_hit for r in result.ctp_reports] == [False, False]
        stats = result.context_stats
        assert stats["runs"] == 2
        assert stats["ctp_cache_hits"] == 0
        assert stats["seed_cache_hits"] == 1  # the shared ?x seed set
        # The second CTP re-derives edge sets around the shared ?x seeds.
        assert stats["pool_union_hits"] > 0
        assert all(r.shared_context for r in result.ctp_reports)

    def test_limit_truncated_ctp_not_memoized(self, fig1):
        query = DUP_CTP.replace("MAX 3", "MAX 3 LIMIT 1")
        result = evaluate_query(fig1, query)
        assert [r.cache_hit for r in result.ctp_reports] == [False, False]
        assert result.context_stats["ctp_cache_hits"] == 0

    def test_no_shared_context_reports(self, fig1):
        result = evaluate_query(fig1, DUP_CTP, base_config=SearchConfig(shared_context=False))
        assert result.context_stats is None
        assert [r.cache_hit for r in result.ctp_reports] == [False, False]
        assert [r.shared_context for r in result.ctp_reports] == [False, False]

    def test_explicit_context_amortizes_across_queries(self, fig1):
        context = SearchContext()
        first = evaluate_query(fig1, TWO_CTP, context=context)
        second = evaluate_query(fig1, TWO_CTP, context=context)
        assert canonical_rows(first) == canonical_rows(second)
        # The second query's CTPs are straight memo hits.
        assert all(r.cache_hit for r in second.ctp_reports)
        assert second.context_stats["ctp_cache_hits"] == 2

    def test_cross_graph_context_never_serves_stale_rows(self):
        """Regression: the memo key carries the graph by identity, so an
        explicit context reused on a *different* graph must re-run the
        search instead of replaying the first graph's result sets."""
        sparse = Graph("sparse")
        a1, b1, x1 = sparse.add_node("A"), sparse.add_node("B"), sparse.add_node("X")
        sparse.add_edge(a1, x1, "e")
        sparse.add_edge(x1, b1, "e")
        dense = Graph("dense")
        a2, b2 = dense.add_node("A"), dense.add_node("B")
        for _ in range(3):
            mid = dense.add_node("M")
            dense.add_edge(a2, mid, "e")
            dense.add_edge(mid, b2, "e")
        query = 'SELECT ?w WHERE { CONNECT("A", "B") AS ?w }'
        context = SearchContext()
        first = evaluate_query(sparse, query, context=context)
        second = evaluate_query(dense, query, context=context)
        assert len(first) == 1
        assert len(second) == 3  # not the sparse graph's cached single row
        assert not second.ctp_reports[0].cache_hit
        assert context.rejects == 1  # pool adoption refused the second graph

    def test_mutated_graph_invalidates_memo(self):
        """Regression: growing the (append-only) graph between queries that
        share an explicit context must invalidate the cross-CTP memo —
        graph identity alone is not enough."""
        graph = Graph("growing")
        a, b = graph.add_node("A"), graph.add_node("B")
        mid = graph.add_node("M")
        graph.add_edge(a, mid, "e")
        graph.add_edge(mid, b, "e")
        query = 'SELECT ?w WHERE { CONNECT("A", "B") AS ?w }'
        context = SearchContext()
        first = evaluate_query(graph, query, context=context)
        assert len(first) == 1
        mid2 = graph.add_node("M2")
        graph.add_edge(a, mid2, "e")
        graph.add_edge(mid2, b, "e")
        second = evaluate_query(graph, query, context=context)
        assert not second.ctp_reports[0].cache_hit
        assert len(second) == 2  # the new connection is found, not the stale set

    def test_different_filters_not_conflated(self, fig1):
        query = DUP_CTP.replace("AS ?w2 MAX 3", "AS ?w2 MAX 2")
        result = evaluate_query(fig1, query)
        first, second = result.ctp_reports
        assert not second.cache_hit  # different config fingerprint
        assert max(r.size for r in first.result_set) <= 3
        # The tighter MAX excludes every 3-edge connection: the differing
        # result set proves the memo did not conflate the two configs.
        assert len(second.result_set) == 0
