"""The CTP cost model: golden feature vectors, estimator properties, mode choice.

The scheduler (repro.query.parallel / repro.query.costmodel) relies on
exactly three properties of the estimate — monotone in seed-set size,
monotone in label cardinality (reachable edges), never negative — plus
picklability (an estimator may ride a job to a pool worker).  Hypothesis
pins the properties; golden vectors pin the feature extraction per
algorithm class so a silent formula change is visible in review.
"""

import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.ctp.config import WILDCARD, SearchConfig
from repro.ctp.registry import ALGORITHMS
from repro.graph.graph import Graph
from repro.query.costmodel import (
    ALGORITHM_WEIGHTS,
    DEFAULT_ALGORITHM_WEIGHT,
    PROCESS_COLD_THRESHOLD,
    PROCESS_WARM_THRESHOLD,
    THREAD_DISPATCH_THRESHOLD,
    CostFeatures,
    CTPCostEstimator,
    ScheduleReport,
    choose_mode,
)

SETTINGS = settings(max_examples=60, deadline=None)


def labeled_graph() -> Graph:
    """4 nodes; 3 'a' edges, 2 'b' edges, 1 'c' edge."""
    graph = Graph("cost")
    for index in range(4):
        graph.add_node(f"n{index}")
    for src, dst in ((0, 1), (1, 2), (2, 3)):
        graph.add_edge(src, dst, "a")
    for src, dst in ((0, 2), (1, 3)):
        graph.add_edge(src, dst, "b")
    graph.add_edge(0, 3, "c")
    return graph


# ----------------------------------------------------------------------
# golden feature vectors
# ----------------------------------------------------------------------
def test_feature_vector_golden():
    graph = labeled_graph()
    estimator = CTPCostEstimator()
    features = estimator.features(graph, "bft", [2, 3], SearchConfig(max_edges=5))
    assert features.as_tuple() == ("bft", 2, 5, 6, 0, 5)


def test_feature_vector_wildcard_counts_whole_node_set():
    graph = labeled_graph()
    features = CTPCostEstimator().features(graph, "esp", [2, None], None)
    # The None (wildcard) set counts as all 4 nodes.
    assert features.as_tuple() == ("esp", 2, 6, 6, 0, None)


def test_feature_vector_label_filter_uses_label_index_cardinality():
    graph = labeled_graph()
    estimator = CTPCostEstimator()
    for labels, expected in ((frozenset({"a"}), 3), (frozenset({"b"}), 2), (frozenset({"a", "b"}), 5)):
        features = estimator.features(graph, "bft", [1], SearchConfig(labels=labels))
        assert features.reachable_edges == expected


@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_every_registered_algorithm_has_a_weight(algorithm):
    assert algorithm in ALGORITHM_WEIGHTS


def test_golden_estimates_per_algorithm_class():
    """One pinned estimate per registry algorithm: same features, ratios
    exactly the class weights — the review-visible golden vector."""
    graph = labeled_graph()
    estimator = CTPCostEstimator()
    base = estimator.estimate(
        CostFeatures(algorithm="bft", num_seed_sets=2, total_seed_size=4,
                     reachable_edges=6, delta_size=0, max_edges=4)
    )
    for algorithm, weight in ALGORITHM_WEIGHTS.items():
        estimate = estimator.estimate_ctp(graph, algorithm, [2, 2], SearchConfig(max_edges=4))
        assert estimate == pytest.approx(base * weight)
    # The heuristic ESP family must sit below the complete families.
    assert ALGORITHM_WEIGHTS["esp"] < ALGORITHM_WEIGHTS["bft"] <= ALGORITHM_WEIGHTS["gam"]


def test_unknown_algorithm_assumes_worst_class():
    assert CTPCostEstimator().weight("user-registered") == DEFAULT_ALGORITHM_WEIGHT


# ----------------------------------------------------------------------
# estimator properties (Hypothesis)
# ----------------------------------------------------------------------
features_strategy = st.builds(
    CostFeatures,
    algorithm=st.sampled_from(sorted(ALGORITHM_WEIGHTS) + ["mystery"]),
    num_seed_sets=st.integers(min_value=0, max_value=8),
    total_seed_size=st.integers(min_value=0, max_value=10_000),
    reachable_edges=st.integers(min_value=0, max_value=1_000_000),
    delta_size=st.integers(min_value=0, max_value=10_000),
    max_edges=st.one_of(st.none(), st.integers(min_value=0, max_value=200)),
)


@SETTINGS
@given(features=features_strategy, bump=st.integers(min_value=1, max_value=1000))
def test_estimate_monotone_in_seed_size(features, bump):
    estimator = CTPCostEstimator()
    grown = CostFeatures(
        algorithm=features.algorithm,
        num_seed_sets=features.num_seed_sets,
        total_seed_size=features.total_seed_size + bump,
        reachable_edges=features.reachable_edges,
        delta_size=features.delta_size,
        max_edges=features.max_edges,
    )
    assert estimator.estimate(grown) > estimator.estimate(features) >= 0.0


@SETTINGS
@given(features=features_strategy, bump=st.integers(min_value=1, max_value=100_000))
def test_estimate_monotone_in_label_cardinality(features, bump):
    estimator = CTPCostEstimator()
    wider = CostFeatures(
        algorithm=features.algorithm,
        num_seed_sets=features.num_seed_sets,
        total_seed_size=features.total_seed_size,
        reachable_edges=features.reachable_edges + bump,
        delta_size=features.delta_size,
        max_edges=features.max_edges,
    )
    assert estimator.estimate(wider) > estimator.estimate(features) >= 0.0


@SETTINGS
@given(features=features_strategy)
def test_estimate_never_negative_and_picklable(features):
    estimator = CTPCostEstimator()
    assert estimator.estimate(features) >= 0.0
    clone = pickle.loads(pickle.dumps(estimator))
    assert clone.estimate(features) == estimator.estimate(features)
    assert pickle.loads(pickle.dumps(features)) == features


def test_wildcard_seed_sets_dominate_bound_ones():
    graph = labeled_graph()
    estimator = CTPCostEstimator()
    bound = estimator.estimate_ctp(graph, "bft", [1, 1], None)
    wild = estimator.estimate_ctp(graph, "bft", [1, None], None)
    assert wild > bound
    assert WILDCARD is not None  # the sentinel the sizes stand in for


# ----------------------------------------------------------------------
# auto mode choice
# ----------------------------------------------------------------------
def test_choose_mode_serial_below_thread_threshold():
    assert choose_mode(THREAD_DISPATCH_THRESHOLD - 1, 4, 4) == "serial"


def test_choose_mode_serial_when_nothing_to_overlap():
    assert choose_mode(1e9, 1, 8) == "serial"
    assert choose_mode(1e9, 8, 1) == "serial"


def test_choose_mode_thread_between_thresholds():
    assert choose_mode(THREAD_DISPATCH_THRESHOLD, 4, 4) == "thread"
    assert choose_mode(PROCESS_COLD_THRESHOLD - 1, 4, 4) == "thread"


def test_choose_mode_process_above_cold_threshold_without_pool():
    assert choose_mode(PROCESS_COLD_THRESHOLD, 4, 4) == "process"


class _FakePool:
    def __init__(self, warm: bool):
        self.closed = False
        self._warm = warm

    def dispatch_overhead(self) -> float:
        return PROCESS_WARM_THRESHOLD if self._warm else PROCESS_COLD_THRESHOLD


def test_choose_mode_warm_pool_lowers_the_process_bar():
    cost = PROCESS_WARM_THRESHOLD
    assert choose_mode(cost, 4, 4) == "thread"  # no pool: cold bar
    assert choose_mode(cost, 4, 4, pool=_FakePool(warm=True)) == "process"
    assert choose_mode(cost, 4, 4, pool=_FakePool(warm=False)) == "thread"


def test_choose_mode_explicit_overhead_wins_over_pool():
    assert choose_mode(100.0, 4, 4, pool=_FakePool(warm=True), pool_overhead=50.0) == "process"


# ----------------------------------------------------------------------
# offline fitting (CTPCostEstimator.fit)
# ----------------------------------------------------------------------
def _report(algorithms, estimates, actuals) -> ScheduleReport:
    return ScheduleReport(
        enabled=True,
        algorithms=list(algorithms),
        estimates=list(estimates),
        actual_seconds=list(actuals),
    )


def test_fit_golden_closed_form():
    """Actuals exactly 2x the estimates => the fitted weight doubles.

    base_i = estimate_i / w_old, actual_i = 2 * estimate_i, so the
    closed form sum(base*actual)/sum(base^2) collapses to 2 * w_old —
    an exact golden value, no tolerance needed.
    """
    estimator = CTPCostEstimator()
    reports = [
        _report(["bft", "bft"], [10.0, 30.0], [20.0, 60.0]),
        _report(["bft"], [5.0], [10.0]),
    ]
    fitted = estimator.fit(reports)
    assert fitted.weight("bft") == pytest.approx(2.0 * ALGORITHM_WEIGHTS["bft"])
    # Unsampled classes keep their checked-in weights.
    for algorithm, weight in ALGORITHM_WEIGHTS.items():
        if algorithm != "bft":
            assert fitted.weight(algorithm) == weight


def test_fit_least_squares_over_noisy_samples():
    """Noisy samples land on the analytic least-squares optimum."""
    estimator = CTPCostEstimator()
    estimates = [10.0, 20.0, 40.0]
    actuals = [11.0, 19.0, 42.0]
    fitted = estimator.fit([_report(["gam"] * 3, estimates, actuals)])
    w_old = ALGORITHM_WEIGHTS["gam"]
    bases = [e / w_old for e in estimates]
    expected = sum(b * a for b, a in zip(bases, actuals)) / sum(b * b for b in bases)
    assert fitted.weight("gam") == pytest.approx(expected)


def test_fit_ignores_degenerate_samples_and_empty_input():
    estimator = CTPCostEstimator()
    assert estimator.fit([]) == estimator
    # Zero/negative estimates or actuals carry no signal and are skipped.
    fitted = estimator.fit([_report(["esp", "esp"], [0.0, 10.0], [5.0, -1.0])])
    assert fitted == estimator


def test_fit_learns_a_weight_for_an_unlisted_algorithm():
    """A user-registered engine starts at the default weight and gets its
    own fitted entry once reports mention it."""
    estimator = CTPCostEstimator()
    fitted = estimator.fit([_report(["custom"], [8.0], [4.0])])
    base = 8.0 / DEFAULT_ALGORITHM_WEIGHT
    assert fitted.weight("custom") == pytest.approx(4.0 / base)
    # Fitting is stable: refitting with consistent data is a fixed point.
    refit = fitted.fit([_report(["custom"], [fitted.weight("custom") * base], [4.0])])
    assert refit.weight("custom") == pytest.approx(fitted.weight("custom"))


def test_fitted_estimator_predicts_seconds_on_linear_data():
    """After fitting, the estimator's output approximates measured seconds
    for the fitted class (weights absorb the cost-unit -> seconds scale)."""
    graph = labeled_graph()
    estimator = CTPCostEstimator()
    config = SearchConfig(max_edges=4)
    estimate = estimator.estimate_ctp(graph, "molesp", [2, 2], config)
    measured = 0.125  # seconds the CTP "actually" took
    fitted = estimator.fit([_report(["molesp"], [estimate], [measured])])
    assert fitted.estimate_ctp(graph, "molesp", [2, 2], config) == pytest.approx(measured)


def test_fit_result_is_frozen_and_picklable():
    fitted = CTPCostEstimator().fit([_report(["bft"], [4.0], [8.0])])
    assert pickle.loads(pickle.dumps(fitted)) == fitted
    with pytest.raises(Exception):
        fitted.weights = ()
