"""The CTP cost model: golden feature vectors, estimator properties, mode choice.

The scheduler (repro.query.parallel / repro.query.costmodel) relies on
exactly three properties of the estimate — monotone in seed-set size,
monotone in label cardinality (reachable edges), never negative — plus
picklability (an estimator may ride a job to a pool worker).  Hypothesis
pins the properties; golden vectors pin the feature extraction per
algorithm class so a silent formula change is visible in review.
"""

import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.ctp.config import WILDCARD, SearchConfig
from repro.ctp.registry import ALGORITHMS
from repro.graph.graph import Graph
from repro.query.costmodel import (
    ALGORITHM_WEIGHTS,
    DEFAULT_ALGORITHM_WEIGHT,
    PROCESS_COLD_THRESHOLD,
    PROCESS_WARM_THRESHOLD,
    THREAD_DISPATCH_THRESHOLD,
    CostFeatures,
    CTPCostEstimator,
    choose_mode,
)

SETTINGS = settings(max_examples=60, deadline=None)


def labeled_graph() -> Graph:
    """4 nodes; 3 'a' edges, 2 'b' edges, 1 'c' edge."""
    graph = Graph("cost")
    for index in range(4):
        graph.add_node(f"n{index}")
    for src, dst in ((0, 1), (1, 2), (2, 3)):
        graph.add_edge(src, dst, "a")
    for src, dst in ((0, 2), (1, 3)):
        graph.add_edge(src, dst, "b")
    graph.add_edge(0, 3, "c")
    return graph


# ----------------------------------------------------------------------
# golden feature vectors
# ----------------------------------------------------------------------
def test_feature_vector_golden():
    graph = labeled_graph()
    estimator = CTPCostEstimator()
    features = estimator.features(graph, "bft", [2, 3], SearchConfig(max_edges=5))
    assert features.as_tuple() == ("bft", 2, 5, 6, 0, 5)


def test_feature_vector_wildcard_counts_whole_node_set():
    graph = labeled_graph()
    features = CTPCostEstimator().features(graph, "esp", [2, None], None)
    # The None (wildcard) set counts as all 4 nodes.
    assert features.as_tuple() == ("esp", 2, 6, 6, 0, None)


def test_feature_vector_label_filter_uses_label_index_cardinality():
    graph = labeled_graph()
    estimator = CTPCostEstimator()
    for labels, expected in ((frozenset({"a"}), 3), (frozenset({"b"}), 2), (frozenset({"a", "b"}), 5)):
        features = estimator.features(graph, "bft", [1], SearchConfig(labels=labels))
        assert features.reachable_edges == expected


@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_every_registered_algorithm_has_a_weight(algorithm):
    assert algorithm in ALGORITHM_WEIGHTS


def test_golden_estimates_per_algorithm_class():
    """One pinned estimate per registry algorithm: same features, ratios
    exactly the class weights — the review-visible golden vector."""
    graph = labeled_graph()
    estimator = CTPCostEstimator()
    base = estimator.estimate(
        CostFeatures(algorithm="bft", num_seed_sets=2, total_seed_size=4,
                     reachable_edges=6, delta_size=0, max_edges=4)
    )
    for algorithm, weight in ALGORITHM_WEIGHTS.items():
        estimate = estimator.estimate_ctp(graph, algorithm, [2, 2], SearchConfig(max_edges=4))
        assert estimate == pytest.approx(base * weight)
    # The heuristic ESP family must sit below the complete families.
    assert ALGORITHM_WEIGHTS["esp"] < ALGORITHM_WEIGHTS["bft"] <= ALGORITHM_WEIGHTS["gam"]


def test_unknown_algorithm_assumes_worst_class():
    assert CTPCostEstimator().weight("user-registered") == DEFAULT_ALGORITHM_WEIGHT


# ----------------------------------------------------------------------
# estimator properties (Hypothesis)
# ----------------------------------------------------------------------
features_strategy = st.builds(
    CostFeatures,
    algorithm=st.sampled_from(sorted(ALGORITHM_WEIGHTS) + ["mystery"]),
    num_seed_sets=st.integers(min_value=0, max_value=8),
    total_seed_size=st.integers(min_value=0, max_value=10_000),
    reachable_edges=st.integers(min_value=0, max_value=1_000_000),
    delta_size=st.integers(min_value=0, max_value=10_000),
    max_edges=st.one_of(st.none(), st.integers(min_value=0, max_value=200)),
)


@SETTINGS
@given(features=features_strategy, bump=st.integers(min_value=1, max_value=1000))
def test_estimate_monotone_in_seed_size(features, bump):
    estimator = CTPCostEstimator()
    grown = CostFeatures(
        algorithm=features.algorithm,
        num_seed_sets=features.num_seed_sets,
        total_seed_size=features.total_seed_size + bump,
        reachable_edges=features.reachable_edges,
        delta_size=features.delta_size,
        max_edges=features.max_edges,
    )
    assert estimator.estimate(grown) > estimator.estimate(features) >= 0.0


@SETTINGS
@given(features=features_strategy, bump=st.integers(min_value=1, max_value=100_000))
def test_estimate_monotone_in_label_cardinality(features, bump):
    estimator = CTPCostEstimator()
    wider = CostFeatures(
        algorithm=features.algorithm,
        num_seed_sets=features.num_seed_sets,
        total_seed_size=features.total_seed_size,
        reachable_edges=features.reachable_edges + bump,
        delta_size=features.delta_size,
        max_edges=features.max_edges,
    )
    assert estimator.estimate(wider) > estimator.estimate(features) >= 0.0


@SETTINGS
@given(features=features_strategy)
def test_estimate_never_negative_and_picklable(features):
    estimator = CTPCostEstimator()
    assert estimator.estimate(features) >= 0.0
    clone = pickle.loads(pickle.dumps(estimator))
    assert clone.estimate(features) == estimator.estimate(features)
    assert pickle.loads(pickle.dumps(features)) == features


def test_wildcard_seed_sets_dominate_bound_ones():
    graph = labeled_graph()
    estimator = CTPCostEstimator()
    bound = estimator.estimate_ctp(graph, "bft", [1, 1], None)
    wild = estimator.estimate_ctp(graph, "bft", [1, None], None)
    assert wild > bound
    assert WILDCARD is not None  # the sentinel the sizes stand in for


# ----------------------------------------------------------------------
# auto mode choice
# ----------------------------------------------------------------------
def test_choose_mode_serial_below_thread_threshold():
    assert choose_mode(THREAD_DISPATCH_THRESHOLD - 1, 4, 4) == "serial"


def test_choose_mode_serial_when_nothing_to_overlap():
    assert choose_mode(1e9, 1, 8) == "serial"
    assert choose_mode(1e9, 8, 1) == "serial"


def test_choose_mode_thread_between_thresholds():
    assert choose_mode(THREAD_DISPATCH_THRESHOLD, 4, 4) == "thread"
    assert choose_mode(PROCESS_COLD_THRESHOLD - 1, 4, 4) == "thread"


def test_choose_mode_process_above_cold_threshold_without_pool():
    assert choose_mode(PROCESS_COLD_THRESHOLD, 4, 4) == "process"


class _FakePool:
    def __init__(self, warm: bool):
        self.closed = False
        self._warm = warm

    def dispatch_overhead(self) -> float:
        return PROCESS_WARM_THRESHOLD if self._warm else PROCESS_COLD_THRESHOLD


def test_choose_mode_warm_pool_lowers_the_process_bar():
    cost = PROCESS_WARM_THRESHOLD
    assert choose_mode(cost, 4, 4) == "thread"  # no pool: cold bar
    assert choose_mode(cost, 4, 4, pool=_FakePool(warm=True)) == "process"
    assert choose_mode(cost, 4, 4, pool=_FakePool(warm=False)) == "thread"


def test_choose_mode_explicit_overhead_wins_over_pool():
    assert choose_mode(100.0, 4, 4, pool=_FakePool(warm=True), pool_overhead=50.0) == "process"
