"""Fuzzing the parser -> evaluator -> CTP pipeline with generated queries.

Every generated query must parse, validate, and evaluate without crashing;
whatever rows come back must respect the query's own constraints (head
arity, CTP filter bounds, tree validity).
"""

import random

import pytest

from repro.ctp.results import ResultTree, is_tree
from repro.errors import ReproError
from repro.graph.datasets import figure1
from repro.query.evaluator import evaluate_query
from repro.query.parser import parse_query
from repro.workloads.queries import random_query
from repro.workloads.realworld import yago_like


@pytest.fixture(scope="module")
def small_kg():
    return yago_like(scale=0.01).graph


class TestGenerator:
    def test_deterministic(self):
        graph = figure1()
        a = random_query(graph, random.Random(5))
        b = random_query(graph, random.Random(5))
        assert a == b

    def test_generated_queries_parse(self):
        graph = figure1()
        for seed in range(50):
            text = random_query(graph, random.Random(seed))
            query = parse_query(text)  # must not raise
            assert query.head

    def test_rejects_empty_graph(self):
        from repro.graph.graph import Graph
        from repro.errors import WorkloadError

        with pytest.raises(WorkloadError):
            random_query(Graph())


class TestPipelineFuzz:
    @pytest.mark.parametrize("seed", range(30))
    def test_figure1_fuzz(self, seed):
        graph = figure1()
        text = random_query(graph, random.Random(seed), timeout=1.0)
        result = evaluate_query(graph, text, default_timeout=2.0)
        query = parse_query(text)
        assert result.columns == query.head
        limit = query.limit
        if limit is not None:
            assert len(result) <= limit
        for row in result.rows:
            assert len(row) == len(result.columns)
            for value in row:
                if isinstance(value, ResultTree):
                    assert is_tree(graph, value.edges)

    @pytest.mark.parametrize("seed", range(12))
    def test_knowledge_graph_fuzz(self, small_kg, seed):
        text = random_query(small_kg, random.Random(seed * 7 + 1), timeout=1.0)
        result = evaluate_query(small_kg, text, default_timeout=2.0)
        # CTP filter bounds must hold on every returned tree
        query = parse_query(text)
        bounds = {ctp.tree_var: ctp.filters for ctp in query.ctps}
        for row in result.rows:
            for column, value in zip(result.columns, row):
                if isinstance(value, ResultTree) and column in bounds:
                    filters = bounds[column]
                    if filters.max_edges is not None:
                        assert value.size <= filters.max_edges
                    if filters.labels is not None:
                        labels = {small_kg.edge(e).label for e in value.edges}
                        assert labels <= filters.labels
