"""Unit tests for SearchTree construction (Definition 4.1 + UNI rules)."""

from repro.ctp.interning import EdgeSetPool
from repro.ctp.tree import GROW, INIT, MERGE, MO, SearchTree, make_grow, make_merge, make_mo
from repro.ctp.tree import make_init as _make_init

# Trees are built against an edge-set pool (repro.ctp.interning); the tests
# here are about tree *shape* rules, so they share one module-level pool.
_POOL = EdgeSetPool()


def make_init(node, sat, uni):
    return _make_init(_POOL, node, sat, uni)


def test_init_tree_fields():
    tree = make_init(7, 0b10, uni=False)
    assert tree.root == 7
    assert tree.edges == frozenset()
    assert tree.nodes == frozenset({7})
    assert tree.sat == 0b10
    assert tree.size == 0
    assert tree.kind == INIT
    assert tree.path_seed == 7
    assert tree.arb_root is None
    assert not tree.mo_tainted


def test_init_uni_arb_root():
    tree = make_init(3, 1, uni=True)
    assert tree.arb_root == 3
    assert tree.root_in_deg == 0


def test_grow_adds_edge_and_moves_root():
    base = make_init(0, 0b1, uni=False)
    grown = make_grow(base, 10, 1, 0, False, 1.5, outgoing=True, uni=False)
    assert grown.root == 1
    assert grown.edges == frozenset({10})
    assert grown.nodes == frozenset({0, 1})
    assert grown.sat == 0b1
    assert grown.weight == 1.5
    assert grown.kind == GROW


def test_grow_into_seed_updates_sat_and_clears_path():
    base = make_init(0, 0b1, uni=False)
    grown = make_grow(base, 10, 1, 0b10, True, 1.0, outgoing=True, uni=False)
    assert grown.sat == 0b11
    assert grown.path_seed is None  # two seeds: no longer an (n, s)-path


def test_grow_keeps_path_seed_through_non_seeds():
    base = make_init(0, 0b1, uni=False)
    step1 = make_grow(base, 10, 1, 0, False, 1.0, outgoing=True, uni=False)
    step2 = make_grow(step1, 11, 2, 0, False, 1.0, outgoing=False, uni=False)
    assert step1.path_seed == 0
    assert step2.path_seed == 0


class TestUniGrow:
    def test_outgoing_keeps_arb_root(self):
        base = make_init(0, 1, uni=True)
        grown = make_grow(base, 10, 1, 0, False, 1.0, outgoing=True, uni=True)
        assert grown is not None
        assert grown.arb_root == 0
        assert grown.root_in_deg == 1

    def test_incoming_moves_arb_root(self):
        base = make_init(0, 1, uni=True)
        grown = make_grow(base, 10, 1, 0, False, 1.0, outgoing=False, uni=True)
        assert grown is not None
        assert grown.arb_root == 1
        assert grown.root_in_deg == 0

    def test_incoming_rejected_when_root_not_arb_root(self):
        base = make_init(0, 1, uni=True)
        # 0 -> 1: arborescence root stays 0, current root is 1
        step1 = make_grow(base, 10, 1, 0, False, 1.0, outgoing=True, uni=True)
        # 2 -> 1 would give node 1 in-degree 2: rejected
        step2 = make_grow(step1, 11, 2, 0, False, 1.0, outgoing=False, uni=True)
        assert step2 is None

    def test_chain_of_incoming_edges(self):
        # 2 -> 1 -> 0 built by growing backwards from 0 is an arborescence
        base = make_init(0, 1, uni=True)
        step1 = make_grow(base, 10, 1, 0, False, 1.0, outgoing=False, uni=True)
        step2 = make_grow(step1, 11, 2, 0, False, 1.0, outgoing=False, uni=True)
        assert step2 is not None
        assert step2.arb_root == 2


class TestMerge:
    def _two_trees_at_root(self, uni: bool):
        left = make_grow(make_init(0, 0b1, uni), 10, 2, 0, False, 1.0, outgoing=True, uni=uni)
        right = make_grow(make_init(1, 0b10, uni), 11, 2, 0, False, 1.0, outgoing=True, uni=uni)
        return left, right

    def test_merge_combines(self):
        left, right = self._two_trees_at_root(uni=False)
        merged = make_merge(left, right, uni=False)
        assert merged.root == 2
        assert merged.edges == frozenset({10, 11})
        assert merged.nodes == frozenset({0, 1, 2})
        assert merged.sat == 0b11
        assert merged.kind == MERGE
        assert merged.path_seed is None

    def test_merge_uni_both_arborescences_into_root(self):
        # edges 0->2 and 1->2: node 2 would have in-degree 2 — invalid
        left, right = self._two_trees_at_root(uni=True)
        assert left.arb_root == 0 and right.arb_root == 1
        assert make_merge(left, right, uni=True) is None

    def test_merge_uni_valid_when_one_side_rooted_at_shared_node(self):
        # 2 -> 0 (arb root 2 is the shared node) merged with 1 -> 2
        left = make_grow(make_init(0, 0b1, True), 10, 2, 0, False, 1.0, outgoing=False, uni=True)
        right = make_grow(make_init(1, 0b10, True), 11, 2, 0, False, 1.0, outgoing=True, uni=True)
        merged = make_merge(left, right, uni=True)
        assert merged is not None
        assert merged.arb_root == 1

    def test_merge_taints_from_mo(self):
        left, right = self._two_trees_at_root(uni=False)
        mo = make_mo(left, 0, 0)
        merged = make_merge(mo, right, uni=False)
        assert merged.mo_tainted


def test_mo_copy_re_roots_without_new_edges():
    base = make_grow(make_init(0, 0b1, False), 10, 1, 0b10, True, 1.0, outgoing=True, uni=False)
    copy = make_mo(base, 0, 1)
    assert copy.kind == MO
    assert copy.mo_tainted
    assert copy.root == 0
    assert copy.edges == base.edges
    assert copy.sat == base.sat
    assert copy.root_in_deg == 1


def test_rooted_key_identity():
    t1 = make_init(0, 1, False)
    t2 = make_init(0, 1, False)
    assert t1.rooted_key() == t2.rooted_key()
    grown = make_grow(t1, 5, 1, 0, False, 1.0, True, False)
    assert grown.rooted_key() != t1.rooted_key()
