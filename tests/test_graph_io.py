"""Round-trip tests for graph (de)serialisation."""

import pytest

from repro.errors import GraphError
from repro.graph.builder import GraphBuilder
from repro.graph.datasets import figure1
from repro.graph.io import load_graph_json, load_graph_tsv, save_graph_json, save_graph_tsv


def test_tsv_round_trip(tmp_path):
    graph = figure1()
    path = tmp_path / "g.tsv"
    save_graph_tsv(graph, path)
    loaded = load_graph_tsv(path, name="reloaded")
    assert loaded.num_nodes == graph.num_nodes
    assert loaded.num_edges == graph.num_edges
    # same triples by label
    original = sorted(
        (graph.node(e.source).label, e.label, graph.node(e.target).label) for e in graph.edges()
    )
    reloaded = sorted(
        (loaded.node(e.source).label, e.label, loaded.node(e.target).label) for e in loaded.edges()
    )
    assert original == reloaded


def test_tsv_skips_comments_and_blank_lines(tmp_path):
    path = tmp_path / "g.tsv"
    path.write_text("# a comment\n\nA\tknows\tB\n", encoding="utf-8")
    graph = load_graph_tsv(path)
    assert graph.num_edges == 1


def test_tsv_bad_arity_raises(tmp_path):
    path = tmp_path / "g.tsv"
    path.write_text("A\tknows\n", encoding="utf-8")
    with pytest.raises(GraphError) as info:
        load_graph_tsv(path)
    assert "expected 3" in str(info.value)


def test_json_round_trip_preserves_everything(tmp_path):
    b = GraphBuilder("full")
    b.node("Alice", types=("person",), age=30)
    b.node("Inria", types=("organization",))
    b.triple("Alice", "worksAt", "Inria", weight=2.5, since=2021)
    path = tmp_path / "g.json"
    save_graph_json(b.graph, path)
    loaded = load_graph_json(path)
    assert loaded.name == "full"
    assert loaded.num_nodes == 2
    node = loaded.node(loaded.find_node_by_label("Alice"))
    assert node.types == frozenset({"person"})
    assert node.props == {"age": 30}
    edge = loaded.edge(0)
    assert edge.weight == 2.5
    assert edge.props == {"since": 2021}


def test_json_round_trip_figure1(tmp_path):
    graph = figure1()
    path = tmp_path / "fig1.json"
    save_graph_json(graph, path)
    loaded = load_graph_json(path)
    assert loaded.num_edges == 19
    assert loaded.node(loaded.find_node_by_label("Elon")).types == frozenset({"politician"})
