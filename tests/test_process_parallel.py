"""Process-pool CTP dispatch: multi-core fan-out, same rows, same caches.

Layers:

* **determinism matrix** — every algorithm × 1/2/4 workers under
  ``parallelism_mode="process"`` produces exactly the serial rows (order
  included) on a multi-CTP query with a repeated CTP, interning on and
  off — the acceptance gate for the process pool;
* **memo semantics** — the parent's cross-CTP memo serves and files in
  CTP order around the fan-out, so cache-hit provenance matches serial
  dispatch;
* **worker lifecycle** — the initializer loads the snapshot once per
  worker and every job reuses the worker-private graph/context;
* **fallbacks** — unpicklable configs degrade to thread (or serial)
  dispatch instead of failing the query, and a non-thread-safe context
  does *not* downgrade process dispatch (only the parent touches it);
* **batch API** — ``evaluate_queries`` under process mode.
"""

from __future__ import annotations

import pickle

import pytest

from repro.ctp.config import WILDCARD, SearchConfig
from repro.ctp.interning import SearchContext
from repro.ctp.registry import ALGORITHMS
from repro.graph.datasets import figure1
from repro.graph.snapshot import load_snapshot, save_snapshot
from repro.query import parallel as parallel_mod
from repro.query.evaluator import evaluate_query
from repro.query.parallel import (
    CTPJob,
    _jobs_picklable,
    _process_worker_init,
    _process_worker_run,
    effective_parallelism,
    evaluate_queries,
    run_ctp_jobs,
)

MATRIX_QUERY = """
SELECT ?x ?w1 ?w2 ?w3 WHERE {
  ?x founded "OrgB" .
  CONNECT(?x, "France") AS ?w1 MAX 3
  CONNECT(?x, "National Liberal Party") AS ?w2 MAX 2
  CONNECT(?x, "France") AS ?w3 MAX 3
}
"""

WILDCARD_QUERY = """
SELECT ?x ?w WHERE {
  CONNECT(?x, *) AS ?w MAX 2
  FILTER(type(?x) = "politician")
}
"""

WORKER_COUNTS = (1, 2, 4)

_serial_rows = {}


def _serial(fig1, algo: str, interning: bool = True):
    key = (algo, interning)
    if key not in _serial_rows:
        _serial_rows[key] = evaluate_query(
            fig1,
            MATRIX_QUERY,
            algorithm=algo,
            base_config=SearchConfig(interning=interning, parallelism=1),
        )
    return _serial_rows[key]


# ----------------------------------------------------------------------
# determinism matrix: rows identical to serial at every worker count
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("algo", sorted(ALGORITHMS))
def test_process_rows_identical_to_serial(fig1, algo, workers):
    serial = _serial(fig1, algo)
    process = evaluate_query(
        fig1,
        MATRIX_QUERY,
        algorithm=algo,
        base_config=SearchConfig(parallelism=workers, parallelism_mode="process"),
    )
    assert process.columns == serial.columns
    assert process.rows == serial.rows


@pytest.mark.parametrize("workers", (2, 4))
def test_process_rows_identical_without_interning(fig1, workers):
    serial = _serial(fig1, "molesp", interning=False)
    process = evaluate_query(
        fig1,
        MATRIX_QUERY,
        base_config=SearchConfig(
            interning=False, parallelism=workers, parallelism_mode="process"
        ),
    )
    assert process.rows == serial.rows


def test_process_wildcard_query(fig1):
    serial = evaluate_query(fig1, WILDCARD_QUERY)
    process = evaluate_query(
        fig1,
        WILDCARD_QUERY,
        base_config=SearchConfig(parallelism=2, parallelism_mode="process"),
    )
    assert process.columns == serial.columns
    assert process.rows == serial.rows


def test_process_rows_identical_on_loaded_snapshot(fig1, tmp_path, monkeypatch):
    """Dispatch over a snapshot-loaded graph reuses its file — no re-save."""
    path = save_snapshot(fig1, tmp_path / "fig1.snapshot")
    loaded = load_snapshot(path)

    def boom(*args, **kwargs):  # pragma: no cover - only fires on regression
        raise AssertionError("dispatch re-serialized a graph that has a snapshot")

    monkeypatch.setattr("repro.graph.snapshot.save_snapshot", boom)
    serial = evaluate_query(loaded, MATRIX_QUERY)
    process = evaluate_query(
        loaded,
        MATRIX_QUERY,
        base_config=SearchConfig(parallelism=2, parallelism_mode="process"),
    )
    assert process.rows == serial.rows


# ----------------------------------------------------------------------
# memo semantics: parent-side serve/file in CTP order
# ----------------------------------------------------------------------
def test_cache_hit_provenance_matches_serial(fig1):
    serial = evaluate_query(fig1, MATRIX_QUERY)
    process = evaluate_query(
        fig1,
        MATRIX_QUERY,
        base_config=SearchConfig(parallelism=4, parallelism_mode="process"),
    )
    # ?w3 repeats ?w1: the serial path serves it from the cross-CTP memo,
    # the process path shares the in-flight leader's result — both report
    # the same hit pattern.
    assert [r.cache_hit for r in serial.ctp_reports] == [False, False, True]
    assert [r.cache_hit for r in process.ctp_reports] == [False, False, True]
    # The third CTP repeats the first: no search runs for it, under
    # either dispatch — dispatch_mode says so instead of claiming a
    # worker ran it.
    assert [r.dispatch_mode for r in serial.ctp_reports] == ["serial", "serial", "memo"]
    assert [r.dispatch_mode for r in process.ctp_reports] == ["process", "process", "memo"]
    assert process.context_stats is not None
    assert process.context_stats["ctp_cache_hits"] >= 1


def test_explicit_context_memo_survives_process_dispatch(fig1):
    """A second query over the same explicit context is served from the
    memo the first (process-dispatched) query filed."""
    context = SearchContext(thread_safe=True)
    config = SearchConfig(parallelism=2, parallelism_mode="process")
    first = evaluate_query(fig1, MATRIX_QUERY, base_config=config, context=context)
    second = evaluate_query(fig1, MATRIX_QUERY, base_config=config, context=context)
    assert second.rows == first.rows
    assert all(r.cache_hit for r in second.ctp_reports)
    assert [r.dispatch_mode for r in second.ctp_reports] == ["memo"] * 3


# ----------------------------------------------------------------------
# dispatch plumbing
# ----------------------------------------------------------------------
class TestEffectiveParallelism:
    def test_process_mode_ignores_context_thread_safety(self):
        # Only the parent thread touches the context under process mode.
        assert effective_parallelism(4, 3, SearchContext(), mode="process") == 3
        assert effective_parallelism(4, 3, SearchContext(), mode="thread") == 1

    def test_collapses_to_serial_like_thread_mode(self):
        assert effective_parallelism(8, 1, None, mode="process") == 1
        assert effective_parallelism(1, 8, None, mode="process") == 1


class TestStartMethod:
    def test_fork_only_when_single_threaded(self):
        import multiprocessing
        import threading

        from repro.query.parallel import _process_pool_context

        methods = multiprocessing.get_all_start_methods()
        if "fork" not in methods or "forkserver" not in methods:
            pytest.skip("platform lacks fork/forkserver")
        assert _process_pool_context().get_start_method() == "fork"
        stop = threading.Event()
        thread = threading.Thread(target=stop.wait, daemon=True)
        thread.start()
        try:
            # A threaded parent must never plain-fork (inherited-lock
            # deadlocks); the clean forkserver helper is used instead.
            assert _process_pool_context().get_start_method() == "forkserver"
        finally:
            stop.set()
            thread.join()

    def test_process_dispatch_from_threaded_parent(self, fig1):
        """End-to-end through the forkserver path: rows still identical."""
        import threading

        stop = threading.Event()
        thread = threading.Thread(target=stop.wait, daemon=True)
        thread.start()
        try:
            serial = _serial(fig1, "molesp")
            process = evaluate_query(
                fig1,
                MATRIX_QUERY,
                base_config=SearchConfig(parallelism=2, parallelism_mode="process"),
            )
            assert process.rows == serial.rows
            assert [r.dispatch_mode for r in process.ctp_reports] == ["process", "process", "memo"]
        finally:
            stop.set()
            thread.join()


class TestJobsPicklable:
    def test_plain_jobs_are_picklable(self):
        jobs = [CTPJob(index=0, seed_sets=[[1], [2], WILDCARD], config=SearchConfig())]
        assert _jobs_picklable("molesp", jobs)

    def test_lambda_score_is_not(self):
        config = SearchConfig(score=lambda g, e, n: 0.0)
        assert not _jobs_picklable("molesp", [CTPJob(index=0, seed_sets=[[1]], config=config)])

    def test_wildcard_identity_survives_pickling(self):
        seed_sets = pickle.loads(pickle.dumps([[1], WILDCARD]))
        assert seed_sets[1] is WILDCARD


class TestWorkerLifecycle:
    def test_initializer_loads_once_and_jobs_reuse_it(self, fig1, tmp_path, monkeypatch):
        """Drive the worker entry points in-process: one init, many runs."""
        path = save_snapshot(fig1, tmp_path / "fig1.snapshot")
        monkeypatch.setattr(parallel_mod, "_worker_graph", None)
        monkeypatch.setattr(parallel_mod, "_worker_context", None)
        _process_worker_init(str(path), interning=True)
        graph = parallel_mod._worker_graph
        context = parallel_mod._worker_context
        assert graph is not None and graph.snapshot_path == str(path)
        seeds = [fig1.nodes_with_type("entrepreneur"), fig1.nodes_with_type("politician")]
        first, _ = _process_worker_run("molesp", seeds, SearchConfig(max_edges=3))
        second, _ = _process_worker_run("molesp", seeds, SearchConfig(max_edges=3))
        # Same worker graph/context across jobs: the private context binds
        # once and both runs adopt it.
        assert parallel_mod._worker_graph is graph
        assert parallel_mod._worker_context is context
        assert context.runs == 2 and context.rejects == 0
        assert [r.edges for r in first] == [r.edges for r in second]


# ----------------------------------------------------------------------
# fallbacks: degrade, never fail
# ----------------------------------------------------------------------
class TestFallbacks:
    def test_unpicklable_score_falls_back_and_matches(self, fig1):
        score = lambda graph, edges, nodes: -len(edges)  # noqa: E731
        serial = evaluate_query(
            fig1, MATRIX_QUERY, base_config=SearchConfig(parallelism=1, score=score)
        )
        process = evaluate_query(
            fig1,
            MATRIX_QUERY,
            base_config=SearchConfig(
                parallelism=2, parallelism_mode="process", score=score
            ),
        )
        assert process.rows == serial.rows
        # The degradation is silent for the query but observable in the
        # reports: the jobs actually ran on the thread pool.
        assert [r.dispatch_mode for r in process.ctp_reports] == ["thread", "thread", "memo"]

    def test_unpicklable_with_non_thread_safe_context_runs_serial(self, fig1):
        """Worst case — jobs cannot cross a process boundary AND the
        explicit context cannot be shared across threads: the dispatch
        must degrade all the way to the serial loop, still correct."""
        score = lambda graph, edges, nodes: -len(edges)  # noqa: E731
        context = SearchContext()  # not thread-safe
        serial = evaluate_query(
            fig1, MATRIX_QUERY, base_config=SearchConfig(parallelism=1, score=score)
        )
        process = evaluate_query(
            fig1,
            MATRIX_QUERY,
            base_config=SearchConfig(parallelism=4, parallelism_mode="process", score=score),
            context=context,
        )
        assert process.rows == serial.rows
        assert context.runs > 0  # the serial loop really used the context
        assert [r.dispatch_mode for r in process.ctp_reports] == ["serial", "serial", "memo"]

    def test_run_ctp_jobs_direct_process_mode(self, fig1):
        """The dispatch API itself, without the evaluator on top."""
        seeds = [fig1.nodes_with_type("entrepreneur"), fig1.nodes_with_type("politician")]
        config = SearchConfig(max_edges=3)
        jobs = [CTPJob(index=i, seed_sets=seeds, config=config) for i in range(3)]
        serial = run_ctp_jobs(fig1, "molesp", jobs, None, parallelism=1)
        process = run_ctp_jobs(fig1, "molesp", jobs, None, parallelism=2, mode="process")
        assert len(process) == 3
        for a, b in zip(serial, process):
            assert [r.edges for r in a.result_set] == [r.edges for r in b.result_set]


# ----------------------------------------------------------------------
# deadline-bounded CTPs and the batch API under process mode
# ----------------------------------------------------------------------
def test_timed_out_ctps_complete_under_process_mode(fig1):
    """Timeout truncation is wall-clock-dependent, so rows are not asserted
    — but the dispatch must complete, flag the truncation, and not file
    non-replayable sets into the memo."""
    result = evaluate_query(
        fig1,
        MATRIX_QUERY,
        base_config=SearchConfig(parallelism=2, parallelism_mode="process", timeout=1e-9),
    )
    assert len(result.ctp_reports) == 3
    assert all(r.result_set.timed_out for r in result.ctp_reports)
    assert not any(r.cache_hit for r in result.ctp_reports)
    assert result.context_stats["ctp_cache_hits"] == 0


def test_evaluate_queries_batch_process_mode(fig1):
    queries = [MATRIX_QUERY, WILDCARD_QUERY, MATRIX_QUERY]
    per_query = [evaluate_query(fig1, q) for q in queries]
    batch = evaluate_queries(
        fig1,
        queries,
        base_config=SearchConfig(parallelism=2, parallelism_mode="process"),
    )
    assert len(batch) == 3
    for expected, got in zip(per_query, batch):
        assert got.columns == expected.columns
        assert got.rows == expected.rows
    # The repeated query is served from the shared context's memo.
    assert all(r.cache_hit for r in batch[2].ctp_reports)
