"""Tests for the EQL AST and its well-formedness rules (Defs 2.2-2.6)."""

import pytest

from repro.errors import ValidationError
from repro.graph.graph import Graph
from repro.query.ast import (
    BGP,
    CTP,
    Condition,
    CTPFilters,
    EdgePattern,
    EQLQuery,
    Predicate,
)


@pytest.fixture
def node_graph() -> Graph:
    g = Graph()
    g.add_node("Alice", types=("entrepreneur",), age=31)
    g.add_node("Bob", types=("politician",), age=55)
    g.add_edge(0, 1, "knows", weight=2.0)
    return g


class TestCondition:
    def test_equality_on_label(self, node_graph):
        condition = Condition("label", "=", "Alice")
        assert condition.test(node_graph.node(0))
        assert not condition.test(node_graph.node(1))

    def test_inequality(self, node_graph):
        assert Condition("label", "!=", "Alice").test(node_graph.node(1))

    def test_numeric_comparisons(self, node_graph):
        assert Condition("age", "<", 40).test(node_graph.node(0))
        assert Condition("age", "<=", 31).test(node_graph.node(0))
        assert Condition("age", ">", 40).test(node_graph.node(1))
        assert Condition("age", ">=", 55).test(node_graph.node(1))

    def test_match_operator_globs(self, node_graph):
        # the paper's example: label ending in "lice"
        assert Condition("label", "~", "*lice").test(node_graph.node(0))
        assert not Condition("label", "~", "*lice").test(node_graph.node(1))

    def test_type_membership(self, node_graph):
        assert Condition("type", "=", "entrepreneur").test(node_graph.node(0))
        assert Condition("type", "!=", "entrepreneur").test(node_graph.node(1))

    def test_type_ordering_undefined(self, node_graph):
        with pytest.raises(ValidationError):
            Condition("type", "<", "a").test(node_graph.node(0))

    def test_missing_property_false(self, node_graph):
        assert not Condition("salary", "=", 1).test(node_graph.node(0))

    def test_incomparable_types_false(self, node_graph):
        assert not Condition("age", "<", "abc").test(node_graph.node(0))

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValidationError):
            Condition("label", "??", "x")

    def test_edge_condition(self, node_graph):
        edge = node_graph.edge(0)
        assert Condition("label", "=", "knows").test(edge)
        assert Condition("weight", ">", 1.0).test(edge)


class TestPredicate:
    def test_empty_predicate_matches_everything(self, node_graph):
        assert Predicate("v").test(node_graph.node(0))
        assert Predicate("v").is_empty

    def test_conjunction(self, node_graph):
        predicate = Predicate(
            "v",
            (Condition("label", "~", "*lice"), Condition("type", "=", "entrepreneur")),
        )
        assert predicate.test(node_graph.node(0))
        assert not predicate.test(node_graph.node(1))

    def test_label_equals_shorthand(self, node_graph):
        predicate = Predicate.label_equals("v", "Alice")
        assert predicate.label_constant() == "Alice"
        assert predicate.test(node_graph.node(0))

    def test_type_constant(self):
        predicate = Predicate("v", (Condition("type", "=", "person"),))
        assert predicate.type_constant() == "person"
        assert predicate.label_constant() is None

    def test_str_forms(self):
        assert str(Predicate("v")) == "?v"
        assert "label" in str(Predicate.label_equals("v", "x"))


class TestBGP:
    def test_connected_ok(self):
        p1 = EdgePattern(Predicate("x"), Predicate("e1"), Predicate("y"))
        p2 = EdgePattern(Predicate("y"), Predicate("e2"), Predicate("z"))
        bgp = BGP((p1, p2))
        assert bgp.variables() == ["x", "e1", "y", "e2", "z"]

    def test_disconnected_rejected(self):
        p1 = EdgePattern(Predicate("x"), Predicate("e1"), Predicate("y"))
        p2 = EdgePattern(Predicate("a"), Predicate("e2"), Predicate("b"))
        with pytest.raises(ValidationError):
            BGP((p1, p2))

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            BGP(())


class TestCTP:
    def test_variables_must_be_distinct(self):
        with pytest.raises(ValidationError):
            CTP((Predicate("x"), Predicate("x")), "w")
        with pytest.raises(ValidationError):
            CTP((Predicate("x"), Predicate("y")), "x")

    def test_m_property(self):
        ctp = CTP((Predicate("x"), Predicate("y"), Predicate("z")), "w")
        assert ctp.m == 3
        assert ctp.seed_vars() == ("x", "y", "z")

    def test_filters_top_requires_score(self):
        with pytest.raises(ValidationError):
            CTPFilters(top_k=3)


class TestEQLQuery:
    def _pattern(self, a, e, b):
        return EdgePattern(Predicate(a), Predicate(e), Predicate(b))

    def test_needs_some_body(self):
        with pytest.raises(ValidationError):
            EQLQuery(head=())

    def test_tree_var_must_be_unique(self):
        ctp1 = CTP((Predicate("x"), Predicate("y")), "w")
        ctp2 = CTP((Predicate("a"), Predicate("b")), "w")
        with pytest.raises(ValidationError):
            EQLQuery(head=(), ctps=(ctp1, ctp2))

    def test_tree_var_cannot_occur_elsewhere(self):
        ctp = CTP((Predicate("x"), Predicate("y")), "w")
        pattern = self._pattern("w", "e", "z")
        with pytest.raises(ValidationError):
            EQLQuery(head=(), patterns=(pattern,), ctps=(ctp,))

    def test_edge_variable_cannot_seed_a_ctp(self):
        """CONNECT arguments bind nodes (Def 2.5); an edge variable there
        would inject edge ids into seed sets (found by the fuzzer)."""
        pattern = self._pattern("x", "e", "y")
        ctp = CTP((Predicate("e"), Predicate("y")), "w")
        with pytest.raises(ValidationError) as info:
            EQLQuery(head=(), patterns=(pattern,), ctps=(ctp,))
        assert "edge variable" in str(info.value)

    def test_query_level_limit_validation(self):
        with pytest.raises(ValidationError):
            EQLQuery(head=(), patterns=(self._pattern("x", "e", "y"),), limit=0)

    def test_head_vars_must_be_bound(self):
        with pytest.raises(ValidationError):
            EQLQuery(head=("ghost",), patterns=(self._pattern("x", "e", "y"),))

    def test_bgps_are_connected_components(self):
        patterns = (
            self._pattern("x", "e1", "y"),
            self._pattern("y", "e2", "z"),
            self._pattern("a", "e3", "b"),
        )
        query = EQLQuery(head=("x",), patterns=patterns)
        bgps = query.bgps()
        assert len(bgps) == 2
        sizes = sorted(len(bgp.patterns) for bgp in bgps)
        assert sizes == [1, 2]

    def test_simple_and_body_variables(self):
        ctp = CTP((Predicate("x"), Predicate("q")), "w")
        query = EQLQuery(head=("x",), patterns=(self._pattern("x", "e", "y"),), ctps=(ctp,))
        assert query.simple_variables() == ["x", "e", "y", "q"]
        assert query.body_variables() == ["x", "e", "y", "q", "w"]

    def test_str_rendering(self):
        ctp = CTP((Predicate("x"), Predicate("y")), "w")
        query = EQLQuery(head=("x",), patterns=(self._pattern("x", "e", "y"),), ctps=(ctp,))
        text = str(query)
        assert "SELECT ?x" in text and "CONNECT" in text
