"""End-to-end EQL evaluation tests (Section 3 strategy, Definition 2.10)."""

import pytest

from repro.ctp.config import SearchConfig
from repro.ctp.results import ResultTree
from repro.errors import EvaluationError
from repro.graph.datasets import figure1, figure1_edge
from repro.query.evaluator import evaluate_query

Q1 = """
SELECT ?x ?y ?z ?w
WHERE {
  ?x citizenOf "USA" .
  ?y citizenOf "France" .
  ?z citizenOf "France" .
  FILTER(type(?x) = "entrepreneur")
  FILTER(type(?y) = "entrepreneur")
  FILTER(type(?z) = "politician")
  CONNECT(?x, ?y, ?z) AS ?w
}
"""


@pytest.fixture
def fig1():
    return figure1()


class TestQ1:
    def test_row_count_matches_complete_ctp(self, fig1):
        result = evaluate_query(fig1, Q1)
        assert len(result) == 64

    def test_seed_sets_derived_from_bgps(self, fig1):
        result = evaluate_query(fig1, Q1)
        report = result.ctp_reports[0]
        assert report.seed_set_sizes == (2, 2, 1)
        assert report.algorithm == "molesp"

    def test_t_alpha_row_present(self, fig1):
        result = evaluate_query(fig1, Q1)
        t_alpha = frozenset(figure1_edge(k) for k in (10, 9, 11))
        names = {n: fig1.find_node_by_label(n) for n in ("Carole", "Doug", "Elon")}
        match = [
            row
            for row in result.rows
            if row[3].edges == t_alpha
        ]
        assert len(match) == 1
        row = match[0]
        assert row[0] == names["Carole"]
        assert row[1] == names["Doug"]
        assert row[2] == names["Elon"]

    def test_t_beta_row_present(self, fig1):
        result = evaluate_query(fig1, Q1)
        t_beta = frozenset(figure1_edge(k) for k in (1, 2, 17, 16))
        assert any(row[3].edges == t_beta for row in result.rows)

    def test_timings_populated(self, fig1):
        result = evaluate_query(fig1, Q1)
        assert result.timings.bgp_seconds >= 0
        assert result.timings.ctp_seconds > 0
        assert result.timings.total_seconds > 0

    def test_tree_values_are_result_trees(self, fig1):
        result = evaluate_query(fig1, Q1)
        assert all(isinstance(row[3], ResultTree) for row in result.rows)

    def test_format_resolves_labels(self, fig1):
        text = evaluate_query(fig1, Q1).format(limit=3)
        assert "Carole" in text or "Bob" in text
        assert "?w" in text

    def test_to_dicts(self, fig1):
        dicts = evaluate_query(fig1, Q1).to_dicts()
        assert set(dicts[0]) == {"x", "y", "z", "w"}


class TestAlgorithmsAgree:
    def test_gam_and_molesp_same_rows(self, fig1):
        molesp = evaluate_query(fig1, Q1, algorithm="molesp")
        gam = evaluate_query(fig1, Q1, algorithm="gam")
        key = lambda result: {(r[0], r[1], r[2], r[3].edges) for r in result.rows}
        assert key(molesp) == key(gam)


class TestFiltersPushed:
    def test_max_filter(self, fig1):
        query = Q1.replace("AS ?w", "AS ?w MAX 3")
        result = evaluate_query(fig1, query)
        assert all(row[3].size <= 3 for row in result.rows)
        assert 0 < len(result) < 64

    def test_limit_filter(self, fig1):
        query = Q1.replace("AS ?w", "AS ?w LIMIT 1")
        result = evaluate_query(fig1, query)
        assert len(result) == 1

    def test_score_attached(self, fig1):
        query = Q1.replace("AS ?w", "AS ?w SCORE size")
        result = evaluate_query(fig1, query)
        assert all(row[3].score is not None for row in result.rows)

    def test_top_k(self, fig1):
        query = Q1.replace("AS ?w", "AS ?w SCORE size TOP 5")
        result = evaluate_query(fig1, query)
        assert len(result) == 5
        # the kept trees are the smallest ones
        sizes = sorted(row[3].size for row in result.rows)
        assert sizes[0] == 3

    def test_label_filter(self, fig1):
        query = Q1.replace("AS ?w", 'AS ?w LABEL("citizenOf", "parentOf")')
        result = evaluate_query(fig1, query)
        for row in result.rows:
            labels = {fig1.edge(e).label for e in row[3].edges}
            assert labels <= {"citizenOf", "parentOf"}

    def test_uni_filter(self, fig1):
        query = Q1.replace("AS ?w", "AS ?w UNI")
        result = evaluate_query(fig1, query)
        t_beta = frozenset(figure1_edge(k) for k in (1, 2, 17, 16))
        # t_beta is not unidirectional (Section 2), so it must disappear
        assert all(row[3].edges != t_beta for row in result.rows)
        assert len(result) < 64

    def test_base_config_defaults(self, fig1):
        base = SearchConfig(max_edges=3)
        result = evaluate_query(fig1, Q1, base_config=base)
        assert all(row[3].size <= 3 for row in result.rows)

    def test_query_level_limit(self, fig1):
        result = evaluate_query(fig1, Q1 + " LIMIT 10")
        assert len(result) == 10


class TestSeedSetDerivation:
    def test_free_variable_with_predicate(self, fig1):
        query = """
        SELECT ?z ?w WHERE {
          CONNECT("OrgB", ?z) AS ?w
          FILTER(type(?z) = "politician")
        }
        """
        result = evaluate_query(fig1, query)
        report = result.ctp_reports[0]
        assert report.seed_set_sizes == (1, 2)  # OrgB; Elon + Falcon

    def test_wildcard_seed_set(self, fig1):
        query = 'SELECT ?w WHERE { CONNECT("Bob", *) AS ?w MAX 1 }'
        result = evaluate_query(fig1, query)
        report = result.ctp_reports[0]
        assert report.seed_set_sizes[1] is None
        # Bob alone + one tree per incident edge of Bob
        assert len(report.result_set) == 1 + fig1.degree(fig1.find_node_by_label("Bob"))

    def test_empty_seed_set_no_results(self, fig1):
        query = """
        SELECT ?w WHERE {
          CONNECT(?x, "OrgB") AS ?w
          FILTER(type(?x) = "alien")
        }
        """
        assert len(evaluate_query(fig1, query)) == 0


class TestMultipleCTPsAndJoins:
    def test_two_ctps(self, fig1):
        query = """
        SELECT ?x ?w1 ?w2 WHERE {
          ?x founded "OrgB" .
          CONNECT(?x, "France") AS ?w1 MAX 3
          CONNECT(?x, "National Liberal Party") AS ?w2 MAX 2
        }
        """
        result = evaluate_query(fig1, query)
        assert len(result) > 0
        assert set(result.columns) == {"x", "w1", "w2"}
        assert len(result.ctp_reports) == 2

    def test_join_restricts_ctp_results(self, fig1):
        # without the BGP the CTP would run over every entrepreneur
        query = """
        SELECT ?x ?w WHERE {
          ?x founded "OrgC" .
          CONNECT(?x, "USA") AS ?w MAX 2
        }
        """
        result = evaluate_query(fig1, query)
        carole = fig1.find_node_by_label("Carole")
        assert all(row[0] == carole for row in result.rows)

    def test_distinct_false_keeps_duplicates(self, fig1):
        query = """
        SELECT ?u WHERE {
          ?x citizenOf ?u .
        }
        """
        with_dups = evaluate_query(fig1, query, distinct=False)
        without = evaluate_query(fig1, query, distinct=True)
        assert len(with_dups) == 5
        assert len(without) == 2  # USA, France


class TestErrors:
    def test_all_wildcard_ctp_rejected(self, fig1):
        """A CTP whose every seed predicate is free and unconstrained would
        ask for connections between everything and everything — the engine
        refuses it (Section 4.9 requires at least one explicit set)."""
        from repro.errors import SearchError
        from repro.query.ast import CTP, EQLQuery, Predicate

        query = EQLQuery(
            head=("x",),
            ctps=(CTP((Predicate("x"), Predicate("y")), "w"),),
        )
        with pytest.raises(SearchError):
            evaluate_query(fig1, query, base_config=SearchConfig(max_edges=0))

    def test_one_constrained_seed_suffices(self, fig1):
        query = """
        SELECT ?x ?w WHERE {
          CONNECT(?x, *) AS ?w MAX 1
          FILTER(type(?x) = "politician")
        }
        """
        result = evaluate_query(fig1, query)
        assert len(result) > 0
        assert result.columns == ("x", "w")
