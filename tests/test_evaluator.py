"""End-to-end EQL evaluation tests (Section 3 strategy, Definition 2.10)."""

import pytest

from repro.ctp.config import SearchConfig
from repro.ctp.results import ResultTree
from repro.errors import EvaluationError
from repro.graph.datasets import figure1, figure1_edge
from repro.graph.graph import Graph
from repro.query.ast import CTPFilters
from repro.query.evaluator import config_for_ctp, derive_binding_values, evaluate_query
from repro.storage.table import Table

Q1 = """
SELECT ?x ?y ?z ?w
WHERE {
  ?x citizenOf "USA" .
  ?y citizenOf "France" .
  ?z citizenOf "France" .
  FILTER(type(?x) = "entrepreneur")
  FILTER(type(?y) = "entrepreneur")
  FILTER(type(?z) = "politician")
  CONNECT(?x, ?y, ?z) AS ?w
}
"""


@pytest.fixture
def fig1():
    return figure1()


class TestQ1:
    def test_row_count_matches_complete_ctp(self, fig1):
        result = evaluate_query(fig1, Q1)
        assert len(result) == 64

    def test_seed_sets_derived_from_bgps(self, fig1):
        result = evaluate_query(fig1, Q1)
        report = result.ctp_reports[0]
        assert report.seed_set_sizes == (2, 2, 1)
        assert report.algorithm == "molesp"

    def test_t_alpha_row_present(self, fig1):
        result = evaluate_query(fig1, Q1)
        t_alpha = frozenset(figure1_edge(k) for k in (10, 9, 11))
        names = {n: fig1.find_node_by_label(n) for n in ("Carole", "Doug", "Elon")}
        match = [
            row
            for row in result.rows
            if row[3].edges == t_alpha
        ]
        assert len(match) == 1
        row = match[0]
        assert row[0] == names["Carole"]
        assert row[1] == names["Doug"]
        assert row[2] == names["Elon"]

    def test_t_beta_row_present(self, fig1):
        result = evaluate_query(fig1, Q1)
        t_beta = frozenset(figure1_edge(k) for k in (1, 2, 17, 16))
        assert any(row[3].edges == t_beta for row in result.rows)

    def test_timings_populated(self, fig1):
        result = evaluate_query(fig1, Q1)
        assert result.timings.bgp_seconds >= 0
        assert result.timings.ctp_seconds > 0
        assert result.timings.total_seconds > 0

    def test_tree_values_are_result_trees(self, fig1):
        result = evaluate_query(fig1, Q1)
        assert all(isinstance(row[3], ResultTree) for row in result.rows)

    def test_format_resolves_labels(self, fig1):
        text = evaluate_query(fig1, Q1).format(limit=3)
        assert "Carole" in text or "Bob" in text
        assert "?w" in text

    def test_to_dicts(self, fig1):
        dicts = evaluate_query(fig1, Q1).to_dicts()
        assert set(dicts[0]) == {"x", "y", "z", "w"}


class TestAlgorithmsAgree:
    def test_gam_and_molesp_same_rows(self, fig1):
        molesp = evaluate_query(fig1, Q1, algorithm="molesp")
        gam = evaluate_query(fig1, Q1, algorithm="gam")
        key = lambda result: {(r[0], r[1], r[2], r[3].edges) for r in result.rows}
        assert key(molesp) == key(gam)


class TestFiltersPushed:
    def test_max_filter(self, fig1):
        query = Q1.replace("AS ?w", "AS ?w MAX 3")
        result = evaluate_query(fig1, query)
        assert all(row[3].size <= 3 for row in result.rows)
        assert 0 < len(result) < 64

    def test_limit_filter(self, fig1):
        query = Q1.replace("AS ?w", "AS ?w LIMIT 1")
        result = evaluate_query(fig1, query)
        assert len(result) == 1

    def test_score_attached(self, fig1):
        query = Q1.replace("AS ?w", "AS ?w SCORE size")
        result = evaluate_query(fig1, query)
        assert all(row[3].score is not None for row in result.rows)

    def test_top_k(self, fig1):
        query = Q1.replace("AS ?w", "AS ?w SCORE size TOP 5")
        result = evaluate_query(fig1, query)
        assert len(result) == 5
        # the kept trees are the smallest ones
        sizes = sorted(row[3].size for row in result.rows)
        assert sizes[0] == 3

    def test_label_filter(self, fig1):
        query = Q1.replace("AS ?w", 'AS ?w LABEL("citizenOf", "parentOf")')
        result = evaluate_query(fig1, query)
        for row in result.rows:
            labels = {fig1.edge(e).label for e in row[3].edges}
            assert labels <= {"citizenOf", "parentOf"}

    def test_uni_filter(self, fig1):
        query = Q1.replace("AS ?w", "AS ?w UNI")
        result = evaluate_query(fig1, query)
        t_beta = frozenset(figure1_edge(k) for k in (1, 2, 17, 16))
        # t_beta is not unidirectional (Section 2), so it must disappear
        assert all(row[3].edges != t_beta for row in result.rows)
        assert len(result) < 64

    def test_base_config_defaults(self, fig1):
        base = SearchConfig(max_edges=3)
        result = evaluate_query(fig1, Q1, base_config=base)
        assert all(row[3].size <= 3 for row in result.rows)

    def test_query_level_limit(self, fig1):
        result = evaluate_query(fig1, Q1 + " LIMIT 10")
        assert len(result) == 10


class TestSeedSetDerivation:
    def test_free_variable_with_predicate(self, fig1):
        query = """
        SELECT ?z ?w WHERE {
          CONNECT("OrgB", ?z) AS ?w
          FILTER(type(?z) = "politician")
        }
        """
        result = evaluate_query(fig1, query)
        report = result.ctp_reports[0]
        assert report.seed_set_sizes == (1, 2)  # OrgB; Elon + Falcon

    def test_wildcard_seed_set(self, fig1):
        query = 'SELECT ?w WHERE { CONNECT("Bob", *) AS ?w MAX 1 }'
        result = evaluate_query(fig1, query)
        report = result.ctp_reports[0]
        assert report.seed_set_sizes[1] is None
        # Bob alone + one tree per incident edge of Bob
        assert len(report.result_set) == 1 + fig1.degree(fig1.find_node_by_label("Bob"))

    def test_empty_seed_set_no_results(self, fig1):
        query = """
        SELECT ?w WHERE {
          CONNECT(?x, "OrgB") AS ?w
          FILTER(type(?x) = "alien")
        }
        """
        assert len(evaluate_query(fig1, query)) == 0


class TestMultipleCTPsAndJoins:
    def test_two_ctps(self, fig1):
        query = """
        SELECT ?x ?w1 ?w2 WHERE {
          ?x founded "OrgB" .
          CONNECT(?x, "France") AS ?w1 MAX 3
          CONNECT(?x, "National Liberal Party") AS ?w2 MAX 2
        }
        """
        result = evaluate_query(fig1, query)
        assert len(result) > 0
        assert set(result.columns) == {"x", "w1", "w2"}
        assert len(result.ctp_reports) == 2

    def test_join_restricts_ctp_results(self, fig1):
        # without the BGP the CTP would run over every entrepreneur
        query = """
        SELECT ?x ?w WHERE {
          ?x founded "OrgC" .
          CONNECT(?x, "USA") AS ?w MAX 2
        }
        """
        result = evaluate_query(fig1, query)
        carole = fig1.find_node_by_label("Carole")
        assert all(row[0] == carole for row in result.rows)

    def test_distinct_false_keeps_duplicates(self, fig1):
        query = """
        SELECT ?u WHERE {
          ?x citizenOf ?u .
        }
        """
        with_dups = evaluate_query(fig1, query, distinct=False)
        without = evaluate_query(fig1, query, distinct=True)
        assert len(with_dups) == 5
        assert len(without) == 2  # USA, France


def _junction_graph():
    """B - X - C plus a spur X - D: X is an internal junction node."""
    graph = Graph("junction")
    b = graph.add_node("B")
    c = graph.add_node("C")
    d = graph.add_node("D")
    x = graph.add_node("X")
    graph.add_edge(b, x, "e")
    graph.add_edge(c, x, "e")
    graph.add_edge(d, x, "e")
    return graph


class TestWildcardJoinSemantics:
    """Regression: wildcard seed columns must expand to every valid match.

    The old ``_ctp_table`` bound a wildcard variable to one representative
    node per tree; any join against (or projection of) that variable then
    silently dropped the tree's other valid matches (Definition 2.10)."""

    def test_wildcard_expands_to_all_valid_matches(self):
        graph = _junction_graph()
        query = 'SELECT ?y WHERE { CONNECT(?y, "B", "C") AS ?w }'
        result = evaluate_query(graph, query)
        names = {graph.node(row[0]).label for row in result.rows}
        # The only B-C connection is B-X-C; every leaf is an explicit seed,
        # so ?y may bind any tree node — not just the search root.
        assert {"B", "X", "C"} <= names

    def test_wildcard_join_with_second_ctp(self):
        graph = _junction_graph()
        query = """
        SELECT ?y WHERE {
          CONNECT(?y, "B", "C") AS ?w1
          CONNECT(?y, "D") AS ?w2
        }
        """
        result = evaluate_query(graph, query)
        names = {graph.node(row[0]).label for row in result.rows}
        # ?y must lie on a B-C connecting tree *and* connect to D.  B, X, C
        # qualify through the path B-X-C; D through its extension B-X-C +
        # X-D (all leaves instantiated seeds).  Representative binding kept
        # only the search roots and lost B and C.
        assert names == {"B", "X", "C", "D"}

    def test_free_leaf_must_be_the_wildcard_match(self, fig1):
        # A path grown away from the explicit seed keeps exactly one
        # non-seed leaf; the wildcard variable must bind it (and nothing
        # else), exactly as the engine reported.
        query = 'SELECT ?y ?w WHERE { CONNECT("Bob", ?y) AS ?w MAX 1 }'
        result = evaluate_query(fig1, query)
        for y, tree in result.rows:
            assert y in tree.nodes
            if tree.edges:
                assert y != fig1.find_node_by_label("Bob")

    def test_multi_wildcard_assignments_cover_free_leaf(self):
        from repro.query.evaluator import _wildcard_assignments

        graph = _junction_graph()
        b, c, x = (graph.find_node_by_label(n) for n in ("B", "C", "X"))
        bx = next(e for e, _, _ in graph.adjacent(b))
        cx = next(e for e, _, _ in graph.adjacent(c))
        # Tree B-X-C for CONNECT(?y1, ?y2, "B"): the free leaf C must be
        # covered by one wildcard variable, the other may bind any node.
        tree = ResultTree(edges=frozenset((bx, cx)), nodes=frozenset((b, x, c)), seeds=(None, None, b))
        combos = set(_wildcard_assignments(graph, tree, (0, 1)))
        assert combos == {(c, b), (c, x), (c, c), (b, c), (x, c)}
        # No free leaf (single-node tree): both variables range freely.
        lone = ResultTree(edges=frozenset(), nodes=frozenset((b,)), seeds=(None, None, b))
        assert set(_wildcard_assignments(graph, lone, (0, 1))) == {(b, b)}

    def test_wildcard_row_count_unchanged_for_paths(self, fig1):
        # Path-shaped wildcard results have a unique valid match (the free
        # leaf), so expansion must not inflate the projection.
        query = 'SELECT ?w WHERE { CONNECT("Bob", *) AS ?w MAX 1 }'
        result = evaluate_query(fig1, query)
        report = result.ctp_reports[0]
        assert len(result) == len(report.result_set)


class TestBindingIntersection:
    """Regression: a variable bound by several tables must derive CTP seeds
    from the *intersection* of their distinct values, not the first table."""

    def test_intersection_of_two_tables(self):
        first = Table(("x", "y"), [(1, 10), (2, 20), (3, 30)])
        second = Table(("x", "z"), [(2, 200), (4, 400), (3, 300)])
        values = derive_binding_values([first, second])
        assert values["x"] == [2, 3]  # first-table order, intersected
        assert values["y"] == [10, 20, 30]
        assert values["z"] == [200, 400, 300]

    def test_single_table_keeps_distinct_order(self):
        table = Table(("x",), [(3,), (1,), (3,), (2,)])
        assert derive_binding_values([table])["x"] == [3, 1, 2]

    def test_three_way_intersection(self):
        tables = [
            Table(("x",), [(1,), (2,), (3,), (4,)]),
            Table(("x",), [(2,), (3,), (4,)]),
            Table(("x",), [(4,), (2,)]),
        ]
        assert derive_binding_values(tables)["x"] == [2, 4]


class TestUniTriState:
    """Regression: a per-CTP filter can turn ``uni`` *off* again."""

    def test_unspecified_inherits_base(self):
        config = config_for_ctp(CTPFilters(), SearchConfig(uni=True), None)
        assert config.uni is True
        config = config_for_ctp(CTPFilters(), SearchConfig(), None)
        assert config.uni is False

    def test_explicit_true_overrides(self):
        config = config_for_ctp(CTPFilters(uni=True), SearchConfig(), None)
        assert config.uni is True

    def test_explicit_false_overrides_base_true(self):
        config = config_for_ctp(CTPFilters(uni=False), SearchConfig(uni=True), None)
        assert config.uni is False

    def test_parser_leaves_uni_unspecified(self, fig1):
        # An EQL CTP without UNI inherits a uni base config end-to-end.
        base = SearchConfig(uni=True)
        result = evaluate_query(fig1, Q1, base_config=base)
        t_beta = frozenset(figure1_edge(k) for k in (1, 2, 17, 16))
        assert all(row[3].edges != t_beta for row in result.rows)  # UNI applied

    def test_programmatic_uni_off_beats_base(self, fig1):
        from repro.query.parser import parse_query

        query = parse_query(Q1)
        ctp = query.ctps[0]
        object.__setattr__(ctp, "filters", CTPFilters(uni=False))
        result = evaluate_query(fig1, query, base_config=SearchConfig(uni=True))
        t_beta = frozenset(figure1_edge(k) for k in (1, 2, 17, 16))
        assert any(row[3].edges == t_beta for row in result.rows)  # UNI disabled


class TestErrors:
    def test_all_wildcard_ctp_rejected(self, fig1):
        """A CTP whose every seed predicate is free and unconstrained would
        ask for connections between everything and everything — the engine
        refuses it (Section 4.9 requires at least one explicit set)."""
        from repro.errors import SearchError
        from repro.query.ast import CTP, EQLQuery, Predicate

        query = EQLQuery(
            head=("x",),
            ctps=(CTP((Predicate("x"), Predicate("y")), "w"),),
        )
        with pytest.raises(SearchError):
            evaluate_query(fig1, query, base_config=SearchConfig(max_edges=0))

    def test_one_constrained_seed_suffices(self, fig1):
        query = """
        SELECT ?x ?w WHERE {
          CONNECT(?x, *) AS ?w MAX 1
          FILTER(type(?x) = "politician")
        }
        """
        result = evaluate_query(fig1, query)
        assert len(result) > 0
        assert result.columns == ("x", "w")
