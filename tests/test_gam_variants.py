"""Relationships between GAM-family variants (Sections 4.4-4.7).

The paper's containment claims, checked on many graphs:

* ESP results ⊆ GAM results (pruning never invents results);
* MoESP ⊇ ESP ("MoESP builds a strict superset of the rooted trees
  created by ESP, thus it finds all results of ESP");
* MoLESP ⊇ MoESP and MoLESP ⊇ LESP ("MoLESP finds all the trees found by
  MoESP and LESP");
* Property 3: with 2 seed sets, ESP (and every variant) is complete;
* Property 5: MoESP finds all path results, for any m;
* Property 8: MoLESP is complete for m <= 3.
"""

import random

import pytest

from repro.testing import assert_all_valid, random_graph, random_seed_sets
from repro.ctp.esp import ESPSearch
from repro.ctp.gam import GAMSearch
from repro.ctp.lesp import LESPSearch
from repro.ctp.moesp import MoESPSearch
from repro.ctp.molesp import MoLESPSearch
from repro.workloads.synthetic import comb_graph, line_graph, star_graph

ALL_VARIANTS = (ESPSearch, MoESPSearch, LESPSearch, MoLESPSearch)


def _run_all(graph, seeds):
    return {
        "gam": GAMSearch().run(graph, seeds),
        "esp": ESPSearch().run(graph, seeds),
        "moesp": MoESPSearch().run(graph, seeds),
        "lesp": LESPSearch().run(graph, seeds),
        "molesp": MoLESPSearch().run(graph, seeds),
    }


class TestContainments:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_graph_containments(self, seed):
        rng = random.Random(seed * 7 + 1)
        graph = random_graph(rng, num_nodes=8, num_edges=11)
        seed_sets = random_seed_sets(rng, graph, m=rng.randint(2, 4))
        outcome = _run_all(graph, seed_sets)
        gam = outcome["gam"].edge_sets()
        assert outcome["esp"].edge_sets() <= gam
        assert outcome["moesp"].edge_sets() <= gam
        assert outcome["lesp"].edge_sets() <= gam
        assert outcome["molesp"].edge_sets() <= gam
        assert outcome["esp"].edge_sets() <= outcome["moesp"].edge_sets()
        assert outcome["esp"].edge_sets() <= outcome["lesp"].edge_sets()
        assert outcome["moesp"].edge_sets() <= outcome["molesp"].edge_sets()
        assert outcome["lesp"].edge_sets() <= outcome["molesp"].edge_sets()

    @pytest.mark.parametrize("family", ["line", "comb", "star"])
    def test_synthetic_containments(self, family):
        if family == "line":
            graph, seeds = line_graph(5, 2)
        elif family == "comb":
            graph, seeds = comb_graph(3, 1, 3)
        else:
            graph, seeds = star_graph(6, 2)
        outcome = _run_all(graph, seeds)
        gam = outcome["gam"].edge_sets()
        for name in ("esp", "moesp", "lesp", "molesp"):
            assert outcome[name].edge_sets() <= gam


class TestProperty3TwoSeeds:
    """ESP is complete for m = 2, for any execution order (Property 3)."""

    @pytest.mark.parametrize("seed", range(10))
    def test_esp_equals_gam_on_random_graphs(self, seed):
        rng = random.Random(seed * 13 + 5)
        graph = random_graph(rng, num_nodes=9, num_edges=13)
        seed_sets = random_seed_sets(rng, graph, m=2)
        esp = ESPSearch().run(graph, seed_sets)
        gam = GAMSearch().run(graph, seed_sets)
        assert esp.edge_sets() == gam.edge_sets()
        assert_all_valid(graph, esp, seed_sets)

    def test_esp_complete_on_chain_m2(self):
        from repro.workloads.synthetic import chain_graph

        graph, seeds = chain_graph(5)
        assert len(ESPSearch().run(graph, seeds)) == 32


class TestProperty5PathResults:
    """MoESP finds all path results, for any number of seed sets."""

    @pytest.mark.parametrize("m", [3, 4, 5, 6])
    def test_line_graphs(self, m):
        graph, seeds = line_graph(m, 2)
        moesp = MoESPSearch().run(graph, seeds)
        gam = GAMSearch().run(graph, seeds)
        assert moesp.edge_sets() == gam.edge_sets()
        assert len(moesp) == 1

    def test_path_results_on_random_graphs(self):
        """Every path-shaped GAM result must appear in MoESP's output."""
        rng = random.Random(99)
        for _ in range(6):
            graph = random_graph(rng, num_nodes=8, num_edges=10)
            seed_sets = random_seed_sets(rng, graph, m=4, max_size=1)
            gam = GAMSearch().run(graph, seed_sets)
            moesp = MoESPSearch().run(graph, seed_sets).edge_sets()
            for result in gam:
                if _is_path(graph, result.edges):
                    assert result.edges in moesp


def _is_path(graph, edges):
    if not edges:
        return True
    degree = {}
    for edge_id in edges:
        edge = graph.edge(edge_id)
        degree[edge.source] = degree.get(edge.source, 0) + 1
        degree[edge.target] = degree.get(edge.target, 0) + 1
    return max(degree.values()) <= 2


class TestProperty8MoLESPComplete:
    """MoLESP is complete for m <= 3 (Property 8)."""

    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("m", [2, 3])
    def test_random_graphs(self, seed, m):
        rng = random.Random(seed * 31 + m)
        graph = random_graph(rng, num_nodes=8, num_edges=12)
        seed_sets = random_seed_sets(rng, graph, m=m)
        molesp = MoLESPSearch().run(graph, seed_sets)
        gam = GAMSearch().run(graph, seed_sets)
        assert molesp.edge_sets() == gam.edge_sets()
        assert_all_valid(graph, molesp, seed_sets)

    def test_star_m3(self):
        graph, seeds = star_graph(3, 3)
        assert MoLESPSearch().run(graph, seeds).edge_sets() == GAMSearch().run(graph, seeds).edge_sets()


class TestPruningEffectiveness:
    def test_esp_reduces_provenances(self, fig1, fig1_seeds):
        esp = ESPSearch().run(fig1, fig1_seeds)
        gam = GAMSearch().run(fig1, fig1_seeds)
        assert esp.stats.provenances < gam.stats.provenances
        assert esp.stats.pruned_history > 0

    def test_molesp_between_esp_and_gam(self, fig1, fig1_seeds):
        esp = ESPSearch().run(fig1, fig1_seeds)
        molesp = MoLESPSearch().run(fig1, fig1_seeds)
        gam = GAMSearch().run(fig1, fig1_seeds)
        assert esp.stats.provenances <= molesp.stats.provenances <= gam.stats.provenances

    def test_mo_copies_only_in_mo_variants(self, fig1, fig1_seeds):
        assert ESPSearch().run(fig1, fig1_seeds).stats.mo_copies == 0
        assert LESPSearch().run(fig1, fig1_seeds).stats.mo_copies == 0
        assert MoESPSearch().run(fig1, fig1_seeds).stats.mo_copies > 0
        assert MoLESPSearch().run(fig1, fig1_seeds).stats.mo_copies > 0
