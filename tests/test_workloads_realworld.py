"""Checks that the real-world substitutes preserve what matters (DESIGN §3)."""

import pytest

from repro.errors import WorkloadError
from repro.graph.stats import connected_components, graph_stats
from repro.query.evaluator import evaluate_query
from repro.query.parser import parse_query
from repro.workloads.realworld import (
    PAPER_M_DISTRIBUTION,
    dbpedia_like,
    j1_query,
    j2_query,
    j3_query,
    sample_ctp_workload,
    scale_free_graph,
    yago_like,
)


@pytest.fixture(scope="module")
def dataset():
    return yago_like(scale=0.05)


class TestGenerator:
    def test_connected(self, dataset):
        assert len(connected_components(dataset.graph)) == 1

    def test_sizes(self, dataset):
        assert dataset.graph.num_nodes == 400
        assert dataset.graph.num_edges == 1200

    def test_degree_skew(self, dataset):
        """Preferential attachment must produce hubs: max degree far above
        the mean, like real knowledge graphs."""
        stats = graph_stats(dataset.graph)
        assert stats.max_degree > 8 * stats.mean_degree

    def test_label_skew(self, dataset):
        """Edge label usage follows a Zipf-like distribution."""
        from collections import Counter

        counts = Counter(edge.label for edge in dataset.graph.edges())
        ordered = [c for _, c in counts.most_common()]
        assert ordered[0] > 3 * ordered[-1]

    def test_every_node_typed(self, dataset):
        assert all(dataset.graph.node(n).types for n in dataset.graph.node_ids())
        assert sum(len(v) for v in dataset.nodes_by_type.values()) == dataset.graph.num_nodes

    def test_deterministic_by_seed(self):
        a = scale_free_graph(100, 300, seed=5)
        b = scale_free_graph(100, 300, seed=5)
        triples_a = [(e.source, e.label, e.target) for e in a.graph.edges()]
        triples_b = [(e.source, e.label, e.target) for e in b.graph.edges()]
        assert triples_a == triples_b

    def test_different_seeds_differ(self):
        a = scale_free_graph(100, 300, seed=5)
        b = scale_free_graph(100, 300, seed=6)
        triples_a = [(e.source, e.label, e.target) for e in a.graph.edges()]
        triples_b = [(e.source, e.label, e.target) for e in b.graph.edges()]
        assert triples_a != triples_b

    def test_dbpedia_larger_than_yago(self):
        y = yago_like(scale=0.02)
        d = dbpedia_like(scale=0.02)
        assert d.graph.num_edges > y.graph.num_edges

    def test_bad_params(self):
        with pytest.raises(WorkloadError):
            scale_free_graph(1, 5)
        with pytest.raises(WorkloadError):
            scale_free_graph(10, 3)


class TestWorkloadSampler:
    def test_paper_distribution(self, dataset):
        workload = sample_ctp_workload(dataset.graph, scale=1.0, seed=1)
        from collections import Counter

        by_m = Counter(len(ctp) for ctp in workload)
        assert dict(by_m) == PAPER_M_DISTRIBUTION

    def test_scaled_distribution_keeps_all_m(self, dataset):
        workload = sample_ctp_workload(dataset.graph, scale=0.02, seed=1)
        by_m = {len(ctp) for ctp in workload}
        assert by_m == {2, 3, 4, 5, 6}

    def test_seed_sets_disjoint(self, dataset):
        workload = sample_ctp_workload(dataset.graph, scale=0.05, seed=2)
        for ctp in workload:
            all_nodes = [n for seed_set in ctp for n in seed_set]
            assert len(all_nodes) == len(set(all_nodes))

    def test_ctps_usually_have_results(self, dataset):
        """Seeds are sampled inside a BFS ball, so most CTPs are solvable."""
        from repro.ctp.molesp import MoLESPSearch
        from repro.ctp.config import SearchConfig

        workload = sample_ctp_workload(dataset.graph, scale=0.03, seed=3)
        solved = 0
        for ctp in workload:
            results = MoLESPSearch().run(dataset.graph, ctp, SearchConfig(limit=1, timeout=5.0))
            solved += bool(len(results))
        assert solved >= len(workload) * 0.6


class TestJQueries:
    def test_queries_parse(self):
        for text in (j1_query(), j2_query(), j3_query()):
            query = parse_query(text)
            assert query.ctps

    def test_j1_shape(self):
        query = parse_query(j1_query())
        assert len(query.bgps()) == 1 or len(query.bgps()) == 2
        assert len(query.ctps) == 2

    def test_j2_has_one_ctp(self):
        query = parse_query(j2_query())
        assert len(query.ctps) == 1

    def test_j3_wildcard(self):
        query = parse_query(j3_query())
        (ctp,) = query.ctps
        assert any(seed.is_empty for seed in ctp.seeds)

    def test_j2_runs_with_large_seed_set(self, dataset):
        result = evaluate_query(dataset.graph, j2_query("MAX 2 TIMEOUT 10"), default_timeout=10.0)
        report = result.ctp_reports[0]
        sizes = [s for s in report.seed_set_sizes if s is not None]
        assert max(sizes) > 20  # the "very large seed set" of J2

    def test_j3_runs_with_wildcard(self, dataset):
        result = evaluate_query(dataset.graph, j3_query("MAX 2 LIMIT 50 TIMEOUT 10"), default_timeout=10.0)
        report = result.ctp_reports[0]
        assert None in report.seed_set_sizes
        assert len(report.result_set) == 50
