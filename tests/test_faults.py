"""Fault injection and the self-healing serving stack.

Layers:

* **fault plan units** — seeded :class:`~repro.faults.FaultPlan` firing
  rules (``at``/``every``/``probability``), epoch gating, and the
  injectable effects (scorer raise, ballast, corrupted snapshot copy);
* **policy units** — :class:`~repro.query.resilience.RetryPolicy`
  (retryable classes, attempt budget, deadline-budget refusal, seeded
  jitter) and :class:`~repro.query.resilience.CircuitBreaker` (the
  closed/open/half-open machine, driven by an injected clock);
* **recovery integration** — every injectable fault class driven through
  the real pooled dispatch (and the query server): each request returns
  rows bit-identical to serial or a typed error, never a silently wrong
  answer;
* **degradation chain** — process → thread → serial under injected
  faults, across every registered algorithm, with each hop recorded in
  ``CTPReport.dispatch_mode``;
* **serving hygiene** — priority load shedding, graceful drain, typed
  :class:`~repro.errors.PoolClosedError` after close, bounded ping.
"""

from __future__ import annotations

import inspect
import os
import threading
import time
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro import faults
from repro.ctp.config import SearchConfig
from repro.ctp.registry import ALGORITHMS
from repro.errors import (
    ConfigError,
    FaultInjected,
    PoolClosedError,
    PoolError,
    SnapshotError,
    ValidationError,
    WorkerHangError,
)
from repro.faults import FaultPlan, FaultSpec
from repro.graph.snapshot import save_snapshot
from repro.query.evaluator import evaluate_query
from repro.query.pool import WorkerPool
from repro.query.resilience import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    PoolResilienceConfig,
    ResilienceReport,
    RetryPolicy,
)
from repro.serve import (
    PRIORITY_HIGH,
    PRIORITY_LOW,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_REJECTED,
    STATUS_SHED,
    QueryRequest,
    QueryServer,
)

MATRIX_QUERY = """
SELECT ?x ?w1 ?w2 ?w3 WHERE {
  ?x founded "OrgB" .
  CONNECT(?x, "France") AS ?w1 MAX 3
  CONNECT(?x, "National Liberal Party") AS ?w2 MAX 2
  CONNECT(?x, "France") AS ?w3 MAX 3
}
"""


@pytest.fixture(autouse=True)
def _clean_faults():
    """No test leaks an installed plan into its neighbours."""
    yield
    faults.clear_plan()


def _serial(fig1, algo: str = "molesp"):
    return evaluate_query(fig1, MATRIX_QUERY, algorithm=algo, base_config=SearchConfig())


# ----------------------------------------------------------------------
# fault plan units
# ----------------------------------------------------------------------
def test_fault_spec_validation():
    with pytest.raises(ConfigError):
        FaultSpec(kind="meteor")
    with pytest.raises(ConfigError):
        FaultSpec(kind="crash", site="nowhere")
    # corrupt_snapshot is a load-site fault, and the load site takes
    # nothing else (there is no worker evaluation to crash there).
    with pytest.raises(ConfigError):
        FaultSpec(kind="corrupt_snapshot", site=faults.SITE_WORKER_RUN)
    with pytest.raises(ConfigError):
        FaultSpec.crash(site=faults.SITE_SNAPSHOT_LOAD)
    with pytest.raises(ConfigError):
        FaultSpec.crash(probability=1.5)
    with pytest.raises(ConfigError):
        FaultSpec.crash(every=0)


def test_fault_plan_firing_rules():
    plan = FaultPlan(
        specs=(
            FaultSpec.scorer(at=(0, 2)),
            FaultSpec.slow(every=3),
            FaultSpec.rss(epochs=(1,)),
        )
    )
    site = faults.SITE_WORKER_RUN
    # ``at`` fires exactly on the listed counters.
    assert [s.kind for s in plan.active_specs(site, 0, 0)] == ["scorer", "slow"]
    assert [s.kind for s in plan.active_specs(site, 1, 0)] == []
    assert [s.kind for s in plan.active_specs(site, 2, 0)] == ["scorer"]
    assert [s.kind for s in plan.active_specs(site, 3, 0)] == ["slow"]
    # epoch gating: the rss spec only exists for worker generation 1.
    assert [s.kind for s in plan.active_specs(site, 1, 1)] == ["rss"]


def test_fault_plan_probability_is_seeded():
    plan_a = FaultPlan(specs=(FaultSpec.scorer(probability=0.5),), seed=42)
    plan_b = FaultPlan(specs=(FaultSpec.scorer(probability=0.5),), seed=42)
    site = faults.SITE_WORKER_RUN
    fired_a = [bool(plan_a.active_specs(site, c, 0)) for c in range(64)]
    fired_b = [bool(plan_b.active_specs(site, c, 0)) for c in range(64)]
    assert fired_a == fired_b  # same seed, same chaos
    assert any(fired_a) and not all(fired_a)  # an actual coin, not a constant


def test_inject_is_noop_without_plan_and_counts_with_one():
    faults.inject(faults.SITE_WORKER_RUN)  # no plan: returns silently
    faults.install_plan(FaultPlan(specs=(FaultSpec.scorer(at=(1,)),)))
    faults.inject(faults.SITE_WORKER_RUN)  # counter 0: spec not armed
    with pytest.raises(FaultInjected):
        faults.inject(faults.SITE_WORKER_RUN)  # counter 1
    # Re-installing resets the counters — a fresh deterministic run.
    faults.install_plan(FaultPlan(specs=(FaultSpec.scorer(at=(1,)),)))
    faults.inject(faults.SITE_WORKER_RUN)


def test_corrupted_snapshot_copy_trips_real_validation(fig1, tmp_path):
    from repro.graph.snapshot import load_snapshot

    path = save_snapshot(fig1, tmp_path / "fig1.snapshot")
    faults.install_plan(FaultPlan(specs=(FaultSpec.corrupt_snapshot(at=(0,)),)))
    with pytest.raises(SnapshotError):
        load_snapshot(path)
    # The next load (counter 1) is clean — and identical to the original.
    clean = load_snapshot(path)
    assert clean.num_nodes == fig1.freeze().num_nodes
    faults.clear_plan()
    # The truncated copy is pid-tagged like an auto-snapshot so the
    # stale-snapshot reaper owns its cleanup; drop it eagerly here.
    import glob
    import tempfile

    for leftover in glob.glob(
        os.path.join(tempfile.gettempdir(), f"repro-csr-{os.getpid()}-fault*")
    ):
        os.unlink(leftover)


# ----------------------------------------------------------------------
# policy units
# ----------------------------------------------------------------------
def test_retry_policy_retryable_classes():
    policy = RetryPolicy()
    assert policy.is_retryable(BrokenProcessPool("boom"))
    assert policy.is_retryable(WorkerHangError("wedged"))
    assert policy.is_retryable(OSError("fork failed"))
    # Deterministic user-code errors would fail identically on retry.
    assert not policy.is_retryable(FaultInjected("scorer"))
    assert not policy.is_retryable(ValueError("bad"))


def test_retry_policy_attempt_and_budget_limits():
    policy = RetryPolicy(max_attempts=3, base_backoff=0.2, jitter=0.0)
    error = BrokenProcessPool("boom")
    assert policy.should_retry(1, error)
    assert policy.should_retry(2, error)
    assert not policy.should_retry(3, error)  # attempts exhausted
    assert not policy.should_retry(1, FaultInjected("scorer"))
    # A backoff that would overrun the per-CTP budget is refused.
    assert not policy.should_retry(1, error, elapsed=0.5, budget=0.6)
    assert policy.should_retry(1, error, elapsed=0.1, budget=0.6)


def test_retry_policy_backoff_schedule_and_seeded_jitter():
    exact = RetryPolicy(base_backoff=0.02, multiplier=2.0, max_backoff=0.05, jitter=0.0)
    assert exact.backoff_seconds(1) == pytest.approx(0.02)
    assert exact.backoff_seconds(2) == pytest.approx(0.04)
    assert exact.backoff_seconds(3) == pytest.approx(0.05)  # capped
    seeded = RetryPolicy(seed=7)
    waits_a = [seeded.backoff_seconds(k, seeded.rng()) for k in (1, 2, 3)]
    waits_b = [seeded.backoff_seconds(k, seeded.rng()) for k in (1, 2, 3)]
    assert waits_a == waits_b  # pinning the seed pins the chaos run
    base = RetryPolicy().base_backoff
    assert base * 0.5 <= waits_a[0] <= base * 1.5  # jitter=0.5 band


def test_circuit_breaker_state_machine():
    now = [0.0]
    breaker = CircuitBreaker(failure_threshold=2, cooldown=10.0, clock=lambda: now[0])
    assert breaker.state == BREAKER_CLOSED and breaker.allow()
    breaker.record_failure()
    assert breaker.state == BREAKER_CLOSED  # below threshold
    breaker.record_failure()
    assert breaker.state == BREAKER_OPEN and breaker.trips == 1
    assert not breaker.allow()
    now[0] = 10.0  # cooldown elapsed: half-open admits one probe
    assert breaker.state == BREAKER_HALF_OPEN
    assert breaker.allow()
    assert not breaker.allow()  # probe budget spent, rest stay degraded
    breaker.record_failure()  # the probe failed: straight back to open
    assert breaker.state == BREAKER_OPEN and breaker.trips == 2
    now[0] = 20.0
    assert breaker.allow()
    breaker.record_success()
    assert breaker.state == BREAKER_CLOSED and breaker.allow()


def test_resilience_report_merge():
    a = ResilienceReport(retries=1, hangs=1, respawns=2, recycled_workers=3)
    b = ResilienceReport(retries=2, breaker_state=BREAKER_OPEN, degraded_to="thread")
    a.merge_from(b)
    assert (a.retries, a.hangs, a.respawns) == (3, 1, 2)
    assert a.breaker_state == BREAKER_OPEN
    assert a.recycled_workers == 3 and a.degraded_to == "thread"


def test_pool_resilience_config_validation():
    with pytest.raises(ConfigError):
        PoolResilienceConfig(recycle_after=0)
    with pytest.raises(ConfigError):
        PoolResilienceConfig(max_worker_rss_mb=-1.0)
    with pytest.raises(ConfigError):
        PoolResilienceConfig(hang_timeout=0.0)


# ----------------------------------------------------------------------
# recovery integration: every fault class through the real dispatch
# ----------------------------------------------------------------------
def test_pool_recovers_from_injected_crash(fig1):
    serial = _serial(fig1)
    faults.install_plan(FaultPlan(specs=(FaultSpec.crash(at=(0,), epochs=(0,)),)))
    with WorkerPool(fig1, workers=2) as pool:
        config = SearchConfig(parallelism=2, parallelism_mode="process")
        result = evaluate_query(fig1, MATRIX_QUERY, base_config=config, pool=pool)
        assert result.rows == serial.rows
        assert [r.dispatch_mode for r in result.ctp_reports] == ["process", "process", "memo"]
        assert result.resilience.retries == 1
        assert result.resilience.respawns == 1
        assert pool.respawns == 1
        assert pool.breaker.state == BREAKER_CLOSED  # final success reset it


def test_pool_recovers_from_corrupt_snapshot(fig1):
    serial = _serial(fig1)
    # The epoch-0 worker initializer loads a truncated snapshot copy and
    # dies on the format's real validation; the respawned epoch-1 workers
    # load clean and the retried fan-out succeeds.
    faults.install_plan(
        FaultPlan(specs=(FaultSpec.corrupt_snapshot(at=(0,), epochs=(0,)),))
    )
    with WorkerPool(fig1, workers=1) as pool:
        config = SearchConfig(parallelism=2, parallelism_mode="process")
        result = evaluate_query(fig1, MATRIX_QUERY, base_config=config, pool=pool)
        assert result.rows == serial.rows
        assert result.resilience.retries == 1
        assert pool.respawns == 1


def test_hang_watchdog_kills_and_degrades_honestly(fig1):
    serial = _serial(fig1)
    faults.install_plan(
        FaultPlan(specs=(FaultSpec.hang(seconds=60.0, at=(0,), epochs=(0,)),))
    )
    resilience = PoolResilienceConfig(hang_grace=0.3)
    with WorkerPool(fig1, workers=1, resilience=resilience) as pool:
        config = SearchConfig(parallelism=2, parallelism_mode="process", timeout=0.5)
        result = evaluate_query(fig1, MATRIX_QUERY, base_config=config, pool=pool)
        # The watchdog (sum of CTP timeouts + grace) fired, the wedged
        # worker was kill-respawned, and — the hung attempt having spent
        # the budget a retry would need — dispatch degraded to threads,
        # stamping the hop.  The rows are still exactly serial's.
        assert result.rows == serial.rows
        assert result.resilience.hangs == 1
        assert pool.hangs == 1
        assert [r.dispatch_mode for r in result.ctp_reports] == [
            "process->thread",
            "process->thread",
            "memo",
        ]


def test_scorer_fault_is_a_typed_error_never_wrong_rows(fig1):
    faults.install_plan(FaultPlan(specs=(FaultSpec.scorer(at=(0,), epochs=(0,)),)))
    with WorkerPool(fig1, workers=1) as pool:
        config = SearchConfig(parallelism=2, parallelism_mode="process")
        with pytest.raises(FaultInjected):
            evaluate_query(fig1, MATRIX_QUERY, base_config=config, pool=pool)
        # Not retried, not degraded, breaker not charged: a deterministic
        # evaluation error is the caller's to see.
        assert pool.respawns == 0
        assert pool.breaker.state == BREAKER_CLOSED


def test_recycling_after_request_threshold(fig1):
    serial = _serial(fig1)
    resilience = PoolResilienceConfig(recycle_after=1)
    config = SearchConfig(parallelism=2, parallelism_mode="process")
    with WorkerPool(fig1, workers=1, resilience=resilience) as pool:
        first = evaluate_query(fig1, MATRIX_QUERY, base_config=config, pool=pool)
        assert pool.recycles == 0  # recycling happens BETWEEN queries
        second = evaluate_query(fig1, MATRIX_QUERY, base_config=config, pool=pool)
        assert pool.recycles >= 1
        assert first.rows == serial.rows and second.rows == serial.rows
        assert second.resilience.recycled_workers >= 1


@pytest.mark.skipif(
    not os.path.exists("/proc/self/status"), reason="RSS recycling reads procfs"
)
def test_recycling_on_rss_growth(fig1):
    serial = _serial(fig1)
    # Every epoch-0 run retains 32 MiB of ballast; the sampled RSS check
    # recycles the bloated worker at the next dispatch boundary.
    faults.install_plan(FaultPlan(specs=(FaultSpec.rss(grow_mb=32.0, every=1),)))
    resilience = PoolResilienceConfig(max_worker_rss_mb=64.0, rss_check_every=1)
    config = SearchConfig(parallelism=2, parallelism_mode="process")
    with WorkerPool(fig1, workers=1, resilience=resilience) as pool:
        evaluate_query(fig1, MATRIX_QUERY, base_config=config, pool=pool)
        result = evaluate_query(fig1, MATRIX_QUERY, base_config=config, pool=pool)
        assert pool.recycles >= 1
        assert result.rows == serial.rows


# ----------------------------------------------------------------------
# degradation chain: process -> thread -> serial, every algorithm
# ----------------------------------------------------------------------
@pytest.mark.parametrize("algo", sorted(ALGORITHMS))
def test_degradation_chain_under_crash_faults(fig1, algo):
    """Unrecoverable crashes walk process -> thread, rows stay serial's."""
    serial = _serial(fig1, algo)
    faults.install_plan(FaultPlan(specs=(FaultSpec.crash(every=1),)))
    policy = RetryPolicy(max_attempts=1)  # first failure is final
    breaker = CircuitBreaker(failure_threshold=100)  # isolate the hop logic
    with WorkerPool(fig1, workers=1, retry_policy=policy, breaker=breaker) as pool:
        config = SearchConfig(parallelism=2, parallelism_mode="process")
        result = evaluate_query(
            fig1, MATRIX_QUERY, algorithm=algo, base_config=config, pool=pool
        )
    assert result.columns == serial.columns
    assert result.rows == serial.rows
    assert [r.dispatch_mode for r in result.ctp_reports] == [
        "process->thread",
        "process->thread",
        "memo",
    ]
    assert result.resilience.degraded_to == "thread"


def test_degradation_chain_reaches_serial(fig1):
    """With one worker of parallelism the thread hop collapses to serial."""
    serial = _serial(fig1)
    faults.install_plan(FaultPlan(specs=(FaultSpec.crash(every=1),)))
    with WorkerPool(fig1, workers=1, retry_policy=RetryPolicy(max_attempts=1)) as pool:
        config = SearchConfig(parallelism=1, parallelism_mode="process")
        result = evaluate_query(fig1, MATRIX_QUERY, base_config=config, pool=pool)
    assert result.rows == serial.rows
    assert [r.dispatch_mode for r in result.ctp_reports] == [
        "process->serial",
        "process->serial",
        "memo",
    ]
    assert result.resilience.degraded_to == "serial"


def test_open_breaker_degrades_without_touching_the_pool(fig1):
    serial = _serial(fig1)
    breaker = CircuitBreaker(failure_threshold=1, cooldown=3600.0)
    breaker.record_failure()  # trip it open for the whole test
    with WorkerPool(fig1, workers=2, breaker=breaker) as pool:
        config = SearchConfig(parallelism=2, parallelism_mode="process")
        result = evaluate_query(fig1, MATRIX_QUERY, base_config=config, pool=pool)
        assert pool.dispatches == 0  # the open breaker spared the pool
    assert result.rows == serial.rows
    assert [r.dispatch_mode for r in result.ctp_reports] == [
        "process->thread",
        "process->thread",
        "memo",
    ]
    assert result.resilience.breaker_skips == 1
    assert result.resilience.breaker_state == BREAKER_OPEN


def test_breaker_trips_then_half_open_probe_recovers(fig1):
    serial = _serial(fig1)
    # Crashes span two worker generations: request 1 burns both attempts
    # (2 failures -> open), request 2 is breaker-skipped, and after the
    # cooldown the half-open probe finds clean epoch-2 workers.
    faults.install_plan(FaultPlan(specs=(FaultSpec.crash(every=1, epochs=(0, 1)),)))
    breaker = CircuitBreaker(failure_threshold=2, cooldown=0.1)
    config = SearchConfig(parallelism=2, parallelism_mode="process")
    with WorkerPool(fig1, workers=1, breaker=breaker) as pool:
        first = evaluate_query(fig1, MATRIX_QUERY, base_config=config, pool=pool)
        assert first.rows == serial.rows
        assert first.resilience.degraded_to == "thread"
        assert breaker.state == BREAKER_OPEN and breaker.trips == 1
        second = evaluate_query(fig1, MATRIX_QUERY, base_config=config, pool=pool)
        assert second.rows == serial.rows
        assert second.resilience.breaker_skips == 1
        time.sleep(0.15)  # cooldown: the next dispatch is the probe
        third = evaluate_query(fig1, MATRIX_QUERY, base_config=config, pool=pool)
        assert third.rows == serial.rows
        assert [r.dispatch_mode for r in third.ctp_reports] == ["process", "process", "memo"]
        assert breaker.state == BREAKER_CLOSED


# ----------------------------------------------------------------------
# serving: shedding, drain, typed close, bounded ping
# ----------------------------------------------------------------------
def test_low_priority_requests_shed_under_pressure(fig1):
    with QueryServer(fig1, max_pending=4, shed_threshold=1) as server:
        # Synthetic pressure: the gauge reads one in-flight request.
        with server._gauge_lock:
            server._pending = 1
        low = server.handle(QueryRequest(query=MATRIX_QUERY, priority=PRIORITY_LOW))
        assert low.status == STATUS_SHED and "shed" in low.error
        high = server.handle(QueryRequest(query=MATRIX_QUERY, priority=PRIORITY_HIGH))
        assert high.status == STATUS_OK  # priorities above LOW still admitted
        with server._gauge_lock:
            server._pending = 0
        relieved = server.handle(QueryRequest(query=MATRIX_QUERY, priority=PRIORITY_LOW))
        assert relieved.status == STATUS_OK
        assert server.shed == 1


def test_request_priority_is_validated():
    with pytest.raises(ValidationError):
        QueryRequest(query="SELECT ?x WHERE { }", priority=7)


def test_drain_finishes_in_flight_then_closes(fig1):
    faults.install_plan(FaultPlan(specs=(FaultSpec.slow(seconds=0.3, every=1),)))
    server = QueryServer(fig1, workers=1, max_pending=4)
    responses = []
    worker = threading.Thread(
        target=lambda: responses.append(server.handle(QueryRequest(query=MATRIX_QUERY)))
    )
    worker.start()
    deadline = time.time() + 10.0
    while server._pending == 0 and time.time() < deadline:
        time.sleep(0.005)  # wait for the request to be admitted
    assert server.drain(timeout=30.0)  # in-flight request ran to completion
    worker.join(timeout=30.0)
    assert server.closed and server.draining
    assert responses and responses[0].status == STATUS_OK
    late = server.handle(QueryRequest(query=MATRIX_QUERY))
    assert late.status == STATUS_REJECTED


def test_drain_timeout_still_closes(fig1):
    server = QueryServer(fig1, max_pending=2)
    with server._gauge_lock:
        server._pending = 1  # a request that never finishes
    assert server.drain(timeout=0.05) is False
    assert server.closed


def test_pool_closed_error_is_typed(fig1):
    pool = WorkerPool(fig1, workers=1)
    pool.close()
    with pytest.raises(PoolClosedError):
        pool.submit("molesp", [(0,)], SearchConfig())
    with pytest.raises(PoolClosedError):
        pool.ping()
    with pytest.raises(PoolClosedError):
        pool.respawn()
    assert issubclass(PoolClosedError, PoolError)  # old handlers keep working
    assert not pool.healthy()  # boolean form stays boolean
    pool.close()  # idempotent


def test_ping_default_timeout_is_bounded():
    for method in (WorkerPool.ping, WorkerPool.healthy):
        default = inspect.signature(method).parameters["timeout"].default
        assert default <= 5.0, f"{method.__name__} must fail fast, got {default}s"


def test_server_reports_resilience_telemetry(fig1):
    faults.install_plan(FaultPlan(specs=(FaultSpec.crash(at=(0,), epochs=(0,)),)))
    with QueryServer(fig1, workers=1, max_pending=4) as server:
        response = server.handle(QueryRequest(query=MATRIX_QUERY))
        assert response.status == STATUS_OK
        assert response.stats.retries == 1
        assert response.stats.breaker_state == BREAKER_CLOSED
        assert response.stats.recycled_workers == 0
        assert response.stats.dispatch_modes == ["process", "process", "memo"]
        stats = server.stats()
        assert stats["pool"]["respawns"] == 1
        assert stats["pool"]["breaker_state"] == BREAKER_CLOSED


def test_server_scorer_fault_surfaces_as_error_status(fig1):
    faults.install_plan(FaultPlan(specs=(FaultSpec.scorer(at=(0,), epochs=(0,)),)))
    with QueryServer(fig1, workers=1, max_pending=4) as server:
        first = server.handle(QueryRequest(query=MATRIX_QUERY))
        assert first.status == STATUS_ERROR
        assert "injected scorer failure" in first.error
        second = server.handle(QueryRequest(query=MATRIX_QUERY))
        assert second.status == STATUS_OK  # the fault was one-shot; no restart needed
        assert server.errors == 1
