"""Tests for the EQL parser."""

import pytest

from repro.errors import ParseError, ValidationError
from repro.query.parser import parse_query

Q1 = """
SELECT ?x ?y ?z ?w
WHERE {
  ?x citizenOf "USA" .
  ?y citizenOf "France" .
  ?z citizenOf "France" .
  FILTER(type(?x) = "entrepreneur")
  FILTER(type(?y) = "entrepreneur")
  FILTER(type(?z) = "politician")
  CONNECT(?x, ?y, ?z) AS ?w
}
"""


class TestBasics:
    def test_q1_head(self):
        query = parse_query(Q1)
        assert query.head == ("x", "y", "z", "w")

    def test_q1_patterns_and_ctp(self):
        query = parse_query(Q1)
        assert len(query.patterns) == 3
        assert len(query.ctps) == 1
        ctp = query.ctps[0]
        assert ctp.m == 3
        assert ctp.tree_var == "w"
        assert ctp.seed_vars() == ("x", "y", "z")

    def test_filter_conditions_attach_to_predicates(self):
        query = parse_query(Q1)
        source = query.patterns[0].source
        assert source.var == "x"
        assert source.type_constant() == "entrepreneur"

    def test_constants_become_label_predicates(self):
        query = parse_query(Q1)
        target = query.patterns[0].target
        assert target.var.startswith("_c")
        assert target.label_constant() == "USA"

    def test_edge_constant_shorthand(self):
        query = parse_query(Q1)
        edge = query.patterns[0].edge
        assert edge.label_constant() == "citizenOf"

    def test_bare_identifier_constant(self):
        query = parse_query('SELECT ?x WHERE { ?x knows Bob }')
        assert query.patterns[0].target.label_constant() == "Bob"

    def test_optional_dots(self):
        query = parse_query('SELECT ?x WHERE { ?x a ?y ?y b ?z }')
        assert len(query.patterns) == 2

    def test_comments_ignored(self):
        query = parse_query('SELECT ?x WHERE { # hello\n ?x a ?y }')
        assert len(query.patterns) == 1

    def test_string_escapes(self):
        query = parse_query('SELECT ?x WHERE { ?x a "say \\"hi\\"" }')
        assert query.patterns[0].target.label_constant() == 'say "hi"'

    def test_select_star_excludes_anonymous(self):
        query = parse_query('SELECT * WHERE { ?x knows "Bob" . CONNECT(?x, "Eve") AS ?w }')
        assert query.head == ("x", "w")

    def test_keywords_case_insensitive(self):
        query = parse_query('select ?x where { connect(?x, "B") as ?x2 uni }')
        assert query.ctps[0].filters.uni

    def test_query_level_limit(self):
        query = parse_query('SELECT ?x WHERE { ?x a ?y } LIMIT 7')
        assert query.limit == 7

    def test_no_limit_default(self):
        query = parse_query('SELECT ?x WHERE { ?x a ?y }')
        assert query.limit is None


class TestCTPFilters:
    def test_all_filters(self):
        query = parse_query(
            'SELECT ?w WHERE { CONNECT(?a, ?b) AS ?w '
            'UNI LABEL("x", "y") MAX 6 SCORE size TOP 3 TIMEOUT 2.5 LIMIT 9 }'
        )
        filters = query.ctps[0].filters
        assert filters.uni is True
        assert filters.labels == frozenset({"x", "y"})
        assert filters.max_edges == 6
        assert filters.score == "size"
        assert filters.top_k == 3
        assert filters.timeout == 2.5
        assert filters.limit == 9

    def test_integer_timeout(self):
        query = parse_query('SELECT ?w WHERE { CONNECT(?a, ?b) AS ?w TIMEOUT 10 }')
        assert query.ctps[0].filters.timeout == 10.0

    def test_wildcard_seed(self):
        query = parse_query('SELECT ?w WHERE { CONNECT(?a, *) AS ?w }')
        seeds = query.ctps[0].seeds
        assert seeds[0].var == "a"
        assert seeds[1].is_empty
        assert seeds[1].var.startswith("_c")

    def test_constant_seed(self):
        query = parse_query('SELECT ?w WHERE { CONNECT("Alice", ?b) AS ?w }')
        assert query.ctps[0].seeds[0].label_constant() == "Alice"

    def test_filters_on_ctp_seed_var(self):
        query = parse_query(
            'SELECT ?w WHERE { CONNECT(?a, ?b) AS ?w FILTER(type(?a) = "person") }'
        )
        assert query.ctps[0].seeds[0].type_constant() == "person"


class TestFilterSyntax:
    def test_label_function(self):
        query = parse_query('SELECT ?x WHERE { ?x a ?y FILTER(label(?y) ~ "Org*") }')
        target = query.patterns[0].target
        assert target.conditions[0].prop == "label"
        assert target.conditions[0].op == "~"

    def test_var_shorthand_means_label(self):
        query = parse_query('SELECT ?x WHERE { ?x a ?y FILTER(?y = "OrgB") }')
        assert query.patterns[0].target.label_constant() == "OrgB"

    def test_and_conjunction(self):
        query = parse_query(
            'SELECT ?x WHERE { ?x a ?y FILTER(type(?x) = "p" AND age(?x) >= 18) }'
        )
        assert len(query.patterns[0].source.conditions) == 2

    def test_numeric_literals(self):
        query = parse_query('SELECT ?x WHERE { ?x a ?y FILTER(age(?x) < 4.5) }')
        assert query.patterns[0].source.conditions[0].value == 4.5


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "WHERE { ?x a ?y }",  # missing SELECT
            "SELECT WHERE { ?x a ?y }",  # no head vars
            "SELECT ?x { ?x a ?y }",  # missing WHERE
            "SELECT ?x WHERE { ?x a }",  # incomplete triple
            "SELECT ?x WHERE { ?x a ?y",  # missing }
            "SELECT ?x WHERE { CONNECT(?x) AS ?w }",  # 1 seed
            "SELECT ?x WHERE { CONNECT(?x, ?y) ?w }",  # missing AS
            "SELECT ?x WHERE { CONNECT(?x, ?y) AS ?w MAX two }",  # bad int
            "SELECT ?x WHERE { ?x a ?y } garbage",  # trailing input
            "SELECT ?x WHERE { FILTER(?x < ) ?x a ?y }",  # bad literal
        ],
    )
    def test_parse_errors(self, text):
        with pytest.raises(ParseError):
            parse_query(text)

    def test_unexpected_character(self):
        with pytest.raises(ParseError) as info:
            parse_query("SELECT ?x WHERE { ?x a ?y @ }")
        assert "unexpected character" in str(info.value)

    def test_filter_on_unused_var_rejected(self):
        with pytest.raises(ValidationError):
            parse_query('SELECT ?x WHERE { ?x a ?y FILTER(type(?ghost) = "p") }')

    def test_tree_var_reuse_rejected(self):
        with pytest.raises(ValidationError):
            parse_query("SELECT ?w WHERE { ?w a ?y . CONNECT(?y, ?z) AS ?w }")
