"""Tests for natural joins (step C of the paper's evaluation strategy)."""

import pytest

from repro.errors import StorageError
from repro.storage.relational import natural_join, natural_join_many, semi_join
from repro.storage.table import Table


class TestNaturalJoin:
    def test_join_on_shared_column(self):
        left = Table(("x", "y"), [(1, "a"), (2, "b")])
        right = Table(("y", "z"), [("a", 10), ("a", 11), ("c", 12)])
        joined = natural_join(left, right)
        assert joined.columns == ("x", "y", "z")
        assert sorted(joined.rows) == [(1, "a", 10), (1, "a", 11)]

    def test_join_without_shared_columns_is_cross(self):
        left = Table(("x",), [(1,)])
        right = Table(("y",), [(2,), (3,)])
        joined = natural_join(left, right)
        assert sorted(joined.rows) == [(1, 2), (1, 3)]

    def test_join_on_multiple_columns(self):
        left = Table(("a", "b", "c"), [(1, 2, "l"), (1, 3, "l2")])
        right = Table(("a", "b", "d"), [(1, 2, "r"), (1, 9, "r2")])
        joined = natural_join(left, right)
        assert joined.rows == [(1, 2, "l", "r")]

    def test_join_builds_hash_on_smaller_side(self):
        # behaviour identical regardless of operand sizes
        small = Table(("k", "v"), [(1, "s")])
        big = Table(("k", "w"), [(i, f"b{i}") for i in range(10)])
        assert natural_join(small, big).rows == [(1, "s", "b1")]
        joined = natural_join(big, small)
        assert joined.columns == ("k", "w", "v")
        assert joined.rows == [(1, "b1", "s")]

    def test_join_empty(self):
        left = Table(("x", "y"), [])
        right = Table(("y", "z"), [("a", 1)])
        assert len(natural_join(left, right)) == 0


class TestNaturalJoinMany:
    def test_three_way_chain(self):
        t1 = Table(("a", "b"), [(1, 2), (5, 6)])
        t2 = Table(("b", "c"), [(2, 3)])
        t3 = Table(("c", "d"), [(3, 4)])
        joined = natural_join_many([t1, t2, t3])
        assert set(joined.columns) == {"a", "b", "c", "d"}
        assert len(joined) == 1
        row = dict(zip(joined.columns, joined.rows[0]))
        assert row == {"a": 1, "b": 2, "c": 3, "d": 4}

    def test_prefers_connected_joins_before_cross(self):
        # (a,b) and (c,d) are disconnected; (b,c) connects them
        t1 = Table(("a", "b"), [(1, 2)])
        t2 = Table(("c", "d"), [(3, 4)])
        t3 = Table(("b", "c"), [(2, 3)])
        joined = natural_join_many([t1, t2, t3])
        assert len(joined) == 1

    def test_single_table(self):
        t1 = Table(("a",), [(1,)])
        assert natural_join_many([t1]).rows == [(1,)]

    def test_empty_input_rejected(self):
        with pytest.raises(StorageError):
            natural_join_many([])

    def test_disconnected_cross_product(self):
        t1 = Table(("a",), [(1,), (2,)])
        t2 = Table(("b",), [(3,)])
        joined = natural_join_many([t1, t2])
        assert len(joined) == 2


class TestSemiJoin:
    def test_filters_left(self):
        left = Table(("x", "y"), [(1, "a"), (2, "b")])
        right = Table(("y",), [("a",)])
        assert semi_join(left, right).rows == [(1, "a")]

    def test_no_shared_columns_nonempty_right(self):
        left = Table(("x",), [(1,)])
        right = Table(("y",), [(9,)])
        assert semi_join(left, right).rows == [(1,)]

    def test_no_shared_columns_empty_right(self):
        left = Table(("x",), [(1,)])
        right = Table(("y",), [])
        assert len(semi_join(left, right)) == 0
