"""Tests for the benchmark harness and reporting."""

import json

import pytest

from repro.bench.harness import ExperimentReport, Measurement, format_cell, time_call
from repro.bench.reporting import pivot, render_table, report_to_markdown, report_to_text


class TestTimeCall:
    def test_returns_mean_and_result(self):
        calls = []

        def job():
            calls.append(1)
            return "done"

        seconds, result = time_call(job, repeats=3)
        assert result == "done"
        assert len(calls) == 3
        assert seconds >= 0

    def test_repeats_clamped_to_one(self):
        seconds, result = time_call(lambda: 42, repeats=0)
        assert result == 42


class TestMeasurement:
    def test_row_merges_params_and_values(self):
        m = Measurement(params={"m": 3}, seconds=0.5, values={"results": 7})
        row = m.row()
        assert row == {"m": 3, "time_ms": 500.0, "results": 7}


class TestExperimentReport:
    def _report(self):
        report = ExperimentReport("exp1", "a title", config={"scale": 1.0})
        report.add(Measurement({"x": 1}, 0.001, {"v": 10}))
        report.add_row(x=2, time_ms=3.0, v=20)
        report.note("a note")
        return report

    def test_columns_union(self):
        report = self._report()
        assert report.columns() == ["x", "time_ms", "v"]

    def test_save_json(self, tmp_path):
        report = self._report()
        target = report.save_json(str(tmp_path))
        payload = json.loads(target.read_text())
        assert payload["experiment"] == "exp1"
        assert len(payload["rows"]) == 2
        assert payload["notes"] == ["a note"]

    def test_text_rendering(self):
        text = report_to_text(self._report())
        assert "exp1" in text and "a title" in text
        assert "time_ms" in text
        assert "note: a note" in text

    def test_markdown_rendering(self):
        md = report_to_markdown(self._report())
        assert md.startswith("### exp1")
        assert "| x | time_ms | v |" in md
        assert "> a note" in md


class TestRenderTable:
    def test_alignment(self):
        rows = [{"a": 1, "b": "xx"}, {"a": 22, "b": "y"}]
        table = render_table(rows, ["a", "b"])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_empty(self):
        assert render_table([], ["a"]) == "(no rows)"

    def test_missing_cells(self):
        table = render_table([{"a": 1}], ["a", "b"])
        assert "-" in table


class TestFormatCell:
    def test_float_precision(self):
        assert format_cell(1.23456) == "1.235"
        assert format_cell(123456.7) == "123457"

    def test_none(self):
        assert format_cell(None) == "-"

    def test_passthrough(self):
        assert format_cell("x") == "x"
        assert format_cell(7) == "7"


class TestPivot:
    def test_figure_style_pivot(self):
        rows = [
            {"sL": 2, "algorithm": "gam", "time_ms": 10},
            {"sL": 2, "algorithm": "molesp", "time_ms": 5},
            {"sL": 4, "algorithm": "gam", "time_ms": 20},
            {"sL": 4, "algorithm": "molesp", "time_ms": 8},
        ]
        pivoted = pivot(rows, index="sL", series="algorithm", value="time_ms")
        assert pivoted == [
            {"sL": 2, "gam": 10, "molesp": 5},
            {"sL": 4, "gam": 20, "molesp": 8},
        ]
