"""The paper's worked-example graphs must match the constraints in the text."""

from repro.graph.datasets import (
    figure1,
    figure1_edge,
    figure1_seed_sets,
    figure3,
    figure4,
    figure4_result_edges,
    figure5,
    figure6,
    figure7,
)


class TestFigure1:
    def test_shape(self):
        graph = figure1()
        assert graph.num_nodes == 12
        assert graph.num_edges == 19

    def test_paper_node_types(self):
        graph = figure1()
        by_label = {graph.node(n).label: graph.node(n) for n in graph.node_ids()}
        assert "company" in by_label["OrgB"].types
        assert "entrepreneur" in by_label["Alice"].types
        assert "politician" in by_label["Elon"].types
        assert "country" in by_label["USA"].types
        assert by_label["National Liberal Party"].types == frozenset()

    def test_bgp_b1_constraints(self):
        """Section 2's BGP b1 = {(x, citizenOf, USA), (x, founded, OrgB)}
        must have an embedding (x = Bob)."""
        graph = figure1()
        bob = graph.find_node_by_label("Bob")
        usa = graph.find_node_by_label("USA")
        orgb = graph.find_node_by_label("OrgB")
        citizen_edges = {(graph.edge(e).source, graph.edge(e).target) for e in graph.edges_with_label("citizenOf")}
        founded_edges = {(graph.edge(e).source, graph.edge(e).target) for e in graph.edges_with_label("founded")}
        assert (bob, usa) in citizen_edges
        assert (bob, orgb) in founded_edges

    def test_seed_sets_match_section2(self):
        """S1 = {n2, n4}, S2 = {n3, n6}, S3 = {n9} in paper numbering."""
        graph = figure1()
        s1, s2, s3 = figure1_seed_sets(graph)
        labels = lambda ids: sorted(graph.node(n).label for n in ids)
        assert labels(s1) == ["Bob", "Carole"]
        assert labels(s2) == ["Alice", "Doug"]
        assert labels(s3) == ["Elon"]

    def test_t_alpha_edges(self):
        """t_alpha = {e10, e9, e11}: Carole->OrgC, Doug->OrgC, Elon->Doug."""
        graph = figure1()
        e10 = graph.edge(figure1_edge(10))
        assert graph.node(e10.source).label == "Carole"
        assert graph.node(e10.target).label == "OrgC"
        e9 = graph.edge(figure1_edge(9))
        assert graph.node(e9.source).label == "Doug"
        assert graph.node(e9.target).label == "OrgC"
        e11 = graph.edge(figure1_edge(11))
        assert graph.node(e11.source).label == "Elon"
        assert graph.node(e11.target).label == "Doug"

    def test_t_beta_is_undirected_only(self):
        """No node of t_beta reaches the others along directed edges
        (the paper's argument for bidirectional semantics, R3)."""
        graph = figure1()
        edges = [figure1_edge(k) for k in (1, 2, 17, 16)]
        # all four edges point *into* OrgB / the party: sources are distinct
        targets = {graph.edge(e).target for e in edges}
        labels = {graph.node(t).label for t in targets}
        assert labels == {"OrgB", "National Liberal Party"}


class TestSmallFigures:
    def test_figure3_is_a_line(self):
        graph, seeds = figure3()
        assert graph.num_edges == 5
        assert len(seeds) == 3
        degrees = sorted(graph.degree(n) for n in graph.node_ids())
        assert degrees == [1, 1, 2, 2, 2, 2]  # two endpoints, four inner

    def test_figure4_result_is_2ps(self):
        graph, seeds = figure4()
        result = figure4_result_edges(graph)
        assert len(result) == 11
        assert len(seeds) == 6

    def test_figure5_center_degree(self):
        graph, seeds = figure5()
        x = graph.find_node_by_label("x")
        assert graph.degree(x) == 3
        assert len(seeds) == 3

    def test_figure6_two_branching_nodes(self):
        graph, seeds = figure6()
        assert len(seeds) == 4
        branching = [n for n in graph.node_ids() if graph.degree(n) == 3]
        assert len(branching) == 2  # nodes 2 and 3: not a rooted merge

    def test_figure7_structure(self):
        graph, seeds = figure7()
        assert len(seeds) == 6
        x = graph.find_node_by_label("x")
        y = graph.find_node_by_label("y")
        assert graph.degree(x) == 3
        assert graph.degree(y) == 4
        b = graph.find_node_by_label("B")
        assert graph.degree(b) == 2  # B participates in both stars
