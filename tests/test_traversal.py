"""Tests for graph traversal utilities."""

import pytest

from repro.errors import GraphError
from repro.graph.graph import Graph
from repro.graph.traversal import (
    ball,
    bfs_distances,
    dijkstra_distances,
    eccentricity_between,
    reachable_set,
)
from repro.workloads.synthetic import line_graph, star_graph


@pytest.fixture
def directed_path():
    g = Graph()
    nodes = [g.add_node(str(i)) for i in range(4)]
    for i in range(3):
        g.add_edge(nodes[i], nodes[i + 1], "e", weight=float(i + 1))
    return g


class TestBFS:
    def test_undirected(self, directed_path):
        distances = bfs_distances(directed_path, [0])
        assert distances == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_out_direction(self, directed_path):
        assert bfs_distances(directed_path, [3], "out") == {3: 0}
        assert bfs_distances(directed_path, [0], "out") == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_in_direction(self, directed_path):
        assert bfs_distances(directed_path, [3], "in") == {3: 0, 2: 1, 1: 2, 0: 3}

    def test_multi_source(self, directed_path):
        distances = bfs_distances(directed_path, [0, 3])
        assert distances[1] == 1 and distances[2] == 1

    def test_max_hops(self, directed_path):
        distances = bfs_distances(directed_path, [0], max_hops=1)
        assert set(distances) == {0, 1}

    def test_unknown_direction(self, directed_path):
        with pytest.raises(GraphError):
            bfs_distances(directed_path, [0], "sideways")

    def test_unknown_source(self, directed_path):
        with pytest.raises(GraphError):
            bfs_distances(directed_path, [99])


class TestDijkstra:
    def test_weights(self, directed_path):
        distances = dijkstra_distances(directed_path, [0])
        assert distances == {0: 0.0, 1: 1.0, 2: 3.0, 3: 6.0}

    def test_prefers_light_detour(self):
        g = Graph()
        a, b, c = g.add_node("a"), g.add_node("b"), g.add_node("c")
        g.add_edge(a, b, weight=10.0)
        g.add_edge(a, c, weight=1.0)
        g.add_edge(c, b, weight=1.0)
        assert dijkstra_distances(g, [a])[b] == 2.0

    def test_directed(self, directed_path):
        assert dijkstra_distances(directed_path, [3], "out") == {3: 0.0}


class TestReachabilityHelpers:
    def test_reachable_set(self, directed_path):
        assert reachable_set(directed_path, 0) == {0, 1, 2, 3}
        assert reachable_set(directed_path, 3, "out") == {3}

    def test_ball_ordering(self):
        graph, _ = star_graph(3, 2)
        center_ball = ball(graph, 0, 1)
        assert center_ball[0] == 0
        assert len(center_ball) == 4  # center + 3 first arm nodes

    def test_ball_radius_zero(self, directed_path):
        assert ball(directed_path, 2, 0) == [2]


class TestEccentricity:
    def test_line(self):
        graph, seeds = line_graph(3, 2)
        # consecutive seeds are 3 edges apart; extremes are 6 apart, but
        # eccentricity uses nearest-seed distances per set pair
        assert eccentricity_between(graph, seeds) == 6

    def test_disconnected(self):
        g = Graph()
        a, b = g.add_node("a"), g.add_node("b")
        assert eccentricity_between(g, [[a], [b]]) is None

    def test_same_set_distance_ignored(self):
        g = Graph()
        a, b = g.add_node("a"), g.add_node("b")
        g.add_edge(a, b)
        assert eccentricity_between(g, [[a], [b]]) == 1
