"""Tests for graph statistics and components."""

from repro.graph.datasets import figure1
from repro.graph.graph import Graph
from repro.graph.stats import connected_components, degree_histogram, graph_stats
from repro.workloads.synthetic import star_graph


def test_connected_components_single():
    graph = figure1()
    components = connected_components(graph)
    assert len(components) == 1
    assert len(components[0]) == graph.num_nodes


def test_connected_components_multiple():
    g = Graph()
    a, b, c, d = (g.add_node(str(i)) for i in range(4))
    g.add_edge(a, b)
    g.add_edge(c, d)
    components = connected_components(g)
    assert sorted(map(tuple, components)) == [(0, 1), (2, 3)]


def test_isolated_node_is_own_component():
    g = Graph()
    g.add_node("alone")
    assert connected_components(g) == [[0]]


def test_degree_histogram_star():
    graph, _ = star_graph(4, 1)  # center + 4 seeds, 4 edges
    histogram = degree_histogram(graph)
    assert histogram == {4: 1, 1: 4}


def test_graph_stats_fields():
    graph = figure1()
    stats = graph_stats(graph)
    assert stats.num_nodes == 12
    assert stats.num_edges == 19
    assert stats.num_components == 1
    assert stats.max_degree >= 4
    assert 0 < stats.mean_degree < 19
    assert stats.node_label_count == 12
    assert stats.edge_label_count == len(graph.edge_labels())
    assert "nodes=12" in stats.format()


def test_graph_stats_empty():
    stats = graph_stats(Graph())
    assert stats.num_nodes == 0
    assert stats.mean_degree == 0.0
    assert stats.num_components == 0
