"""Equivalence suite: interned tree state must not change any search outcome.

The interning layer (``repro.ctp.interning``) replaces per-tree frozenset
bookkeeping with hash-consed edge-set handles, node bitmasks, and
sat-bucketed merge-partner indexes.  All of that is *representation*: the
set of results, the recorded seeds/weights, and every order-sensitive
counter (grows, merges, queue pushes, history prunes) must stay exactly
what the seed frozenset implementation produced.

Two layers of protection:

* a **golden file** (``tests/data/interning_golden.json``) captured from the
  pre-interning implementation; every GAM-family variant and every BFT
  variant is replayed over the same workload matrix and compared field by
  field (``merges_attempted`` is excluded by design: sat-bucket skipping
  avoids attempts the linear scan paid for);
* a **live cross-check**: the interned engines against the same engines
  with ``SearchConfig(interning=False)`` (the frozenset fallback), including
  on Hypothesis-generated random multigraphs.

Regenerate the golden file (only meaningful on a commit whose engines are
trusted) with::

    PYTHONPATH=src python tests/test_interning_equivalence.py --regen
"""

from __future__ import annotations

import json
import random
from pathlib import Path

import pytest

from repro.ctp.bft import BFTAMSearch, BFTMSearch, BFTSearch
from repro.ctp.config import SearchConfig
from repro.ctp.esp import ESPSearch
from repro.ctp.gam import GAMSearch
from repro.ctp.lesp import LESPSearch
from repro.ctp.moesp import MoESPSearch
from repro.ctp.molesp import MoLESPSearch
from repro.graph.datasets import figure1, figure1_seed_sets, figure3, figure5, figure6
from repro.testing import random_graph, random_seed_sets
from repro.workloads.synthetic import chain_graph, comb_graph, star_graph

GOLDEN_PATH = Path(__file__).parent / "data" / "interning_golden.json"

ALGORITHMS = {
    "gam": GAMSearch,
    "esp": ESPSearch,
    "moesp": MoESPSearch,
    "lesp": LESPSearch,
    "molesp": MoLESPSearch,
    "bft": BFTSearch,
    "bft-m": BFTMSearch,
    "bft-am": BFTAMSearch,
}

#: Stats that may legitimately differ: sat-bucket indexing skips partner
#: scans wholesale (merges_attempted), and timing is timing.
UNSTABLE_STATS = {"merges_attempted", "elapsed_seconds"}


def _graphs():
    fig1 = figure1()
    g3, s3 = figure3()
    g5, s5 = figure5()
    g6, s6 = figure6()
    chain, chain_seeds = chain_graph(5)
    star, star_seeds = star_graph(4, 2)
    comb, comb_seeds = comb_graph(2, 1, 2)
    rng = random.Random(11)
    rnd = random_graph(rng, 10, 16, num_labels=3)
    rnd_seeds = random_seed_sets(random.Random(12), rnd, 3, max_size=2)
    return {
        "fig1": (fig1, figure1_seed_sets(fig1)),
        "fig3": (g3, s3),
        "fig5": (g5, s5),
        "fig6": (g6, s6),
        "chain5": (chain, chain_seeds),
        "star": (star, star_seeds),
        "comb": (comb, comb_seeds),
        "random": (rnd, rnd_seeds),
    }


def _configs(graph):
    labels = sorted({graph.edge(e).label for e in graph.edge_ids()})[:2]
    return {
        "default": {},
        "uni": {"uni": True},
        "balanced": {"balanced_queues": True},
        "limit": {"limit": 5},
        "maxedges": {"max_edges": 4},
        "labels": {"labels": frozenset(labels)},
        "strict": {"strict_merge2": True},
        "moalways": {"mo_inject_always": True},
        "csr": {"backend": "csr"},
    }


#: Keep the matrix fast: the full config set runs on the two richest
#: workloads; the structural workloads run the order-sensitive core.
CORE_CONFIGS = ("default", "uni", "balanced", "limit")
FULL_GRAPHS = ("fig1", "random")


def _cases():
    for graph_name, (graph, seeds) in _graphs().items():
        config_names = None if graph_name in FULL_GRAPHS else CORE_CONFIGS
        for config_name, overrides in _configs(graph).items():
            if config_names is not None and config_name not in config_names:
                continue
            for algo_name in ALGORITHMS:
                yield graph_name, graph, seeds, config_name, overrides, algo_name


def _snapshot(result_set):
    # JSON-canonical: lists only, so live snapshots compare equal to the
    # golden file after a round-trip.
    results = sorted(
        [
            sorted(r.edges),
            [(-1 if s is None else s) for s in r.seeds],
            round(r.weight, 9),
        ]
        for r in result_set
    )
    stats = {
        k: v for k, v in result_set.stats.as_dict().items() if k not in UNSTABLE_STATS
    }
    return {
        "results": results,
        "stats": stats,
        "complete": result_set.complete,
        "algorithm": result_set.algorithm,
    }


#: Deterministic run bounds.  ``max_trees`` cuts by *count* (order-stable,
#: unlike a wall-clock timeout), so even truncated searches must replay the
#: seed behaviour exactly — the cut itself is part of what we pin down.
MAX_TREES = {"bft": 3000, "bft-m": 3000, "bft-am": 3000}
DEFAULT_MAX_TREES = 20000


def _run(algo_name, graph, seeds, overrides, **extra):
    extra.setdefault("max_trees", MAX_TREES.get(algo_name, DEFAULT_MAX_TREES))
    config = SearchConfig(**overrides, **extra)
    return ALGORITHMS[algo_name]().run(graph, seeds, config)


def generate_golden() -> dict:
    golden = {}
    for graph_name, graph, seeds, config_name, overrides, algo_name in _cases():
        key = f"{graph_name}|{config_name}|{algo_name}"
        golden[key] = _snapshot(_run(algo_name, graph, seeds, overrides))
    return golden


@pytest.fixture(scope="module")
def golden():
    if not GOLDEN_PATH.exists():  # pragma: no cover - regen instructions
        pytest.fail(
            f"missing {GOLDEN_PATH}; regenerate with "
            "PYTHONPATH=src python tests/test_interning_equivalence.py --regen"
        )
    return json.loads(GOLDEN_PATH.read_text())


@pytest.mark.parametrize(
    "graph_name,graph,seeds,config_name,overrides,algo_name",
    [pytest.param(*case, id=f"{case[0]}|{case[3]}|{case[5]}") for case in _cases()],
)
def test_matches_seed_golden(golden, graph_name, graph, seeds, config_name, overrides, algo_name):
    """Interned engines replay the seed implementation byte for byte."""
    key = f"{graph_name}|{config_name}|{algo_name}"
    expected = golden[key]
    got = _snapshot(_run(algo_name, graph, seeds, overrides))
    # The golden file predates the interning layer: compare only the stat
    # counters it knows about (new pool counters are additive).
    got["stats"] = {k: got["stats"].get(k) for k in expected["stats"]}
    assert got == expected, f"{key}: interned engine diverged from seed behaviour"


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(json.dumps(generate_golden(), indent=1, sort_keys=True))
        print(f"wrote {GOLDEN_PATH}")
    else:
        print(__doc__)
