"""Unit tests for the graph model (Definition 2.1)."""

import pytest

from repro.errors import GraphError
from repro.graph.graph import Graph, induced_edge_subgraph


@pytest.fixture
def small() -> Graph:
    g = Graph("small")
    g.add_node("A", types=("person",), age=30)
    g.add_node("B", types=("person", "employee"))
    g.add_node("C")
    g.add_edge(0, 1, "knows", weight=2.0, since=2019)
    g.add_edge(1, 2, "worksAt")
    g.add_edge(2, 0, "employs")
    return g


class TestNodesAndEdges:
    def test_counts(self, small):
        assert small.num_nodes == 3
        assert small.num_edges == 3

    def test_dense_ids(self, small):
        assert [n.id for n in small.nodes()] == [0, 1, 2]
        assert [e.id for e in small.edges()] == [0, 1, 2]

    def test_node_accessor(self, small):
        node = small.node(0)
        assert node.label == "A"
        assert node.types == frozenset({"person"})

    def test_edge_accessor(self, small):
        edge = small.edge(0)
        assert edge.source == 0 and edge.target == 1
        assert edge.label == "knows"
        assert edge.weight == 2.0

    def test_node_properties(self, small):
        node = small.node(0)
        assert node.property("label") == "A"
        assert node.property("type") == frozenset({"person"})
        assert node.property("age") == 30
        assert node.property("missing") is None

    def test_edge_properties(self, small):
        edge = small.edge(0)
        assert edge.property("label") == "knows"
        assert edge.property("weight") == 2.0
        assert edge.property("since") == 2019
        assert edge.property("missing") is None

    def test_edge_other_endpoint(self, small):
        edge = small.edge(0)
        assert edge.other(0) == 1
        assert edge.other(1) == 0
        with pytest.raises(GraphError):
            edge.other(2)

    def test_unknown_ids_raise(self, small):
        with pytest.raises(GraphError):
            small.node(99)
        with pytest.raises(GraphError):
            small.edge(99)
        with pytest.raises(GraphError):
            small.add_edge(0, 99)

    def test_repr(self, small):
        assert "nodes=3" in repr(small)
        assert "knows" in repr(small.edge(0))
        assert "person" in repr(small.node(0))


class TestAdjacency:
    def test_bidirectional_entries(self, small):
        entries = small.adjacent(0)
        # A has outgoing 'knows' and incoming 'employs'
        assert {(e, o) for e, o, _ in entries} == {(0, 1), (2, 2)}
        directions = {e: outgoing for e, _, outgoing in entries}
        assert directions[0] is True
        assert directions[2] is False

    def test_degree(self, small):
        assert small.degree(0) == 2
        assert small.degree(1) == 2

    def test_neighbors_dedup(self):
        g = Graph()
        a, b = g.add_node("a"), g.add_node("b")
        g.add_edge(a, b, "x")
        g.add_edge(b, a, "y")  # parallel, opposite direction
        assert g.neighbors(a) == [b]
        assert g.degree(a) == 2

    def test_self_loop_appears_once(self):
        g = Graph()
        a = g.add_node("a")
        g.add_edge(a, a, "loop")
        assert g.degree(a) == 1
        ((edge_id, other, outgoing),) = g.adjacent(a)
        assert other == a and outgoing is True

    def test_in_out_edges(self, small):
        assert [e.id for e in small.out_edges(0)] == [0]
        assert [e.id for e in small.in_edges(0)] == [2]


class TestIndexes:
    def test_nodes_with_label(self, small):
        assert small.nodes_with_label("A") == [0]
        assert small.nodes_with_label("missing") == []

    def test_nodes_with_type(self, small):
        assert small.nodes_with_type("person") == [0, 1]
        assert small.nodes_with_type("employee") == [1]

    def test_edges_with_label(self, small):
        assert small.edges_with_label("knows") == [0]

    def test_label_listings(self, small):
        assert set(small.node_labels()) == {"A", "B", "C"}
        assert set(small.edge_labels()) == {"knows", "worksAt", "employs"}

    def test_find_nodes(self, small):
        found = small.find_nodes(lambda n: "person" in n.types)
        assert found == [0, 1]

    def test_find_node_by_label_unique(self, small):
        assert small.find_node_by_label("B") == 1

    def test_find_node_by_label_missing(self, small):
        with pytest.raises(GraphError):
            small.find_node_by_label("nope")

    def test_find_node_by_label_duplicate(self):
        g = Graph()
        g.add_node("dup")
        g.add_node("dup")
        with pytest.raises(GraphError):
            g.find_node_by_label("dup")


class TestDescribe:
    def test_describe_edge(self, small):
        assert small.describe_edge(0) == "A -[knows]-> B"

    def test_describe_tree_sorted(self, small):
        text = small.describe_tree([1, 0])
        assert text == "A -[knows]-> B; B -[worksAt]-> C"

    def test_describe_empty_tree(self, small):
        assert small.describe_tree([]) == "(single node)"


def test_induced_edge_subgraph(small):
    adjacency = induced_edge_subgraph(small, [0, 1])
    assert sorted(adjacency) == [0, 1, 2]
    assert adjacency[1] == [0, 2]
