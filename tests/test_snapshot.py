"""Binary CSR snapshots: round-trip fidelity, mmap loading, error paths.

Four layers:

* **round-trip** — save → load (mmap and plain) must reproduce the CSR
  view exactly: adjacency (order included), labels, types, properties,
  weights, endpoints, and the label/type indexes;
* **query equivalence** — a Hypothesis property: on random graphs, every
  one of the 8 algorithms returns identical result rows on the loaded
  snapshot, and ``evaluate_query`` returns identical rows end-to-end;
* **error paths** — bad magic, unsupported version, truncation at any
  prefix, and corrupt headers all raise :class:`SnapshotError` up front;
* **pickling** — the satellite regression: ``pickle.dumps(graph.freeze())``
  used to raise ``TypeError`` (memoryview columns); now CSRGraph
  round-trips through pickle, mmap-backed instances included.
"""

from __future__ import annotations

import pickle
import random
import struct

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ctp.registry import ALGORITHMS, evaluate_ctp
from repro.errors import SnapshotError
from repro.graph.backend import CSRGraph
from repro.graph.datasets import figure1, figure1_seed_sets
from repro.graph.graph import Graph
from repro.graph.snapshot import (
    SNAPSHOT_MAGIC,
    SNAPSHOT_VERSION,
    ensure_snapshot,
    load_snapshot,
    save_snapshot,
)
from repro.query.evaluator import evaluate_query
from repro.testing import random_graph, random_seed_sets


def rich_graph() -> Graph:
    """A small graph exercising every metadata feature the format stores:
    types, properties, weights, parallel edges, self-loops, empty labels."""
    graph = Graph("rich")
    a = graph.add_node("Alice", types=("person", "engineer"), age=33, tags=["x", "y"])
    b = graph.add_node("Bob", types=("person",))
    c = graph.add_node("", types=())  # unlabeled node
    graph.add_edge(a, b, "knows", weight=2.5, since=2019)
    graph.add_edge(a, b, "knows", weight=0.5)  # parallel edge
    graph.add_edge(b, a, "mentors", weight=1.25)
    graph.add_edge(c, c, "self", weight=3.0)  # self-loop
    graph.add_edge(b, c, "", weight=1.0)  # empty edge label
    return graph


def assert_same_graph_view(left, right) -> None:
    """The full GraphBackend read surface matches, order included."""
    assert left.name == right.name
    assert left.num_nodes == right.num_nodes
    assert left.num_edges == right.num_edges
    for node_id in left.node_ids():
        assert left.adjacent(node_id) == right.adjacent(node_id)
        assert left.neighbor_ids(node_id) == right.neighbor_ids(node_id)
        assert left.degree(node_id) == right.degree(node_id)
        ln, rn = left.node(node_id), right.node(node_id)
        assert (ln.label, ln.types, ln.props) == (rn.label, rn.types, rn.props)
    for edge_id in left.edge_ids():
        assert left.edge_weight(edge_id) == right.edge_weight(edge_id)
        assert left.edge_label(edge_id) == right.edge_label(edge_id)
        assert left.edge_endpoints(edge_id) == right.edge_endpoints(edge_id)
        le, re = left.edge(edge_id), right.edge(edge_id)
        assert (le.label, le.weight, le.props) == (re.label, re.weight, re.props)
    assert left.node_labels() == right.node_labels()
    assert left.edge_labels() == right.edge_labels()
    for label in left.node_labels():
        assert left.nodes_with_label(label) == right.nodes_with_label(label)
    for label in left.edge_labels():
        assert left.edges_with_label(label) == right.edges_with_label(label)
    type_names = {t for node in left.nodes() for t in node.types}
    for type_name in type_names:
        assert left.nodes_with_type(type_name) == right.nodes_with_type(type_name)


def result_rows(result_set):
    return [(r.edges, r.nodes, r.seeds, r.weight, r.score) for r in result_set]


# ----------------------------------------------------------------------
# round-trip fidelity
# ----------------------------------------------------------------------
class TestRoundTrip:
    @pytest.mark.parametrize("use_mmap", [True, False], ids=["mmap", "arrays"])
    def test_figure1_roundtrip(self, tmp_path, use_mmap):
        graph = figure1()
        path = save_snapshot(graph, tmp_path / "fig1.snapshot")
        loaded = load_snapshot(path, use_mmap=use_mmap)
        assert_same_graph_view(graph.freeze(), loaded)
        assert loaded.backend == "csr"
        assert loaded.snapshot_path == str(path)

    @pytest.mark.parametrize("use_mmap", [True, False], ids=["mmap", "arrays"])
    def test_rich_metadata_roundtrip(self, tmp_path, use_mmap):
        graph = rich_graph()
        path = save_snapshot(graph, tmp_path / "rich.snapshot")
        loaded = load_snapshot(path, use_mmap=use_mmap)
        assert_same_graph_view(graph.freeze(), loaded)
        assert loaded.node(0).property("age") == 33
        assert loaded.edge(0).property("since") == 2019
        assert loaded.describe_edge(0) == graph.describe_edge(0)

    def test_empty_and_tiny_graphs(self, tmp_path):
        empty = Graph("empty")
        loaded = load_snapshot(save_snapshot(empty, tmp_path / "empty.snapshot"))
        assert loaded.num_nodes == 0 and loaded.num_edges == 0
        single = Graph("single")
        single.add_node("only", types=("t",))
        loaded = load_snapshot(save_snapshot(single, tmp_path / "single.snapshot"))
        assert_same_graph_view(single.freeze(), loaded)

    def test_mmap_columns_are_zero_copy_views(self, tmp_path):
        path = save_snapshot(figure1(), tmp_path / "fig1.snapshot")
        loaded = load_snapshot(path, use_mmap=True)
        assert isinstance(loaded._adj_edge, memoryview)
        assert isinstance(loaded._offsets, memoryview)
        assert loaded._mmap is not None
        plain = load_snapshot(path, use_mmap=False)
        assert plain._mmap is None

    def test_snapshot_is_immutable(self, tmp_path):
        from repro.errors import GraphError

        loaded = load_snapshot(save_snapshot(figure1(), tmp_path / "g.snapshot"))
        with pytest.raises(GraphError):
            loaded.add_node("nope")
        with pytest.raises(GraphError):
            loaded.add_edge(0, 1, "nope")
        assert loaded.freeze() is loaded

    def test_save_accepts_frozen_and_mutable(self, tmp_path):
        graph = figure1()
        p1 = save_snapshot(graph, tmp_path / "a.snapshot")
        p2 = save_snapshot(graph.freeze(), tmp_path / "b.snapshot")
        assert_same_graph_view(load_snapshot(p1), load_snapshot(p2))

    def test_resave_of_loaded_snapshot(self, tmp_path):
        """An mmap-loaded snapshot can itself be saved again verbatim."""
        original = save_snapshot(figure1(), tmp_path / "a.snapshot")
        loaded = load_snapshot(original)
        copy = save_snapshot(loaded, tmp_path / "b.snapshot")
        assert_same_graph_view(loaded, load_snapshot(copy))


# ----------------------------------------------------------------------
# query equivalence (Hypothesis property across all 8 algorithms)
# ----------------------------------------------------------------------
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    rng_seed=st.integers(min_value=0, max_value=2**16),
    num_nodes=st.integers(min_value=3, max_value=9),
    extra_edges=st.integers(min_value=0, max_value=6),
)
def test_loaded_snapshot_rows_identical_across_algorithms(
    tmp_path_factory, rng_seed, num_nodes, extra_edges
):
    rng = random.Random(rng_seed)
    graph = random_graph(rng, num_nodes, num_nodes - 1 + extra_edges)
    seed_sets = random_seed_sets(rng, graph, 2)
    path = tmp_path_factory.mktemp("snap") / f"g{rng_seed}.snapshot"
    save_snapshot(graph, path)
    loaded = load_snapshot(path)
    assert_same_graph_view(graph.freeze(), loaded)
    for algorithm in sorted(ALGORITHMS):
        original = evaluate_ctp(graph.freeze(), seed_sets, algorithm, max_edges=3)
        snapshot = evaluate_ctp(loaded, seed_sets, algorithm, max_edges=3)
        assert result_rows(original) == result_rows(snapshot), algorithm


def test_evaluate_query_rows_identical_on_snapshot(tmp_path):
    query = """
    SELECT ?x ?w WHERE {
      CONNECT(?x, "France") AS ?w MAX 3
      FILTER(type(?x) = "entrepreneur")
    }
    """
    graph = figure1()
    loaded = load_snapshot(save_snapshot(graph, tmp_path / "fig1.snapshot"))
    original = evaluate_query(graph, query)
    snapshot = evaluate_query(loaded, query)
    assert original.columns == snapshot.columns
    assert [row[:-1] for row in original.rows] == [row[:-1] for row in snapshot.rows]
    assert [row[-1].edges for row in original.rows] == [row[-1].edges for row in snapshot.rows]


# ----------------------------------------------------------------------
# error paths
# ----------------------------------------------------------------------
class TestErrorPaths:
    def fig1_bytes(self, tmp_path) -> bytes:
        path = save_snapshot(figure1(), tmp_path / "fig1.snapshot")
        return path.read_bytes()

    def test_bad_magic(self, tmp_path):
        bad = tmp_path / "bad.snapshot"
        bad.write_bytes(b"NOTASNAP" + self.fig1_bytes(tmp_path)[8:])
        with pytest.raises(SnapshotError, match="bad magic"):
            load_snapshot(bad)

    def test_arbitrary_file_is_rejected(self, tmp_path):
        bad = tmp_path / "junk.snapshot"
        bad.write_bytes(b"hello world, definitely not a snapshot")
        with pytest.raises(SnapshotError, match="bad magic"):
            load_snapshot(bad)

    def test_empty_file(self, tmp_path):
        bad = tmp_path / "empty.snapshot"
        bad.write_bytes(b"")
        with pytest.raises(SnapshotError, match="truncated"):
            load_snapshot(bad)

    def test_version_mismatch(self, tmp_path):
        raw = bytearray(self.fig1_bytes(tmp_path))
        raw[8:12] = struct.pack("<I", SNAPSHOT_VERSION + 1)
        bad = tmp_path / "future.snapshot"
        bad.write_bytes(bytes(raw))
        with pytest.raises(SnapshotError, match="version"):
            load_snapshot(bad)

    @pytest.mark.parametrize("keep", [4, 12, 40, 200])
    def test_truncated_file(self, tmp_path, keep):
        raw = self.fig1_bytes(tmp_path)
        assert keep < len(raw)
        bad = tmp_path / f"trunc{keep}.snapshot"
        bad.write_bytes(raw[:keep])
        with pytest.raises(SnapshotError, match="truncated"):
            load_snapshot(bad)

    def test_truncated_by_one_byte(self, tmp_path):
        raw = self.fig1_bytes(tmp_path)
        bad = tmp_path / "short.snapshot"
        bad.write_bytes(raw[:-1])
        with pytest.raises(SnapshotError, match="truncated"):
            load_snapshot(bad)

    def test_corrupt_header_json(self, tmp_path):
        raw = bytearray(self.fig1_bytes(tmp_path))
        # Stomp the first header byte ('{' of the JSON) with garbage.
        raw[20] = 0xFF
        bad = tmp_path / "header.snapshot"
        bad.write_bytes(bytes(raw))
        with pytest.raises(SnapshotError, match="corrupt"):
            load_snapshot(bad)

    def test_same_length_header_corruption_caught_by_crc(self, tmp_path):
        """A corrupted digit inside a column offset keeps the JSON valid and
        every length consistent — only the header checksum catches it."""
        raw = bytearray(self.fig1_bytes(tmp_path))
        header_len = struct.unpack_from("<I", raw, 12)[0]
        header = bytearray(raw[20 : 20 + header_len])
        digit_at = next(i for i, b in enumerate(header) if chr(b).isdigit())
        header[digit_at] = ord("0") if header[digit_at] != ord("0") else ord("1")
        raw[20 : 20 + header_len] = header
        bad = tmp_path / "flipped.snapshot"
        bad.write_bytes(bytes(raw))
        with pytest.raises(SnapshotError, match="checksum"):
            load_snapshot(bad)

    @pytest.mark.parametrize(
        "kwargs", [{"use_mmap": False}, {"use_mmap": True, "verify_payload": True}]
    )
    def test_payload_bit_flip_caught_when_fully_read(self, tmp_path, kwargs):
        raw = bytearray(self.fig1_bytes(tmp_path))
        raw[-8] ^= 0xFF  # flip a byte inside the payload region
        bad = tmp_path / "payload.snapshot"
        bad.write_bytes(bytes(raw))
        with pytest.raises(SnapshotError, match="payload"):
            load_snapshot(bad, **kwargs)

    def test_magic_and_version_constants_are_stable(self):
        # The on-disk contract: changing either is a format revision.
        assert SNAPSHOT_MAGIC == b"REPROSNP"
        assert SNAPSHOT_VERSION == 1


# ----------------------------------------------------------------------
# pickling (satellite regression) and ensure_snapshot
# ----------------------------------------------------------------------
class TestPickling:
    def test_frozen_graph_is_picklable(self):
        """Regression: memoryview adjacency columns made pickle.dumps raise
        TypeError on any frozen graph."""
        csr = figure1().freeze()
        clone = pickle.loads(pickle.dumps(csr))
        assert isinstance(clone, CSRGraph)
        assert_same_graph_view(csr, clone)

    def test_pickle_preserves_query_rows(self):
        graph = figure1()
        clone = pickle.loads(pickle.dumps(graph.freeze()))
        for seeds in (figure1_seed_sets(graph),):
            original = evaluate_ctp(graph.freeze(), seeds, "molesp", max_edges=3)
            cloned = evaluate_ctp(clone, seeds, "molesp", max_edges=3)
            assert result_rows(original) == result_rows(cloned)

    def test_mmap_backed_graph_is_picklable(self, tmp_path):
        loaded = load_snapshot(save_snapshot(rich_graph(), tmp_path / "rich.snapshot"))
        clone = pickle.loads(pickle.dumps(loaded))
        assert clone._mmap is None  # the mapping never crosses the boundary
        assert_same_graph_view(loaded, clone)

    def test_pickle_drops_view_caches(self):
        csr = figure1().freeze()
        csr.adjacent(0)
        csr.adjacent_filtered(0, frozenset(["citizenOf"]))
        clone = pickle.loads(pickle.dumps(csr))
        assert clone._adj_cache == [None] * clone.num_nodes
        assert clone._filtered_cache == {}
        # ... and they rebuild on demand.
        assert clone.adjacent(0) == csr.adjacent(0)


class TestEnsureSnapshot:
    def test_reuses_existing_snapshot_file(self, tmp_path):
        path = save_snapshot(figure1(), tmp_path / "fig1.snapshot")
        loaded = load_snapshot(path)
        csr, reused = ensure_snapshot(loaded)
        assert csr is loaded
        assert reused == str(path)

    def test_writes_and_memoizes_temp_snapshot(self):
        import os

        graph = figure1()
        csr, path = ensure_snapshot(graph)
        try:
            assert os.path.exists(path)
            assert csr is graph.freeze()
            csr2, path2 = ensure_snapshot(graph)
            assert csr2 is csr and path2 == path  # serialized at most once
        finally:
            os.unlink(path)

    def test_save_memoizes_path_on_frozen_graph(self, tmp_path):
        graph = figure1()
        path = save_snapshot(graph, tmp_path / "fig1.snapshot")
        assert graph.freeze().snapshot_path == str(path)
        _, reused = ensure_snapshot(graph)
        assert reused == str(path)

    def test_overwritten_snapshot_file_is_not_reused(self, tmp_path):
        """Regression: a memoized path whose file now holds a DIFFERENT
        graph's snapshot must not be handed to worker processes."""
        import os

        big = figure1()
        path = tmp_path / "shared.snapshot"
        save_snapshot(big, path)
        small = rich_graph()
        save_snapshot(small, path)  # same file, different graph
        csr, resolved = ensure_snapshot(big)
        try:
            assert resolved != str(path)  # fell back to a fresh temp snapshot
            assert load_snapshot(resolved).num_nodes == big.num_nodes
        finally:
            os.unlink(resolved)

    def test_deleted_snapshot_file_is_rewritten(self, tmp_path):
        import os

        graph = figure1()
        path = save_snapshot(graph, tmp_path / "gone.snapshot")
        os.unlink(path)
        _, resolved = ensure_snapshot(graph)
        try:
            assert os.path.exists(resolved)
        finally:
            os.unlink(resolved)

    def test_failed_save_does_not_leak_temp_files(self, tmp_path, monkeypatch):
        """Regression: an unserializable graph used to leave one orphaned
        mkstemp file per dispatch attempt."""
        import tempfile

        monkeypatch.setattr(tempfile, "tempdir", str(tmp_path))
        graph = Graph("unpicklable")
        graph.add_node("a", hook=lambda: None)  # lambda prop defeats pickle
        for _ in range(3):
            with pytest.raises(Exception):
                ensure_snapshot(graph)
        assert list(tmp_path.iterdir()) == []
