"""Smoke tests: every paper experiment runs end-to-end at tiny scale and
produces rows with the expected shape claims."""

import pytest

from repro.bench.experiments import EXPERIMENTS, get_experiment
from repro.errors import ReproError


def test_registry_contains_every_figure_and_table():
    assert set(EXPERIMENTS) == {
        "fig02",
        "fig10",
        "fig11",
        "fig12",
        "fig13",
        "fig14",
        "table1",
        "abl01",
        "backend",
        "chaos",
        "delta",
        "interning",
        "parallel",
        "process-parallel",
        "query-context",
        "scale",
        "schedule",
        "serve",
    }


class TestAbl01:
    def test_runs_and_reports_both_ablations(self):
        report = get_experiment("abl01")(scale=1.0, timeout=5.0)
        ablations = {row["ablation"] for row in report.rows}
        assert ablations == {"merge2", "mo-inject"}
        lost = [row["lost_by_strict"] for row in report.rows if row["ablation"] == "merge2"]
        assert any(value > 0 for value in lost)


def test_unknown_experiment():
    with pytest.raises(ReproError):
        get_experiment("fig99")


class TestProcessParallelBench:
    @pytest.fixture(scope="class")
    def report(self):
        return get_experiment("process-parallel")(scale=0.25)

    def test_all_regimes_and_worker_counts_present(self, report):
        assert {row["regime"] for row in report.rows} == {"complete", "deadline", "snapshot"}
        assert {row["workers"] for row in report.rows if row["regime"] == "complete"} == {1, 2, 4}

    def test_complete_regime_rows_identical_at_every_worker_count(self, report):
        for row in report.rows:
            if row["regime"] in ("complete", "snapshot"):
                assert row["identical"] is True
        assert not any("FAILURE" in note for note in report.notes)

    def test_deadline_regime_saturates(self, report):
        deadline_rows = [row for row in report.rows if row["regime"] == "deadline"]
        assert deadline_rows
        for row in deadline_rows:
            assert row["ctps_timed_out"] == 4  # every CTP exhausted its budget

    def test_snapshot_row_reports_costs(self, report):
        (row,) = [row for row in report.rows if row["regime"] == "snapshot"]
        assert row["file_bytes"] > 0
        assert row["save_ms"] > 0 and row["mmap_load_ms"] > 0

    def test_cpu_count_recorded(self, report):
        # Readers of a checked-in JSON need to know whether the complete
        # regime had cores to overlap onto.
        assert report.config["cpu_count"] >= 1


class TestParallelBench:
    @pytest.fixture(scope="class")
    def report(self):
        return get_experiment("parallel")(scale=0.25)

    def test_all_regimes_and_worker_counts_present(self, report):
        assert {row["regime"] for row in report.rows} == {"complete", "deadline", "batch"}
        assert {row["workers"] for row in report.rows if row["regime"] == "complete"} == {2, 4, 8}

    def test_deterministic_regimes_row_identical(self, report):
        for row in report.rows:
            if row["regime"] in ("complete", "batch"):
                assert row["identical"] is True
        assert not any("FAILURE" in note for note in report.notes)

    def test_deadline_regime_saturates(self, report):
        deadline_rows = [row for row in report.rows if row["regime"] == "deadline"]
        assert deadline_rows
        for row in deadline_rows:
            assert row["ctps_timed_out"] == 4  # every CTP exhausted its budget


class TestFig02:
    def test_counts_are_exponential(self):
        report = get_experiment("fig02")(scale=0.4, timeout=5.0)
        full = [row for row in report.rows if row["complete"]]
        assert full
        for row in full:
            assert row["results"] == 2 ** row["N"] == row["expected"]

    def test_timeout_row_is_partial(self):
        report = get_experiment("fig02")(scale=0.4, timeout=5.0)
        last = report.rows[-1]
        assert not last["complete"]
        assert last["results"] <= last["expected"]


class TestFig10:
    @pytest.fixture(scope="class")
    def report(self):
        return get_experiment("fig10")(scale=0.25, timeout=1.0)

    def test_all_algorithms_present(self, report):
        assert {row["algorithm"] for row in report.rows} == {"bft", "bft-m", "bft-am", "gam"}

    def test_all_families_present(self, report):
        assert {row["family"] for row in report.rows} == {"line", "comb", "star"}

    def test_complete_runs_agree_on_result_count(self, report):
        by_point = {}
        for row in report.rows:
            if row["timed_out"]:
                continue
            key = (row["family"], row.get("m"), row["sL"])
            by_point.setdefault(key, set()).add(row["results"])
        assert by_point
        for key, counts in by_point.items():
            assert len(counts) == 1, f"complete algorithms disagree at {key}"


class TestFig11:
    @pytest.fixture(scope="class")
    def report(self):
        return get_experiment("fig11")(scale=0.25, timeout=2.0)

    def test_esp_lesp_incomplete_on_line(self, report):
        for row in report.rows:
            if row["family"] in ("line", "comb") and row["algorithm"] in ("esp", "lesp") and not row["timed_out"]:
                assert row["results"] == 0

    def test_moesp_molesp_find_line_results(self, report):
        for row in report.rows:
            if row["family"] == "line" and row["algorithm"] in ("moesp", "molesp") and not row["timed_out"]:
                assert row["results"] == 1

    def test_pruning_reduces_provenances(self, report):
        gam = {
            (row["family"], row.get("m"), row["sL"]): row["provenances"]
            for row in report.rows
            if row["algorithm"] == "gam" and not row["timed_out"]
        }
        for row in report.rows:
            if row["algorithm"] == "molesp" and not row["timed_out"]:
                key = (row["family"], row.get("m"), row["sL"])
                if key in gam:
                    assert row["provenances"] <= gam[key]


class TestFig12:
    @pytest.fixture(scope="class")
    def report(self):
        return get_experiment("fig12")(scale=0.2, timeout=3.0)

    def test_groups_cover_m_2_to_6(self, report):
        assert {row["m"] for row in report.rows} == {2, 3, 4, 5, 6}

    def test_systems_present(self, report):
        assert {row["system"] for row in report.rows} == {"qgstp", "molesp", "gam"}

    def test_molesp_solves_everything_qgstp_solves(self, report):
        by_m = {}
        for row in report.rows:
            by_m.setdefault(row["m"], {})[row["system"]] = row
        for m, systems in by_m.items():
            assert systems["molesp"]["solved"] >= systems["qgstp"]["solved"]


class TestFig13:
    @pytest.fixture(scope="class")
    def report(self):
        return get_experiment("fig13")(scale=0.25, timeout=3.0)

    def test_engines_present(self, report):
        engines = {row["engine"] for row in report.rows}
        assert {"molesp", "uni-molesp", "postgres-like", "jedi-like", "virtuoso-sparql-like", "virtuoso-sql-like", "neo4j-like"} <= engines

    def test_molesp_answers_equal_links(self, report):
        for row in report.rows:
            if row["engine"] == "molesp" and not row["timed_out"]:
                assert row["answers"] == row["NL"]

    def test_check_only_faster_than_returning(self, report):
        for sl in {row["sL"] for row in report.rows}:
            rows = {row["engine"]: row for row in report.rows if row["sL"] == sl}
            assert rows["virtuoso-sql-like"]["time_ms"] <= rows["postgres-like"]["time_ms"]


class TestFig14:
    @pytest.fixture(scope="class")
    def report(self):
        return get_experiment("fig14")(scale=0.25, timeout=3.0)

    def test_bidirectional_surplus(self, report):
        for row in report.rows:
            if row["engine"] == "molesp" and not row["timed_out"]:
                assert row["ctp_results"] > row["NL"]

    def test_uni_molesp_answers_equal_links(self, report):
        for row in report.rows:
            if row["engine"] == "uni-molesp" and not row["timed_out"]:
                assert row["answers"] == row["NL"]

    def test_stitch_engines_report_waste(self, report):
        stitch_rows = [row for row in report.rows if row["engine"].endswith("+stitch")]
        assert stitch_rows
        assert all("wasted" in row for row in stitch_rows)


class TestBackend:
    @pytest.fixture(scope="class")
    def report(self):
        return get_experiment("backend")(scale=0.25, timeout=5.0, repeats=2)

    def test_covers_all_workloads_and_ops(self, report):
        points = {(row["workload"], row["op"]) for row in report.rows}
        assert points == {
            ("community", "bfs-sweep"),
            ("community", "labeled-reach"),
            ("chain", "molesp"),
            ("star", "molesp"),
        }

    def test_both_backends_timed(self, report):
        for row in report.rows:
            assert row["dict_ms"] > 0
            assert row["csr_ms"] > 0
            assert row["freeze_ms"] >= 0
            # speedup is rounded independently of the ms columns; allow slack
            assert row["speedup"] == pytest.approx(row["dict_ms"] / row["csr_ms"], rel=0.1)


class TestInterning:
    @pytest.fixture(scope="class")
    def report(self):
        return get_experiment("interning")(scale=0.25, timeout=10.0, repeats=1)

    def test_covers_engine_and_primitive_groups(self, report):
        groups = {row["group"] for row in report.rows}
        assert groups == {"engine", "primitive"}
        regimes = {row["regime"] for row in report.rows}
        assert {"merge-heavy", "neutral", "rederive"} <= regimes

    def test_both_representations_timed(self, report):
        for row in report.rows:
            assert row["frozen_ms"] > 0
            assert row["interned_ms"] > 0
            assert row["speedup"] == pytest.approx(
                row["frozen_ms"] / row["interned_ms"], rel=0.1
            )


class TestTable1:
    @pytest.fixture(scope="class")
    def report(self):
        return get_experiment("table1")(scale=0.5, timeout=3.0)

    def test_all_queries_and_engines(self, report):
        queries = {row["query"] for row in report.rows}
        assert queries == {"J1", "J2", "J3"}
        engines = {row["engine"] for row in report.rows}
        assert "molesp-eql" in engines

    def test_molesp_completes_every_query(self, report):
        for row in report.rows:
            if row["engine"] == "molesp-eql":
                assert row["time_s"] is not None
                assert 0.0 <= row["ctp_share"] <= 1.0
