"""repro — reproduction of "Integrating Connection Search in Graph Queries".

The public API has three layers:

* :mod:`repro.graph` — the graph data model (Definition 2.1);
* :mod:`repro.ctp` — connecting-tree-pattern evaluation (Section 4):
  ``evaluate_ctp``, the GAM/ESP/MoESP/LESP/MoLESP family and the BFT
  baselines;
* :mod:`repro.query` — the Extended Query Language (Sections 2-3):
  ``parse_query`` and ``evaluate_query`` combine BGPs and CTPs;
* :mod:`repro.serve` — the long-lived serving front-end: ``QueryServer``
  answers typed requests from persistent worker processes
  (:class:`~repro.query.pool.WorkerPool`) with admission control and
  per-request deadlines.

Quickstart::

    from repro import GraphBuilder, evaluate_ctp

    b = GraphBuilder()
    b.triple("Alice", "worksAt", "Inria")
    b.triple("Bob", "studiedAt", "Inria")
    results = evaluate_ctp(b.graph, [[b.id_of("Alice")], [b.id_of("Bob")]])
    for result in results:
        print(result.describe(b.graph))
"""

from repro.graph import (
    Edge,
    Graph,
    GraphBuilder,
    Node,
    ensure_snapshot,
    graph_from_triples,
    load_snapshot,
    save_snapshot,
)
from repro.ctp import (
    ALGORITHMS,
    CTPResultSet,
    ResultTree,
    SearchConfig,
    SearchStats,
    WILDCARD,
    evaluate_ctp,
    get_algorithm,
)
from repro.query import (
    BatchResult,
    EQLQuery,
    QueryResult,
    WorkerPool,
    evaluate_queries,
    evaluate_query,
    parse_query,
)
from repro.serve import QueryRequest, QueryResponse, QueryServer
from repro.errors import (
    AdmissionError,
    ConfigError,
    EvaluationError,
    FaultInjected,
    GraphError,
    ParseError,
    PoolClosedError,
    PoolError,
    QueryError,
    ReproError,
    SearchError,
    SnapshotError,
    StorageError,
    ValidationError,
    WorkerHangError,
)

__version__ = "1.0.0"

__all__ = [
    "ALGORITHMS",
    "AdmissionError",
    "BatchResult",
    "CTPResultSet",
    "ConfigError",
    "EQLQuery",
    "Edge",
    "EvaluationError",
    "FaultInjected",
    "Graph",
    "GraphBuilder",
    "GraphError",
    "Node",
    "ParseError",
    "PoolClosedError",
    "PoolError",
    "QueryError",
    "QueryRequest",
    "QueryResponse",
    "QueryResult",
    "QueryServer",
    "ReproError",
    "ResultTree",
    "SearchConfig",
    "SearchError",
    "SearchStats",
    "SnapshotError",
    "StorageError",
    "ValidationError",
    "WILDCARD",
    "WorkerHangError",
    "WorkerPool",
    "ensure_snapshot",
    "evaluate_ctp",
    "evaluate_queries",
    "evaluate_query",
    "get_algorithm",
    "graph_from_triples",
    "load_snapshot",
    "parse_query",
    "save_snapshot",
    "__version__",
]
