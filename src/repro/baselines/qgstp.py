"""A QGSTP-style Group Steiner Tree approximation (Section 5.4.3 baseline).

The paper compares MoLESP against QGSTP [Shi et al., WWW 2021], the
strongest recent polynomial-time GSTP approximation, using the authors'
code.  That code is not redistributable here, so we re-implement the
representative algorithm of that family:

1. run one multi-source shortest-path pass per seed set (Dijkstra;
   unidirectional when ``uni``), recording distance and parent pointers;
2. score every node ``v`` as ``sum_i dist_i(v)`` — the cost of the "star"
   solution rooted at ``v``;
3. materialize the union-of-shortest-paths tree for the best few roots,
   walking each path only until it meets the tree built so far (so the
   result stays a tree);
4. strip non-seed leaves and return the cheapest tree found.

Like QGSTP, this runs in polynomial time, commits to a fixed cost function
(path length), and returns exactly **one** tree — the contrast with the
paper's exhaustive, score-agnostic CTP semantics is the point of Figure 12.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro._util import Deadline
from repro.ctp.config import SearchConfig
from repro.ctp.engine import normalize_seed_sets
from repro.ctp.results import CTPResultSet, ResultTree
from repro.ctp.stats import SearchStats
from repro.errors import SearchError
from repro.graph.graph import Graph

_INF = float("inf")


class QGSTPApproximation:
    """Polynomial-time single-result GSTP approximation.

    Exposes the same ``run(graph, seed_sets, config)`` interface as the CTP
    algorithms so the benchmark harness can drive both uniformly; only the
    ``uni`` and ``timeout`` options of the config are honoured (the
    algorithm is inherently bound to its own cost function, which is
    exactly the limitation the paper's R2 requirement addresses).
    """

    name = "qgstp"

    def __init__(self, candidate_roots: int = 5):
        self.candidate_roots = candidate_roots

    def run(self, graph: Graph, seed_sets: Sequence, config: Optional[SearchConfig] = None) -> CTPResultSet:
        config = config or SearchConfig()
        deadline = Deadline(config.timeout)
        stats = SearchStats()
        normalized, wildcard = normalize_seed_sets(graph, seed_sets)
        if wildcard:
            raise SearchError("QGSTP does not support wildcard seed sets")
        explicit: List[Tuple[int, ...]] = [s for s in normalized if s is not None]
        result = self._solve(graph, explicit, config.uni, deadline, stats)
        stats.elapsed_seconds = deadline.elapsed()
        results = [result] if result is not None else []
        stats.results_found = len(results)
        return CTPResultSet(
            results=results,
            stats=stats,
            complete=not deadline.expired(),
            timed_out=deadline.expired(),
            algorithm=self.name,
        )

    # ------------------------------------------------------------------
    def _solve(
        self,
        graph: Graph,
        seed_sets: List[Tuple[int, ...]],
        uni: bool,
        deadline: Deadline,
        stats: SearchStats,
    ) -> Optional[ResultTree]:
        if any(not s for s in seed_sets):
            return None
        m = len(seed_sets)
        distances: List[Dict[int, float]] = []
        parents: List[Dict[int, Tuple[int, int]]] = []  # node -> (edge, next node toward seed)
        for seeds in seed_sets:
            if deadline.expired():
                return None
            dist, parent = self._multi_source_dijkstra(graph, seeds, uni, deadline)
            distances.append(dist)
            parents.append(parent)
        # Rank candidate roots by the star cost sum_i dist_i(v).
        costs: List[Tuple[float, int]] = []
        for node in graph.node_ids():
            total = 0.0
            for dist in distances:
                d = dist.get(node, _INF)
                if d == _INF:
                    total = _INF
                    break
                total += d
            if total < _INF:
                costs.append((total, node))
        if not costs:
            return None
        costs.sort()
        best: Optional[ResultTree] = None
        for _, root in costs[: self.candidate_roots]:
            if deadline.expired():
                break
            candidate = self._build_tree(graph, root, parents, seed_sets)
            stats.trees_kept += 1
            if candidate is not None and (best is None or candidate.weight < best.weight):
                best = candidate
        return best

    def _multi_source_dijkstra(
        self,
        graph: Graph,
        seeds: Sequence[int],
        uni: bool,
        deadline: Deadline,
    ) -> Tuple[Dict[int, float], Dict[int, Tuple[int, int]]]:
        """Distances from every node to its nearest seed, with next-hops.

        In ``uni`` mode only edges directed *toward* the seed are relaxed,
        so a path root -> ... -> seed follows edge directions.
        """
        dist: Dict[int, float] = {s: 0.0 for s in seeds}
        parent: Dict[int, Tuple[int, int]] = {}
        heap: List[Tuple[float, int]] = [(0.0, s) for s in seeds]
        heapq.heapify(heap)
        while heap:
            if deadline.expired():
                break
            d, node = heapq.heappop(heap)
            if d > dist.get(node, _INF):
                continue
            for edge_id, other, outgoing in graph.adjacent(node):
                # Expanding from `node` *away* from the seed: `other` would
                # use the edge other->node, which requires the edge to point
                # at `node` (i.e. not outgoing) under UNI.
                if uni and outgoing:
                    continue
                weight = graph.edge_weight(edge_id)
                new_d = d + weight
                if new_d < dist.get(other, _INF):
                    dist[other] = new_d
                    parent[other] = (edge_id, node)
                    heapq.heappush(heap, (new_d, other))
        return dist, parent

    def _build_tree(
        self,
        graph: Graph,
        root: int,
        parents: List[Dict[int, Tuple[int, int]]],
        seed_sets: List[Tuple[int, ...]],
    ) -> Optional[ResultTree]:
        """Union of shortest paths from ``root``, kept acyclic by early stop."""
        edges: Set[int] = set()
        nodes: Set[int] = {root}
        seed_of_set: List[Optional[int]] = []
        for index, seeds in enumerate(seed_sets):
            seed_nodes = set(seeds)
            if root in seed_nodes:
                seed_of_set.append(root)
                continue
            parent = parents[index]
            current = root
            reached: Optional[int] = None
            while True:
                if current in seed_nodes:
                    reached = current
                    break
                step = parent.get(current)
                if step is None:
                    return None  # root cannot reach this seed set
                edge_id, next_node = step
                if next_node in nodes and edge_id not in edges and next_node != root:
                    # The path met the tree: truncate here if the meeting
                    # point already leads to this seed set... it may not, so
                    # keep walking but stop adding duplicate structure.
                    pass
                edges.add(edge_id)
                nodes.add(next_node)
                current = next_node
            seed_of_set.append(reached)
        edges_f, nodes_f = _spanning_prune(graph, edges, root)
        # strip non-seed leaves
        seed_nodes_all = {s for seeds in seed_sets for s in seeds}
        edges_f, nodes_f = _strip_leaves(graph, edges_f, nodes_f, seed_nodes_all | {root})
        weight = sum(graph.edge_weight(e) for e in edges_f)
        return ResultTree(
            edges=frozenset(edges_f),
            nodes=frozenset(nodes_f),
            seeds=tuple(seed_of_set),
            weight=weight,
        )


def _spanning_prune(graph: Graph, edges: Set[int], root: int) -> Tuple[Set[int], Set[int]]:
    """Extract a spanning tree of the union-of-paths subgraph via BFS."""
    adjacency: Dict[int, List[Tuple[int, int]]] = {}
    for edge_id in edges:
        source, target = graph.edge_endpoints(edge_id)
        adjacency.setdefault(source, []).append((edge_id, target))
        adjacency.setdefault(target, []).append((edge_id, source))
    tree_edges: Set[int] = set()
    visited = {root}
    stack = [root]
    while stack:
        node = stack.pop()
        for edge_id, other in adjacency.get(node, ()):
            if other not in visited:
                visited.add(other)
                tree_edges.add(edge_id)
                stack.append(other)
    return tree_edges, visited


def _strip_leaves(graph: Graph, edges: Set[int], nodes: Set[int], keep: Set[int]) -> Tuple[Set[int], Set[int]]:
    """Iteratively remove leaves not in ``keep`` (tree minimization)."""
    changed = True
    edges = set(edges)
    nodes = set(nodes)
    while changed:
        changed = False
        degree: Dict[int, List[int]] = {n: [] for n in nodes}
        for edge_id in edges:
            source, target = graph.edge_endpoints(edge_id)
            degree[source].append(edge_id)
            degree[target].append(edge_id)
        for node, incident in degree.items():
            if len(incident) == 1 and node not in keep:
                edges.discard(incident[0])
                nodes.discard(node)
                changed = True
    return edges, nodes
