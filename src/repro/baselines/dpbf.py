"""DPBF — exact minimum-cost group Steiner trees [Ding et al., ICDE 2007].

DPBF runs a best-first dynamic program over states ``(v, X)``: the cheapest
tree rooted at node ``v`` covering the subset ``X`` of seed sets.  Two
transitions generate new states:

* *edge growth*: ``(v, X)`` plus an edge ``v - u`` gives ``(u, X)``;
* *tree merge*: ``(v, X1)`` and ``(v, X2)`` with ``X1 ∩ X2 = ∅`` give
  ``(v, X1 | X2)``.

The first time a state ``(v, FULL)`` is popped from the priority queue its
tree is optimal.  The paper cites DPBF as the engine under LANCET [40] and
the reference point QGSTP improved on; we use it both as a baseline and as
a test oracle: with unit weights its optimum must equal the size of the
smallest result found by the complete algorithms (BFT/GAM/MoLESP for
m <= 3).

Unlike the paper's CTP semantics, DPBF returns a single best tree and
depends on the cost function — precisely the limitations (R2)/(R4) the
paper's algorithms remove.
"""

from __future__ import annotations

import heapq
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro._util import Deadline, full_mask
from repro.ctp.engine import normalize_seed_sets
from repro.ctp.idremap import IdRemap
from repro.ctp.results import ResultTree
from repro.errors import SearchError
from repro.graph.graph import Graph


def dpbf_optimal_tree(
    graph: Graph,
    seed_sets: Sequence[Sequence[int]],
    uni: bool = False,
    timeout: Optional[float] = None,
    dense_ids: bool = True,
) -> Optional[ResultTree]:
    """The minimum-total-edge-weight connecting tree, or ``None``.

    ``uni=True`` restricts growth to reverse-directed edges so the returned
    tree is an arborescence rooted at the DP root (matching the ``UNI``
    filter semantics: the root reaches every seed along edge directions).

    ``dense_ids`` (default) keys the DP's ``best``/``parent``/``settled``
    maps by packed small ints ``(compact(v) << m) | X`` through a
    search-local :class:`~repro.ctp.idremap.IdRemap` instead of ``(v, X)``
    tuples — the same dense-identity discipline as the search engines
    (tuple keys cost ~72 bytes each and a tuple hash per probe, which
    dominates DPBF's footprint on large graphs).  Heap ordering and
    relaxation order are unchanged, so both representations settle states
    identically; ``False`` keeps the legacy tuple keys as the A/B baseline.
    """
    normalized, wildcard = normalize_seed_sets(graph, seed_sets)
    if wildcard:
        raise SearchError("DPBF does not support wildcard seed sets")
    explicit: List[Tuple[int, ...]] = [s for s in normalized if s is not None]
    if any(not s for s in explicit):
        return None
    m = len(explicit)
    full = full_mask(m)
    deadline = Deadline(timeout)

    seed_mask: Dict[int, int] = {}
    for bit, nodes in enumerate(explicit):
        for node in nodes:
            seed_mask[node] = seed_mask.get(node, 0) | (1 << bit)

    if dense_ids:
        # Packed state key: compact node index in the high bits, the m-bit
        # seed-coverage mask in the low bits.  Compact indexes are assigned
        # in first-touch order, which is deterministic for the fixed heap
        # order, so dense and legacy runs relax states identically.
        remap_index = IdRemap().index

        def state_key(node: int, mask: int) -> int:
            return (remap_index(node) << m) | mask

    else:

        def state_key(node: int, mask: int) -> Tuple[int, int]:
            return (node, mask)

    # best[state_key(v, X)] = cost; provenance for tree reconstruction.
    best: Dict[object, float] = {}
    parent: Dict[object, Tuple[str, tuple]] = {}
    heap: List[Tuple[float, int, int, int]] = []
    counter = 0
    for node, mask in seed_mask.items():
        state = state_key(node, mask)
        best[state] = 0.0
        parent[state] = ("init", ())
        heapq.heappush(heap, (0.0, counter, node, mask))
        counter += 1

    # states by node, for merges
    settled_by_node: Dict[int, List[int]] = {}
    final_state: Optional[object] = None
    final_node: Optional[int] = None
    settled: set = set()
    while heap:
        if deadline.expired():
            return None
        cost, _, node, mask = heapq.heappop(heap)
        state = state_key(node, mask)
        if state in settled:
            continue
        settled.add(state)
        if mask == full:
            final_state = state
            final_node = node
            break
        settled_by_node.setdefault(node, []).append(mask)
        # edge growth
        for edge_id, other, outgoing in graph.adjacent(node):
            if uni and outgoing:
                # The DP root must *reach* the seeds: grow against edge
                # direction so paths run root -> ... -> seed.
                continue
            edge_weight = graph.edge_weight(edge_id)
            other_mask = mask | seed_mask.get(other, 0)
            other_state = state_key(other, other_mask)
            new_cost = cost + edge_weight
            if new_cost < best.get(other_state, float("inf")):
                best[other_state] = new_cost
                parent[other_state] = ("grow", (state, edge_id))
                heapq.heappush(heap, (new_cost, counter, other, other_mask))
                counter += 1
        # merges with settled sibling states at the same node
        for sibling_mask in settled_by_node.get(node, ()):
            if sibling_mask == mask or (sibling_mask & mask):
                continue
            sibling_state = state_key(node, sibling_mask)
            merged_mask = mask | sibling_mask
            merged_state = state_key(node, merged_mask)
            new_cost = cost + best[sibling_state]
            if new_cost < best.get(merged_state, float("inf")):
                best[merged_state] = new_cost
                parent[merged_state] = ("merge", (state, sibling_state))
                heapq.heappush(heap, (new_cost, counter, node, merged_mask))
                counter += 1
    if final_state is None:
        return None
    edges = _reconstruct(parent, final_state)
    nodes = set()
    for edge_id in edges:
        source, target = graph.edge_endpoints(edge_id)
        nodes.add(source)
        nodes.add(target)
    if not edges:
        nodes = {final_node}
    seeds: List[Optional[int]] = [None] * m
    for node in nodes:
        node_mask = seed_mask.get(node, 0)
        for bit in range(m):
            if node_mask & (1 << bit) and seeds[bit] is None:
                seeds[bit] = node
    weight = sum(graph.edge_weight(e) for e in edges)
    return ResultTree(edges=frozenset(edges), nodes=frozenset(nodes), seeds=tuple(seeds), weight=weight)


def _reconstruct(parent: Dict, state) -> set:
    """Collect the edge ids of a DP state's tree by unrolling provenance."""
    edges: set = set()
    stack = [state]
    while stack:
        current = stack.pop()
        kind, payload = parent[current]
        if kind == "init":
            continue
        if kind == "grow":
            previous, edge_id = payload
            edges.add(edge_id)
            stack.append(previous)
        else:  # merge
            left, right = payload
            stack.append(left)
            stack.append(right)
    return edges
