"""Semantic simulators of the graph query engines of Section 5.5.

The paper benchmarks Virtuoso (SPARQL 1.1 property paths and their SQL
translation), Neo4j/Cypher, PostgreSQL recursive CTEs, and JEDI.  Those
systems cannot be embedded here, so we reproduce each engine's *query
semantics and algorithmic regime* over our own graph substrate — which is
what determines the shapes in Figures 13/14 and Table 1:

=====================  ====================================================
engine                 semantic regime simulated
=====================  ====================================================
Virtuoso-SPARQL-like   unidirectional, label-constrained, **check-only**
                       reachability (property paths return no paths)
Virtuoso-SQL-like      unidirectional, any-label, check-only reachability
Postgres-like          unidirectional recursive traversal **returning**
                       simple paths (label sequences)
JEDI-like              unidirectional, per source/target pair, returning
                       all matching data paths
Neo4j-like             **undirected** simple-path enumeration, returning
                       paths (the regime whose cardinality blow-up makes
                       Cypher time out in the paper)
=====================  ====================================================

Check-only engines run one BFS per source (cheap — their advantage in the
paper); path-returning engines enumerate simple paths by DFS (exponential
in the worst case — why they time out).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro._util import Deadline
from repro.graph.graph import Graph

Path = Tuple[int, ...]  # a sequence of edge ids


@dataclass
class PathEngineReport:
    """Outcome of one engine run over a set of endpoint pairs."""

    engine: str
    #: (source, target) pairs confirmed connected (check-only engines) or
    #: for which at least one path was returned.
    connected_pairs: Set[Tuple[int, int]] = field(default_factory=set)
    #: returned paths per (source, target) — empty for check-only engines.
    paths: Dict[Tuple[int, int], List[Path]] = field(default_factory=dict)
    elapsed_seconds: float = 0.0
    timed_out: bool = False

    @property
    def total_paths(self) -> int:
        return sum(len(p) for p in self.paths.values())


class CheckOnlyPathEngine:
    """Reachability checks without materializing paths (Virtuoso-like)."""

    def __init__(self, name: str = "virtuoso-like", uni: bool = True, labels: Optional[Sequence[str]] = None):
        self.name = name
        self.uni = uni
        self.labels = frozenset(labels) if labels is not None else None

    def run(
        self,
        graph: Graph,
        sources: Sequence[int],
        targets: Sequence[int],
        timeout: Optional[float] = None,
        max_hops: Optional[int] = None,
    ) -> PathEngineReport:
        """One BFS per source; report which (source, target) pairs connect."""
        deadline = Deadline(timeout)
        report = PathEngineReport(engine=self.name)
        target_set = set(targets)
        for source in sources:
            if deadline.expired():
                report.timed_out = True
                break
            reached = self._bfs(graph, source, target_set, deadline, max_hops)
            for target in reached:
                report.connected_pairs.add((source, target))
        report.elapsed_seconds = deadline.elapsed()
        return report

    def _bfs(
        self,
        graph: Graph,
        source: int,
        targets: Set[int],
        deadline: Deadline,
        max_hops: Optional[int],
    ) -> Set[int]:
        seen = {source}
        reached = {source} & targets
        queue = deque([(source, 0)])
        labels = self.labels
        while queue:
            if deadline.expired():
                break
            node, hops = queue.popleft()
            if max_hops is not None and hops >= max_hops:
                continue
            for edge_id, other, outgoing in graph.adjacent_filtered(node, labels):
                if self.uni and not outgoing:
                    continue
                if other in seen:
                    continue
                seen.add(other)
                if other in targets:
                    reached.add(other)
                queue.append((other, hops + 1))
        return reached


class AllPathsEngine:
    """Simple-path enumeration between endpoint sets (DFS).

    ``undirected=True`` reproduces Cypher's ``-[*]-`` regime (Neo4j-like);
    otherwise paths follow edge directions (Postgres/JEDI-like).  Paths are
    returned as edge-id sequences, so label sequences (Postgres) or data
    paths (JEDI) can be derived from them.
    """

    def __init__(
        self,
        name: str = "paths-like",
        undirected: bool = False,
        labels: Optional[Sequence[str]] = None,
        max_hops: Optional[int] = None,
        per_pair: bool = False,
        stop_at_targets: bool = True,
    ):
        self.name = name
        self.undirected = undirected
        self.labels = frozenset(labels) if labels is not None else None
        self.max_hops = max_hops
        #: JEDI/Cypher evaluate one (source, target) binding pair at a time,
        #: so a path may pass *through* other pairs' endpoints — the regime
        #: that makes their enumeration explode.
        self.per_pair = per_pair
        #: A recursive CTE keeps expanding paths and filters endpoints at
        #: the end (stop_at_targets=False); a smarter engine prunes at the
        #: first endpoint hit (stop_at_targets=True).
        self.stop_at_targets = stop_at_targets
        #: A naive recursive CTE's base case is *every* edge: paths are
        #: expanded from all nodes and the source/target constraints are
        #: applied by the outer SELECT.  Dominates the Postgres regime.
        self.enumerate_from_all = False
        #: The paper's Postgres baseline returns the *label path* of every
        #: row; a recursive CTE materializes that string for every
        #: intermediate row of the working table, which is a real part of
        #: its cost and output semantics.
        self.materialize_labels = False

    def run(
        self,
        graph: Graph,
        sources: Sequence[int],
        targets: Sequence[int],
        timeout: Optional[float] = None,
        max_paths: Optional[int] = None,
    ) -> PathEngineReport:
        deadline = Deadline(timeout)
        report = PathEngineReport(engine=self.name)
        target_set = set(targets)
        try:
            if self.per_pair:
                for source in sources:
                    for target in targets:
                        self._enumerate(graph, source, {target}, report, deadline, max_paths)
            elif self.enumerate_from_all:
                # CTE regime: expand from every node, filter sources at
                # record time (the WHERE clause of the outer SELECT).
                source_set = set(sources)
                for root in graph.node_ids():
                    self._enumerate(
                        graph, root, target_set, report, deadline, max_paths,
                        record_only_sources=source_set,
                    )
            else:
                for source in sources:
                    self._enumerate(graph, source, target_set, report, deadline, max_paths)
        except _Expired:
            report.timed_out = True
        report.elapsed_seconds = deadline.elapsed()
        return report

    def _enumerate(
        self,
        graph: Graph,
        source: int,
        targets: Set[int],
        report: PathEngineReport,
        deadline: Deadline,
        max_paths: Optional[int],
        record_only_sources: Optional[Set[int]] = None,
    ) -> None:
        """Iterative DFS over simple paths from ``source``.

        ``record_only_sources`` implements the CTE regime: exploration
        happens regardless, but a path only reaches the report when its
        start node passes the outer WHERE clause.
        """
        labels = self.labels
        max_hops = self.max_hops
        materialize = self.materialize_labels
        recordable = record_only_sources is None or source in record_only_sources
        # stack entries: (node, path edges, visited nodes, label path row)
        stack: List[Tuple[int, Tuple[int, ...], frozenset, str]] = [(source, (), frozenset((source,)), "")]
        while stack:
            if deadline.expired():
                raise _Expired()
            node, path, visited, label_row = stack.pop()
            if node in targets and path:
                if recordable:
                    key = (source, node)
                    report.connected_pairs.add(key)
                    report.paths.setdefault(key, []).append(path)
                    if max_paths is not None and report.total_paths >= max_paths:
                        return
                if self.stop_at_targets:
                    continue
            if max_hops is not None and len(path) >= max_hops:
                continue
            for edge_id, other, outgoing in graph.adjacent_filtered(node, labels):
                if not self.undirected and not outgoing:
                    continue
                if other in visited:
                    continue
                # the CTE working table stores the accumulated label path
                # for every row it materializes
                row = f"{label_row}/{graph.edge_label(edge_id)}" if materialize else label_row
                stack.append((other, path + (edge_id,), visited | {other}, row))


class _Expired(Exception):
    pass


# ----------------------------------------------------------------------
# ready-made engine configurations matching the paper's baselines
# ----------------------------------------------------------------------

def virtuoso_sparql_like_engine(labels: Sequence[str]) -> CheckOnlyPathEngine:
    """SPARQL 1.1 property paths: UNI, label regexp required, check-only."""
    return CheckOnlyPathEngine("virtuoso-sparql-like", uni=True, labels=labels)


def virtuoso_sql_like_engine() -> CheckOnlyPathEngine:
    """Virtuoso's SQL translation with label constraints removed."""
    return CheckOnlyPathEngine("virtuoso-sql-like", uni=True, labels=None)


def postgres_like_engine(max_hops: Optional[int] = None) -> AllPathsEngine:
    """Recursive CTE: expand all simple paths from every node (the CTE's
    base case is the whole edge table), filter endpoints at the end."""
    engine = AllPathsEngine("postgres-like", undirected=False, max_hops=max_hops, stop_at_targets=False)
    engine.enumerate_from_all = True
    engine.materialize_labels = True
    return engine


def jedi_like_engine(labels: Optional[Sequence[str]] = None) -> AllPathsEngine:
    """JEDI: all data paths per (source, target) pair, unidirectional."""
    return AllPathsEngine("jedi-like", undirected=False, labels=labels, per_pair=True)


def neo4j_like_engine(max_hops: Optional[int] = None) -> AllPathsEngine:
    """Cypher ``(a)-[*]-(b)``: undirected simple paths, one binding pair at
    a time — the cardinality regime the paper cites for Neo4j's timeouts."""
    return AllPathsEngine("neo4j-like", undirected=True, max_hops=max_hops, per_pair=True)
