"""Comparison systems used in the paper's evaluation (Section 5.2).

* :mod:`repro.baselines.dpbf` — DPBF [Ding et al., ICDE 2007]: exact
  minimum-cost group Steiner tree by dynamic programming; the basis of
  LANCET, and our *oracle* for smallest-result checks in tests.
* :mod:`repro.baselines.qgstp` — a re-implementation of the QGSTP-style
  polynomial-time GSTP approximation (single result), the strongest recent
  competitor the paper compares against (Figure 12).
* :mod:`repro.baselines.path_engines` — semantic simulators of the graph
  query engines of Section 5.5: check-only unidirectional engines
  (Virtuoso-like), path-returning engines (Postgres/JEDI-like) and
  undirected path enumeration (Neo4j-like).
* :mod:`repro.baselines.stitching` — the path-stitching strategy the paper
  argues against in Section 2 (duplicates + non-tree joins).
"""

from repro.baselines.dpbf import dpbf_optimal_tree
from repro.baselines.qgstp import QGSTPApproximation
from repro.baselines.path_engines import (
    AllPathsEngine,
    CheckOnlyPathEngine,
    PathEngineReport,
    jedi_like_engine,
    neo4j_like_engine,
    postgres_like_engine,
    virtuoso_sparql_like_engine,
    virtuoso_sql_like_engine,
)
from repro.baselines.stitching import StitchReport, stitch_paths

__all__ = [
    "AllPathsEngine",
    "CheckOnlyPathEngine",
    "PathEngineReport",
    "QGSTPApproximation",
    "StitchReport",
    "dpbf_optimal_tree",
    "jedi_like_engine",
    "neo4j_like_engine",
    "postgres_like_engine",
    "stitch_paths",
    "virtuoso_sparql_like_engine",
    "virtuoso_sql_like_engine",
]
