"""Path stitching — the strategy Section 2 argues against.

To emulate tree search with a path-only engine, one can join paths sharing
a common endpoint ("path stitching"): for a 3-way CTP, join the paths
``r -> s2`` and ``r -> s3`` over every candidate root ``r``.  The paper
shows the results differ from CTP semantics:

* the same ``n``-node tree is produced once per choice of root — ``n``
  duplicates that must be de-duplicated;
* joined paths can share nodes or edges, in which case their union is not
  a tree at all and must be discarded;
* surviving unions can still be non-minimal and need minimization.

:func:`stitch_paths` implements the join and reports exactly how much work
was wasted on duplicates and non-tree combinations, which the Figure 14
harness uses when driving the path-returning baseline engines at m=3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from repro.graph.graph import Graph

Path = Tuple[int, ...]


@dataclass
class StitchReport:
    """Outcome and waste accounting of a path-stitching join."""

    #: distinct connecting trees, as frozensets of edge ids
    trees: Set[FrozenSet[int]] = field(default_factory=set)
    joins_attempted: int = 0
    non_tree_joins: int = 0
    duplicate_trees: int = 0
    #: the join was cut short by ``max_joins`` (treat as a timeout)
    truncated: bool = False

    @property
    def wasted_fraction(self) -> float:
        if not self.joins_attempted:
            return 0.0
        return (self.non_tree_joins + self.duplicate_trees) / self.joins_attempted


def _path_nodes(graph: Graph, start: int, path: Path) -> List[int]:
    """The node sequence of a path starting at ``start``."""
    nodes = [start]
    current = start
    for edge_id in path:
        current = graph.edge(edge_id).other(current)
        nodes.append(current)
    return nodes


def stitch_paths(
    graph: Graph,
    paths_a: Dict[Tuple[int, int], List[Path]],
    paths_b: Dict[Tuple[int, int], List[Path]],
    max_joins: int | None = None,
) -> StitchReport:
    """Join two path collections on their shared source endpoint.

    ``paths_a`` and ``paths_b`` map ``(root, leaf)`` to edge-id paths (the
    output shape of :class:`~repro.baselines.path_engines.AllPathsEngine`).
    For every root appearing in both collections, every pair of paths is
    combined; combinations sharing any node beyond the root are rejected
    (their union is not a tree), and identical edge sets are counted as
    duplicates.  ``max_joins`` bounds the quadratic join (the stitch of
    two large path sets is itself a blow-up — part of the cost the paper
    charges against path-based engines); exceeding it sets ``truncated``.
    """
    report = StitchReport()
    by_root_a: Dict[int, List[Tuple[int, Path]]] = {}
    for (root, leaf), paths in paths_a.items():
        for path in paths:
            by_root_a.setdefault(root, []).append((leaf, path))
    for (root, leaf_b), paths in paths_b.items():
        for path_b in paths:
            nodes_b = set(_path_nodes(graph, root, path_b))
            for leaf_a, path_a in by_root_a.get(root, ()):
                if max_joins is not None and report.joins_attempted >= max_joins:
                    report.truncated = True
                    return report
                report.joins_attempted += 1
                nodes_a = set(_path_nodes(graph, root, path_a))
                if len(nodes_a & nodes_b) != 1:
                    report.non_tree_joins += 1
                    continue
                tree = frozenset(path_a) | frozenset(path_b)
                if tree in report.trees:
                    report.duplicate_trees += 1
                else:
                    report.trees.add(tree)
    return report
