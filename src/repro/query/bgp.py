"""BGP evaluation: computing all embeddings (Definition 2.7).

The paper delegates BGP evaluation to a conjunctive graph query engine
(PostgreSQL in their prototype).  Ours matches each edge pattern against the
graph's label/type indexes — choosing the cheapest access path — and then
joins the per-pattern embedding tables with the relational substrate
(step (A) of Section 3 produces one materialized table ``B_i`` per BGP).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro._util import Deadline
from repro.errors import BudgetExceeded
from repro.graph.graph import Graph
from repro.query.ast import BGP, EdgePattern, Predicate
from repro.storage.relational import natural_join_many
from repro.storage.table import Table


def _node_candidates(graph: Graph, predicate: Predicate) -> Optional[List[int]]:
    """Candidate node ids for a predicate, or ``None`` for 'no index'."""
    label = predicate.label_constant()
    if label is not None:
        return graph.nodes_with_label(label)
    type_name = predicate.type_constant()
    if type_name is not None:
        return graph.nodes_with_type(type_name)
    return None


def candidate_edges(graph: Graph, pattern: EdgePattern) -> Iterable[int]:
    """Edge ids worth testing for ``pattern``, via the cheapest access path."""
    options: List[Tuple[int, str]] = []
    edge_label = pattern.edge.label_constant()
    if edge_label is not None:
        options.append((len(graph.edges_with_label(edge_label)), "edge"))
    source_nodes = _node_candidates(graph, pattern.source)
    if source_nodes is not None:
        options.append((len(source_nodes), "source"))
    target_nodes = _node_candidates(graph, pattern.target)
    if target_nodes is not None:
        options.append((len(target_nodes), "target"))
    if not options:
        return graph.edge_ids()
    options.sort()
    _, best = options[0]
    if best == "edge":
        return graph.edges_with_label(edge_label)
    if best == "source":
        return [edge.id for node in source_nodes for edge in graph.out_edges(node)]
    return [edge.id for node in target_nodes for edge in graph.in_edges(node)]


def match_pattern(graph: Graph, pattern: EdgePattern) -> Table:
    """All embeddings of one edge pattern as a table.

    Columns are the pattern's distinct variables; values are node ids for
    source/target and edge ids for the edge variable.  Repeated variables
    (e.g. ``(?x, ?e, ?x)`` self-loops) are enforced as equalities.
    """
    source_var, edge_var, target_var = pattern.variables()
    columns: List[str] = []
    for var in (source_var, edge_var, target_var):
        if var not in columns:
            columns.append(var)
    rows = []
    for edge_id in candidate_edges(graph, pattern):
        edge = graph.edge(edge_id)
        if not pattern.edge.test(edge):
            continue
        source = graph.node(edge.source)
        if not pattern.source.test(source):
            continue
        target = graph.node(edge.target)
        if not pattern.target.test(target):
            continue
        binding = {}
        consistent = True
        for var, value in ((source_var, edge.source), (edge_var, edge.id), (target_var, edge.target)):
            if var in binding and binding[var] != value:
                consistent = False
                break
            binding[var] = value
        if consistent:
            rows.append(tuple(binding[c] for c in columns))
    return Table(columns, rows)


def evaluate_bgp(graph: Graph, bgp: BGP, deadline: Optional[Deadline] = None) -> Table:
    """Compute all embeddings of a BGP (the materialized ``B_i`` table)."""
    tables = []
    for pattern in bgp.patterns:
        if deadline is not None and deadline.expired():
            raise BudgetExceeded("BGP evaluation timed out")
        tables.append(match_pattern(graph, pattern))
    return natural_join_many(tables)
