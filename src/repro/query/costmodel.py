"""Per-CTP cost estimation and the scheduling decisions it feeds.

The dispatch layer (:mod:`repro.query.parallel`) historically treated
every CTP identically, but per-fragment evaluation cost varies wildly
("Complexity of Evaluating GQL Queries"): a CONNECT over two 3-node seed
sets on a sparse label is milliseconds, one over hundreds of seeds with a
wildcard is the whole query budget.  The raw signals were already in the
system — seed-set sizes from step (A) bindings, per-label edge counts off
the CSR label indexes, the algorithm class, the MVCC delta-overlay size —
this module turns them into a scalar cost estimate per CTP and feeds four
scheduler decisions:

1. **auto mode selection** — ``parallelism_mode="auto"`` picks
   serial/thread/process per query by comparing the estimated total cost
   against dispatch-overhead constants (:func:`choose_mode`), so a cheap
   query never pays executor spin-up and an expensive one never serializes
   behind the GIL;
2. **longest-first ordering** — the fan-out submits the most expensive
   CTPs first (:meth:`QuerySchedule.ordered`), shrinking the makespan when
   workers outnumber the stragglers (memo filing stays in CTP order, so
   rows and cache LRU state are unchanged — see ``_fan_out``);
3. **deadline rebalancing** — :class:`DeadlineLedger` re-grants unspent
   wall budget from fast CTPs to still-running slow ones at *execution*
   time instead of freezing every budget at job-build time; a grant never
   drops below the original build budget;
4. **pipelined (A)→(B) overlap** — the estimates label which CTPs are
   worth starting early (``repro.query.parallel.PipelinedDispatch``).

Everything here is deliberately picklable (plain dataclasses, no
callables) so an estimator can ride a job to a pool worker.

The estimate is in abstract *cost units*, not seconds: only ordering and
ratios are consumed, so the units never need calibration against a host.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError

#: Relative weight of each CTP algorithm class (registry names).  The
#: complete algorithms (bft family, gam) enumerate every minimal tree and
#: sit above 1.0; the heuristic ESP family prunes aggressively and sits
#: below; the Mo variants pay provenance copies on top of their base
#: algorithm.  Calibrated from the checked-in micro-bench ratios
#: (BENCH_interning/parallel): only the *relative* order matters.
ALGORITHM_WEIGHTS: Dict[str, float] = {
    "bft": 1.0,
    "bft-m": 1.3,
    "bft-am": 1.1,
    "gam": 1.6,
    "esp": 0.5,
    "moesp": 0.8,
    "lesp": 0.6,
    "molesp": 0.9,
}

#: Weight for an algorithm missing from :data:`ALGORITHM_WEIGHTS` (a
#: user-registered engine): assume the worst checked-in class.
DEFAULT_ALGORITHM_WEIGHT = 1.6

# ----------------------------------------------------------------------
# auto-mode dispatch-overhead constants (cost units, same scale as
# CTPCostEstimator.estimate).  Derived from the checked-in bench suites:
# thread dispatch costs ~a pool submit + context locking; warm process
# dispatch adds pickling seeds/results over a live worker (BENCH_serve
# warm p50 ~10ms); cold process dispatch spawns interpreters and loads
# the snapshot per worker (BENCH_serve cold p50 ~400-650ms, i.e. ~50x).
# ----------------------------------------------------------------------
#: Below this estimated *total* query cost, even thread dispatch is not
#: worth the executor + locking overhead: run the serial loop.
THREAD_DISPATCH_THRESHOLD = 64.0
#: Total cost above which process dispatch pays for itself when a warm
#: persistent pool exists (per-job IPC only).
PROCESS_WARM_THRESHOLD = 2048.0
#: Total cost above which process dispatch pays for itself when workers
#: must be spawned and must each load the snapshot (no pool, or cold).
PROCESS_COLD_THRESHOLD = 65536.0


@dataclass(frozen=True)
class CostFeatures:
    """The feature vector one CTP estimate is computed from.

    ``total_seed_size`` counts every seed node the search starts from,
    with a wildcard (N) seed set counted as the whole node set.
    ``reachable_edges`` is the label-selectivity signal: the number of
    edges the search may traverse — the sum of the per-label index
    cardinalities when a ``LABEL`` filter is pushed down, all edges
    otherwise — plus the MVCC delta overlay's edges (not yet in any
    index, so always assumed traversable).
    """

    algorithm: str
    num_seed_sets: int
    total_seed_size: int
    reachable_edges: int
    delta_size: int
    max_edges: Optional[int] = None

    def as_tuple(self) -> Tuple[Any, ...]:
        """Golden-vector form for tests: stable field order."""
        return (
            self.algorithm,
            self.num_seed_sets,
            self.total_seed_size,
            self.reachable_edges,
            self.delta_size,
            self.max_edges,
        )


@dataclass(frozen=True)
class CTPCostEstimator:
    """Maps a CTP's :class:`CostFeatures` to an abstract scalar cost.

    Shape: ``weight(algorithm) * num_seed_sets * (1 + total_seed_size) *
    (1 + log1p(reachable_edges + delta_size)) * depth`` where ``depth``
    grows with ``MAX n`` (a larger tree bound admits deeper frontiers).
    The product of nonnegative monotone terms is **monotone** in the seed
    size and in the label cardinality and **never negative** — the two
    properties the scheduler relies on (pinned by Hypothesis in
    ``tests/test_costmodel.py``).  Frozen and callable-free, so it
    pickles to pool workers.
    """

    weights: Tuple[Tuple[str, float], ...] = tuple(sorted(ALGORITHM_WEIGHTS.items()))

    def weight(self, algorithm: str) -> float:
        for name, value in self.weights:
            if name == algorithm:
                return value
        return DEFAULT_ALGORITHM_WEIGHT

    def features(
        self,
        graph: Any,
        algorithm: str,
        seed_set_sizes: Sequence[Optional[int]],
        config: Any = None,
    ) -> CostFeatures:
        """Extract the feature vector (``None`` sizes mark wildcard sets)."""
        num_nodes = graph.num_nodes
        total = sum(num_nodes if size is None else size for size in seed_set_sizes)
        labels = getattr(config, "labels", None) if config is not None else None
        if labels:
            reachable = sum(len(graph.edges_with_label(label)) for label in labels)
        else:
            reachable = graph.num_edges
        return CostFeatures(
            algorithm=algorithm,
            num_seed_sets=len(seed_set_sizes),
            total_seed_size=total,
            reachable_edges=reachable,
            delta_size=getattr(graph, "delta_size", 0),
            max_edges=getattr(config, "max_edges", None) if config is not None else None,
        )

    def estimate(self, features: CostFeatures) -> float:
        edges = max(0, features.reachable_edges) + max(0, features.delta_size)
        depth = 1.0 + 0.25 * min(features.max_edges, 64) if features.max_edges else 2.0
        return (
            self.weight(features.algorithm)
            * max(1, features.num_seed_sets)
            * (1.0 + max(0, features.total_seed_size))
            * (1.0 + math.log1p(edges))
            * depth
        )

    def estimate_ctp(
        self,
        graph: Any,
        algorithm: str,
        seed_set_sizes: Sequence[Optional[int]],
        config: Any = None,
    ) -> float:
        return self.estimate(self.features(graph, algorithm, seed_set_sizes, config))

    def fit(self, reports: Sequence["ScheduleReport"]) -> "CTPCostEstimator":
        """A recalibrated estimator, fitted offline against measured runs.

        Each :class:`ScheduleReport` pairs per-CTP estimates with the
        seconds those CTPs actually took (and, via ``algorithms``, which
        algorithm class ran).  The estimate is linear in its algorithm
        weight, so the least-squares weight per class has a closed form:
        with ``base_i = estimate_i / weight(algo_i)`` (the weight-free
        part of the estimate), the ``w`` minimizing
        ``sum((w * base_i - actual_i)^2)`` is
        ``sum(base_i * actual_i) / sum(base_i^2)``.

        Classes with no usable samples (no runs, or degenerate
        zero/negative measurements) keep their checked-in weight, as does
        any class whose fit collapses to a non-positive weight — the
        estimator's monotone/nonnegative invariants survive any input.
        Fitted weights carry seconds-per-cost-unit scale, so a fitted
        estimator's output approximates *seconds* on the measured host;
        the scheduler still only consumes ordering and ratios.
        """
        num: Dict[str, float] = {}
        den: Dict[str, float] = {}
        for report in reports:
            for algo, estimate, actual in zip(
                report.algorithms, report.estimates, report.actual_seconds
            ):
                if estimate <= 0.0 or actual <= 0.0:
                    continue
                base = estimate / self.weight(algo)
                num[algo] = num.get(algo, 0.0) + base * actual
                den[algo] = den.get(algo, 0.0) + base * base
        fitted = dict(self.weights)
        for algo, denominator in den.items():
            if denominator > 0.0:
                weight = num[algo] / denominator
                if weight > 0.0:
                    fitted[algo] = weight
        return CTPCostEstimator(weights=tuple(sorted(fitted.items())))


def choose_mode(
    total_cost: float,
    num_jobs: int,
    parallelism: int,
    pool: Any = None,
    pool_overhead: Optional[float] = None,
) -> str:
    """Resolve ``parallelism_mode="auto"`` to ``serial``/``thread``/``process``.

    ``serial`` when there is nothing to overlap (one job, one worker) or
    the whole query is estimated cheaper than thread-dispatch overhead;
    ``process`` when the estimated total clears the process-dispatch
    overhead — the warm threshold if a live warm :class:`WorkerPool` is
    passed (its :meth:`~repro.query.pool.WorkerPool.dispatch_overhead`
    supplies the bar), the cold one otherwise; ``thread`` in between.
    """
    if num_jobs <= 1 or parallelism <= 1 or total_cost < THREAD_DISPATCH_THRESHOLD:
        return "serial"
    if pool_overhead is None:
        if pool is not None and not pool.closed:
            pool_overhead = pool.dispatch_overhead()
        else:
            pool_overhead = PROCESS_COLD_THRESHOLD
    if total_cost >= pool_overhead:
        return "process"
    return "thread"


@dataclass
class ScheduleReport:
    """What the scheduler decided for one query — estimates vs. actuals.

    Threaded ``QueryResult.schedule`` → ``ResponseStats.schedule`` so a
    serving client can see *why* its query ran the way it did:
    per-CTP estimated cost next to the measured seconds, the longest-first
    submission order, how many deadline-budget rebalances fired (and how
    much wall budget they moved), and how many CTPs started before step
    (A) finished (pipeline overlap).
    """

    enabled: bool = False
    mode_requested: str = "thread"
    mode_selected: str = "serial"
    estimates: List[float] = field(default_factory=list)
    actual_seconds: List[float] = field(default_factory=list)
    #: Per-CTP algorithm class, aligned with ``estimates`` /
    #: ``actual_seconds`` — the pairing :meth:`CTPCostEstimator.fit`
    #: recalibrates against.
    algorithms: List[str] = field(default_factory=list)
    submit_order: List[int] = field(default_factory=list)
    rebalances: int = 0
    rebalanced_seconds: float = 0.0
    pipeline_overlaps: int = 0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "enabled": self.enabled,
            "mode_requested": self.mode_requested,
            "mode_selected": self.mode_selected,
            "estimates": list(self.estimates),
            "actual_seconds": list(self.actual_seconds),
            "algorithms": list(self.algorithms),
            "submit_order": list(self.submit_order),
            "rebalances": self.rebalances,
            "rebalanced_seconds": self.rebalanced_seconds,
            "pipeline_overlaps": self.pipeline_overlaps,
        }


#: Smallest grant a ledger ever hands out (seconds) — mirrors the
#: evaluator's deadline floor so an exhausted budget still produces an
#: honestly-flagged ``timed_out`` partial set through the engine path.
LEDGER_FLOOR = 1e-6


class DeadlineLedger:
    """Wall-budget accounting for one deadline-bounded query.

    At job-build time each CTP gets a **build budget**: with ``workers``
    concurrent slots and cost estimates ``c_i``, CTP *i* may spend
    ``remaining * min(1, workers * c_i / sum(pending c))`` — cost-
    proportional shares that sum to the remaining deadline under serial
    dispatch (``workers=1``) and degenerate to the historical
    full-remaining cap when every CTP has its own worker.  (The
    historical behaviour — every budget frozen at ~query start — let a
    serial query with k deadline-hungry CTPs overshoot to ~k × deadline.)

    At **execution** time :meth:`grant` recomputes the fair share against
    the budget *actually* left and the CTPs *still pending*: a fast CTP
    that finished under its share leaves more wall per unit of pending
    cost, so a slow CTP picks up the slack.  Invariants (pinned by
    fake-clock tests): a grant is never below the CTP's build budget and
    never above its intrinsic per-CTP ``timeout``.

    ``clock`` is injectable (``repro.testing.FakeClock``) so rebalancing
    decisions are testable without wall-time flakiness.  Thread-safe:
    grants happen inside worker threads under thread dispatch.
    """

    def __init__(
        self,
        deadline: float,
        started: float,
        workers: int = 1,
        clock: Any = None,
    ) -> None:
        if deadline <= 0:
            raise ConfigError("DeadlineLedger needs a positive deadline")
        import time

        self.deadline = deadline
        self.started = started
        self.workers = max(1, workers)
        self.clock = clock if clock is not None else time.perf_counter
        self.rebalances = 0
        self.rebalanced_seconds = 0.0
        self._lock = threading.Lock()
        self._costs: Dict[int, float] = {}
        self._intrinsic: Dict[int, Optional[float]] = {}
        self._builds: Dict[int, float] = {}
        self._pending: Dict[int, float] = {}

    def remaining(self) -> float:
        """Query wall budget left right now (floored, never negative)."""
        return max(self.deadline - (self.clock() - self.started), LEDGER_FLOOR)

    def _share(self, cost: float, pending_total: float) -> float:
        if pending_total <= 0:
            return 1.0
        return min(1.0, self.workers * cost / pending_total)

    def prime(self, costs: Dict[int, float]) -> None:
        """Preload the full pending cost pool before any build budget.

        The barrier evaluator knows every CTP's estimate up front; priming
        makes the *first* :meth:`register` compute its share against the
        whole query's pending cost instead of only the CTPs registered so
        far (without it the first registration sees share = 1 and eats the
        entire remaining budget).  The pipelined path skips priming and
        registers incrementally — a documented heuristic: early CTPs see a
        smaller pending pool and so get generous shares, which is exactly
        the overlap case where budget is most plentiful.
        """
        with self._lock:
            for index, cost in costs.items():
                cost = max(0.0, cost)
                self._costs[index] = cost
                self._pending[index] = cost

    def register(self, index: int, cost: float, intrinsic_timeout: Optional[float]) -> float:
        """File CTP ``index`` and return its build budget (seconds).

        ``intrinsic_timeout`` is the CTP's own ``TIMEOUT`` filter (or the
        config/default timeout) *before* any deadline capping — the hard
        per-CTP ceiling no rebalance may exceed.  A cost already filed by
        :meth:`prime` is kept, not re-added.
        """
        with self._lock:
            if index in self._costs:
                cost = self._costs[index]
            else:
                cost = max(0.0, cost)
                self._costs[index] = cost
                self._pending[index] = cost
            self._intrinsic[index] = intrinsic_timeout
            pending_total = sum(self._pending.values())
            budget = self.remaining() * self._share(cost, pending_total)
            if intrinsic_timeout is not None:
                budget = min(budget, intrinsic_timeout)
            budget = max(budget, LEDGER_FLOOR)
            self._builds[index] = budget
            return budget

    def build_budget(self, index: int) -> float:
        return self._builds[index]

    def grant(self, index: int) -> float:
        """The budget CTP ``index`` may spend, measured at execution start.

        ``max(build budget, fair share of what is left now)``, capped by
        the intrinsic timeout.  Counts a rebalance when the grant exceeds
        the build budget by more than the floor.
        """
        with self._lock:
            build = self._builds[index]
            pending_total = sum(self._pending.values())
            fair = self.remaining() * self._share(self._costs[index], pending_total)
            granted = max(build, fair)
            intrinsic = self._intrinsic[index]
            if intrinsic is not None:
                granted = min(granted, intrinsic)
            granted = max(granted, build)  # the pinned invariant
            if granted > build + LEDGER_FLOOR:
                self.rebalances += 1
                self.rebalanced_seconds += granted - build
            return granted

    def settle(self, index: int) -> None:
        """Mark CTP ``index`` finished: its cost leaves the pending pool."""
        with self._lock:
            self._pending.pop(index, None)


class QuerySchedule:
    """One query's scheduling state, threaded through the dispatch layer.

    Bundles the per-CTP cost estimates (keyed by CTP index), the optional
    :class:`DeadlineLedger`, and the :class:`ScheduleReport` the serving
    layer surfaces.  ``enabled=False`` (the ``parallelism_mode="auto"``
    case without ``scheduling=True``) keeps mode selection but turns the
    ordering/rebalancing/pipelining decisions off.
    """

    def __init__(
        self,
        estimates: Optional[Dict[int, float]] = None,
        ledger: Optional[DeadlineLedger] = None,
        report: Optional[ScheduleReport] = None,
        enabled: bool = True,
    ) -> None:
        self.estimates: Dict[int, float] = dict(estimates or {})
        self.ledger = ledger
        self.report = report if report is not None else ScheduleReport(enabled=enabled)
        self.enabled = enabled

    def estimate(self, index: int) -> float:
        return self.estimates.get(index, 0.0)

    def ordered(self, groups: Sequence[Any], index_of: Any) -> List[Any]:
        """Longest-first (estimated), ties broken by CTP index (stable)."""
        if not self.enabled:
            return list(groups)
        return sorted(groups, key=lambda g: (-self.estimate(index_of(g)), index_of(g)))

    def record_submits(self, indices: Sequence[int]) -> None:
        self.report.submit_order.extend(indices)

    def config_for_run(self, job: Any) -> Any:
        """The config a dispatched job should actually run with.

        Applies the ledger's execution-time grant to the job's timeout;
        identical to the build config when scheduling is off, there is no
        deadline, or the grant equals the build budget.  The job's memo
        key keeps the *build* config's fingerprint — only complete,
        untruncated result sets are ever memoized, and those are
        timeout-independent, so a regranted run files the same entry the
        serial path would.
        """
        if not self.enabled or self.ledger is None:
            return job.config
        granted = self.ledger.grant(job.index)
        if job.config.timeout is not None and abs(granted - job.config.timeout) <= LEDGER_FLOOR:
            return job.config
        return job.config.with_(timeout=granted)

    def settle(self, index: int) -> None:
        if self.ledger is not None:
            self.ledger.settle(index)

    def finalize(self, outcomes: Sequence[Any]) -> ScheduleReport:
        """Fold estimates, actuals, and ledger counters into the report."""
        self.report.estimates = [self.estimates.get(i, 0.0) for i in range(len(outcomes))]
        self.report.actual_seconds = [
            outcome.seconds if outcome is not None else 0.0 for outcome in outcomes
        ]
        if self.ledger is not None:
            self.report.rebalances = self.ledger.rebalances
            self.report.rebalanced_seconds = self.ledger.rebalanced_seconds
        return self.report
