"""A persistent process pool for CTP evaluation: warm workers, many queries.

The PR-5 process dispatcher (:func:`repro.query.parallel._run_process`)
proved the mechanism — workers initialized once with an mmap-shared CSR
snapshot, each holding a private long-lived
:class:`~repro.ctp.interning.SearchContext` — but tore the whole
``ProcessPoolExecutor`` down after every ``evaluate_query`` call.  Each
request therefore paid fork/forkserver spin-up plus a per-worker snapshot
load, then threw the warm per-worker context away: the multi-core win
never amortized, which is fatal for the serving regime the paper's
integrated evaluator implies (many queries, one graph).

:class:`WorkerPool` fixes the amortization: it owns **one** executor for
the lifetime of the pool.

* **Load once, serve forever** — workers run
  :func:`~repro.query.parallel._process_worker_init` exactly once, when
  they spawn; every job any worker ever runs reuses its mmap-backed graph
  and its private context (rooted-result and cross-CTP caches stay warm
  *across requests*, not just across the CTPs of one query).
* **Health & respawn** — :meth:`ping` round-trips a probe through a
  worker; a :class:`~concurrent.futures.process.BrokenProcessPool`
  triggers :meth:`respawn` (tear down, rebuild, counted in
  :attr:`respawns`) so a crashed worker costs one retry, not permanent
  thread-fallback degradation.
* **Snapshot generations** — the pool records the source graph's
  :attr:`~repro.graph.graph.Graph.generation` when it snapshots; a
  mutated graph re-snapshots and respawns on the next dispatch instead of
  serving stale topology from the old file.
* **Explicit lifecycle** — :meth:`close` (or the context-manager form)
  shuts the executor down and eagerly releases the pool's auto-snapshot
  temp file (:func:`repro.graph.snapshot.release_auto_snapshot`) instead
  of leaking it until interpreter exit.

Inject a pool into :func:`~repro.query.evaluator.evaluate_query` /
:func:`~repro.query.parallel.evaluate_queries` (``pool=...``) to route
their process-mode dispatches through it, or let :class:`repro.serve`'s
``QueryServer`` own one for you.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Any, Dict, List, Optional

from repro.ctp.config import SearchConfig
from repro.errors import PoolClosedError, PoolError
from repro.graph.snapshot import ensure_snapshot, release_auto_snapshot
from repro.query.resilience import CircuitBreaker, PoolResilienceConfig, RetryPolicy


def _worker_rss_mb(pid: int) -> Optional[float]:
    """Resident set of ``pid`` in MiB via ``/proc`` (None where unsupported).

    Best-effort: any platform without procfs, or a pid that exited between
    listing and reading, yields ``None`` and the caller skips the check —
    RSS-based recycling is an optimization, never a correctness gate.
    """
    try:
        with open(f"/proc/{pid}/status", "r", encoding="ascii", errors="replace") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) / 1024.0
    except (OSError, ValueError, IndexError):
        return None
    return None


def _worker_probe() -> Dict[str, Any]:
    """Health probe, executed *inside* a worker: report what it holds.

    A worker that answers proves the round trip (parent -> queue -> worker
    -> queue -> parent) and reports whether its initializer really left it
    warm: a loaded graph and a live context with its cumulative run count.
    """
    from repro.query import parallel

    graph = parallel._worker_graph
    context = parallel._worker_context
    return {
        "pid": os.getpid(),
        "graph_loaded": graph is not None,
        "snapshot_path": getattr(graph, "snapshot_path", None),
        "context_runs": context.runs if context is not None else -1,
    }


class WorkerPool:
    """A reusable, health-checked process pool bound to one graph.

    Parameters
    ----------
    graph:
        The graph every job runs against.  The pool freezes and snapshots
        it on first use (reusing an existing snapshot file when the graph
        has one) and re-snapshots automatically when the graph's mutation
        generation changes.
    workers:
        Worker process count (default: ``os.cpu_count()``).
    interning:
        Interning mode the worker-private contexts are created with; a
        dispatch whose config disagrees still runs correctly (the worker
        context refuses adoption and the engine uses a private pool), it
        just loses worker-side cache reuse.

    The pool is thread-safe: any number of request-handler threads may
    :meth:`submit` concurrently (``ProcessPoolExecutor`` serializes the
    actual task queue).  It is also lazy — no processes exist until the
    first submit/ping — so constructing one is cheap.
    """

    def __init__(
        self,
        graph: Any,
        workers: Optional[int] = None,
        interning: bool = True,
        resilience: Optional[PoolResilienceConfig] = None,
        retry_policy: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
    ):
        if workers is not None and workers < 1:
            raise PoolError(f"WorkerPool needs workers >= 1, got {workers}")
        self.graph = graph
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        self.interning = interning
        #: Lifecycle knobs (recycling thresholds, hang watchdog budgets).
        self.resilience = resilience if resilience is not None else PoolResilienceConfig()
        #: Retry discipline the dispatch layer applies to pooled fan-outs.
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        #: Failure gate for process-mode dispatch through this pool.
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self._executor: Optional[ProcessPoolExecutor] = None
        self._csr: Any = None
        self._snapshot_path: Optional[str] = None
        self._snapshot_generation: Optional[int] = None
        self._lock = threading.Lock()
        self._closed = False
        #: Number of executor rebuilds after a BrokenProcessPool.
        self.respawns = 0
        #: Number of snapshot regenerations forced by a graph mutation.
        self.resnapshots = 0
        #: Jobs submitted over the pool's lifetime (all executor epochs).
        self.dispatches = 0
        #: Health probes served (a successful ping proves spawned workers).
        self.pings = 0
        #: Hang-watchdog recoveries (kill-respawns of a wedged executor).
        self.hangs = 0
        #: Proactive worker recycles (request-count or RSS threshold).
        self.recycles = 0
        # Work served by the CURRENT executor epoch — warmth is per epoch
        # (a respawned-but-idle executor is cold again), while the public
        # counters above are lifetime totals.
        self._epoch_work = 0
        self._rss_countdown = self.resilience.rss_check_every

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def warm(self) -> bool:
        """Whether a live executor exists *and* has served at least one job.

        "Warm" is the amortization claim: the next submit reuses spawned,
        snapshot-loaded workers instead of paying spin-up.  A freshly
        constructed (or respawned-but-idle) pool is not warm yet; a
        successful :meth:`ping` (e.g. via a server's ``prewarm``) counts —
        the probe round trip proves spawned, snapshot-loaded workers just
        as a real job does.
        """
        return self._executor is not None and self._epoch_work > 0

    @property
    def snapshot_path(self) -> Optional[str]:
        return self._snapshot_path

    @property
    def snapshot_generation(self) -> Optional[int]:
        return self._snapshot_generation

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def close(self) -> None:
        """Shut the executor down and release pool-owned temp state.

        Idempotent.  The auto-snapshot file (if the pool created one) is
        unlinked *now* rather than at interpreter exit — a long-lived
        server cycles pools (respawns, graph generations) and would
        otherwise stack up one stranded temp file per cycle.  Explicitly
        saved snapshot files are never touched.
        """
        with self._lock:
            self._closed = True
            self._shutdown_locked()
            release_auto_snapshot(self._snapshot_path)
            self._snapshot_path = None
            self._csr = None

    def _shutdown_locked(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    # ------------------------------------------------------------------
    # executor management
    # ------------------------------------------------------------------
    def _ensure_locked(self) -> ProcessPoolExecutor:
        """The live executor, (re)built as needed.  Caller holds the lock.

        Rebuild triggers: no executor yet (first use, or after a respawn
        tore it down), or the source graph's mutation generation moved
        past the snapshot's — the old file is stale *topology*, so it is
        released and the workers respawn over a fresh snapshot.
        """
        from repro import faults
        from repro.query.parallel import _process_pool_context, _process_worker_init

        if self._closed:
            raise PoolClosedError("WorkerPool is closed")
        generation = getattr(self.graph, "generation", 0)
        if self._executor is not None and generation == self._snapshot_generation:
            return self._executor
        self._shutdown_locked()
        if self._snapshot_generation is not None and generation != self._snapshot_generation:
            release_auto_snapshot(self._snapshot_path)
            self._snapshot_path = None
            self.resnapshots += 1
        # ensure_snapshot may raise (unpicklable metadata, I/O): the caller
        # decides how to degrade; the pool stays constructible/closable.
        self._csr, self._snapshot_path = ensure_snapshot(self.graph)
        self._snapshot_generation = generation
        self._epoch_work = 0
        # Workers must re-apply any installed fault plan themselves (module
        # globals do not survive the forkserver/spawn boundary); the epoch
        # lets specs target specific worker generations, so an epoch-0-only
        # crash stops firing once recovery replaced the workers.
        self._executor = ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=_process_pool_context(),
            initializer=_process_worker_init,
            initargs=(
                self._snapshot_path,
                self.interning,
                faults.active_plan(),
                self.respawns + self.recycles,
            ),
        )
        return self._executor

    def _maybe_recycle_locked(self) -> None:
        """Proactive worker recycling, checked at dispatch boundaries only.

        Recycling mid-fan-out would cancel a query's own in-flight jobs, so
        the check runs exclusively from :meth:`prepare` — between queries.
        Two triggers: the current executor epoch served ``recycle_after``
        jobs, or a worker's RSS (sampled every ``rss_check_every``
        dispatches via ``/proc``) exceeds ``max_worker_rss_mb`` — the leaky
        scorer case the ROADMAP names, where a worker accretes state no
        single request is responsible for.  Tearing down here is enough:
        :meth:`_ensure_locked` rebuilds on the next use, and the fresh
        workers re-run the initializer over the same snapshot file.
        """
        if self._executor is None:
            return
        rules = self.resilience
        reason = None
        if rules.recycle_after is not None and self._epoch_work >= rules.recycle_after:
            reason = "requests"
        elif rules.max_worker_rss_mb is not None:
            self._rss_countdown -= 1
            if self._rss_countdown <= 0:
                self._rss_countdown = rules.rss_check_every
                for proc in list(getattr(self._executor, "_processes", {}).values()):
                    rss = _worker_rss_mb(proc.pid)
                    if rss is not None and rss > rules.max_worker_rss_mb:
                        reason = "rss"
                        break
        if reason is not None:
            self._shutdown_locked()
            self.recycles += 1

    def prepare(self) -> Any:
        """Freeze/snapshot the graph and make the executor live (no spawn
        is forced — workers start on first submit).  Recycling thresholds
        are evaluated here, at the dispatch boundary, so a worker set due
        for replacement is torn down *between* queries, never under one.
        Returns the frozen CSR graph the workers will map."""
        with self._lock:
            self._maybe_recycle_locked()
            self._ensure_locked()
            return self._csr

    def respawn(self, kill: bool = False) -> None:
        """Tear the executor down and rebuild it (crashed-worker recovery).

        Called by the dispatch layer when a fan-out dies with
        ``BrokenProcessPool``; the replacement executor re-runs the worker
        initializer, so the workers come back warm-loadable (same snapshot
        file) at the cost of one spin-up — instead of every later dispatch
        silently degrading to the thread pool forever.

        ``kill=True`` is the hang-recovery form: a wedged worker would
        block the executor's graceful ``shutdown(wait=True)`` forever, so
        the worker processes are killed outright and the shutdown does not
        wait.  Pending futures are cancelled either way.
        """
        with self._lock:
            if self._closed:
                raise PoolClosedError("WorkerPool is closed")
            if kill and self._executor is not None:
                for proc in list(getattr(self._executor, "_processes", {}).values()):
                    try:
                        proc.kill()
                    except (OSError, ValueError, AttributeError):
                        pass
                self._executor.shutdown(wait=False, cancel_futures=True)
                self._executor = None
            else:
                self._shutdown_locked()
            self.respawns += 1
            self._ensure_locked()

    def recover_from_hang(self) -> None:
        """Hang-watchdog recovery: count the hang, kill-respawn the workers.

        The dispatch layer calls this when a pooled fan-out blows its
        watchdog (:class:`~repro.errors.WorkerHangError`): the hung worker
        is presumed wedged in native code or a pathological scorer, so a
        graceful shutdown would never return.
        """
        self.hangs += 1
        self.respawn(kill=True)

    # ------------------------------------------------------------------
    # work
    # ------------------------------------------------------------------
    def submit(self, algorithm: str, seed_sets: List[Any], config: SearchConfig) -> Future:
        """Submit one CTP evaluation; returns a future of ``(result_set, seconds)``.

        May raise ``BrokenProcessPool`` (executor already broken) or
        :class:`~repro.errors.PoolClosedError` (submitting after
        ``close()``); snapshot failures propagate from
        :func:`ensure_snapshot`.  The dispatch layer wraps this with
        retry-after-respawn under its :class:`RetryPolicy`.
        """
        from repro.query.parallel import _process_worker_run

        with self._lock:
            executor = self._ensure_locked()
            self.dispatches += 1
            self._epoch_work += 1
        return executor.submit(_process_worker_run, algorithm, seed_sets, config)

    def ping(self, timeout: float = 5.0) -> Dict[str, Any]:
        """Round-trip a health probe through a worker.

        Proves the pool can spawn workers, run their initializer, and
        return results; the probe reports the worker's pid, whether its
        snapshot graph is loaded, and its context's cumulative run count.
        Raises whatever the probe run raises (``BrokenProcessPool``,
        ``TimeoutError``) — callers treat any exception as unhealthy.

        The default timeout is deliberately small: a ping exists to answer
        "is the pool responsive *now*", and a hung worker must fail the
        probe in bounded time instead of stalling health checks for the
        old 30-second default.  Cold spawn + snapshot load fits comfortably
        within it; callers expecting a heavyweight first spawn may pass a
        larger budget explicitly.
        """
        with self._lock:
            executor = self._ensure_locked()
        probe = executor.submit(_worker_probe).result(timeout=timeout)
        with self._lock:
            self.pings += 1
            self._epoch_work += 1
        return probe

    def healthy(self, timeout: float = 5.0) -> bool:
        """Best-effort boolean form of :meth:`ping` (expiry = unhealthy)."""
        if self._closed:
            return False
        try:
            probe = self.ping(timeout=timeout)
        except Exception:  # noqa: BLE001 - any failure means unhealthy
            return False
        return bool(probe.get("graph_loaded"))

    def matches(self, graph: Any) -> bool:
        """Whether ``graph`` is the graph this pool serves.

        True for the bound graph itself, its memoized frozen view, or the
        CSR the pool snapshotted — the aliases a dispatch may hold after
        backend resolution.  Anything else must not run here (workers
        would silently search the wrong topology).
        """
        if graph is self.graph or (self._csr is not None and graph is self._csr):
            return True
        return graph is getattr(self.graph, "_frozen_snapshot", None)

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Lifecycle counters for server stats / bench reports."""
        return {
            "workers": self.workers,
            "warm": self.warm,
            "closed": self._closed,
            "dispatches": self.dispatches,
            "pings": self.pings,
            "respawns": self.respawns,
            "resnapshots": self.resnapshots,
            "hangs": self.hangs,
            "recycles": self.recycles,
            "breaker_state": self.breaker.state,
            "breaker_trips": self.breaker.trips,
            "snapshot_generation": self._snapshot_generation,
        }

    def __repr__(self) -> str:
        state = "closed" if self._closed else ("warm" if self.warm else "cold")
        return f"WorkerPool(workers={self.workers}, {state}, dispatches={self.dispatches})"
