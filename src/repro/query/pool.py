"""A persistent process pool for CTP evaluation: warm workers, many queries.

The PR-5 process dispatcher (:func:`repro.query.parallel._run_process`)
proved the mechanism — workers initialized once with an mmap-shared CSR
snapshot, each holding a private long-lived
:class:`~repro.ctp.interning.SearchContext` — but tore the whole
``ProcessPoolExecutor`` down after every ``evaluate_query`` call.  Each
request therefore paid fork/forkserver spin-up plus a per-worker snapshot
load, then threw the warm per-worker context away: the multi-core win
never amortized, which is fatal for the serving regime the paper's
integrated evaluator implies (many queries, one graph).

:class:`WorkerPool` fixes the amortization: it owns **one** executor for
the lifetime of the pool.

* **Load once, serve forever** — workers run
  :func:`~repro.query.parallel._process_worker_init` exactly once, when
  they spawn; every job any worker ever runs reuses its mmap-backed graph
  and its private context (rooted-result and cross-CTP caches stay warm
  *across requests*, not just across the CTPs of one query).
* **Health & respawn** — :meth:`ping` round-trips a probe through a
  worker; a :class:`~concurrent.futures.process.BrokenProcessPool`
  triggers :meth:`respawn` (tear down, rebuild, counted in
  :attr:`respawns`) so a crashed worker costs one retry, not permanent
  thread-fallback degradation.
* **Snapshot generations (MVCC)** — the pool snapshots the source graph's
  *base* (:meth:`~repro.graph.graph.Graph.ensure_base`); mutations ship as
  cheap picklable :class:`~repro.graph.delta.GraphDelta` objects applied
  by the workers over their mmap-loaded base, so a mutated graph costs a
  per-dispatch delta instead of a re-serialize + respawn.  Only when the
  delta crosses :attr:`~WorkerPool.compaction_threshold` does a dispatch
  boundary compact base ∪ delta into a new snapshot generation (counted
  in :attr:`~WorkerPool.resnapshots`, avoided dispatches in
  :attr:`~WorkerPool.resnapshots_avoided`); resnapshot thrash warns
  (:class:`~repro.errors.PoolThrashWarning`).
* **Explicit lifecycle** — :meth:`close` (or the context-manager form)
  shuts the executor down and eagerly releases the pool's auto-snapshot
  temp file (:func:`repro.graph.snapshot.release_auto_snapshot`) instead
  of leaking it until interpreter exit.

Inject a pool into :func:`~repro.query.evaluator.evaluate_query` /
:func:`~repro.query.parallel.evaluate_queries` (``pool=...``) to route
their process-mode dispatches through it, or let :class:`repro.serve`'s
``QueryServer`` own one for you.
"""

from __future__ import annotations

import os
import threading
import warnings
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Any, Dict, List, Optional

from repro.ctp.config import SearchConfig
from repro.errors import PoolClosedError, PoolError, PoolThrashWarning, StaleViewError
from repro.graph.delta import GraphDelta, OverlayGraph
from repro.graph.snapshot import ensure_snapshot, release_auto_snapshot
from repro.query.resilience import CircuitBreaker, PoolResilienceConfig, RetryPolicy

#: Sentinel for :meth:`WorkerPool.submit`'s ``delta`` parameter: "resolve
#: the current delta for me".  The dispatch layer resolves once per fan-out
#: via :meth:`WorkerPool.prepare_for` and passes the result explicitly;
#: direct callers get per-submit resolution so they can never read stale
#: topology from the workers' base snapshot.
_UNRESOLVED: Any = object()


def _worker_rss_mb(pid: int) -> Optional[float]:
    """Resident set of ``pid`` in MiB via ``/proc`` (None where unsupported).

    Best-effort: any platform without procfs, or a pid that exited between
    listing and reading, yields ``None`` and the caller skips the check —
    RSS-based recycling is an optimization, never a correctness gate.
    """
    try:
        with open(f"/proc/{pid}/status", "r", encoding="ascii", errors="replace") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) / 1024.0
    except (OSError, ValueError, IndexError):
        return None
    return None


def _worker_probe() -> Dict[str, Any]:
    """Health probe, executed *inside* a worker: report what it holds.

    A worker that answers proves the round trip (parent -> queue -> worker
    -> queue -> parent) and reports whether its initializer really left it
    warm: a loaded graph and a live context with its cumulative run count.
    """
    from repro.query import parallel

    graph = parallel._worker_graph
    context = parallel._worker_context
    return {
        "pid": os.getpid(),
        "graph_loaded": graph is not None,
        "snapshot_path": getattr(graph, "snapshot_path", None),
        "context_runs": context.runs if context is not None else -1,
    }


class WorkerPool:
    """A reusable, health-checked process pool bound to one graph.

    Parameters
    ----------
    graph:
        The graph every job runs against.  The pool freezes and snapshots
        it on first use (reusing an existing snapshot file when the graph
        has one) and re-snapshots automatically when the graph's mutation
        generation changes.
    workers:
        Worker process count (default: ``os.cpu_count()``).
    interning:
        Interning mode the worker-private contexts are created with; a
        dispatch whose config disagrees still runs correctly (the worker
        context refuses adoption and the engine uses a private pool), it
        just loses worker-side cache reuse.
    dense_ids:
        Pool-storage mode of the worker-private contexts (flat arrays vs
        legacy dicts).  Mismatched dispatches degrade the same way as a
        mismatched ``interning``: correct results, private pool.

    The pool is thread-safe: any number of request-handler threads may
    :meth:`submit` concurrently (``ProcessPoolExecutor`` serializes the
    actual task queue).  It is also lazy — no processes exist until the
    first submit/ping — so constructing one is cheap.
    """

    def __init__(
        self,
        graph: Any,
        workers: Optional[int] = None,
        interning: bool = True,
        dense_ids: bool = True,
        resilience: Optional[PoolResilienceConfig] = None,
        retry_policy: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        compaction_threshold: Optional[int] = 256,
        thrash_window: int = 3,
    ):
        if workers is not None and workers < 1:
            raise PoolError(f"WorkerPool needs workers >= 1, got {workers}")
        if compaction_threshold is not None and compaction_threshold < 0:
            raise PoolError(
                f"WorkerPool needs compaction_threshold >= 0 or None, got {compaction_threshold}"
            )
        self.graph = graph
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        self.interning = interning
        self.dense_ids = dense_ids
        #: Delta size at which a dispatch boundary compacts base ∪ delta into
        #: a new snapshot generation (full re-snapshot + respawn).  ``None``
        #: never compacts; ``0`` compacts on any mutation — the legacy
        #: resnapshot-per-mutation behaviour, kept for A/B benching.
        self.compaction_threshold = compaction_threshold
        #: Thrash detector: a resnapshot landing within this many dispatches
        #: of the previous one counts as thrash and warns.
        self.thrash_window = thrash_window
        #: Lifecycle knobs (recycling thresholds, hang watchdog budgets).
        self.resilience = resilience if resilience is not None else PoolResilienceConfig()
        #: Retry discipline the dispatch layer applies to pooled fan-outs.
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        #: Failure gate for process-mode dispatch through this pool.
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self._executor: Optional[ProcessPoolExecutor] = None
        self._csr: Any = None
        self._snapshot_path: Optional[str] = None
        self._snapshot_generation: Optional[int] = None
        self._lock = threading.Lock()
        self._closed = False
        #: Number of executor rebuilds after a BrokenProcessPool.
        self.respawns = 0
        #: Number of snapshot regenerations forced by a base-generation move.
        self.resnapshots = 0
        #: Jobs submitted over the pool's lifetime (all executor epochs).
        self.dispatches = 0
        #: Health probes served (a successful ping proves spawned workers).
        self.pings = 0
        #: Hang-watchdog recoveries (kill-respawns of a wedged executor).
        self.hangs = 0
        #: Proactive worker recycles (request-count or RSS threshold).
        self.recycles = 0
        #: Compactions this pool triggered at dispatch boundaries.
        self.compactions = 0
        #: Mutated-graph dispatches served by shipping a delta instead of
        #: paying a full re-snapshot + respawn (one per delta generation).
        self.resnapshots_avoided = 0
        #: Thrash episodes: resnapshots within ``thrash_window`` dispatches
        #: of the previous one (each also warns :class:`PoolThrashWarning`).
        self.resnapshot_thrash = 0
        # Work served by the CURRENT executor epoch — warmth is per epoch
        # (a respawned-but-idle executor is cold again), while the public
        # counters above are lifetime totals.
        self._epoch_work = 0
        self._rss_countdown = self.resilience.rss_check_every
        self._dispatches_at_last_resnapshot: Optional[int] = None
        self._last_delta_generation: Optional[int] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def warm(self) -> bool:
        """Whether a live executor exists *and* has served at least one job.

        "Warm" is the amortization claim: the next submit reuses spawned,
        snapshot-loaded workers instead of paying spin-up.  A freshly
        constructed (or respawned-but-idle) pool is not warm yet; a
        successful :meth:`ping` (e.g. via a server's ``prewarm``) counts —
        the probe round trip proves spawned, snapshot-loaded workers just
        as a real job does.
        """
        return self._executor is not None and self._epoch_work > 0

    def dispatch_overhead(self) -> float:
        """Cost-units bar a query must clear for process dispatch to pay.

        Consumed by :func:`repro.query.costmodel.choose_mode` when
        resolving ``parallelism_mode="auto"``: a warm pool's overhead is
        per-job IPC only (:data:`~repro.query.costmodel.PROCESS_WARM_THRESHOLD`);
        a cold or respawning pool must still spawn interpreters and load
        the snapshot per worker
        (:data:`~repro.query.costmodel.PROCESS_COLD_THRESHOLD`).
        """
        from repro.query.costmodel import PROCESS_COLD_THRESHOLD, PROCESS_WARM_THRESHOLD

        return PROCESS_WARM_THRESHOLD if self.warm else PROCESS_COLD_THRESHOLD

    @property
    def snapshot_path(self) -> Optional[str]:
        return self._snapshot_path

    @property
    def snapshot_generation(self) -> Optional[int]:
        return self._snapshot_generation

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def close(self) -> None:
        """Shut the executor down and release pool-owned temp state.

        Idempotent.  The auto-snapshot file (if the pool created one) is
        unlinked *now* rather than at interpreter exit — a long-lived
        server cycles pools (respawns, graph generations) and would
        otherwise stack up one stranded temp file per cycle.  Explicitly
        saved snapshot files are never touched.
        """
        with self._lock:
            self._closed = True
            self._shutdown_locked()
            release_auto_snapshot(self._snapshot_path)
            self._snapshot_path = None
            self._csr = None

    def _shutdown_locked(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    # ------------------------------------------------------------------
    # executor management
    # ------------------------------------------------------------------
    def _note_resnapshot_locked(self) -> None:
        """Thrash detection, called whenever a resnapshot is charged."""
        last = self._dispatches_at_last_resnapshot
        if last is not None and self.dispatches - last <= self.thrash_window:
            self.resnapshot_thrash += 1
            warnings.warn(
                f"WorkerPool resnapshot thrash: full re-snapshot + worker respawn "
                f"after only {self.dispatches - last} dispatch(es) — the workload "
                f"mutates faster than the pool amortizes (compaction_threshold="
                f"{self.compaction_threshold}); raise the threshold so mutations "
                f"ride the delta overlay instead",
                PoolThrashWarning,
                stacklevel=4,
            )
        self._dispatches_at_last_resnapshot = self.dispatches

    def _snapshot_locked(self) -> None:
        """Align the pool's snapshot file with the graph's current *base*.

        MVCC graphs (anything with :meth:`~repro.graph.graph.Graph.ensure_base`)
        are snapshotted at their base generation — later mutations ship as
        deltas (:meth:`prepare_for`), so only a *base* move (compaction)
        releases the old file, charges ``resnapshots``, and respawns the
        workers.  Legacy sources (a bare CSR bound directly) snapshot at
        their own generation, preserving the old resnapshot-per-mutation
        contract.
        """
        graph = self.graph
        if hasattr(graph, "ensure_base"):
            base = graph.ensure_base()
            generation = graph.base_generation
        else:
            base = graph
            generation = getattr(graph, "generation", 0)
        if self._snapshot_path is not None and generation == self._snapshot_generation:
            return
        if self._snapshot_generation is not None:
            release_auto_snapshot(self._snapshot_path)
            self._snapshot_path = None
            self.resnapshots += 1
            self._note_resnapshot_locked()
        # Workers hold the old base mmap-loaded: they must respawn over the
        # fresh file.  ensure_snapshot may raise (unpicklable metadata,
        # I/O): the caller decides how to degrade; the pool stays
        # constructible/closable.
        self._shutdown_locked()
        self._csr, self._snapshot_path = ensure_snapshot(base)
        self._snapshot_generation = generation

    def _resolve_delta_locked(self, graph: Any) -> Optional[GraphDelta]:
        """Snapshot/compact as needed and return the delta ``graph`` requires.

        ``graph`` is whatever the dispatch holds after backend resolution:
        the pool's mutable source graph (serve its *current* delta), a
        pinned :class:`~repro.graph.delta.OverlayGraph` view (serve its
        own delta so the evaluation stays at the pinned generation), a
        pinned base CSR view (no delta), or a legacy CSR (no delta).
        Raises :class:`~repro.errors.StaleViewError` when a pinned view
        predates the workers' base — the pooled path cannot reconstruct
        that generation, and the dispatch layer degrades to thread/serial.
        """
        source = self.graph if graph is self.graph else getattr(graph, "view_source", None)
        if source is None or not hasattr(source, "ensure_base"):
            self._snapshot_locked()
            return None
        # Compaction check at the dispatch boundary — only when dispatching
        # the head generation (compacting under an older pinned view would
        # not help it anyway).
        if (
            self.compaction_threshold is not None
            and getattr(graph, "generation", None) == source.generation
            and source.delta_size > self.compaction_threshold
        ):
            source.compact()
            self.compactions += 1
        self._snapshot_locked()
        pool_generation = self._snapshot_generation
        if graph is source:
            if source.generation == pool_generation:
                return None
            delta = source.delta_since_base()
        elif isinstance(graph, OverlayGraph):
            delta = graph.delta
            if delta.generation == pool_generation:
                # Compaction landed exactly at this view's generation: the
                # workers' fresh base equals the view's contents.
                return None
            if delta.base_generation != pool_generation:
                raise StaleViewError(
                    f"pinned view at generation {delta.generation} builds on base "
                    f"{delta.base_generation}, but the pool's workers hold base "
                    f"{pool_generation}"
                )
        else:
            # A pinned frozen base view: servable iff it IS the current base.
            view_generation = getattr(graph, "base_generation", None)
            if view_generation is None:
                view_generation = getattr(graph, "generation", 0)
            if view_generation == pool_generation:
                return None
            raise StaleViewError(
                f"pinned base view at generation {view_generation} predates the "
                f"pool's base {pool_generation}"
            )
        if delta.size == 0:
            return None
        if delta.generation != self._last_delta_generation:
            self._last_delta_generation = delta.generation
            self.resnapshots_avoided += 1
        return delta

    def _ensure_locked(self) -> ProcessPoolExecutor:
        """The live executor, (re)built as needed.  Caller holds the lock.

        Snapshot freshness is owned by :meth:`_snapshot_locked` (run from
        every :meth:`prepare_for`/:meth:`submit` resolution); this method
        only (re)builds the executor over the current snapshot file —
        first use, or after a respawn/recycle/base-move tore it down.
        """
        from repro import faults
        from repro.query.parallel import _process_pool_context, _process_worker_init

        if self._closed:
            raise PoolClosedError("WorkerPool is closed")
        if self._snapshot_path is None:
            self._snapshot_locked()
        if self._executor is not None:
            return self._executor
        self._epoch_work = 0
        # Workers must re-apply any installed fault plan themselves (module
        # globals do not survive the forkserver/spawn boundary); the epoch
        # lets specs target specific worker generations, so an epoch-0-only
        # crash stops firing once recovery replaced the workers.
        self._executor = ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=_process_pool_context(),
            initializer=_process_worker_init,
            initargs=(
                self._snapshot_path,
                self.interning,
                faults.active_plan(),
                self.respawns + self.recycles,
                self.dense_ids,
            ),
        )
        return self._executor

    def _maybe_recycle_locked(self) -> None:
        """Proactive worker recycling, checked at dispatch boundaries only.

        Recycling mid-fan-out would cancel a query's own in-flight jobs, so
        the check runs exclusively from :meth:`prepare` — between queries.
        Two triggers: the current executor epoch served ``recycle_after``
        jobs, or a worker's RSS (sampled every ``rss_check_every``
        dispatches via ``/proc``) exceeds ``max_worker_rss_mb`` — the leaky
        scorer case the ROADMAP names, where a worker accretes state no
        single request is responsible for.  Tearing down here is enough:
        :meth:`_ensure_locked` rebuilds on the next use, and the fresh
        workers re-run the initializer over the same snapshot file.
        """
        if self._executor is None:
            return
        rules = self.resilience
        reason = None
        if rules.recycle_after is not None and self._epoch_work >= rules.recycle_after:
            reason = "requests"
        elif rules.max_worker_rss_mb is not None:
            self._rss_countdown -= 1
            if self._rss_countdown <= 0:
                self._rss_countdown = rules.rss_check_every
                for proc in list(getattr(self._executor, "_processes", {}).values()):
                    rss = _worker_rss_mb(proc.pid)
                    if rss is not None and rss > rules.max_worker_rss_mb:
                        reason = "rss"
                        break
        if reason is not None:
            self._shutdown_locked()
            self.recycles += 1

    def prepare(self) -> Any:
        """Freeze/snapshot the graph and make the executor live (no spawn
        is forced — workers start on first submit).  Recycling thresholds
        are evaluated here, at the dispatch boundary, so a worker set due
        for replacement is torn down *between* queries, never under one.
        Returns the frozen CSR graph the workers will map."""
        self.prepare_for(self.graph)
        return self._csr

    def prepare_for(self, graph: Any) -> Optional[GraphDelta]:
        """Dispatch-boundary preparation for a fan-out over ``graph``.

        Runs the recycling check, compacts the source when its delta
        crossed :attr:`compaction_threshold`, aligns the snapshot file
        with the (possibly new) base, makes the executor live, and returns
        the delta the fan-out must ship with each job (``None`` when the
        workers' base alone reproduces ``graph``).  Raises
        :class:`~repro.errors.StaleViewError` for views the workers can no
        longer serve consistently.
        """
        with self._lock:
            if self._closed:
                raise PoolClosedError("WorkerPool is closed")
            self._maybe_recycle_locked()
            delta = self._resolve_delta_locked(graph)
            self._ensure_locked()
            return delta

    def respawn(self, kill: bool = False) -> None:
        """Tear the executor down and rebuild it (crashed-worker recovery).

        Called by the dispatch layer when a fan-out dies with
        ``BrokenProcessPool``; the replacement executor re-runs the worker
        initializer, so the workers come back warm-loadable (same snapshot
        file) at the cost of one spin-up — instead of every later dispatch
        silently degrading to the thread pool forever.

        ``kill=True`` is the hang-recovery form: a wedged worker would
        block the executor's graceful ``shutdown(wait=True)`` forever, so
        the worker processes are killed outright and the shutdown does not
        wait.  Pending futures are cancelled either way.
        """
        with self._lock:
            if self._closed:
                raise PoolClosedError("WorkerPool is closed")
            if kill and self._executor is not None:
                for proc in list(getattr(self._executor, "_processes", {}).values()):
                    try:
                        proc.kill()
                    except (OSError, ValueError, AttributeError):
                        pass
                self._executor.shutdown(wait=False, cancel_futures=True)
                self._executor = None
            else:
                self._shutdown_locked()
            self.respawns += 1
            self._ensure_locked()

    def recover_from_hang(self) -> None:
        """Hang-watchdog recovery: count the hang, kill-respawn the workers.

        The dispatch layer calls this when a pooled fan-out blows its
        watchdog (:class:`~repro.errors.WorkerHangError`): the hung worker
        is presumed wedged in native code or a pathological scorer, so a
        graceful shutdown would never return.
        """
        self.hangs += 1
        self.respawn(kill=True)

    # ------------------------------------------------------------------
    # work
    # ------------------------------------------------------------------
    def submit(
        self,
        algorithm: str,
        seed_sets: List[Any],
        config: SearchConfig,
        delta: Any = _UNRESOLVED,
    ) -> Future:
        """Submit one CTP evaluation; returns a future of ``(result_set, seconds)``.

        ``delta`` is the :class:`~repro.graph.delta.GraphDelta` the worker
        applies over its mmap-loaded base (``None`` = base only).  The
        dispatch layer resolves it once per fan-out via :meth:`prepare_for`;
        when omitted, the pool resolves the source graph's *current* delta
        itself, so direct callers always see current topology.

        May raise ``BrokenProcessPool`` (executor already broken) or
        :class:`~repro.errors.PoolClosedError` (submitting after
        ``close()``); snapshot failures propagate from
        :func:`ensure_snapshot`.  The dispatch layer wraps this with
        retry-after-respawn under its :class:`RetryPolicy`.
        """
        from repro.query.parallel import _process_worker_run

        with self._lock:
            if delta is _UNRESOLVED:
                delta = self._resolve_delta_locked(self.graph)
            executor = self._ensure_locked()
            self.dispatches += 1
            self._epoch_work += 1
        return executor.submit(_process_worker_run, algorithm, seed_sets, config, delta)

    def ping(self, timeout: float = 5.0) -> Dict[str, Any]:
        """Round-trip a health probe through a worker.

        Proves the pool can spawn workers, run their initializer, and
        return results; the probe reports the worker's pid, whether its
        snapshot graph is loaded, and its context's cumulative run count.
        Raises whatever the probe run raises (``BrokenProcessPool``,
        ``TimeoutError``) — callers treat any exception as unhealthy.

        The default timeout is deliberately small: a ping exists to answer
        "is the pool responsive *now*", and a hung worker must fail the
        probe in bounded time instead of stalling health checks for the
        old 30-second default.  Cold spawn + snapshot load fits comfortably
        within it; callers expecting a heavyweight first spawn may pass a
        larger budget explicitly.
        """
        with self._lock:
            executor = self._ensure_locked()
        probe = executor.submit(_worker_probe).result(timeout=timeout)
        with self._lock:
            self.pings += 1
            self._epoch_work += 1
        return probe

    def healthy(self, timeout: float = 5.0) -> bool:
        """Best-effort boolean form of :meth:`ping` (expiry = unhealthy)."""
        if self._closed:
            return False
        try:
            probe = self.ping(timeout=timeout)
        except Exception:  # noqa: BLE001 - any failure means unhealthy
            return False
        return bool(probe.get("graph_loaded"))

    def matches(self, graph: Any) -> bool:
        """Whether ``graph`` is the graph this pool serves.

        True for the bound graph itself, its memoized frozen view, any
        pinned MVCC view of it (``view_source`` stamp), or the CSR the
        pool snapshotted — the aliases a dispatch may hold after backend
        resolution.  Anything else must not run here (workers would
        silently search the wrong topology).
        """
        if graph is self.graph or (self._csr is not None and graph is self._csr):
            return True
        if getattr(graph, "view_source", None) is self.graph:
            return True
        return graph is getattr(self.graph, "_frozen_snapshot", None)

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Lifecycle counters for server stats / bench reports."""
        return {
            "workers": self.workers,
            "warm": self.warm,
            "closed": self._closed,
            "dispatches": self.dispatches,
            "pings": self.pings,
            "respawns": self.respawns,
            "resnapshots": self.resnapshots,
            "hangs": self.hangs,
            "recycles": self.recycles,
            "breaker_state": self.breaker.state,
            "breaker_trips": self.breaker.trips,
            "snapshot_generation": self._snapshot_generation,
            "compaction_threshold": self.compaction_threshold,
            "compactions": self.compactions,
            "resnapshots_avoided": self.resnapshots_avoided,
            "resnapshot_thrash": self.resnapshot_thrash,
            "delta_size": getattr(self.graph, "delta_size", 0),
        }

    def __repr__(self) -> str:
        state = "closed" if self._closed else ("warm" if self.warm else "cold")
        return f"WorkerPool(workers={self.workers}, {state}, dispatches={self.dispatches})"
