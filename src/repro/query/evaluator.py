"""EQL query evaluation — the three-step strategy of Section 3.

(A) evaluate every BGP into a materialized table ``B_i``;
(B) for every CTP, derive each seed set from the ``B_i`` binding its
    variable (or from the graph when the variable is free), then run a CTP
    search algorithm with the CTP's filters pushed into the search;
(C) natural-join the ``B_i`` and ``CTP_j`` tables and project on the head.

The evaluator reports per-phase timings because the paper does too (e.g.
Section 5.5.2: "MoLESP took around 30% of the total time, the rest being
spent ... in the BGP evaluation and final joins").
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.ctp.config import WILDCARD, SearchConfig
from repro.ctp.registry import get_algorithm
from repro.ctp.results import CTPResultSet, ResultTree
from repro.errors import EvaluationError
from repro.graph.graph import Graph
from repro.query.ast import CTP, CTPFilters, EQLQuery, Predicate
from repro.query.bgp import evaluate_bgp
from repro.query.parser import parse_query
from repro.query.scoring import get_score_function
from repro.storage.relational import natural_join_many
from repro.storage.table import Table


@dataclass
class CTPReport:
    """Execution details of one CTP inside a query."""

    tree_var: str
    algorithm: str
    seed_set_sizes: Tuple[Optional[int], ...]  # None marks a wildcard set
    result_set: CTPResultSet
    seconds: float


@dataclass
class QueryTimings:
    bgp_seconds: float = 0.0
    ctp_seconds: float = 0.0
    join_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return self.bgp_seconds + self.ctp_seconds + self.join_seconds


@dataclass
class QueryResult:
    """The rows of an EQL query plus its evaluation breakdown.

    Row values are node ids for node variables, edge ids for edge
    variables, and :class:`~repro.ctp.results.ResultTree` objects for CTP
    tree variables.
    """

    columns: Tuple[str, ...]
    rows: List[Tuple[Any, ...]]
    graph: Graph
    timings: QueryTimings = field(default_factory=QueryTimings)
    ctp_reports: List[CTPReport] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def format(self, limit: int = 20) -> str:
        """Human-readable rendering, resolving ids to labels."""
        lines = [" | ".join(f"?{c}" for c in self.columns)]
        for row in self.rows[:limit]:
            cells = []
            for value in row:
                if isinstance(value, ResultTree):
                    cells.append(value.describe(self.graph))
                elif isinstance(value, int) and 0 <= value < self.graph.num_nodes:
                    cells.append(self.graph.node(value).label or str(value))
                else:
                    cells.append(str(value))
            lines.append(" | ".join(cells))
        if len(self.rows) > limit:
            lines.append(f"... ({len(self.rows) - limit} more rows)")
        return "\n".join(lines)


def config_for_ctp(filters: CTPFilters, base: SearchConfig, default_timeout: Optional[float]) -> SearchConfig:
    """Push a CTP's filters (Definition 2.11) into the search configuration."""
    score = base.score
    if filters.score is not None:
        score = get_score_function(filters.score)
    return base.with_(
        uni=filters.uni or base.uni,
        labels=filters.labels if filters.labels is not None else base.labels,
        max_edges=filters.max_edges if filters.max_edges is not None else base.max_edges,
        timeout=filters.timeout if filters.timeout is not None else (base.timeout or default_timeout),
        limit=filters.limit if filters.limit is not None else base.limit,
        score=score,
        top_k=filters.top_k if filters.top_k is not None else base.top_k,
    )


def match_seed_nodes(graph: Graph, predicate: Predicate) -> List[int]:
    """Nodes of N satisfying a seed predicate (step B.1, free-variable case)."""
    label = predicate.label_constant()
    if label is not None:
        return [n for n in graph.nodes_with_label(label) if predicate.test(graph.node(n))]
    type_name = predicate.type_constant()
    if type_name is not None:
        return [n for n in graph.nodes_with_type(type_name) if predicate.test(graph.node(n))]
    return graph.find_nodes(predicate.test)


def _seed_sets_for_ctp(
    graph: Graph,
    ctp: CTP,
    binding_tables: Dict[str, Table],
) -> Tuple[List[Any], Tuple[Optional[int], ...]]:
    """Step (B.1): derive the CTP's seed sets from BGP bindings or the graph."""
    seed_sets: List[Any] = []
    sizes: List[Optional[int]] = []
    for seed in ctp.seeds:
        table = binding_tables.get(seed.var)
        if table is not None:
            nodes = table.distinct_values(seed.var)
            if not seed.is_empty:
                nodes = [n for n in nodes if seed.test(graph.node(n))]
            seed_sets.append(nodes)
            sizes.append(len(nodes))
        elif seed.is_empty:
            seed_sets.append(WILDCARD)  # an N seed set (Section 4.9)
            sizes.append(None)
        else:
            nodes = match_seed_nodes(graph, seed)
            seed_sets.append(nodes)
            sizes.append(len(nodes))
    return seed_sets, tuple(sizes)


def _ctp_table(ctp: CTP, result_set: CTPResultSet) -> Table:
    """Materialize a CTP's results as the ``CTP_j`` table of Section 3."""
    columns = list(ctp.seed_vars()) + [ctp.tree_var]
    rows = []
    for result in result_set:
        values: List[Any] = []
        for position, seed in enumerate(result.seeds):
            if seed is None:
                # Wildcard set: any tree node matches; bind a representative.
                seed = min(result.nodes)
            values.append(seed)
        values.append(result)
        rows.append(tuple(values))
    return Table(columns, rows)


def evaluate_query(
    graph: Graph,
    query: Union[str, EQLQuery],
    algorithm: str = "molesp",
    base_config: Optional[SearchConfig] = None,
    default_timeout: Optional[float] = None,
    distinct: bool = True,
) -> QueryResult:
    """Evaluate an EQL query (Definition 2.10 semantics).

    Parameters
    ----------
    query:
        EQL text or a pre-built :class:`EQLQuery`.
    algorithm:
        CTP evaluation algorithm name (default: the paper's MoLESP).
    base_config:
        Defaults for search options not set by per-CTP filters.
    default_timeout:
        Per-CTP timeout (seconds) applied when neither the CTP's filters nor
        ``base_config`` specify one (the paper's ``T``).
    """
    if isinstance(query, str):
        query = parse_query(query)
    base_config = base_config or SearchConfig()

    # Step (A): evaluate each BGP into a materialized table.
    started = time.perf_counter()
    bgp_tables = [evaluate_bgp(graph, bgp) for bgp in query.bgps()]
    bgp_seconds = time.perf_counter() - started

    binding_tables: Dict[str, Table] = {}
    for table in bgp_tables:
        for column in table.columns:
            binding_tables.setdefault(column, table)

    # Step (B): evaluate each CTP on its derived seed sets.
    ctp_tables: List[Table] = []
    reports: List[CTPReport] = []
    ctp_seconds = 0.0
    for ctp in query.ctps:
        seed_sets, sizes = _seed_sets_for_ctp(graph, ctp, binding_tables)
        config = config_for_ctp(ctp.filters, base_config, default_timeout)
        ctp_started = time.perf_counter()
        result_set = get_algorithm(algorithm).run(graph, seed_sets, config)
        elapsed = time.perf_counter() - ctp_started
        ctp_seconds += elapsed
        reports.append(
            CTPReport(
                tree_var=ctp.tree_var,
                algorithm=algorithm,
                seed_set_sizes=sizes,
                result_set=result_set,
                seconds=elapsed,
            )
        )
        ctp_tables.append(_ctp_table(ctp, result_set))

    # Step (C): join everything and project on the head.
    join_started = time.perf_counter()
    joined = natural_join_many(bgp_tables + ctp_tables)
    missing = [var for var in query.head if var not in joined.columns]
    if missing:
        raise EvaluationError(f"head variables {missing} not bound by the query body")
    final = joined.project(list(query.head), distinct=distinct)
    rows = list(final.rows)
    if query.limit is not None:
        rows = rows[: query.limit]
    join_seconds = time.perf_counter() - join_started

    return QueryResult(
        columns=final.columns,
        rows=rows,
        graph=graph,
        timings=QueryTimings(bgp_seconds, ctp_seconds, join_seconds),
        ctp_reports=reports,
    )
