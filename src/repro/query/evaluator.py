"""EQL query evaluation — the three-step strategy of Section 3.

(A) evaluate every BGP into a materialized table ``B_i``;
(B) for every CTP, derive each seed set from the ``B_i`` binding its
    variable (or from the graph when the variable is free), then run a CTP
    search algorithm with the CTP's filters pushed into the search;
(C) natural-join the ``B_i`` and ``CTP_j`` tables and project on the head.

The evaluator reports per-phase timings because the paper does too (e.g.
Section 5.5.2: "MoLESP took around 30% of the total time, the rest being
spent ... in the BGP evaluation and final joins").

Step (B) runs inside one **query-scoped search context**
(:class:`~repro.ctp.interning.SearchContext`, enabled by
``SearchConfig(shared_context=True)``, the default): every CTP evaluation
adopts the same edge-set pool (edge sets a sibling CTP interned are memo
hits, not fresh allocations), rooted-tree results are cached per
``(root, eset handle, config fingerprint)``, and whole *complete* CTP
result sets are memoized across CTPs — a CONNECT repeated under several
tree variables (or re-evaluated across BGP embeddings) runs once.  The
context is representation and reuse only: rows are identical to the
pool-per-CTP path (``shared_context=False``), which ``python -m
repro.bench query-context`` keeps measurable as the A/B baseline.

Step (B)'s per-CTP searches are *dispatched* through
:mod:`repro.query.parallel`: ``SearchConfig(parallelism=N)`` fans the
query's independent CTP evaluations out to N worker threads over a
thread-safe context (sharded pool, locked caches), with in-flight
deduplication of repeated CTPs standing in for the serial memo order;
``parallelism_mode="process"`` fans out to worker *processes* instead,
each loading the graph once from an mmap-shared CSR snapshot
(:mod:`repro.graph.snapshot`) — real multi-core overlap for CPU-bound
complete searches under the GIL.
Dispatch is representation-only too — rows are bit-identical to serial
evaluation regardless of worker count (``python -m repro.bench parallel``
A/Bs the worker counts and re-checks equality).  The batch counterpart
:func:`~repro.query.parallel.evaluate_queries` runs many queries against
one shared context for cross-query memo hits.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from itertools import permutations, product
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.ctp.config import WILDCARD, SearchConfig
from repro.ctp.interning import SearchContext
from repro.ctp.results import CTPResultSet, ResultTree, tree_leaves
from repro.errors import EvaluationError
from repro.graph.graph import Graph
from repro.query.ast import CTP, CTPFilters, EQLQuery, Predicate
from repro.query.bgp import evaluate_bgp
from repro.query.costmodel import (
    CTPCostEstimator,
    DeadlineLedger,
    QuerySchedule,
    ScheduleReport,
    choose_mode,
)
from repro.query.parallel import (
    CTPJob,
    PipelinedDispatch,
    effective_parallelism,
    run_ctp_jobs,
)
from repro.query.resilience import ResilienceReport

if TYPE_CHECKING:  # pragma: no cover - typing only (pool imports from parallel)
    from repro.query.pool import WorkerPool
from repro.query.parser import parse_query
from repro.query.scoring import get_score_function
from repro.storage.relational import natural_join_many
from repro.storage.table import Table


@dataclass
class CTPReport:
    """Execution details of one CTP inside a query."""

    tree_var: str
    algorithm: str
    seed_set_sizes: Tuple[Optional[int], ...]  # None marks a wildcard set
    result_set: CTPResultSet
    seconds: float
    #: True when the whole evaluation was served by the query context's
    #: cross-CTP memo (same algorithm, seed sets, and config as an earlier
    #: CTP of this query) — ``result_set`` is then the cached set.
    cache_hit: bool = False
    #: True when the evaluation ran inside a shared query context (pool
    #: counters in ``result_set.stats`` are per-run deltas in that case).
    shared_context: bool = False
    #: What actually produced this CTP's result: "serial", "thread", or
    #: "process" when a search executed, "memo" when it was served from
    #: the cross-CTP memo without running.  May differ from the requested
    #: ``parallelism_mode``: process dispatch degrades to thread/serial
    #: when jobs cannot cross a process boundary — silently for the
    #: query, but recorded here.
    dispatch_mode: str = "serial"


@dataclass
class QueryTimings:
    """Wall-clock per evaluator phase.  ``ctp_seconds`` covers all of step
    (B) — seed derivation, dispatch, and table materialization — so under
    parallel dispatch it reflects the overlapped wall time, not the sum of
    per-CTP search times (those live on each report)."""

    bgp_seconds: float = 0.0
    ctp_seconds: float = 0.0
    join_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return self.bgp_seconds + self.ctp_seconds + self.join_seconds


@dataclass
class QueryResult:
    """The rows of an EQL query plus its evaluation breakdown.

    Row values are node ids for node variables, edge ids for edge
    variables, and :class:`~repro.ctp.results.ResultTree` objects for CTP
    tree variables.  ``context_stats`` summarizes the query-scoped search
    context (pool size, memo/cache hit counters) when one was used.
    """

    columns: Tuple[str, ...]
    rows: List[Tuple[Any, ...]]
    graph: Graph
    timings: QueryTimings = field(default_factory=QueryTimings)
    ctp_reports: List[CTPReport] = field(default_factory=list)
    context_stats: Optional[Dict[str, int]] = None
    #: What resilience machinery fired during pooled dispatch (retries,
    #: hang kills, breaker state, degradation) — ``None`` when the query
    #: ran without a :class:`~repro.query.pool.WorkerPool`.
    resilience: Optional[ResilienceReport] = None
    #: MVCC generation of the graph (view) the query evaluated against.
    #: Rows are reproducible against a full freeze of that generation.
    generation: Optional[int] = None
    #: The cost model's decisions and measurements for this query
    #: (:class:`~repro.query.costmodel.ScheduleReport`): per-CTP estimates
    #: vs. actual seconds, submission order, rebalance counters, pipeline
    #: overlap.  Set when ``scheduling=True`` or
    #: ``parallelism_mode="auto"``; ``None`` when the cost model never ran.
    schedule: Optional[ScheduleReport] = None

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def format(self, limit: int = 20) -> str:
        """Human-readable rendering, resolving ids to labels."""
        lines = [" | ".join(f"?{c}" for c in self.columns)]
        for row in self.rows[:limit]:
            cells = []
            for value in row:
                if isinstance(value, ResultTree):
                    cells.append(value.describe(self.graph))
                elif isinstance(value, int) and 0 <= value < self.graph.num_nodes:
                    cells.append(self.graph.node(value).label or str(value))
                else:
                    cells.append(str(value))
            lines.append(" | ".join(cells))
        if len(self.rows) > limit:
            lines.append(f"... ({len(self.rows) - limit} more rows)")
        return "\n".join(lines)


def config_for_ctp(filters: CTPFilters, base: SearchConfig, default_timeout: Optional[float]) -> SearchConfig:
    """Push a CTP's filters (Definition 2.11) into the search configuration.

    Every filter is tri-state: ``None`` inherits the base config, anything
    else overrides it — including ``uni=False``, which *disables* a
    base-config ``uni=True`` instead of silently inheriting it.
    """
    score = base.score
    if filters.score is not None:
        score = get_score_function(filters.score)
    return base.with_(
        uni=filters.uni if filters.uni is not None else base.uni,
        labels=filters.labels if filters.labels is not None else base.labels,
        max_edges=filters.max_edges if filters.max_edges is not None else base.max_edges,
        timeout=filters.timeout if filters.timeout is not None else (base.timeout or default_timeout),
        limit=filters.limit if filters.limit is not None else base.limit,
        score=score,
        top_k=filters.top_k if filters.top_k is not None else base.top_k,
    )


def match_seed_nodes(graph: Graph, predicate: Predicate) -> List[int]:
    """Nodes of N satisfying a seed predicate (step B.1, free-variable case)."""
    label = predicate.label_constant()
    if label is not None:
        return [n for n in graph.nodes_with_label(label) if predicate.test(graph.node(n))]
    type_name = predicate.type_constant()
    if type_name is not None:
        return [n for n in graph.nodes_with_type(type_name) if predicate.test(graph.node(n))]
    return graph.find_nodes(predicate.test)


def derive_binding_values(
    bgp_tables: Sequence[Table],
    only: Optional[Sequence[str]] = None,
) -> Dict[str, List[Any]]:
    """Per-variable candidate values from the BGP tables (step B.1).

    A variable bound by *several* tables must draw its candidates from the
    **intersection** of their distinct values — using whichever table came
    first (the old ``setdefault`` behaviour) hands the search a superset of
    seeds, and with ``LIMIT`` / ``TOP k`` pushed into the search those
    extra seeds consume the result budget on rows the final join discards,
    changing query answers.  First-seen order of the first binding table is
    preserved so seed enumeration stays deterministic.

    ``only`` restricts the derivation to the named variables (the
    evaluator passes the CTP seed vars; distinct-value scans for head-only
    or edge variables would be wasted work).

    Per-variable intersection is still an over-approximation of the final
    join when two tables share *several* columns (a value pair may survive
    each column's intersection but no joined row).  EQL queries cannot
    produce that shape — :meth:`EQLQuery.bgps` builds BGPs as connected
    components under shared variables, so distinct BGP tables are
    variable-disjoint — it can only arise from hand-assembled table sets;
    a semi-join-based derivation would be the next refinement if one ever
    needs it.
    """
    wanted = None if only is None else set(only)
    values: Dict[str, List[Any]] = {}
    for table in bgp_tables:
        for column in table.columns:
            if wanted is not None and column not in wanted:
                continue
            distinct = table.distinct_values(column)
            if column not in values:
                values[column] = distinct
            else:
                keep = set(distinct)
                values[column] = [v for v in values[column] if v in keep]
    return values


def _seed_sets_for_ctp(
    graph: Graph,
    ctp: CTP,
    binding_values: Dict[str, List[Any]],
    seed_cache: Optional[Dict[Any, List[int]]] = None,
) -> Tuple[List[Any], Tuple[Optional[int], ...], List[int], int]:
    """Step (B.1): derive the CTP's seed sets from BGP bindings or the graph.

    Returns ``(seed_sets, sizes, wildcard_positions, cache_hits)``.
    ``seed_cache`` (shared across the CTPs of a query) dedups the derivation
    itself: two CTPs seeding from the same bound variable + predicate, or
    from the same free predicate (a full graph scan), reuse one node list.
    """
    seed_sets: List[Any] = []
    sizes: List[Optional[int]] = []
    wildcard_positions: List[int] = []
    cache_hits = 0
    for position, seed in enumerate(ctp.seeds):
        bound = binding_values.get(seed.var)
        if bound is not None:
            key = ("bound", seed.var, seed.conditions)
        elif seed.is_empty:
            seed_sets.append(WILDCARD)  # an N seed set (Section 4.9)
            sizes.append(None)
            wildcard_positions.append(position)
            continue
        else:
            key = ("free", seed.conditions)
        nodes = None
        if seed_cache is not None:
            nodes = seed_cache.get(key)
            if nodes is not None:
                cache_hits += 1
        if nodes is None:
            if bound is not None:
                nodes = bound if seed.is_empty else [n for n in bound if seed.test(graph.node(n))]
            else:
                nodes = match_seed_nodes(graph, seed)
            if seed_cache is not None:
                seed_cache[key] = nodes
        seed_sets.append(nodes)
        sizes.append(len(nodes))
    return seed_sets, tuple(sizes), wildcard_positions, cache_hits


def _wildcard_assignments(
    graph: Graph,
    result: ResultTree,
    wildcard_positions: Sequence[int],
) -> List[Tuple[int, ...]]:
    """All valid bindings of a result's wildcard (N) seed variables.

    Definition 2.10 semantics: an assignment is valid iff the tree is a
    minimal connecting tree of the *instantiated* seeds — equivalently,
    every leaf is either an explicitly matched seed or one of the wildcard
    bindings.  So any leaf not matched by an explicit seed set ("free")
    must be covered by some wildcard variable, and once the free leaves are
    covered, every remaining wildcard variable may bind *any* tree node
    (binding an internal node never breaks minimality).
    """
    wildcard = set(wildcard_positions)
    explicit = {
        value
        for position, value in enumerate(result.seeds)
        if position not in wildcard and value is not None
    }
    nodes: List[int] = sorted(result.nodes)
    free: List[int] = []
    if result.edges:
        free = [leaf for leaf in tree_leaves(graph, result.edges) if leaf not in explicit]
    k = len(wildcard_positions)
    if len(free) > k:
        # More uncovered leaves than wildcard variables: no instantiation
        # makes this tree minimal (defensive — the engines never report
        # such trees, their only possibly-free leaf is the root).
        return []
    if k == 1:
        choices = free if free else nodes
        return [(choice,) for choice in choices]
    # k >= 2: place the free leaves on distinct positions, fill the rest
    # with arbitrary tree nodes.  This generates only valid assignments
    # (O(k!/(k-f)! * n^(k-f)) with a dedup set) instead of filtering the
    # full n^k product.
    out: List[Tuple[int, ...]] = []
    seen = set()
    for placement in permutations(range(k), len(free)):
        rest = [position for position in range(k) if position not in placement]
        for choice in product(nodes, repeat=len(rest)):
            combo: List[Optional[int]] = [None] * k
            for leaf, position in zip(free, placement):
                combo[position] = leaf
            for value, position in zip(choice, rest):
                combo[position] = value
            assignment = tuple(combo)
            if assignment not in seen:
                seen.add(assignment)
                out.append(assignment)
    return out


def _ctp_table(
    graph: Graph,
    ctp: CTP,
    result_set: CTPResultSet,
    wildcard_positions: Sequence[int] = (),
) -> Table:
    """Materialize a CTP's results as the ``CTP_j`` table of Section 3.

    Wildcard (N) seed columns are expanded to **one row per valid match**
    (:func:`_wildcard_assignments`) instead of a single representative
    node: a representative silently drops rows as soon as the variable is
    joined against any other binding of it — or projected — because every
    other valid match of the same tree vanishes (Definition 2.10).
    """
    columns = list(ctp.seed_vars()) + [ctp.tree_var]
    rows = []
    for result in result_set:
        values = list(result.seeds)
        if not wildcard_positions:
            rows.append(tuple(values) + (result,))
            continue
        for combo in _wildcard_assignments(graph, result, wildcard_positions):
            for position, node in zip(wildcard_positions, combo):
                values[position] = node
            rows.append(tuple(values) + (result,))
    return Table(columns, rows)


def _ctp_memo_key(graph: Graph, algorithm: str, seed_sets: Sequence, config: SearchConfig):
    """Cross-CTP memo key: (graph, algorithm, seed sets, config fingerprint).

    The graph participates by *identity* — an explicit context reused
    across queries must never serve one graph's result sets for another —
    plus its size fingerprint, so growing an (append-only) graph between
    queries invalidates entries cached before the mutation.  The whole key
    lives only inside the bounded LRU, so evicting an entry releases every
    reference it pinned.
    """
    seeds_key = tuple("*" if s is WILDCARD else tuple(s) for s in seed_sets)
    return (
        graph,
        SearchContext.graph_fingerprint(graph),  # append-only growth invalidates
        algorithm,
        seeds_key,
        SearchContext.config_fingerprint(config),
    )


#: Smallest per-CTP budget a deadline can leave (seconds).  A CTP built
#: after the query's deadline already passed still *runs* with this sliver
#: so it returns an honestly-flagged ``timed_out`` partial set through the
#: normal engine path instead of needing a synthetic empty result.
_DEADLINE_FLOOR = 1e-6


def _cap_to_deadline(config: SearchConfig, query_started: float) -> SearchConfig:
    """Cap a CTP's ``timeout`` to the query deadline budget remaining *now*.

    The deadline (``SearchConfig.deadline``) is a whole-query wall-clock
    budget: each CTP may spend at most what is left when its job is built,
    so one expensive CONNECT cannot consume a later CONNECT's allowance.
    No-op without a deadline, or when the CTP's own timeout is already
    tighter.  The capped timeout participates in the memo fingerprint like
    any other timeout — deadline-truncated sets are wall-clock-dependent
    and must never be replayed (same rule as plain ``TIMEOUT``).
    """
    if config.deadline is None:
        return config
    remaining = max(config.deadline - (time.perf_counter() - query_started), _DEADLINE_FLOOR)
    if config.timeout is None or remaining < config.timeout:
        return config.with_(timeout=remaining)
    return config


def evaluate_query(
    graph: Graph,
    query: Union[str, EQLQuery],
    algorithm: str = "molesp",
    base_config: Optional[SearchConfig] = None,
    default_timeout: Optional[float] = None,
    distinct: bool = True,
    context: Optional[SearchContext] = None,
    pool: Optional["WorkerPool"] = None,
) -> QueryResult:
    """Evaluate an EQL query (Definition 2.10 semantics).

    Parameters
    ----------
    query:
        EQL text or a pre-built :class:`EQLQuery`.
    algorithm:
        CTP evaluation algorithm name (default: the paper's MoLESP).
    base_config:
        Defaults for search options not set by per-CTP filters.
    default_timeout:
        Per-CTP timeout (seconds) applied when neither the CTP's filters nor
        ``base_config`` specify one (the paper's ``T``).
    context:
        An explicit :class:`~repro.ctp.interning.SearchContext` to run the
        query's CTPs in.  Passing one shared across *queries* amortizes the
        pool further (same graph required); by default a fresh context is
        created per query when ``base_config.shared_context`` is true
        (thread-safe when ``base_config.parallelism > 1``), and none at all
        when it is false (the pool-per-CTP A/B baseline).  An explicit
        non-thread-safe context downgrades a ``parallelism > 1`` request to
        serial dispatch rather than share unlocked state.
    pool:
        A persistent :class:`~repro.query.pool.WorkerPool` to route
        ``parallelism_mode="process"`` dispatches through.  The pool's
        long-lived workers keep their mmap-loaded snapshot and warm
        per-worker contexts across *queries*, so only the first query ever
        pays spin-up (the per-call executor the default path builds is
        exactly the amortization bug this parameter fixes).  The pool must
        be bound to ``graph``; a mismatched, closed, or broken pool falls
        back to the historical per-call dispatch chain.  Ignored under
        thread mode or ``parallelism == 1``.

    When ``base_config.deadline`` is set, each CTP's effective timeout is
    capped to the whole-query budget remaining when its job is built
    (:func:`_cap_to_deadline`) — or, with ``scheduling=True``, to its
    cost-proportional share of the budget, rebalanced upward at execution
    time as faster CTPs finish under their shares
    (:class:`~repro.query.costmodel.DeadlineLedger`).

    ``base_config.scheduling`` turns on the cost-model scheduling
    decisions (longest-first submission, deadline rebalancing, pipelined
    (A)→(B) overlap under thread dispatch);
    ``base_config.parallelism_mode="auto"`` has the cost model pick
    serial/thread/process dispatch per query.  Either one attaches a
    :class:`~repro.query.costmodel.ScheduleReport` to
    ``QueryResult.schedule``.
    """
    query_started = time.perf_counter()
    if isinstance(query, str):
        query = parse_query(query)
    base_config = base_config or SearchConfig()
    if context is None and base_config.shared_context:
        # Thread dispatch shares the context across worker threads, so it
        # must be born thread-safe (sharded pool, locked caches).  Process
        # dispatch only touches it from the parent, but keeping it
        # thread-safe there too lets an unpicklable workload degrade to
        # thread dispatch instead of all the way to serial.
        context = SearchContext(
            interning=base_config.interning,
            thread_safe=base_config.parallelism > 1,
            dense_ids=base_config.dense_ids,
        )

    # Cost-model scheduling (repro.query.costmodel): an estimator is built
    # when the query opts into scheduling decisions (``scheduling=True``)
    # or asks the cost model to pick the dispatch mode (``"auto"``).
    scheduling = base_config.scheduling
    auto_mode = base_config.parallelism_mode == "auto"
    estimator = CTPCostEstimator() if (scheduling or auto_mode) else None
    schedule: Optional[QuerySchedule] = None

    bgps = query.bgps()
    seed_vars = {seed.var for ctp in query.ctps for seed in ctp.seeds}
    seed_cache: Dict[Any, List[int]] = {}
    seed_cache_hits = 0
    resilience: Optional[ResilienceReport] = None

    # Pipelined (A)→(B) overlap: under explicit thread dispatch with
    # scheduling on, each CTP only needs the bindings of its *own* seed
    # variables (BGPs are variable-disjoint components), so connection
    # search starts the moment they resolve instead of after the last BGP.
    # ``auto`` keeps the barrier path — the mode decision needs every
    # CTP's estimate, which needs every seed set, which needs all of step
    # (A) anyway.
    pipelined = (
        scheduling
        and base_config.parallelism_mode == "thread"
        and base_config.parallelism > 1
        and len(query.ctps) > 1
        and (context is None or context.thread_safe)
    )

    if pipelined:
        ledger = None
        if base_config.deadline is not None:
            # Registered incrementally as CTPs become ready (no prime):
            # early CTPs see a smaller pending pool and get generous
            # shares — exactly the overlap case where budget is plentiful.
            workers = min(base_config.parallelism, len(query.ctps))
            ledger = DeadlineLedger(base_config.deadline, query_started, workers)
        schedule = QuerySchedule(ledger=ledger, enabled=True)
        schedule.report.mode_requested = "thread"
        schedule.report.mode_selected = "thread"
        schedule.report.algorithms = [algorithm] * len(query.ctps)

        bgp_var_sets = [frozenset(bgp.variables()) for bgp in bgps]
        deps = [
            {b for b, names in enumerate(bgp_var_sets) if set(ctp.seed_vars()) & names}
            for ctp in query.ctps
        ]
        dispatch = PipelinedDispatch(
            graph,
            algorithm,
            context,
            workers=min(base_config.parallelism, len(query.ctps)),
            backend=base_config.backend,
            schedule=schedule,
        )
        ctp_started = time.perf_counter()
        bgp_tables = []
        binding_values: Dict[str, List[Any]] = {}
        derived: List[Any] = [None] * len(query.ctps)
        pending = list(range(len(query.ctps)))
        bgp_seconds = 0.0

        def submit_ready(done_bgps: int) -> None:
            nonlocal seed_cache_hits
            ready: List[CTPJob] = []
            still: List[int] = []
            for index in pending:
                if any(dep >= done_bgps for dep in deps[index]):
                    still.append(index)
                    continue
                ctp = query.ctps[index]
                seed_sets, sizes, wildcard_positions, hits = _seed_sets_for_ctp(
                    graph, ctp, binding_values, seed_cache
                )
                seed_cache_hits += hits
                config = config_for_ctp(ctp.filters, base_config, default_timeout)
                cost = estimator.estimate_ctp(graph, algorithm, sizes, config)
                schedule.estimates[index] = cost
                if ledger is not None:
                    build = ledger.register(index, cost, config.timeout)
                    config = config.with_(timeout=build)
                memo_key = (
                    _ctp_memo_key(graph, algorithm, seed_sets, config)
                    if context is not None
                    else None
                )
                derived[index] = (sizes, wildcard_positions)
                ready.append(
                    CTPJob(index=index, seed_sets=seed_sets, config=config, memo_key=memo_key)
                )
            pending[:] = still
            dispatch.submit_ready(ready, overlapped=done_bgps < len(bgps))

        try:
            submit_ready(0)  # free-seed CTPs start before any BGP runs
            for done, bgp in enumerate(bgps):
                bgp_start = time.perf_counter()
                table = evaluate_bgp(graph, bgp)
                bgp_seconds += time.perf_counter() - bgp_start
                bgp_tables.append(table)
                # Variable-disjoint components: each seed variable is
                # bound by at most one table, so per-table derivation is
                # exactly derive_binding_values over the full set.
                for column in table.columns:
                    if column in seed_vars:
                        binding_values[column] = table.distinct_values(column)
                submit_ready(done + 1)
        except BaseException:
            dispatch.abort()
            raise
        outcomes = dispatch.finish()
    else:
        # Step (A): evaluate each BGP into a materialized table.
        started = time.perf_counter()
        bgp_tables = [evaluate_bgp(graph, bgp) for bgp in bgps]
        bgp_seconds = time.perf_counter() - started

        binding_values = derive_binding_values(bgp_tables, only=seed_vars)

        # Step (B): evaluate each CTP on its derived seed sets, all runs
        # inside the query-scoped context (shared pool + caches) when one
        # is active.  Seed derivation stays serial (it shares one dedup
        # cache); the searches themselves go through the dispatch layer —
        # the serial loop for parallelism=1, a worker pool with in-flight
        # memo dedup otherwise.
        ctp_started = time.perf_counter()
        prepared: List[Tuple[List[Any], SearchConfig]] = []
        costs: Dict[int, float] = {}
        derived = []
        for index, ctp in enumerate(query.ctps):
            seed_sets, sizes, wildcard_positions, hits = _seed_sets_for_ctp(
                graph, ctp, binding_values, seed_cache
            )
            seed_cache_hits += hits
            config = config_for_ctp(ctp.filters, base_config, default_timeout)
            if estimator is not None:
                costs[index] = estimator.estimate_ctp(graph, algorithm, sizes, config)
            prepared.append((seed_sets, config))
            derived.append((sizes, wildcard_positions))

        mode = base_config.parallelism_mode
        parallelism = base_config.parallelism
        mode_selected: Optional[str] = None
        if auto_mode:
            mode_selected = choose_mode(sum(costs.values()), len(prepared), parallelism, pool)
            if mode_selected == "serial":
                mode, parallelism = "thread", 1
            else:
                mode = mode_selected

        if estimator is not None:
            ledger = None
            if scheduling and base_config.deadline is not None:
                workers = effective_parallelism(parallelism, len(prepared), context, mode)
                ledger = DeadlineLedger(base_config.deadline, query_started, workers)
                ledger.prime(costs)  # full pending pool before any build share
            schedule = QuerySchedule(estimates=costs, ledger=ledger, enabled=scheduling)
            schedule.report.mode_requested = base_config.parallelism_mode
            # One query runs one algorithm across its CTPs; record it per
            # CTP so CTPCostEstimator.fit can pool reports across queries
            # that used different algorithms.
            schedule.report.algorithms = [algorithm] * len(prepared)
            if mode_selected is None:
                workers = effective_parallelism(parallelism, len(prepared), context, mode)
                pooled = pool is not None and mode == "process" and not pool.closed
                mode_selected = mode if workers > 1 or pooled else "serial"
            schedule.report.mode_selected = mode_selected

        jobs: List[CTPJob] = []
        for index, (seed_sets, config) in enumerate(prepared):
            if schedule is not None and schedule.ledger is not None:
                # The ledger replaces the historical freeze-at-build cap:
                # each CTP's budget is its cost-proportional share of the
                # remaining deadline (rebalanced upward at execution time).
                build = schedule.ledger.register(index, costs[index], config.timeout)
                config = config.with_(timeout=build)
            else:
                config = _cap_to_deadline(config, query_started)
            memo_key = (
                _ctp_memo_key(graph, algorithm, seed_sets, config) if context is not None else None
            )
            jobs.append(CTPJob(index=index, seed_sets=seed_sets, config=config, memo_key=memo_key))
        resilience = ResilienceReport() if pool is not None else None
        outcomes = run_ctp_jobs(
            graph,
            algorithm,
            jobs,
            context,
            parallelism,
            mode,
            pool=pool,
            report=resilience,
            schedule=schedule,
        )
    ctp_tables: List[Table] = []
    reports: List[CTPReport] = []
    for ctp, (sizes, wildcard_positions), outcome in zip(query.ctps, derived, outcomes):
        reports.append(
            CTPReport(
                tree_var=ctp.tree_var,
                algorithm=algorithm,
                seed_set_sizes=sizes,
                result_set=outcome.result_set,
                seconds=outcome.seconds,
                cache_hit=outcome.cache_hit,
                shared_context=context is not None,
                dispatch_mode=outcome.mode,
            )
        )
        ctp_tables.append(_ctp_table(graph, ctp, outcome.result_set, wildcard_positions))
    # Under the pipelined path steps (A) and (B) overlap on the wall clock:
    # the BGP evaluation time is attributed to bgp_seconds and the rest of
    # the combined section to ctp_seconds, so the phase totals still sum to
    # the query's wall time.
    ctp_seconds = time.perf_counter() - ctp_started - (bgp_seconds if pipelined else 0.0)

    # Step (C): join everything and project on the head.
    join_started = time.perf_counter()
    joined = natural_join_many(bgp_tables + ctp_tables)
    missing = [var for var in query.head if var not in joined.columns]
    if missing:
        raise EvaluationError(f"head variables {missing} not bound by the query body")
    final = joined.project(list(query.head), distinct=distinct)
    rows = list(final.rows)
    if query.limit is not None:
        rows = rows[: query.limit]
    join_seconds = time.perf_counter() - join_started

    context_stats = None
    if context is not None:
        context_stats = context.stats_dict()
        context_stats["seed_cache_hits"] = seed_cache_hits
    return QueryResult(
        columns=final.columns,
        rows=rows,
        graph=graph,
        timings=QueryTimings(bgp_seconds, ctp_seconds, join_seconds),
        ctp_reports=reports,
        context_stats=context_stats,
        resilience=resilience,
        generation=getattr(graph, "generation", 0),
        schedule=schedule.finalize(outcomes) if schedule is not None else None,
    )
