"""Parallel CTP dispatch and the batch query front-end.

Section 5 of the paper evaluates each CONNECT clause as an independent
connection-search invocation; step (B) of the evaluator (Section 3) is
therefore embarrassingly parallel *across CTPs* once the query-scoped
state is safe to share — which ``SearchContext(thread_safe=True)``
provides (sharded edge-set pool, locked result caches).  This module is
the dispatch layer on top:

:func:`run_ctp_jobs`
    Evaluate a query's CTP jobs serially (``parallelism=1`` — byte-for-
    byte the historical evaluator loop), on a ``ThreadPoolExecutor``
    (``parallelism_mode="thread"``), or on a ``ProcessPoolExecutor``
    (``parallelism_mode="process"``).  Every pooled path preserves the
    serial path's observable semantics:

    * **rows** — each engine run is deterministic given (graph, seeds,
      config) and never reads another run's private state, so results are
      bit-identical to serial dispatch regardless of worker count or
      completion order;
    * **cross-CTP memo** — duplicate CTPs (same memo key) are grouped and
      in-flight-deduplicated: one *leader* searches, followers share its
      result exactly when the serial path would have served a memo hit
      (complete, untruncated) and re-run otherwise; memo filing happens in
      CTP order after the batch so the cache's LRU state is deterministic;
    * **stats** — per-CTP ``SearchStats`` stay attached to their reports
      and merge in CTP order (:meth:`SearchStats.merged`), never
      completion order.  Only the shared-pool ``pool_*`` deltas become
      approximate under concurrency (overlapping attribution).

:func:`evaluate_queries`
    The batch front-end: run many queries against **one** shared context,
    so repeated CONNECTs across queries become cross-query memo hits and
    the interning pool amortizes across the whole batch — the multi-user
    serving shape (many queries, one graph) rather than the single-query
    shape.

What a thread pool buys under CPython's GIL: deadline-bounded CTPs
(per-CTP ``TIMEOUT``) overlap their *wall-clock* budgets — m concurrent
timeouts cost ~T instead of m*T — and cache-miss stalls interleave.
CPU-bound complete searches only gain real overlap on multi-core
free-threaded builds; ``python -m repro.bench parallel`` measures both
regimes honestly.

The **process pool** (``SearchConfig(parallelism_mode="process")``) is the
CPU-bound answer under the GIL: workers are separate interpreters, each
initialized *once* with the path of an mmap-shared CSR snapshot
(:func:`repro.graph.snapshot.ensure_snapshot` — written on demand, reused
when the graph already has one), so N workers share one physical copy of
the adjacency columns and pay the graph load once per worker, not per
job.  Each worker evaluates its CTPs against a private
:class:`SearchContext`; the parent keeps serving and filing its own
cross-CTP memo in CTP order, so rows *and* memo LRU state stay identical
to serial dispatch.  When the jobs cannot cross a process boundary (an
unpicklable score callable, graph properties pickle refuses, a broken
pool), dispatch degrades to the thread pool — or serial — rather than
failing the query; ``python -m repro.bench process-parallel`` measures
what each mode buys.
"""

from __future__ import annotations

import multiprocessing
import pickle
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Hashable, Iterator, List, Optional, Sequence, Tuple

from repro.ctp.config import WILDCARD, SearchConfig
from repro.ctp.interning import SearchContext
from repro.ctp.registry import get_algorithm
from repro.ctp.results import CTPResultSet
from repro.ctp.stats import SearchStats
from repro.errors import PoolClosedError, ReproError, StaleViewError, WorkerHangError
from repro.graph.backend import resolve_backend
from repro.graph.graph import Graph
from repro.graph.snapshot import ensure_snapshot
from repro.query.costmodel import CTPCostEstimator, QuerySchedule, choose_mode
from repro.query.resilience import ResilienceReport

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (evaluator imports us)
    from repro.query.evaluator import QueryResult
    from repro.query.pool import WorkerPool


@dataclass
class CTPJob:
    """One CTP evaluation of a query, ready to dispatch.

    ``memo_key`` is the evaluator's cross-CTP memo key, or ``None`` when no
    context is active (then the job is always searched).  ``index`` is the
    CTP's position in the query — outcomes are returned in this order.
    """

    index: int
    seed_sets: List[Any]
    config: SearchConfig
    memo_key: Optional[Hashable] = None


@dataclass
class CTPOutcome:
    """What one job produced: the result set, memo provenance, timing.

    ``mode`` records what actually produced the result: ``"serial"``,
    ``"thread"``, or ``"process"`` for an executed search, ``"memo"`` when
    the result was served from the cross-CTP memo (or shared from an
    in-flight duplicate) and no search ran for this job at all.  It can
    therefore differ from the requested ``parallelism_mode`` — process
    dispatch degrades to thread/serial for unpicklable jobs or a broken
    pool: the fallback is silent by design, but it must stay *observable*
    so a ~0.9x thread run never masquerades as multi-core.  A *pooled*
    dispatch that exhausted its retries (or was refused by an open
    circuit breaker) stamps the hop explicitly — ``"process->thread"`` /
    ``"process->serial"`` — distinguishing forced degradation from a
    dispatch that never wanted process mode at all.
    """

    result_set: CTPResultSet
    cache_hit: bool
    seconds: float
    mode: str = "serial"


def effective_parallelism(
    parallelism: int,
    num_jobs: int,
    context: Optional[SearchContext],
    mode: str = "thread",
) -> int:
    """Worker count a dispatch will actually use.

    Collapses to serial when there is at most one job, when the caller
    asked for one worker, or when — under *thread* mode — an explicit
    context is not thread-safe: sharing unlocked state across workers is
    never worth a corrupted pool, and the serial path is always correct.
    Process mode never shares the context with workers (only the parent
    thread touches it, for memo serve/file), so a non-thread-safe context
    does not downgrade it.
    """
    if num_jobs <= 1 or parallelism <= 1:
        return 1
    if mode == "thread" and context is not None and not context.thread_safe:
        return 1
    return min(parallelism, num_jobs)


def _replayable(result_set: CTPResultSet) -> bool:
    """Serial memo rule: only complete, untruncated runs are safe to share."""
    return result_set.complete and not result_set.timed_out


def _resolve_auto_mode(
    graph: Graph,
    algorithm: str,
    jobs: Sequence[CTPJob],
    parallelism: int,
    pool: Optional["WorkerPool"],
    schedule: Optional[QuerySchedule],
) -> Tuple[str, int]:
    """Resolve ``mode="auto"`` for a direct :func:`run_ctp_jobs` caller.

    The evaluator resolves auto itself (it has the seed-derivation sizes
    and the pool in hand); a direct caller gets the same decision from
    the jobs' own seed sets.  Returns ``(mode, parallelism)`` — a
    ``serial`` verdict is expressed as ``("thread", 1)`` so the historical
    collapse-to-serial rules apply unchanged.
    """
    if schedule is not None and schedule.estimates:
        total = sum(schedule.estimates.values())
    else:
        estimator = CTPCostEstimator()
        total = sum(
            estimator.estimate_ctp(
                graph,
                algorithm,
                [None if seeds is WILDCARD else len(seeds) for seeds in job.seed_sets],
                job.config,
            )
            for job in jobs
        )
    resolved = choose_mode(total, len(jobs), parallelism, pool)
    if schedule is not None:
        schedule.report.mode_requested = "auto"
        schedule.report.mode_selected = resolved
    if resolved == "serial":
        return "thread", 1
    return resolved, parallelism


def run_ctp_jobs(
    graph: Graph,
    algorithm: str,
    jobs: Sequence[CTPJob],
    context: Optional[SearchContext],
    parallelism: int = 1,
    mode: str = "thread",
    pool: Optional["WorkerPool"] = None,
    report: Optional[ResilienceReport] = None,
    schedule: Optional[QuerySchedule] = None,
) -> List[CTPOutcome]:
    """Evaluate ``jobs`` and return one :class:`CTPOutcome` per job, in order.

    ``pool`` (a :class:`~repro.query.pool.WorkerPool`) makes ``"process"``
    dispatch *persistent*: jobs are submitted to the pool's long-lived
    workers instead of an executor built and torn down per call.  An
    injected pool is used for every process-mode dispatch — even a single
    job, even ``parallelism == 1`` (a warm worker beats any spin-up, and
    on a single-core host the serving layer's whole win *is* the
    eliminated spin-up); without a pool the historical collapse-to-serial
    rules apply unchanged.  A closed pool, or one bound to a different
    graph, is ignored rather than trusted.

    Pooled dispatch is guarded by the pool's circuit breaker: while it is
    open (repeated pool failures), dispatch degrades *directly* to the
    thread/serial chain — stamping the hop in each outcome's ``mode`` —
    instead of paying a doomed spawn/fail cycle per query; half-open
    probe dispatches are admitted per the breaker's policy and their
    outcome closes or re-opens it.  ``report`` (a
    :class:`~repro.query.resilience.ResilienceReport`) collects what
    resilience machinery fired, for the serving layer's telemetry.

    ``schedule`` (a :class:`~repro.query.costmodel.QuerySchedule`) turns
    on the cost-model decisions: longest-first leader submission in the
    fan-out and execution-time deadline-budget grants (the job configs
    carry build budgets; the ledger may re-grant upward, never downward).
    ``mode="auto"`` is resolved here for direct callers
    (:func:`_resolve_auto_mode`) — the evaluator resolves it before
    calling.
    """
    if mode == "auto":
        mode, parallelism = _resolve_auto_mode(
            graph, algorithm, jobs, parallelism, pool, schedule
        )
    if (
        pool is not None
        and mode == "process"
        and jobs
        and not pool.closed
        and pool.matches(graph)
    ):
        if not pool.breaker.allow():
            if report is not None:
                report.breaker_skips += 1
                report.breaker_state = pool.breaker.state
                report.recycled_workers = pool.recycles
            return _degraded_from_process(
                graph, algorithm, jobs, context, parallelism, report, schedule
            )
        return _run_process_pooled(
            graph, algorithm, jobs, context, pool, parallelism, report, schedule
        )
    workers = effective_parallelism(parallelism, len(jobs), context, mode)
    if workers <= 1:
        return _run_serial(graph, algorithm, jobs, context, schedule)
    if mode == "process":
        return _run_process(graph, algorithm, jobs, context, workers, schedule)
    return _run_parallel(graph, algorithm, jobs, context, workers, schedule)


def _run_serial(
    graph: Graph,
    algorithm: str,
    jobs: Sequence[CTPJob],
    context: Optional[SearchContext],
    schedule: Optional[QuerySchedule] = None,
) -> List[CTPOutcome]:
    """The historical evaluator loop: memo get -> search -> memo put, per CTP.

    Serial dispatch keeps CTP order even under a schedule (it *is* the
    reference ordering), but deadline-budget grants still apply: a fast
    early CTP's unspent budget flows to the later ones instead of being
    frozen at job-build time — the big serial tail-latency win ``python
    -m repro.bench schedule`` measures.
    """
    algo = get_algorithm(algorithm)
    outcomes: List[CTPOutcome] = []
    for job in jobs:
        started = time.perf_counter()
        result_set = None
        cache_hit = False
        if context is not None and job.memo_key is not None:
            result_set = context.ctp_cache.get(job.memo_key)
            cache_hit = result_set is not None
        if result_set is None:
            config = job.config if schedule is None else schedule.config_for_run(job)
            result_set = algo.run(graph, job.seed_sets, config, context=context)
            # Only complete, untruncated evaluations are safe to replay for
            # a later CTP: a timeout cut is wall-clock-dependent.
            if context is not None and job.memo_key is not None and _replayable(result_set):
                context.ctp_cache.put(job.memo_key, result_set)
        if schedule is not None:
            schedule.settle(job.index)
        outcomes.append(
            CTPOutcome(
                result_set,
                cache_hit,
                time.perf_counter() - started,
                mode="memo" if cache_hit else "serial",
            )
        )
    return outcomes


def _fan_out(
    jobs: Sequence[CTPJob],
    context: Optional[SearchContext],
    pool: Any,
    submit_one: Any,
    result_timeout: Optional[float] = None,
    schedule: Optional[QuerySchedule] = None,
) -> Tuple[List[Optional[CTPOutcome]], List[int]]:
    """Phases 1-2 of a pooled dispatch, executor-agnostic.

    ``submit_one(pool, job)`` must return a future resolving to
    ``(result_set, seconds)``; the thread path closes over the shared
    context, the process path ships the job to a worker interpreter.

    Phase 1 serves memo hits from earlier queries/batches in CTP order;
    phase 2 groups duplicates by memo key (in-flight dedup: one *leader*
    searches per distinct key), fans the leaders out, and settles
    followers.  Leaders settle as they finish (not in submission order): a
    non-replayable leader's duplicates re-submit immediately, so the rerun
    overlaps still-running leaders instead of queueing behind the slowest
    one.  Outcomes are written by CTP index, so the completion order never
    shows in the results.

    ``result_timeout`` is the hang watchdog (process-pool dispatch only):
    a wall-clock budget for the *whole* fan-out, derived by the caller
    from the jobs' own CTP timeouts.  Blowing it raises
    :class:`~repro.errors.WorkerHangError` — a worker that cannot even
    return a ``timed_out`` partial result inside its own budget plus
    grace is wedged, and waiting longer would hold the dispatch forever.

    ``schedule`` orders the leader submissions **longest-first** by the
    cost model's estimates (ties broken by CTP index, so the order is
    deterministic): with fewer workers than leaders, starting the
    stragglers first shrinks the makespan.  Representation-only — memo
    filing stays in CTP order (phase 3) and outcomes are written by CTP
    index, so rows and cache LRU state are bit-identical to serial
    whatever order the leaders ran in.
    """
    outcomes: List[Optional[CTPOutcome]] = [None] * len(jobs)
    pending: List[CTPJob] = []
    for job in jobs:
        if context is not None and job.memo_key is not None:
            cached = context.ctp_cache.get(job.memo_key)
            if cached is not None:
                outcomes[job.index] = CTPOutcome(cached, True, 0.0)
                if schedule is not None:
                    schedule.settle(job.index)
                continue
        pending.append(job)

    groups: Dict[Hashable, List[CTPJob]] = {}
    for job in pending:
        key = job.memo_key if job.memo_key is not None else ("__unkeyed__", job.index)
        groups.setdefault(key, []).append(job)

    ordered_groups: List[List[CTPJob]] = list(groups.values())
    if schedule is not None:
        ordered_groups = schedule.ordered(ordered_groups, lambda group: group[0].index)
        schedule.record_submits([group[0].index for group in ordered_groups])

    watchdog_deadline = (
        time.monotonic() + result_timeout if result_timeout is not None else None
    )

    def remaining() -> Optional[float]:
        if watchdog_deadline is None:
            return None
        return max(1e-3, watchdog_deadline - time.monotonic())

    def settle(index: int) -> None:
        if schedule is not None:
            schedule.settle(index)

    followers: List[int] = []
    future_to_group = {submit_one(pool, group[0]): group for group in ordered_groups}
    rerun_futures: List[Tuple[CTPJob, Any]] = []
    try:
        for future in as_completed(future_to_group, timeout=remaining()):
            group = future_to_group[future]
            result_set, seconds = future.result()
            leader = group[0]
            outcomes[leader.index] = CTPOutcome(result_set, False, seconds)
            settle(leader.index)
            if _replayable(result_set):
                # Exactly the runs the serial path would serve as memo hits.
                for follower in group[1:]:
                    outcomes[follower.index] = CTPOutcome(result_set, True, 0.0)
                    followers.append(follower.index)
                    settle(follower.index)
            else:
                rerun_futures.extend((job, submit_one(pool, job)) for job in group[1:])
        for job, future in rerun_futures:
            result_set, seconds = future.result(timeout=remaining())
            outcomes[job.index] = CTPOutcome(result_set, False, seconds)
            settle(job.index)
    except TimeoutError as error:
        raise WorkerHangError(
            f"pooled fan-out of {len(pending)} CTP job(s) exceeded its "
            f"{result_timeout:.3f}s hang watchdog"
        ) from error
    return outcomes, followers


def _replay_memo(
    jobs: Sequence[CTPJob],
    outcomes: List[Optional[CTPOutcome]],
    followers: List[int],
    context: Optional[SearchContext],
) -> None:
    """Phase 3 — replay the serial path's cache traffic in CTP order.

    Leaders file their (replayable) result sets, followers register the
    hit.  Running this after the fan-out keeps the memo's LRU order — and
    therefore its eviction choices — independent of worker scheduling.
    """
    if context is None:
        return
    follower_set = set(followers)
    for job in jobs:
        outcome = outcomes[job.index]
        if job.memo_key is None or outcome is None:
            continue
        if job.index in follower_set:
            refreshed = context.ctp_cache.get(job.memo_key)
            if refreshed is not None:
                outcome.result_set = refreshed
        elif not outcome.cache_hit and _replayable(outcome.result_set):
            context.ctp_cache.put(job.memo_key, outcome.result_set)


def _run_parallel(
    graph: Graph,
    algorithm: str,
    jobs: Sequence[CTPJob],
    context: Optional[SearchContext],
    workers: int,
    schedule: Optional[QuerySchedule] = None,
) -> List[CTPOutcome]:
    # Resolve the backend ONCE before fanning out: Graph.freeze() is
    # memoized but not atomic, so two workers racing the first freeze
    # would hand the context two distinct (equivalent) snapshots and the
    # second adoption would be spuriously refused.  Engines re-resolving
    # the pre-resolved graph is a no-op.
    graph = resolve_backend(graph, jobs[0].config.backend)
    algo = get_algorithm(algorithm)

    def run_one(job: CTPJob) -> Tuple[CTPResultSet, float]:
        # The deadline-budget grant is read at *execution* start (inside
        # the worker thread), not submit time: a job that queued behind
        # siblings picks up whatever budget they left unspent.
        config = job.config if schedule is None else schedule.config_for_run(job)
        started = time.perf_counter()
        result_set = algo.run(graph, job.seed_sets, config, context=context)
        return result_set, time.perf_counter() - started

    with ThreadPoolExecutor(max_workers=workers, thread_name_prefix="repro-ctp") as pool:
        outcomes, followers = _fan_out(
            jobs, context, pool, lambda p, job: p.submit(run_one, job), schedule=schedule
        )
    _replay_memo(jobs, outcomes, followers, context)
    return _stamp_mode(outcomes, "thread")


def _stamp_mode(outcomes: List[Optional[CTPOutcome]], mode: str) -> List[CTPOutcome]:
    """Record what produced each outcome and drop the ``None`` gaps.

    Only jobs whose search actually executed get the pool's mode; outcomes
    served from the memo (phase 1) or shared from an in-flight leader
    never reached a worker, and claiming they ran "process" would defeat
    the observability the field exists for.
    """
    settled = [outcome for outcome in outcomes if outcome is not None]
    for outcome in settled:
        outcome.mode = "memo" if outcome.cache_hit else mode
    return settled


# ----------------------------------------------------------------------
# process-pool dispatch (mmap-shared snapshot, load-once-per-worker)
# ----------------------------------------------------------------------
#: Per-worker state: the snapshot graph loaded by the initializer and the
#: worker-private search context every job of this worker runs in.  Plain
#: module globals — each worker interpreter has its own copy.
_worker_graph: Any = None
_worker_context: Optional[SearchContext] = None
#: Delta-overlay state: the overlay assembled for the most recent delta
#: generation dispatched to this worker, keyed by (base_generation,
#: generation), plus the overlay-scoped context its jobs evaluate in.  One
#: overlay is kept — serving flights at one generation reuse it; a new
#: generation replaces it.
_worker_overlay: Any = None
_worker_overlay_key: Optional[Tuple[int, int]] = None
_worker_overlay_context: Optional[SearchContext] = None


def _process_worker_init(
    snapshot_path: str,
    interning: bool,
    fault_plan: Any = None,
    epoch: int = 0,
    dense_ids: bool = True,
) -> None:
    """Executor initializer: load the mmap-shared snapshot ONCE per worker.

    Every job this worker ever runs reuses the same graph object (so the
    kernel shares the snapshot's pages across all workers mapping it) and
    the same private context (so sibling CTPs dispatched to this worker
    still get pool/cache reuse, just scoped to the worker).

    ``fault_plan``/``epoch`` re-install the parent's active
    :class:`~repro.faults.FaultPlan` in this worker (module globals do not
    cross the forkserver/spawn boundary) — *before* the snapshot load, so
    ``corrupt_snapshot`` faults can fire from the load itself.  Both
    default to inert values; production dispatch always ships ``None``.
    """
    global _worker_graph, _worker_context
    global _worker_overlay, _worker_overlay_key, _worker_overlay_context
    from repro import faults
    from repro.graph.snapshot import load_snapshot

    if fault_plan is not None:
        faults.install_plan(fault_plan, epoch=epoch)
    _worker_graph = load_snapshot(snapshot_path)
    _worker_context = SearchContext(interning=interning, dense_ids=dense_ids)
    _worker_overlay = None
    _worker_overlay_key = None
    _worker_overlay_context = None


def _worker_state_for(delta: Any) -> Tuple[Any, Optional[SearchContext]]:
    """The (graph, context) a worker job evaluates against.

    ``delta=None`` is the base-only fast path: the mmap-loaded snapshot
    and the long-lived worker context.  A :class:`~repro.graph.delta.GraphDelta`
    selects (building on first sight) the overlay for its generation — the
    base stays loaded, the delta is applied on top, and the overlay gets
    its own context so generation-scoped cache state never mixes with the
    base's.  Consistency is structural: the overlay validates the delta's
    base generation against the snapshot's recorded one.
    """
    global _worker_overlay, _worker_overlay_key, _worker_overlay_context
    if delta is None:
        return _worker_graph, _worker_context
    key = (delta.base_generation, delta.generation)
    if _worker_overlay_key != key:
        from repro.graph.delta import OverlayGraph

        _worker_overlay = OverlayGraph(_worker_graph, delta)
        _worker_overlay_context = SearchContext(
            interning=_worker_context.interning if _worker_context is not None else True,
            dense_ids=_worker_context.dense_ids if _worker_context is not None else True,
        )
        _worker_overlay_key = key
    return _worker_overlay, _worker_overlay_context


def _process_worker_run(
    algorithm: str, seed_sets: List[Any], config: SearchConfig, delta: Any = None
) -> Tuple[CTPResultSet, float]:
    """Evaluate one CTP inside a worker against the worker's graph/context.

    ``delta`` (shipped per job by the pooled dispatcher) overlays the
    worker's mmap-loaded base snapshot so the evaluation sees the exact
    generation the parent pinned — without re-serializing the graph.
    """
    from repro import faults

    faults.inject(faults.SITE_WORKER_RUN)
    graph, context = _worker_state_for(delta)
    started = time.perf_counter()
    result_set = get_algorithm(algorithm).run(graph, seed_sets, config, context=context)
    return result_set, time.perf_counter() - started


def _process_pool_context() -> multiprocessing.context.BaseContext:
    """Pick a start method that is both safe and cheap for this dispatch.

    Plain ``fork`` is the cheapest start (no re-import, instant workers)
    but is unsafe the moment the parent has *other running threads* —
    exactly the serving regime this feature targets — because the child
    inherits a snapshot of every lock (logging, allocator) in whatever
    state some unrelated thread held it, and can deadlock in its
    initializer.  So fork is used only when the parent is provably
    single-threaded *right now* (only an existing thread could spawn a new
    one mid-fork, so the check cannot be raced); a threaded parent gets
    ``forkserver`` — workers forked from a clean single-thread helper
    process — and platforms without either (Windows) keep their default
    (``spawn``), which is already safe.
    """
    methods = multiprocessing.get_all_start_methods()
    if threading.active_count() == 1 and "fork" in methods:
        return multiprocessing.get_context("fork")
    if "forkserver" in methods:
        return multiprocessing.get_context("forkserver")
    return multiprocessing.get_context()


def _jobs_picklable(algorithm: str, jobs: Sequence[CTPJob], delta: Any = None) -> bool:
    """Pre-flight: can every job (and its delta, if any) cross a process boundary?

    A ``SearchConfig`` carrying a lambda/closure score function (or seed
    values pickle refuses) cannot be shipped to a worker — nor can a delta
    whose appended nodes/edges carry unpicklable properties; detecting
    that up front lets dispatch degrade gracefully instead of raising
    from deep inside the executor machinery.
    """
    try:
        pickle.dumps((algorithm, delta, [(job.seed_sets, job.config) for job in jobs]))
        return True
    except (pickle.PicklingError, TypeError, AttributeError):
        return False


def _fallback_dispatch(
    graph: Graph,
    algorithm: str,
    jobs: Sequence[CTPJob],
    context: Optional[SearchContext],
    workers: int,
    schedule: Optional[QuerySchedule] = None,
) -> List[CTPOutcome]:
    """Process dispatch unavailable: degrade to threads, else serial.

    Used when the jobs or graph cannot be pickled/snapshotted, or when the
    worker pool breaks mid-flight.  Thread dispatch requires a thread-safe
    (or absent) context; otherwise the always-correct serial loop runs.
    """
    if context is None or context.thread_safe:
        return _run_parallel(graph, algorithm, jobs, context, workers, schedule)
    return _run_serial(graph, algorithm, jobs, context, schedule)


def _run_process(
    graph: Graph,
    algorithm: str,
    jobs: Sequence[CTPJob],
    context: Optional[SearchContext],
    workers: int,
    schedule: Optional[QuerySchedule] = None,
) -> List[CTPOutcome]:
    """Fan the jobs out to worker *processes* over an mmap-shared snapshot.

    The parent resolves the backend and obtains a snapshot file for the
    graph (reusing one when the graph was loaded from — or already saved
    to — a snapshot); workers load it once in their initializer.  Memo
    serve/file happens entirely in the parent (phases 1/3 of
    :func:`_fan_out`/:func:`_replay_memo`), in CTP order, so cache state
    matches serial dispatch exactly.  Rows are bit-identical to serial:
    each engine run is deterministic given (graph, seeds, config), and the
    CSR snapshot preserves ids, adjacency order, labels, and weights
    exactly (see ``tests/test_snapshot.py``).
    """
    resolved = resolve_backend(graph, jobs[0].config.backend)
    try:
        _, snapshot_path = ensure_snapshot(resolved)
    except (ReproError, OSError, pickle.PicklingError, TypeError, AttributeError):
        # Unserializable metadata (e.g. exotic node properties): the graph
        # cannot cross a process boundary.
        return _fallback_dispatch(resolved, algorithm, jobs, context, workers, schedule)
    if not _jobs_picklable(algorithm, jobs):
        return _fallback_dispatch(resolved, algorithm, jobs, context, workers, schedule)
    from repro import faults

    def submit_one(p: Any, job: CTPJob) -> Any:
        # A process job's grant is read at submit time (the worker cannot
        # reach the parent's ledger); the shipped config carries it.
        config = job.config if schedule is None else schedule.config_for_run(job)
        return p.submit(_process_worker_run, algorithm, job.seed_sets, config)

    try:
        with ProcessPoolExecutor(
            max_workers=workers,
            mp_context=_process_pool_context(),
            initializer=_process_worker_init,
            initargs=(
                snapshot_path,
                jobs[0].config.interning,
                faults.active_plan(),
                0,
                jobs[0].config.dense_ids,
            ),
        ) as pool:
            outcomes, followers = _fan_out(jobs, context, pool, submit_one, schedule=schedule)
    except BrokenProcessPool:
        return _fallback_dispatch(resolved, algorithm, jobs, context, workers, schedule)
    _replay_memo(jobs, outcomes, followers, context)
    return _stamp_mode(outcomes, "process")


def _degraded_from_process(
    graph: Graph,
    algorithm: str,
    jobs: Sequence[CTPJob],
    context: Optional[SearchContext],
    parallelism: int,
    report: Optional[ResilienceReport] = None,
    schedule: Optional[QuerySchedule] = None,
) -> List[CTPOutcome]:
    """Give up on pooled process dispatch: run threads, else serial.

    Same eligibility rules as :func:`_fallback_dispatch` (threads need a
    thread-safe or absent context and more than one job/worker), but the
    hop is stamped into each executed outcome's ``mode`` —
    ``"process->thread"`` / ``"process->serial"`` — so a degraded pooled
    dispatch is distinguishable both from a healthy pooled run and from
    the per-call fallback path (whose plain ``"thread"``/``"serial"``
    stamps are unchanged).  Memo-served outcomes keep ``"memo"``.
    """
    workers = effective_parallelism(parallelism, len(jobs), context, "thread")
    if workers > 1 and (context is None or context.thread_safe):
        outcomes = _run_parallel(graph, algorithm, jobs, context, workers, schedule)
        hop = "thread"
    else:
        outcomes = _run_serial(graph, algorithm, jobs, context, schedule)
        hop = "serial"
    for outcome in outcomes:
        if outcome.mode != "memo":
            outcome.mode = f"process->{outcome.mode}"
    if report is not None:
        report.degraded_to = hop
    return outcomes


def _watchdog_budget(jobs: Sequence[CTPJob], pool: "WorkerPool") -> float:
    """The hang watchdog for one pooled fan-out, in seconds.

    Sum of the jobs' own CTP timeouts — a query deadline has already
    capped each one to the remaining wall budget at job-build time, so
    this is deadline-derived where a deadline exists — with the pool's
    ``hang_timeout`` standing in for unbounded jobs, plus a fixed grace
    for spawn/queue/serialization overhead.  The sum (not the max) is the
    honest bound: with fewer workers than jobs the slowest schedule runs
    them back to back.
    """
    rules = pool.resilience
    per_job = sum(
        job.config.timeout if job.config.timeout is not None else rules.hang_timeout
        for job in jobs
    )
    return per_job + rules.hang_grace


def _run_process_pooled(
    graph: Graph,
    algorithm: str,
    jobs: Sequence[CTPJob],
    context: Optional[SearchContext],
    pool: "WorkerPool",
    parallelism: int,
    report: Optional[ResilienceReport] = None,
    schedule: Optional[QuerySchedule] = None,
) -> List[CTPOutcome]:
    """Fan the jobs out to a *persistent* :class:`~repro.query.pool.WorkerPool`.

    Same three-phase protocol as :func:`_run_process` (parent-side memo
    serve, in-flight dedup, CTP-order memo replay) — the difference is
    purely *who owns the executor*: the pool keeps its workers (and their
    mmap-loaded graphs and warm per-worker contexts) alive across calls,
    so this dispatch pays zero spin-up once the pool is warm.

    Failure policy (the pool's :class:`~repro.query.resilience.RetryPolicy`
    + :class:`~repro.query.resilience.CircuitBreaker`):

    * Every fan-out runs under a **hang watchdog** derived from the jobs'
      CTP timeouts (:func:`_watchdog_budget`); blowing it kill-respawns
      the workers (:meth:`~repro.query.pool.WorkerPool.recover_from_hang`)
      instead of waiting forever.
    * A retryable infrastructure failure (``BrokenProcessPool``, hang,
      ``OSError``) respawns the workers and re-runs the fan-out — the
      evaluation is idempotent — up to the policy's attempt budget, with
      jittered backoff, and never when the backoff would overrun the
      deadline budget the jobs have left.  Each failure feeds the
      breaker; a final success resets it.
    * Exhausted retries (or an unpicklable/unsnapshotable workload, which
      no respawn can fix) degrade to :func:`_degraded_from_process` —
      thread or serial with the hop stamped in ``mode`` — rather than
      failing the query.  Deterministic evaluation errors (e.g. a raising
      scorer) are *not* retried or degraded: they propagate to the caller
      as typed errors, because re-running them elsewhere would just fail
      again — or worse, mask a real bug.
    """

    def degrade() -> List[CTPOutcome]:
        return _degraded_from_process(
            graph, algorithm, jobs, context, parallelism, report, schedule
        )

    policy = pool.retry_policy
    breaker = pool.breaker
    try:
        delta = pool.prepare_for(graph)
    except StaleViewError:
        # Not a pool failure — the pinned view outlived the workers' base
        # (a compaction moved past it), so serve it in-process instead of
        # charging the breaker for an outdated reader.
        _note_pool_state(report, pool)
        return degrade()
    except (ReproError, OSError, pickle.PicklingError, TypeError, AttributeError):
        breaker.record_failure()
        _note_pool_state(report, pool)
        return degrade()
    if not _jobs_picklable(algorithm, jobs, delta):
        # Not a pool failure — the workload itself cannot cross a process
        # boundary, so the breaker is not charged for it.
        _note_pool_state(report, pool)
        return degrade()

    def submit_one(p: "WorkerPool", job: CTPJob) -> Any:
        config = job.config if schedule is None else schedule.config_for_run(job)
        return p.submit(algorithm, job.seed_sets, config, delta=delta)

    watchdog = _watchdog_budget(jobs, pool)
    budget = min(
        (job.config.timeout for job in jobs if job.config.timeout is not None),
        default=None,
    )
    started = time.monotonic()
    rng = policy.rng()
    attempt = 1
    while True:
        try:
            outcomes, followers = _fan_out(
                jobs, context, pool, submit_one, result_timeout=watchdog, schedule=schedule
            )
            breaker.record_success()
            break
        except policy.retryable as error:
            breaker.record_failure()
            try:
                if isinstance(error, WorkerHangError):
                    if report is not None:
                        report.hangs += 1
                    pool.recover_from_hang()
                else:
                    pool.respawn()
                if report is not None:
                    report.respawns += 1
            except (PoolClosedError, ReproError, OSError):
                # The pool cannot be rebuilt (closed under us, snapshot
                # gone): no retry can succeed on it.
                _note_pool_state(report, pool)
                return degrade()
            if not policy.should_retry(
                attempt, error, elapsed=time.monotonic() - started, budget=budget
            ):
                _note_pool_state(report, pool)
                return degrade()
            backoff = policy.backoff_seconds(attempt, rng)
            if backoff > 0:
                time.sleep(backoff)
            if report is not None:
                report.retries += 1
            attempt += 1
    _note_pool_state(report, pool)
    _replay_memo(jobs, outcomes, followers, context)
    return _stamp_mode(outcomes, "process")


def _note_pool_state(report: Optional[ResilienceReport], pool: "WorkerPool") -> None:
    """Record the pool's breaker state and recycle count on the report."""
    if report is not None:
        report.breaker_state = pool.breaker.state
        report.recycled_workers = pool.recycles


# ----------------------------------------------------------------------
# pipelined step-(A)→(B) dispatch
# ----------------------------------------------------------------------
class PipelinedDispatch:
    """Overlap step (A) BGP evaluation with step (B) connection search.

    The barrier dispatch waits for *every* BGP table before building any
    CTP job, even though each CTP only needs the bindings of its **own**
    seed variables — EQL BGPs are connected components under shared
    variables (:meth:`EQLQuery.bgps`), so a seed variable is bound by at
    most one of them.  The evaluator drives this class instead when
    cost-model scheduling is on under thread dispatch: it evaluates BGPs
    one at a time on the calling thread and submits each CTP the moment
    its dependencies resolve (free-seed CTPs before any BGP runs), so
    connection search for early-resolved CTPs executes *while later BGPs
    are still materializing*.

    The serial path's observable semantics are preserved by the same
    three-phase discipline as :func:`_fan_out`: memo hits are served on
    submission, duplicate in-flight CTPs share one leader (non-replayable
    leaders re-run their followers), and :meth:`finish` barriers, then
    files the memo in CTP order (:func:`_replay_memo`) — rows and cache
    LRU state are bit-identical to serial.  Thread-mode only: process
    dispatch keeps the historical barrier (shipping jobs mid-(A) would
    serialize on snapshot pickling anyway).
    """

    def __init__(
        self,
        graph: Graph,
        algorithm: str,
        context: Optional[SearchContext],
        workers: int,
        backend: str = "auto",
        schedule: Optional[QuerySchedule] = None,
    ) -> None:
        # Backend resolved once, for the same freeze-race reason as
        # _run_parallel.
        self.graph = resolve_backend(graph, backend)
        self.algo = get_algorithm(algorithm)
        self.context = context
        self.schedule = schedule
        self.overlapped = 0
        self._executor = ThreadPoolExecutor(
            max_workers=max(1, workers), thread_name_prefix="repro-ctp-pipe"
        )
        self._jobs: List[CTPJob] = []
        self._futures: Dict[int, Any] = {}
        self._memo_hits: Dict[int, CTPResultSet] = {}
        self._leaders: Dict[Hashable, int] = {}
        self._followers_of: Dict[int, List[CTPJob]] = {}

    def _run_one(self, job: CTPJob) -> Tuple[CTPResultSet, float]:
        config = job.config if self.schedule is None else self.schedule.config_for_run(job)
        started = time.perf_counter()
        result_set = self.algo.run(self.graph, job.seed_sets, config, context=self.context)
        return result_set, time.perf_counter() - started

    def submit_ready(self, jobs: Sequence[CTPJob], overlapped: bool = False) -> None:
        """Submit jobs whose seed bindings just resolved, longest-first.

        ``overlapped`` marks jobs entering while step (A) still has BGPs
        to evaluate — the pipeline-overlap count the schedule telemetry
        reports.
        """
        ordered = list(jobs)
        if self.schedule is not None:
            ordered = self.schedule.ordered(ordered, lambda job: job.index)
        for job in ordered:
            self._submit(job, overlapped)

    def _submit(self, job: CTPJob, overlapped: bool) -> None:
        self._jobs.append(job)
        if self.context is not None and job.memo_key is not None:
            cached = self.context.ctp_cache.get(job.memo_key)
            if cached is not None:
                self._memo_hits[job.index] = cached
                if self.schedule is not None:
                    self.schedule.settle(job.index)
                return
        key = job.memo_key
        if key is not None:
            leader = self._leaders.get(key)
            if leader is not None:
                # In-flight dedup: ride the leader, settle when it does.
                self._followers_of[leader].append(job)
                return
            self._leaders[key] = job.index
        self._followers_of[job.index] = []
        if overlapped:
            self.overlapped += 1
        if self.schedule is not None:
            self.schedule.record_submits([job.index])
        self._futures[job.index] = self._executor.submit(self._run_one, job)

    def abort(self) -> None:
        """Best-effort teardown when step (A) fails mid-pipeline."""
        self._executor.shutdown(wait=False, cancel_futures=True)

    def finish(self) -> List[CTPOutcome]:
        """Barrier: settle every submitted job, replay the memo, stamp modes."""
        jobs = sorted(self._jobs, key=lambda job: job.index)
        size = max((job.index for job in jobs), default=-1) + 1
        outcomes: List[Optional[CTPOutcome]] = [None] * size
        followers: List[int] = []

        def settle(index: int) -> None:
            if self.schedule is not None:
                self.schedule.settle(index)

        try:
            for index, cached in self._memo_hits.items():
                outcomes[index] = CTPOutcome(cached, True, 0.0)
            rerun_futures: List[Tuple[CTPJob, Any]] = []
            future_to_index = {future: index for index, future in self._futures.items()}
            for future in as_completed(future_to_index):
                index = future_to_index[future]
                result_set, seconds = future.result()
                outcomes[index] = CTPOutcome(result_set, False, seconds)
                settle(index)
                group = self._followers_of.get(index, [])
                if _replayable(result_set):
                    for follower in group:
                        outcomes[follower.index] = CTPOutcome(result_set, True, 0.0)
                        followers.append(follower.index)
                        settle(follower.index)
                else:
                    rerun_futures.extend(
                        (job, self._executor.submit(self._run_one, job)) for job in group
                    )
            for job, future in rerun_futures:
                result_set, seconds = future.result()
                outcomes[job.index] = CTPOutcome(result_set, False, seconds)
                settle(job.index)
        finally:
            self._executor.shutdown(wait=True)
        _replay_memo(jobs, outcomes, followers, self.context)
        if self.schedule is not None:
            self.schedule.report.pipeline_overlaps = self.overlapped
        return _stamp_mode(outcomes, "thread")


# ----------------------------------------------------------------------
# batch front-end
# ----------------------------------------------------------------------
@dataclass
class BatchResult:
    """The outcome of :func:`evaluate_queries`: per-query results + context.

    Iterates/indexes like a list of :class:`~repro.query.evaluator.QueryResult`.
    ``context`` is the shared search context the batch ran in (``None``
    under ``shared_context=False``); its counters are *cumulative over the
    batch*, so ``context_stats()`` read after query *k* includes queries
    ``0..k``.
    """

    results: List["QueryResult"] = field(default_factory=list)
    context: Optional[SearchContext] = None

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator["QueryResult"]:
        return iter(self.results)

    def __getitem__(self, index):
        return self.results[index]

    def context_stats(self) -> Optional[Dict[str, int]]:
        """The shared context's cumulative counters (``None`` without one)."""
        return self.context.stats_dict() if self.context is not None else None

    def merged_ctp_stats(self) -> SearchStats:
        """All CTP search counters of the batch, merged in (query, CTP) order.

        Deterministic regardless of worker count: the merge order is the
        batch's declaration order, never completion order.  Memo-hit CTPs
        contribute the cached run's stats (they replay its result set).
        """
        return SearchStats.merged(
            report.result_set.stats for result in self.results for report in result.ctp_reports
        )


def evaluate_queries(
    graph: Graph,
    queries: Sequence,
    algorithm: str = "molesp",
    base_config: Optional[SearchConfig] = None,
    default_timeout: Optional[float] = None,
    distinct: bool = True,
    context: Optional[SearchContext] = None,
    pool: Optional["WorkerPool"] = None,
) -> BatchResult:
    """Evaluate many EQL queries against **one** shared search context.

    The batch shape of the evaluator: queries run sequentially (each
    query's CTPs dispatch in parallel per ``base_config.parallelism``),
    but they all adopt the same context — a CONNECT one query evaluated is
    a cross-query memo hit for every later query that repeats it, and the
    interning pool warms once for the whole batch.  An empty ``queries``
    sequence is legal and returns an empty batch.

    The cross-CTP memo stays safe across the batch by construction: its
    keys carry the graph's size fingerprint, so growing the (append-only)
    graph between queries invalidates every entry cached before the
    mutation instead of replaying stale result sets.

    Pass an explicit ``context`` to amortize across *batches*; otherwise
    one is created per call (thread-safe when ``parallelism > 1``) —
    unless ``base_config.shared_context`` is false, which keeps the
    pool-per-CTP A/B baseline and returns ``BatchResult.context = None``.

    ``pool`` is the process-side analogue: a persistent
    :class:`~repro.query.pool.WorkerPool` routes every query's
    ``"process"``-mode dispatch through the same long-lived workers, so
    the batch pays executor spin-up and per-worker snapshot loads once —
    not once per query (the PR-5 behaviour this parameter fixes).
    """
    from repro.query.evaluator import evaluate_query  # local: evaluator imports us

    base_config = base_config or SearchConfig()
    if context is None and base_config.shared_context:
        context = SearchContext(
            interning=base_config.interning,
            thread_safe=base_config.parallelism > 1,
            dense_ids=base_config.dense_ids,
        )
    results = [
        evaluate_query(
            graph,
            query,
            algorithm=algorithm,
            base_config=base_config,
            default_timeout=default_timeout,
            distinct=distinct,
            context=context,
            pool=pool,
        )
        for query in queries
    ]
    return BatchResult(results=results, context=context)
