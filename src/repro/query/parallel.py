"""Parallel CTP dispatch and the batch query front-end.

Section 5 of the paper evaluates each CONNECT clause as an independent
connection-search invocation; step (B) of the evaluator (Section 3) is
therefore embarrassingly parallel *across CTPs* once the query-scoped
state is safe to share — which ``SearchContext(thread_safe=True)``
provides (sharded edge-set pool, locked result caches).  This module is
the dispatch layer on top:

:func:`run_ctp_jobs`
    Evaluate a query's CTP jobs serially (``parallelism=1`` — byte-for-
    byte the historical evaluator loop) or on a ``ThreadPoolExecutor``.
    The parallel path preserves the serial path's observable semantics:

    * **rows** — each engine run is deterministic given (graph, seeds,
      config) and never reads another run's private state, so results are
      bit-identical to serial dispatch regardless of worker count or
      completion order;
    * **cross-CTP memo** — duplicate CTPs (same memo key) are grouped and
      in-flight-deduplicated: one *leader* searches, followers share its
      result exactly when the serial path would have served a memo hit
      (complete, untruncated) and re-run otherwise; memo filing happens in
      CTP order after the batch so the cache's LRU state is deterministic;
    * **stats** — per-CTP ``SearchStats`` stay attached to their reports
      and merge in CTP order (:meth:`SearchStats.merged`), never
      completion order.  Only the shared-pool ``pool_*`` deltas become
      approximate under concurrency (overlapping attribution).

:func:`evaluate_queries`
    The batch front-end: run many queries against **one** shared context,
    so repeated CONNECTs across queries become cross-query memo hits and
    the interning pool amortizes across the whole batch — the multi-user
    serving shape (many queries, one graph) rather than the single-query
    shape.

What a thread pool buys under CPython's GIL: deadline-bounded CTPs
(per-CTP ``TIMEOUT``) overlap their *wall-clock* budgets — m concurrent
timeouts cost ~T instead of m*T — and cache-miss stalls interleave.
CPU-bound complete searches only gain real overlap on multi-core
free-threaded builds; ``python -m repro.bench parallel`` measures both
regimes honestly.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Hashable, Iterator, List, Optional, Sequence, Tuple

from repro.ctp.config import SearchConfig
from repro.ctp.interning import SearchContext
from repro.ctp.registry import get_algorithm
from repro.ctp.results import CTPResultSet
from repro.ctp.stats import SearchStats
from repro.graph.backend import resolve_backend
from repro.graph.graph import Graph

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (evaluator imports us)
    from repro.query.evaluator import QueryResult


@dataclass
class CTPJob:
    """One CTP evaluation of a query, ready to dispatch.

    ``memo_key`` is the evaluator's cross-CTP memo key, or ``None`` when no
    context is active (then the job is always searched).  ``index`` is the
    CTP's position in the query — outcomes are returned in this order.
    """

    index: int
    seed_sets: List[Any]
    config: SearchConfig
    memo_key: Optional[Hashable] = None


@dataclass
class CTPOutcome:
    """What one job produced: the result set, memo provenance, timing."""

    result_set: CTPResultSet
    cache_hit: bool
    seconds: float


def effective_parallelism(parallelism: int, num_jobs: int, context: Optional[SearchContext]) -> int:
    """Worker count a dispatch will actually use.

    Collapses to serial when there is at most one job, when the caller
    asked for one worker, or when an *explicit* context is not thread-safe
    — sharing unlocked state across workers is never worth a corrupted
    pool, and the serial path is always correct.
    """
    if num_jobs <= 1 or parallelism <= 1:
        return 1
    if context is not None and not context.thread_safe:
        return 1
    return min(parallelism, num_jobs)


def _replayable(result_set: CTPResultSet) -> bool:
    """Serial memo rule: only complete, untruncated runs are safe to share."""
    return result_set.complete and not result_set.timed_out


def run_ctp_jobs(
    graph: Graph,
    algorithm: str,
    jobs: Sequence[CTPJob],
    context: Optional[SearchContext],
    parallelism: int = 1,
) -> List[CTPOutcome]:
    """Evaluate ``jobs`` and return one :class:`CTPOutcome` per job, in order."""
    workers = effective_parallelism(parallelism, len(jobs), context)
    if workers <= 1:
        return _run_serial(graph, algorithm, jobs, context)
    return _run_parallel(graph, algorithm, jobs, context, workers)


def _run_serial(
    graph: Graph,
    algorithm: str,
    jobs: Sequence[CTPJob],
    context: Optional[SearchContext],
) -> List[CTPOutcome]:
    """The historical evaluator loop: memo get -> search -> memo put, per CTP."""
    algo = get_algorithm(algorithm)
    outcomes: List[CTPOutcome] = []
    for job in jobs:
        started = time.perf_counter()
        result_set = None
        cache_hit = False
        if context is not None and job.memo_key is not None:
            result_set = context.ctp_cache.get(job.memo_key)
            cache_hit = result_set is not None
        if result_set is None:
            result_set = algo.run(graph, job.seed_sets, job.config, context=context)
            # Only complete, untruncated evaluations are safe to replay for
            # a later CTP: a timeout cut is wall-clock-dependent.
            if context is not None and job.memo_key is not None and _replayable(result_set):
                context.ctp_cache.put(job.memo_key, result_set)
        outcomes.append(CTPOutcome(result_set, cache_hit, time.perf_counter() - started))
    return outcomes


def _run_parallel(
    graph: Graph,
    algorithm: str,
    jobs: Sequence[CTPJob],
    context: Optional[SearchContext],
    workers: int,
) -> List[CTPOutcome]:
    # Resolve the backend ONCE before fanning out: Graph.freeze() is
    # memoized but not atomic, so two workers racing the first freeze
    # would hand the context two distinct (equivalent) snapshots and the
    # second adoption would be spuriously refused.  Engines re-resolving
    # the pre-resolved graph is a no-op.
    graph = resolve_backend(graph, jobs[0].config.backend)
    algo = get_algorithm(algorithm)
    outcomes: List[Optional[CTPOutcome]] = [None] * len(jobs)

    # Phase 1 — serve memo hits from earlier queries/batches, in CTP order.
    pending: List[CTPJob] = []
    for job in jobs:
        if context is not None and job.memo_key is not None:
            cached = context.ctp_cache.get(job.memo_key)
            if cached is not None:
                outcomes[job.index] = CTPOutcome(cached, True, 0.0)
                continue
        pending.append(job)

    # Phase 2 — group duplicates by memo key (in-flight dedup: one leader
    # searches per distinct key), fan the leaders out, settle followers.
    groups: Dict[Hashable, List[CTPJob]] = {}
    for job in pending:
        key = job.memo_key if job.memo_key is not None else ("__unkeyed__", job.index)
        groups.setdefault(key, []).append(job)

    def run_one(job: CTPJob) -> Tuple[CTPResultSet, float]:
        started = time.perf_counter()
        result_set = algo.run(graph, job.seed_sets, job.config, context=context)
        return result_set, time.perf_counter() - started

    followers: List[int] = []
    with ThreadPoolExecutor(max_workers=workers, thread_name_prefix="repro-ctp") as pool:
        future_to_group = {pool.submit(run_one, group[0]): group for group in groups.values()}
        rerun_futures: List[Tuple[CTPJob, Any]] = []
        # Settle leaders as they finish (not in submission order): a
        # non-replayable leader's duplicates re-submit immediately, so the
        # rerun overlaps still-running leaders instead of queueing behind
        # the slowest one.  Outcomes are written by CTP index, so the
        # completion order never shows in the results.
        for future in as_completed(future_to_group):
            group = future_to_group[future]
            result_set, seconds = future.result()
            leader = group[0]
            outcomes[leader.index] = CTPOutcome(result_set, False, seconds)
            if _replayable(result_set):
                # Exactly the runs the serial path would serve as memo hits.
                for follower in group[1:]:
                    outcomes[follower.index] = CTPOutcome(result_set, True, 0.0)
                    followers.append(follower.index)
            else:
                rerun_futures.extend((job, pool.submit(run_one, job)) for job in group[1:])
        for job, future in rerun_futures:
            result_set, seconds = future.result()
            outcomes[job.index] = CTPOutcome(result_set, False, seconds)

    # Phase 3 — replay the serial path's cache traffic in CTP order:
    # leaders file their (replayable) result sets, followers register the
    # hit.  Doing this after the fan-out keeps the memo's LRU order — and
    # therefore its eviction choices — independent of worker scheduling.
    if context is not None:
        follower_set = set(followers)
        for job in jobs:
            outcome = outcomes[job.index]
            if job.memo_key is None or outcome is None:
                continue
            if job.index in follower_set:
                refreshed = context.ctp_cache.get(job.memo_key)
                if refreshed is not None:
                    outcome.result_set = refreshed
            elif not outcome.cache_hit and _replayable(outcome.result_set):
                context.ctp_cache.put(job.memo_key, outcome.result_set)
    return [outcome for outcome in outcomes if outcome is not None]


# ----------------------------------------------------------------------
# batch front-end
# ----------------------------------------------------------------------
@dataclass
class BatchResult:
    """The outcome of :func:`evaluate_queries`: per-query results + context.

    Iterates/indexes like a list of :class:`~repro.query.evaluator.QueryResult`.
    ``context`` is the shared search context the batch ran in (``None``
    under ``shared_context=False``); its counters are *cumulative over the
    batch*, so ``context_stats()`` read after query *k* includes queries
    ``0..k``.
    """

    results: List["QueryResult"] = field(default_factory=list)
    context: Optional[SearchContext] = None

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator["QueryResult"]:
        return iter(self.results)

    def __getitem__(self, index):
        return self.results[index]

    def context_stats(self) -> Optional[Dict[str, int]]:
        """The shared context's cumulative counters (``None`` without one)."""
        return self.context.stats_dict() if self.context is not None else None

    def merged_ctp_stats(self) -> SearchStats:
        """All CTP search counters of the batch, merged in (query, CTP) order.

        Deterministic regardless of worker count: the merge order is the
        batch's declaration order, never completion order.  Memo-hit CTPs
        contribute the cached run's stats (they replay its result set).
        """
        return SearchStats.merged(
            report.result_set.stats for result in self.results for report in result.ctp_reports
        )


def evaluate_queries(
    graph: Graph,
    queries: Sequence,
    algorithm: str = "molesp",
    base_config: Optional[SearchConfig] = None,
    default_timeout: Optional[float] = None,
    distinct: bool = True,
    context: Optional[SearchContext] = None,
) -> BatchResult:
    """Evaluate many EQL queries against **one** shared search context.

    The batch shape of the evaluator: queries run sequentially (each
    query's CTPs dispatch in parallel per ``base_config.parallelism``),
    but they all adopt the same context — a CONNECT one query evaluated is
    a cross-query memo hit for every later query that repeats it, and the
    interning pool warms once for the whole batch.  An empty ``queries``
    sequence is legal and returns an empty batch.

    The cross-CTP memo stays safe across the batch by construction: its
    keys carry the graph's size fingerprint, so growing the (append-only)
    graph between queries invalidates every entry cached before the
    mutation instead of replaying stale result sets.

    Pass an explicit ``context`` to amortize across *batches*; otherwise
    one is created per call (thread-safe when ``parallelism > 1``) —
    unless ``base_config.shared_context`` is false, which keeps the
    pool-per-CTP A/B baseline and returns ``BatchResult.context = None``.
    """
    from repro.query.evaluator import evaluate_query  # local: evaluator imports us

    base_config = base_config or SearchConfig()
    if context is None and base_config.shared_context:
        context = SearchContext(
            interning=base_config.interning,
            thread_safe=base_config.parallelism > 1,
        )
    results = [
        evaluate_query(
            graph,
            query,
            algorithm=algorithm,
            base_config=base_config,
            default_timeout=default_timeout,
            distinct=distinct,
            context=context,
        )
        for query in queries
    ]
    return BatchResult(results=results, context=context)
