"""Abstract syntax of EQL (Definitions 2.2 - 2.6 and 2.11).

The building blocks mirror the paper exactly:

* :class:`Condition` — ``p(v) op c`` over one variable (Definition 2.2);
* :class:`Predicate` — a conjunction of conditions over one variable;
* :class:`EdgePattern` — ``(p1, p2, p3)`` over source, edge, target
  (Definition 2.3);
* :class:`BGP` — a connected set of edge patterns (Definition 2.4);
* :class:`CTP` — ``(g1, ..., gm, v_{m+1})`` (Definition 2.5) plus its
  optional filters (Definition 2.11);
* :class:`EQLQuery` — head + body of BGPs and CTPs (Definition 2.6).

Values compared by conditions come from node/edge *properties*; ``label``
and ``type`` are always available, ``type`` testing set membership.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.errors import ValidationError

#: Comparison operators of the paper's Omega, extended with the symmetric
#: comparisons and inequality for convenience.
OPERATORS = ("=", "!=", "<", "<=", ">", ">=", "~")


@dataclass(frozen=True)
class Condition:
    """One condition ``prop(v) op value`` (the variable is held by the
    enclosing :class:`Predicate`)."""

    prop: str
    op: str
    value: Any

    def __post_init__(self) -> None:
        if self.op not in OPERATORS:
            raise ValidationError(f"unknown operator {self.op!r}; allowed: {OPERATORS}")

    def test(self, item) -> bool:
        """Evaluate the condition on a graph node or edge."""
        actual = item.property(self.prop)
        if self.prop == "type":
            # type(v) = c means "c is one of v's types".
            if self.op == "=":
                return self.value in actual
            if self.op == "!=":
                return self.value not in actual
            raise ValidationError(f"operator {self.op!r} is not defined on types")
        if self.op == "~":
            return isinstance(actual, str) and fnmatchcase(actual, str(self.value))
        if actual is None:
            return False
        try:
            if self.op == "=":
                return actual == self.value
            if self.op == "!=":
                return actual != self.value
            if self.op == "<":
                return actual < self.value
            if self.op == "<=":
                return actual <= self.value
            if self.op == ">":
                return actual > self.value
            return actual >= self.value
        except TypeError:
            return False

    def __str__(self) -> str:
        return f"{self.prop}(v) {self.op} {self.value!r}"


@dataclass(frozen=True)
class Predicate:
    """A conjunction of conditions over exactly one variable.

    An empty predicate (no conditions) matches everything — it is written
    as a bare variable in the paper.
    """

    var: str
    conditions: Tuple[Condition, ...] = ()

    @property
    def is_empty(self) -> bool:
        return not self.conditions

    def test(self, item) -> bool:
        return all(condition.test(item) for condition in self.conditions)

    def label_constant(self) -> Optional[str]:
        """The constant ``c`` when the predicate contains ``label(v) = c``."""
        for condition in self.conditions:
            if condition.prop == "label" and condition.op == "=":
                return condition.value
        return None

    def type_constant(self) -> Optional[str]:
        for condition in self.conditions:
            if condition.prop == "type" and condition.op == "=":
                return condition.value
        return None

    @classmethod
    def label_equals(cls, var: str, label: str) -> "Predicate":
        """The paper's shorthand: a constant stands for ``label(v) = c``."""
        return cls(var, (Condition("label", "=", label),))

    def __str__(self) -> str:
        if self.is_empty:
            return f"?{self.var}"
        return f"?{self.var}[{' AND '.join(map(str, self.conditions))}]"


@dataclass(frozen=True)
class EdgePattern:
    """``(p1, p2, p3)``: predicates over source node, edge, target node."""

    source: Predicate
    edge: Predicate
    target: Predicate

    def variables(self) -> Tuple[str, str, str]:
        return (self.source.var, self.edge.var, self.target.var)

    def __str__(self) -> str:
        return f"({self.source}, {self.edge}, {self.target})"


@dataclass(frozen=True)
class BGP:
    """A connected set of edge patterns (Definition 2.4)."""

    patterns: Tuple[EdgePattern, ...]

    def __post_init__(self) -> None:
        if not self.patterns:
            raise ValidationError("a BGP needs at least one edge pattern")
        if len(self.patterns) > 1 and len(_connected_pattern_groups(self.patterns)) != 1:
            raise ValidationError("BGP edge patterns must be connected through shared variables")

    def variables(self) -> List[str]:
        out: List[str] = []
        for pattern in self.patterns:
            for var in pattern.variables():
                if var not in out:
                    out.append(var)
        return out


@dataclass(frozen=True)
class CTPFilters:
    """The optional CTP filters of Definition 2.11 / Section 4.8.

    Every field is tri-state: ``None`` means "not specified, inherit the
    base :class:`~repro.ctp.config.SearchConfig`".  That includes ``uni``
    — an explicit ``uni=False`` *overrides* a base config that enables the
    filter, instead of being indistinguishable from "unspecified".
    """

    uni: Optional[bool] = None
    labels: Optional[FrozenSet[str]] = None
    max_edges: Optional[int] = None
    score: Optional[str] = None
    top_k: Optional[int] = None
    timeout: Optional[float] = None
    limit: Optional[int] = None

    def __post_init__(self) -> None:
        if self.top_k is not None and self.score is None:
            raise ValidationError("TOP k requires SCORE sigma")
        if self.labels is not None:
            object.__setattr__(self, "labels", frozenset(self.labels))


@dataclass(frozen=True)
class CTP:
    """A connecting tree pattern ``(g1, ..., gm, v_{m+1})`` (Definition 2.5).

    ``tree_var`` is the underlined variable bound to the connecting tree.
    """

    seeds: Tuple[Predicate, ...]
    tree_var: str
    filters: CTPFilters = field(default_factory=CTPFilters)

    def __post_init__(self) -> None:
        if len(self.seeds) < 1:
            raise ValidationError("a CTP needs at least one seed predicate")
        variables = [seed.var for seed in self.seeds] + [self.tree_var]
        if len(set(variables)) != len(variables):
            raise ValidationError("all CTP variables must be pairwise distinct (Definition 2.5)")

    @property
    def m(self) -> int:
        return len(self.seeds)

    def seed_vars(self) -> Tuple[str, ...]:
        return tuple(seed.var for seed in self.seeds)


@dataclass(frozen=True)
class EQLQuery:
    """A core query (Definition 2.6) with per-CTP filters (Definition 2.11).

    ``patterns`` holds every edge pattern of the body; the BGPs of the query
    are the connected components of those patterns under shared variables
    (:meth:`bgps`).  ``limit`` is the query-level ``LIMIT n`` modifier the
    paper mentions alongside requirement (R4) ("unless users explicitly
    LIMIT the result size").
    """

    head: Tuple[str, ...]
    patterns: Tuple[EdgePattern, ...] = ()
    ctps: Tuple[CTP, ...] = ()
    limit: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.patterns and not self.ctps:
            raise ValidationError("a query needs at least one BGP or CTP (k + l > 0)")
        if self.limit is not None and self.limit <= 0:
            raise ValidationError("LIMIT must be positive")
        tree_vars = [ctp.tree_var for ctp in self.ctps]
        if len(set(tree_vars)) != len(tree_vars):
            raise ValidationError("each CTP tree variable must appear exactly once in the query")
        body_vars = set(self.body_variables())
        for tree_var in tree_vars:
            occurrences = sum(1 for p in self.patterns for v in p.variables() if v == tree_var)
            occurrences += sum(1 for ctp in self.ctps for v in ctp.seed_vars() if v == tree_var)
            if occurrences:
                raise ValidationError(f"tree variable ?{tree_var} may not occur elsewhere in the query body")
        # CTP seeds are *nodes* (Definition 2.5 binds them to graph nodes);
        # a variable bound by an edge position of a pattern can never be one.
        edge_vars = {pattern.edge.var for pattern in self.patterns}
        for ctp in self.ctps:
            for var in ctp.seed_vars():
                if var in edge_vars:
                    raise ValidationError(
                        f"CTP seed ?{var} is an edge variable; CONNECT arguments must bind nodes"
                    )
        for var in self.head:
            if var not in body_vars:
                raise ValidationError(f"head variable ?{var} does not occur in the query body")

    # ------------------------------------------------------------------
    def bgps(self) -> List[BGP]:
        """The BGPs of the body: connected components of the edge patterns."""
        return [BGP(tuple(group)) for group in _connected_pattern_groups(self.patterns)]

    def simple_variables(self) -> List[str]:
        """Variables that are not CTP tree variables (Definition 2.9)."""
        tree_vars = {ctp.tree_var for ctp in self.ctps}
        out: List[str] = []
        for pattern in self.patterns:
            for var in pattern.variables():
                if var not in tree_vars and var not in out:
                    out.append(var)
        for ctp in self.ctps:
            for var in ctp.seed_vars():
                if var not in out:
                    out.append(var)
        return out

    def body_variables(self) -> List[str]:
        out = self.simple_variables()
        for ctp in self.ctps:
            out.append(ctp.tree_var)
        return out

    def __str__(self) -> str:
        lines = [f"SELECT {' '.join('?' + v for v in self.head)} WHERE {{"]
        for pattern in self.patterns:
            lines.append(f"  {pattern}")
        for ctp in self.ctps:
            seeds = ", ".join(str(seed) for seed in ctp.seeds)
            lines.append(f"  CONNECT({seeds}) AS ?{ctp.tree_var}")
        lines.append("}")
        return "\n".join(lines)


def _connected_pattern_groups(patterns: Sequence[EdgePattern]) -> List[List[EdgePattern]]:
    """Group edge patterns into connected components by shared variables."""
    if not patterns:
        return []
    parent = list(range(len(patterns)))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb

    owner: Dict[str, int] = {}
    for index, pattern in enumerate(patterns):
        for var in pattern.variables():
            if var in owner:
                union(owner[var], index)
            else:
                owner[var] = index
    groups: Dict[int, List[EdgePattern]] = {}
    for index, pattern in enumerate(patterns):
        groups.setdefault(find(index), []).append(pattern)
    return list(groups.values())
