"""Resilience primitives for the serving stack: retry, breaker, telemetry.

The serving regime (:mod:`repro.serve` over :mod:`repro.query.pool`) has
to survive failure modes the one-shot evaluator never sees: workers that
crash mid-CTP, hang past every deadline, leak memory across requests, or
load a corrupted snapshot.  Each of those needs a *policy*, not an ad-hoc
``except`` clause — this module holds the three policy objects the
dispatch layer composes:

:class:`RetryPolicy`
    Bounded, jittered-exponential-backoff retries, applied **only** to
    idempotent infrastructure failures (a crashed or hung worker — the
    CTP evaluation itself is a pure function of (graph, seeds, config)),
    never to deterministic user-code errors (a raising scorer would raise
    again), and never when the backoff would spend deadline budget the
    query no longer has.

:class:`CircuitBreaker`
    The classic closed → open → half-open machine guarding process-mode
    dispatch.  Repeated pool failures trip it open: while open, dispatch
    degrades straight to thread/serial (cheap, always correct) instead of
    paying a doomed spawn-fail-respawn cycle per query.  After a cooldown
    it admits a bounded number of half-open probes; one success closes it
    again, a probe failure re-opens it for another cooldown.

:class:`ResilienceReport`
    Per-query telemetry of what machinery actually fired — retries,
    hang kills, breaker state, recycled workers — threaded from the
    dispatch layer into :class:`~repro.query.evaluator.QueryResult` and
    from there into every :class:`~repro.serve.models.QueryResponse`, so
    degradation is *observable* even when it is survivable.
"""

from __future__ import annotations

import random
import threading
import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import ConfigError, WorkerHangError

#: Breaker states (:attr:`CircuitBreaker.state`).
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"

#: Error classes a :class:`RetryPolicy` treats as retryable by default:
#: infrastructure failures of the worker transport, where re-running the
#: (idempotent) evaluation on fresh workers can genuinely succeed.  A
#: deterministic evaluation error (bad config, raising scorer) is absent
#: on purpose — it would fail identically on every attempt.
DEFAULT_RETRYABLE: Tuple[type, ...] = (BrokenProcessPool, WorkerHangError, OSError)


@dataclass(frozen=True)
class RetryPolicy:
    """Typed retry discipline for pooled CTP dispatch.

    Parameters
    ----------
    max_attempts:
        Total tries including the first (``2`` = the historical
        one-respawn-one-retry behaviour).
    base_backoff / multiplier / max_backoff:
        Exponential backoff schedule in seconds: attempt ``k`` (1-based)
        waits ``min(base_backoff * multiplier**(k-1), max_backoff)``
        before retrying, plus jitter.
    jitter:
        Fraction of the backoff randomized uniformly (``0.5`` = the wait
        lands anywhere in 50-150% of the schedule value); decorrelates
        retry storms when many queries hit the same broken pool.
    seed:
        Seed for the jitter RNG — fault-injection tests pin it so chaos
        runs reproduce byte-for-byte.
    retryable:
        Exception classes worth retrying (see :data:`DEFAULT_RETRYABLE`).
    """

    max_attempts: int = 2
    base_backoff: float = 0.02
    multiplier: float = 2.0
    max_backoff: float = 0.5
    jitter: float = 0.5
    seed: Optional[int] = None
    retryable: Tuple[type, ...] = DEFAULT_RETRYABLE

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError(f"RetryPolicy.max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_backoff < 0 or self.max_backoff < 0:
            raise ConfigError("RetryPolicy backoff values must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigError(f"RetryPolicy.jitter must be in [0, 1], got {self.jitter}")

    def rng(self) -> random.Random:
        """A fresh jitter RNG (seeded when the policy is)."""
        return random.Random(self.seed)

    def is_retryable(self, error: BaseException) -> bool:
        return isinstance(error, self.retryable)

    def backoff_seconds(self, attempt: int, rng: Optional[random.Random] = None) -> float:
        """Jittered wait before retry number ``attempt`` (1-based)."""
        base = min(self.base_backoff * (self.multiplier ** max(0, attempt - 1)), self.max_backoff)
        if base <= 0.0:
            return 0.0
        if self.jitter <= 0.0:
            return base
        rng = rng if rng is not None else random
        return base * (1.0 - self.jitter + 2.0 * self.jitter * rng.random())

    def should_retry(
        self,
        attempt: int,
        error: BaseException,
        elapsed: float = 0.0,
        budget: Optional[float] = None,
    ) -> bool:
        """Whether attempt ``attempt`` (1-based, just failed) warrants another.

        ``budget`` is the smallest per-CTP timeout of the dispatched jobs —
        under a query deadline those timeouts were already capped to the
        remaining wall budget at job-build time, so it is an honest upper
        bound on what the query can still afford.  A retry whose backoff
        would land past that budget is pointless (the rerun would be
        truncated to nothing) and is refused.
        """
        if attempt >= self.max_attempts or not self.is_retryable(error):
            return False
        if budget is not None and elapsed + self.backoff_seconds(attempt, self.rng()) >= budget:
            return False
        return True


class CircuitBreaker:
    """Closed → open → half-open failure gate for process-mode dispatch.

    Thread-safe; shared by every dispatch that runs through one
    :class:`~repro.query.pool.WorkerPool`.  ``clock`` is injectable so
    tests drive the cooldown without sleeping.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown: float = 5.0,
        half_open_probes: int = 1,
        clock=time.monotonic,
    ):
        if failure_threshold < 1:
            raise ConfigError(
                f"CircuitBreaker.failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown < 0:
            raise ConfigError(f"CircuitBreaker.cooldown must be >= 0, got {cooldown}")
        if half_open_probes < 1:
            raise ConfigError(
                f"CircuitBreaker.half_open_probes must be >= 1, got {half_open_probes}"
            )
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.half_open_probes = half_open_probes
        self._clock = clock
        self._lock = threading.Lock()
        self._state = BREAKER_CLOSED
        self._failures = 0
        self._opened_at: Optional[float] = None
        self._probes_left = 0
        #: Lifetime count of closed→open transitions (telemetry).
        self.trips = 0

    # ------------------------------------------------------------------
    def _tick_locked(self) -> None:
        """Open → half-open once the cooldown elapsed.  Caller holds the lock."""
        if self._state == BREAKER_OPEN and self._opened_at is not None:
            if self._clock() - self._opened_at >= self.cooldown:
                self._state = BREAKER_HALF_OPEN
                self._probes_left = self.half_open_probes

    @property
    def state(self) -> str:
        with self._lock:
            self._tick_locked()
            return self._state

    def allow(self) -> bool:
        """Whether a process-mode dispatch may run right now.

        Closed: always.  Open: no, until the cooldown elapses.  Half-open:
        admits up to ``half_open_probes`` probe dispatches, whose outcomes
        (:meth:`record_success`/:meth:`record_failure`) decide the next
        state; further requests stay degraded until a probe settles.
        """
        with self._lock:
            self._tick_locked()
            if self._state == BREAKER_CLOSED:
                return True
            if self._state == BREAKER_HALF_OPEN and self._probes_left > 0:
                self._probes_left -= 1
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._state = BREAKER_CLOSED
            self._failures = 0
            self._opened_at = None
            self._probes_left = 0

    def record_failure(self) -> None:
        with self._lock:
            self._tick_locked()
            if self._state == BREAKER_HALF_OPEN:
                # The probe failed: straight back to open, fresh cooldown.
                self._state = BREAKER_OPEN
                self._opened_at = self._clock()
                self._probes_left = 0
                self.trips += 1
                return
            self._failures += 1
            if self._state == BREAKER_CLOSED and self._failures >= self.failure_threshold:
                self._state = BREAKER_OPEN
                self._opened_at = self._clock()
                self.trips += 1

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker({self.state}, failures={self._failures}/"
            f"{self.failure_threshold}, trips={self.trips})"
        )


@dataclass
class ResilienceReport:
    """What resilience machinery fired while evaluating one query.

    Attached to :class:`~repro.query.evaluator.QueryResult` (``.resilience``)
    and surfaced per-response by the query server, so a request that was
    silently *saved* — retried after a crash, rerouted past an open
    breaker, served by freshly recycled workers — says so.
    """

    #: Pooled fan-outs re-run after a retryable failure (crash/hang).
    retries: int = 0
    #: Hang-watchdog kills performed for this query.
    hangs: int = 0
    #: Worker respawns performed for this query (crash or hang recovery).
    respawns: int = 0
    #: Breaker state observed when dispatch settled ("closed" when no
    #: breaker was involved at all).
    breaker_state: str = BREAKER_CLOSED
    #: Dispatches refused by an open breaker (degraded without trying).
    breaker_skips: int = 0
    #: Lifetime count of workers proactively recycled by the serving pool
    #: (request-count or RSS threshold), as of this response.
    recycled_workers: int = 0
    #: Terminal degradation of this query's process dispatch, if any:
    #: ``None`` (pool served it) or the mode that actually ran
    #: ("thread"/"serial") after the pool was given up on.
    degraded_to: Optional[str] = None

    def merge_from(self, other: "ResilienceReport") -> None:
        """Fold another report into this one (batch front-ends)."""
        self.retries += other.retries
        self.hangs += other.hangs
        self.respawns += other.respawns
        self.breaker_skips += other.breaker_skips
        self.breaker_state = other.breaker_state
        self.recycled_workers = max(self.recycled_workers, other.recycled_workers)
        if other.degraded_to is not None:
            self.degraded_to = other.degraded_to


@dataclass(frozen=True)
class PoolResilienceConfig:
    """Bundle of the :class:`~repro.query.pool.WorkerPool` resilience knobs.

    Kept separate from :class:`~repro.ctp.config.SearchConfig` on purpose:
    these govern the *pool's* lifecycle, not any single search, and they
    never participate in memo fingerprints.
    """

    #: Proactively recycle (tear down + respawn) the workers after this
    #: many jobs served by one executor epoch.  ``None`` disables.
    recycle_after: Optional[int] = None
    #: Recycle when any worker's resident set exceeds this many MiB
    #: (checked via ``/proc`` where available).  ``None`` disables.
    max_worker_rss_mb: Optional[float] = None
    #: How often (in dispatches) the RSS check runs; it costs a /proc read
    #: per worker, so it is sampled rather than per-submit.
    rss_check_every: int = 8
    #: Hang watchdog fallback budget (seconds) for jobs with no timeout of
    #: their own; a job *with* a timeout/deadline uses that instead.
    hang_timeout: float = 30.0
    #: Grace added on top of the per-job budgets before a fan-out is
    #: declared hung (queueing, serialization, scheduler noise).
    hang_grace: float = 2.0

    def __post_init__(self) -> None:
        if self.recycle_after is not None and self.recycle_after < 1:
            raise ConfigError(f"recycle_after must be >= 1, got {self.recycle_after}")
        if self.max_worker_rss_mb is not None and self.max_worker_rss_mb <= 0:
            raise ConfigError(f"max_worker_rss_mb must be > 0, got {self.max_worker_rss_mb}")
        if self.rss_check_every < 1:
            raise ConfigError(f"rss_check_every must be >= 1, got {self.rss_check_every}")
        if self.hang_timeout <= 0 or self.hang_grace < 0:
            raise ConfigError("hang_timeout must be > 0 and hang_grace >= 0")
