"""Score functions for ranking CTP results (requirement R2, ``SCORE sigma``).

The paper's key design point is that connection search must stay
*orthogonal* to the score function: journalists experiment with several
scores before finding interesting patterns (the smallest tree through the
``DEF`` country node is often the least interesting one).  Every function
here follows the same protocol — ``f(graph, edge_ids, node_ids) -> float``,
higher is better — and any user callable with that shape can be registered
and then referenced from EQL text as ``SCORE name``.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, FrozenSet

from repro.errors import QueryError
from repro.graph.graph import Graph

ScoreFunction = Callable[[Graph, FrozenSet[int], FrozenSet[int]], float]


def size_score(graph: Graph, edges: FrozenSet[int], nodes: FrozenSet[int]) -> float:
    """Smaller trees are better: ``1 / (1 + |edges|)`` (the GSTP default)."""
    return 1.0 / (1.0 + len(edges))


def weight_score(graph: Graph, edges: FrozenSet[int], nodes: FrozenSet[int]) -> float:
    """Lighter trees are better: ``1 / (1 + sum of edge weights)``."""
    total = sum(graph.edge(e).weight for e in edges)
    return 1.0 / (1.0 + total)


def label_diversity_score(graph: Graph, edges: FrozenSet[int], nodes: FrozenSet[int]) -> float:
    """Trees using many distinct edge labels are more informative.

    This is the kind of score that prefers the paper's ``t_beta``-style
    connections (through accounts and affiliations) over a trivial hop
    through a country node.
    """
    if not edges:
        return 0.0
    labels = {graph.edge(e).label for e in edges}
    return len(labels) / len(edges)


def hub_penalty_score(graph: Graph, edges: FrozenSet[int], nodes: FrozenSet[int]) -> float:
    """Penalize trees passing through high-degree hub nodes.

    Hubs (countries, big organizations) connect everything to everything
    and rarely carry investigative value; the score decays with the log
    degree mass of the tree's nodes.
    """
    mass = sum(math.log2(1 + graph.degree(n)) for n in nodes)
    return 1.0 / (1.0 + mass)


def specificity_score(graph: Graph, edges: FrozenSet[int], nodes: FrozenSet[int]) -> float:
    """Blend of small size, label diversity and hub avoidance."""
    return (
        0.4 * size_score(graph, edges, nodes)
        + 0.3 * label_diversity_score(graph, edges, nodes)
        + 0.3 * hub_penalty_score(graph, edges, nodes)
    )


#: Built-in score functions addressable from EQL text (``SCORE size`` etc.).
SCORE_FUNCTIONS: Dict[str, ScoreFunction] = {
    "size": size_score,
    "weight": weight_score,
    "diversity": label_diversity_score,
    "hub_penalty": hub_penalty_score,
    "specificity": specificity_score,
}


def register_score_function(name: str, function: ScoreFunction) -> None:
    """Register a custom score usable as ``SCORE name`` in EQL queries."""
    SCORE_FUNCTIONS[name] = function


def get_score_function(name: str) -> ScoreFunction:
    """Look up a registered score function by its EQL name."""
    try:
        return SCORE_FUNCTIONS[name]
    except KeyError:
        known = ", ".join(sorted(SCORE_FUNCTIONS))
        raise QueryError(f"unknown score function {name!r}; known: {known}") from None
