"""The Extended Query Language (EQL) — Sections 2 and 3 of the paper.

EQL combines Basic Graph Patterns (the conjunctive core of SPARQL/Cypher)
with Connecting Tree Patterns.  The concrete syntax is SPARQL-flavoured::

    SELECT ?x ?y ?z ?w
    WHERE {
      ?x citizenOf "USA" .
      ?y citizenOf "France" .
      ?z citizenOf "France" .
      FILTER(type(?x) = "entrepreneur")
      FILTER(type(?y) = "entrepreneur")
      FILTER(type(?z) = "politician")
      CONNECT(?x, ?y, ?z) AS ?w MAX 6 TIMEOUT 10
    }

:func:`parse_query` turns text into an :class:`~repro.query.ast.EQLQuery`;
:func:`evaluate_query` runs the three-step strategy of Section 3 (BGPs ->
seed sets -> CTPs -> joins).
"""

from repro.query.ast import (
    BGP,
    CTP,
    Condition,
    CTPFilters,
    EdgePattern,
    EQLQuery,
    Predicate,
)
from repro.query.parser import parse_query
from repro.query.bgp import evaluate_bgp
from repro.query.costmodel import (
    CostFeatures,
    CTPCostEstimator,
    DeadlineLedger,
    QuerySchedule,
    ScheduleReport,
    choose_mode,
)
from repro.query.evaluator import QueryResult, evaluate_query
from repro.query.parallel import BatchResult, evaluate_queries
from repro.query.pool import WorkerPool
from repro.query.scoring import SCORE_FUNCTIONS, get_score_function, register_score_function

__all__ = [
    "BGP",
    "BatchResult",
    "WorkerPool",
    "CTP",
    "CTPCostEstimator",
    "CTPFilters",
    "Condition",
    "CostFeatures",
    "DeadlineLedger",
    "EQLQuery",
    "EdgePattern",
    "Predicate",
    "QueryResult",
    "QuerySchedule",
    "SCORE_FUNCTIONS",
    "ScheduleReport",
    "choose_mode",
    "evaluate_bgp",
    "evaluate_queries",
    "evaluate_query",
    "get_score_function",
    "parse_query",
    "register_score_function",
]
