"""EQL concrete syntax: tokenizer and recursive-descent parser.

The surface syntax extends a SPARQL-like core (as the paper's prototype
extends SPARQL) with the ``CONNECT(...) AS ?v`` construct for CTPs::

    SELECT ?x ?w WHERE {
      ?x founded "OrgB" .
      FILTER(type(?x) = "entrepreneur" AND label(?x) ~ "*ob")
      CONNECT(?x, "France", *) AS ?w UNI LABEL("citizenOf", "locatedIn")
                                     MAX 6 SCORE size TOP 3 TIMEOUT 2.5
    }

* A bare string/identifier in a triple or CONNECT position is the paper's
  shorthand for ``label(v) = c`` over a fresh variable.
* ``*`` as a CONNECT argument denotes an ``N`` (wildcard) seed set
  (Section 4.9): any graph node matches.
* ``FILTER`` conditions always constrain exactly one variable
  (Definition 2.2); they are attached to that variable's predicate wherever
  it occurs.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ParseError, ValidationError
from repro.query.ast import CTP, Condition, CTPFilters, EdgePattern, EQLQuery, Predicate

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>\#[^\n]*)
  | (?P<var>\?[A-Za-z_][A-Za-z0-9_]*)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<number>-?\d+(?:\.\d+)?)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op><=|>=|!=|=|<|>|~)
  | (?P<punct>[{}(),.*])
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "select",
    "where",
    "connect",
    "as",
    "filter",
    "uni",
    "label",
    "max",
    "score",
    "top",
    "timeout",
    "limit",
    "and",
}


class _Token:
    __slots__ = ("kind", "value", "line")

    def __init__(self, kind: str, value: Any, line: int):
        self.kind = kind
        self.value = value
        self.line = line

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.kind}, {self.value!r})"


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    position = 0
    line = 1
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError(f"unexpected character {text[position]!r}", position=position, line=line)
        line += text.count("\n", position, match.end())
        position = match.end()
        kind = match.lastgroup
        if kind in ("ws", "comment"):
            continue
        value: Any = match.group()
        if kind == "var":
            value = value[1:]
        elif kind == "string":
            value = value[1:-1].replace('\\"', '"').replace("\\\\", "\\")
        elif kind == "number":
            value = float(value) if "." in value else int(value)
        elif kind == "ident" and value.lower() in _KEYWORDS:
            kind = "keyword"
            value = value.lower()
        tokens.append(_Token(kind, value, line))
    tokens.append(_Token("eof", None, line))
    return tokens


class _Parser:
    def __init__(self, text: str):
        self.tokens = _tokenize(text)
        self.position = 0
        self.anon_counter = 0
        # raw collected pieces
        self.triples: List[Tuple[Any, Any, Any]] = []  # terms
        self.connects: List[Tuple[List[Any], str, CTPFilters]] = []
        self.conditions: Dict[str, List[Condition]] = {}

    # ------------------------------------------------------------------
    # token plumbing
    # ------------------------------------------------------------------
    def peek(self) -> _Token:
        return self.tokens[self.position]

    def next(self) -> _Token:
        token = self.tokens[self.position]
        self.position += 1
        return token

    def error(self, message: str) -> ParseError:
        return ParseError(message, line=self.peek().line)

    def expect_keyword(self, keyword: str) -> None:
        token = self.next()
        if token.kind != "keyword" or token.value != keyword:
            raise ParseError(f"expected {keyword.upper()}, found {token.value!r}", line=token.line)

    def expect_punct(self, punct: str) -> None:
        token = self.next()
        if token.kind != "punct" or token.value != punct:
            raise ParseError(f"expected {punct!r}, found {token.value!r}", line=token.line)

    def at_punct(self, punct: str) -> bool:
        token = self.peek()
        return token.kind == "punct" and token.value == punct

    def at_keyword(self, keyword: str) -> bool:
        token = self.peek()
        return token.kind == "keyword" and token.value == keyword

    def fresh_var(self) -> str:
        self.anon_counter += 1
        return f"_c{self.anon_counter}"

    # ------------------------------------------------------------------
    # grammar
    # ------------------------------------------------------------------
    def parse(self) -> EQLQuery:
        self.expect_keyword("select")
        head = self._parse_head()
        self.expect_keyword("where")
        self.expect_punct("{")
        while not self.at_punct("}"):
            self._parse_clause()
        self.expect_punct("}")
        limit = None
        if self.at_keyword("limit"):
            self.next()
            limit = self._expect_int("LIMIT")
        if self.peek().kind != "eof":
            raise self.error(f"unexpected trailing input {self.peek().value!r}")
        return self._assemble(head, limit)

    def _parse_head(self) -> Optional[List[str]]:
        if self.at_punct("*"):
            self.next()
            return None  # all body variables
        head: List[str] = []
        while self.peek().kind == "var":
            head.append(self.next().value)
        if not head:
            raise self.error("SELECT needs at least one variable or *")
        return head

    def _parse_clause(self) -> None:
        if self.at_keyword("connect"):
            self._parse_connect()
        elif self.at_keyword("filter"):
            self._parse_filter()
        else:
            self._parse_triple()
        if self.at_punct("."):
            self.next()

    # a term: variable, or constant (label shorthand) over a fresh variable
    def _parse_term(self, allow_wildcard: bool = False):
        token = self.peek()
        if token.kind == "var":
            self.next()
            return ("var", token.value)
        if token.kind in ("string", "ident"):
            self.next()
            return ("const", token.value)
        if allow_wildcard and self.at_punct("*"):
            self.next()
            return ("wild", None)
        raise self.error(f"expected a variable or constant, found {token.value!r}")

    def _parse_triple(self) -> None:
        source = self._parse_term()
        edge = self._parse_term()
        target = self._parse_term()
        self.triples.append((source, edge, target))

    def _parse_connect(self) -> None:
        self.expect_keyword("connect")
        self.expect_punct("(")
        seeds = [self._parse_term(allow_wildcard=True)]
        while self.at_punct(","):
            self.next()
            seeds.append(self._parse_term(allow_wildcard=True))
        self.expect_punct(")")
        if len(seeds) < 2:
            raise self.error("CONNECT needs at least two seed arguments")
        self.expect_keyword("as")
        token = self.next()
        if token.kind != "var":
            raise ParseError(f"expected the tree variable after AS, found {token.value!r}", line=token.line)
        tree_var = token.value
        filters = self._parse_ctp_filters()
        self.connects.append((seeds, tree_var, filters))

    def _parse_ctp_filters(self) -> CTPFilters:
        uni = None  # tri-state: None = unspecified, inherit the base config
        labels = None
        max_edges = None
        score = None
        top_k = None
        timeout = None
        limit = None
        while self.peek().kind == "keyword":
            keyword = self.peek().value
            if keyword == "uni":
                self.next()
                uni = True
            elif keyword == "label":
                self.next()
                self.expect_punct("(")
                labels = [self._expect_string()]
                while self.at_punct(","):
                    self.next()
                    labels.append(self._expect_string())
                self.expect_punct(")")
            elif keyword == "max":
                self.next()
                max_edges = self._expect_int("MAX")
            elif keyword == "score":
                self.next()
                token = self.next()
                if token.kind != "ident":
                    raise ParseError(f"expected a score name after SCORE, found {token.value!r}", line=token.line)
                score = token.value
                if self.at_keyword("top"):
                    self.next()
                    top_k = self._expect_int("TOP")
            elif keyword == "timeout":
                self.next()
                token = self.next()
                if token.kind != "number":
                    raise ParseError(f"expected a number after TIMEOUT, found {token.value!r}", line=token.line)
                timeout = float(token.value)
            elif keyword == "limit":
                self.next()
                limit = self._expect_int("LIMIT")
            else:
                break
        return CTPFilters(
            uni=uni,
            labels=frozenset(labels) if labels else None,
            max_edges=max_edges,
            score=score,
            top_k=top_k,
            timeout=timeout,
            limit=limit,
        )

    def _expect_string(self) -> str:
        token = self.next()
        if token.kind not in ("string", "ident"):
            raise ParseError(f"expected a label string, found {token.value!r}", line=token.line)
        return token.value

    def _expect_int(self, context: str) -> int:
        token = self.next()
        if token.kind != "number" or not isinstance(token.value, int):
            raise ParseError(f"expected an integer after {context}, found {token.value!r}", line=token.line)
        return token.value

    def _parse_filter(self) -> None:
        self.expect_keyword("filter")
        self.expect_punct("(")
        self._parse_condition()
        while self.at_keyword("and"):
            self.next()
            self._parse_condition()
        self.expect_punct(")")

    def _parse_condition(self) -> None:
        token = self.next()
        if token.kind == "ident" or (token.kind == "keyword" and token.value == "label"):
            # prop(?v) op literal — note LABEL is also a CTP filter keyword,
            # so it arrives as a keyword token here.
            prop = token.value
            self.expect_punct("(")
            var_token = self.next()
            if var_token.kind != "var":
                raise ParseError(f"expected a variable, found {var_token.value!r}", line=var_token.line)
            var = var_token.value
            self.expect_punct(")")
        elif token.kind == "var":
            # ?v op literal — shorthand for label(?v) op literal
            prop = "label"
            var = token.value
        else:
            raise ParseError(f"expected a condition, found {token.value!r}", line=token.line)
        op_token = self.next()
        if op_token.kind != "op":
            raise ParseError(f"expected a comparison operator, found {op_token.value!r}", line=op_token.line)
        literal_token = self.next()
        if literal_token.kind not in ("string", "number", "ident"):
            raise ParseError(f"expected a literal, found {literal_token.value!r}", line=literal_token.line)
        self.conditions.setdefault(var, []).append(Condition(prop, op_token.value, literal_token.value))

    # ------------------------------------------------------------------
    # assembly
    # ------------------------------------------------------------------
    def _predicate_for(self, term) -> Predicate:
        kind, value = term
        if kind == "var":
            return Predicate(value, tuple(self.conditions.get(value, ())))
        if kind == "const":
            return Predicate.label_equals(self.fresh_var(), value)
        return Predicate(self.fresh_var())  # wildcard: empty, unused elsewhere

    def _assemble(self, head: Optional[List[str]], limit: Optional[int] = None) -> EQLQuery:
        patterns = tuple(
            EdgePattern(self._predicate_for(s), self._predicate_for(e), self._predicate_for(t))
            for s, e, t in self.triples
        )
        ctps = tuple(
            CTP(tuple(self._predicate_for(seed) for seed in seeds), tree_var, filters)
            for seeds, tree_var, filters in self.connects
        )
        body_vars: List[str] = []
        for pattern in patterns:
            for var in pattern.variables():
                if var not in body_vars:
                    body_vars.append(var)
        for ctp in ctps:
            for var in ctp.seed_vars():
                if var not in body_vars:
                    body_vars.append(var)
            body_vars.append(ctp.tree_var)
        for var in self.conditions:
            if var not in body_vars:
                raise ValidationError(f"FILTER constrains ?{var}, which does not occur in the query body")
        if head is None:
            head = [var for var in body_vars if not var.startswith("_c")]
        return EQLQuery(head=tuple(head), patterns=patterns, ctps=ctps, limit=limit)


def parse_query(text: str) -> EQLQuery:
    """Parse EQL text into an :class:`~repro.query.ast.EQLQuery`.

    Raises :class:`~repro.errors.ParseError` on lexical/syntactic problems
    and :class:`~repro.errors.ValidationError` on well-formedness violations
    (Definitions 2.4 - 2.6).
    """
    return _Parser(text).parse()
