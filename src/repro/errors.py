"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything produced by this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by this library."""


class GraphError(ReproError):
    """Raised for malformed graph operations (unknown nodes, bad edges...)."""


class SnapshotError(GraphError):
    """Raised when a binary CSR snapshot cannot be read or written.

    Covers bad magic, format-version mismatches, truncated or corrupt
    files, and byte-order mismatches (:mod:`repro.graph.snapshot`).
    """


class StorageError(ReproError):
    """Raised by the relational substrate (schema mismatches, bad joins)."""


class QueryError(ReproError):
    """Base class for query-related errors."""


class ParseError(QueryError):
    """Raised when EQL text cannot be parsed.

    Carries the position of the offending token to help users fix queries.
    """

    def __init__(self, message: str, position: int = -1, line: int = -1):
        self.position = position
        self.line = line
        suffix = ""
        if line >= 0:
            suffix = f" (line {line})"
        elif position >= 0:
            suffix = f" (at offset {position})"
        super().__init__(message + suffix)


class ValidationError(QueryError):
    """Raised when a syntactically valid query violates EQL well-formedness.

    Examples: a CTP tree variable used twice (Def 2.6), a disconnected BGP
    (Def 2.4), or a predicate over several variables (Def 2.2).
    """


class EvaluationError(QueryError):
    """Raised when query evaluation fails for semantic reasons."""


class SearchError(ReproError):
    """Raised for invalid CTP search configurations."""


class ConfigError(SearchError, ValueError):
    """Raised when a :class:`~repro.ctp.config.SearchConfig` is invalid.

    Subclasses :class:`ValueError` as well so historical ``except
    ValueError`` call sites keep working, but carries the library
    hierarchy (``ReproError`` -> ``SearchError``) so the CLI and servers
    can surface it as a user error instead of a crash.
    """


class PoolError(ReproError):
    """Raised for invalid worker-pool operations (:mod:`repro.query.pool`).

    Examples: submitting to a closed :class:`~repro.query.pool.WorkerPool`,
    or constructing one with a non-positive worker count.
    """


class PoolClosedError(PoolError):
    """Raised by :meth:`WorkerPool.submit`/`ping`/`respawn` after ``close()``.

    A typed, stable signal that the pool's lifecycle is over — callers used
    to see whatever the torn-down executor happened to throw.  The CLI
    surfaces it as a user-facing error line, and the dispatch layer treats
    it as "degrade without the pool", never as a retryable worker crash.
    """


class WorkerHangError(PoolError):
    """Raised when a pooled CTP evaluation blows its hang watchdog.

    The watchdog is derived from the CTP timeouts of the dispatched jobs
    (plus a grace period): a worker that does not answer inside it is
    presumed wedged — stuck in native code, a pathological scorer, an
    injected fault — and is killed and respawned rather than awaited
    forever.  Retryable: the evaluation is idempotent, so the dispatch
    layer may re-run it on the fresh workers if the retry policy and the
    remaining deadline budget allow.
    """


class StaleViewError(PoolError):
    """Raised when a pinned graph view predates the pool's base snapshot.

    MVCC generations (:mod:`repro.graph.delta`): a dispatch over an
    :class:`~repro.graph.delta.OverlayGraph` ships only the view's delta
    to the pooled workers, which apply it on top of their mmap-loaded
    base.  If the source graph compacted past the view's base generation
    the workers no longer hold that base, so the pooled path cannot serve
    the view consistently — the dispatch layer degrades to thread/serial
    (which read the pinned view directly) instead of charging the breaker
    for what is merely an outdated reader.
    """


class PoolThrashWarning(RuntimeWarning):
    """Warned when a :class:`~repro.query.pool.WorkerPool` resnapshot-thrashes.

    A full re-snapshot + worker respawn on (nearly) every dispatch means
    the workload mutates faster than the pool amortizes — the exact
    failure mode delta overlays exist to avoid.  The pool counts these
    episodes (``resnapshot_thrash``) and warns once per episode so a
    misconfigured compaction threshold is loud instead of silently slow.
    """


class FaultInjected(ReproError):
    """Raised by :mod:`repro.faults` machinery inside a fault-injected run.

    Only ever raised when a test/bench installed a
    :class:`~repro.faults.FaultPlan` (e.g. the ``scorer`` fault raises it
    from inside a score callable mid-search).  Deterministic user-code
    failures are *not* retryable — the error must surface to the caller as
    a typed error, never be papered over by a retry that happens to miss
    the injection.
    """


class AdmissionError(PoolError):
    """Raised when a query server refuses a request up front.

    Admission control (:mod:`repro.serve`): the bounded queue is full or
    the request's deadline already expired before evaluation could start.
    Servers normally convert this into a typed rejection response; it is
    only *raised* by the lower-level hooks.
    """


class BudgetExceeded(ReproError):
    """Internal signal used to unwind a search when a deadline fires.

    Searches catch this and return the results accumulated so far, flagging
    the result set as partial; it never escapes the public API.
    """


class WorkloadError(ReproError):
    """Raised for invalid workload-generator parameters."""
