"""Measurement primitives shared by all experiments.

The paper averages every point over 3 executions and enforces per-run
timeouts (10 or 15 minutes on their testbed); :func:`time_call` does the
same at configurable scale, and :class:`ExperimentReport` collects rows
that the reporting module renders as the paper-style tables/series.
"""

from __future__ import annotations

import json
import statistics
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple


@dataclass
class Measurement:
    """One timed point: parameters plus measured values."""

    params: Dict[str, Any]
    seconds: float
    values: Dict[str, Any] = field(default_factory=dict)

    def row(self) -> Dict[str, Any]:
        out = dict(self.params)
        out["time_ms"] = round(self.seconds * 1000.0, 3)
        out.update(self.values)
        return out


def time_call(fn: Callable[[], Any], repeats: int = 1) -> Tuple[float, Any]:
    """Run ``fn`` ``repeats`` times; return (mean seconds, last result).

    The paper reports the average of 3 executions; we default to 1 because
    the pure-Python runs are deterministic and the suite covers many points,
    but the knob is exposed end-to-end (``--repeats``).
    """
    durations = []
    result = None
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        result = fn()
        durations.append(time.perf_counter() - started)
    return statistics.fmean(durations), result


@dataclass
class ExperimentReport:
    """The outcome of one experiment (one paper table or figure)."""

    experiment: str
    title: str
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    config: Dict[str, Any] = field(default_factory=dict)

    def add(self, measurement: Measurement) -> None:
        self.rows.append(measurement.row())

    def add_row(self, **values: Any) -> None:
        self.rows.append(values)

    def note(self, text: str) -> None:
        self.notes.append(text)

    # ------------------------------------------------------------------
    def columns(self) -> List[str]:
        columns: List[str] = []
        for row in self.rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
        return columns

    def to_markdown(self) -> str:
        from repro.bench.reporting import report_to_markdown

        return report_to_markdown(self)

    def save_json(self, directory: str = "bench_results") -> Path:
        path = Path(directory)
        path.mkdir(parents=True, exist_ok=True)
        target = path / f"{self.experiment}.json"
        payload = {
            "experiment": self.experiment,
            "title": self.title,
            "config": self.config,
            "rows": self.rows,
            "notes": self.notes,
        }
        with open(target, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, default=str)
        return target


def format_cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}" if abs(value) < 1000 else f"{value:.0f}"
    if value is None:
        return "-"
    return str(value)
