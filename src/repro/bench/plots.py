"""ASCII rendering of experiment series — figure-shaped terminal output.

The paper presents its evaluation as log-scale line plots (Figures 10-14).
This module renders the same data as terminal sparklines so a reader can
see the *shapes* (orderings, crossovers, blow-ups, missing curves) right
in the benchmark output, without a plotting stack:

    == fig11/comb nA=6 — time_ms (log) over sL ==
    gam     ▃▄▅▆▇▇███  8.9 .. 8242 ms   (3 timeouts)
    molesp  ▁▂▂▃▃▄▄▅▅  0.5 .. 2063 ms

Charts are derived purely from experiment rows (the JSON the harness
saves), so they can also be regenerated offline from ``bench_results/``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

_BLOCKS = "▁▂▃▄▅▆▇█"


def _log_scale(values: Sequence[Optional[float]], levels: int = len(_BLOCKS)) -> List[Optional[int]]:
    """Map positive values to 0..levels-1 on a log scale (None passes through)."""
    import math

    present = [v for v in values if v is not None and v > 0]
    if not present:
        return [None if v is None else 0 for v in values]
    low = math.log10(min(present))
    high = math.log10(max(present))
    span = max(high - low, 1e-9)
    out: List[Optional[int]] = []
    for value in values:
        if value is None:
            out.append(None)
        elif value <= 0:
            out.append(0)
        else:
            out.append(min(levels - 1, int((math.log10(value) - low) / span * (levels - 1) + 0.5)))
    return out


def sparkline(values: Sequence[Optional[float]]) -> str:
    """One unicode sparkline; gaps (None) become spaces — the paper's
    'missing points' for timed-out runs."""
    return "".join(" " if level is None else _BLOCKS[level] for level in _log_scale(values))


def render_series_chart(
    rows: Sequence[Dict[str, Any]],
    index: str,
    series: str,
    value: str,
    title: str = "",
    timeout_key: Optional[str] = "timed_out",
) -> str:
    """Render long-form rows as one sparkline per series value.

    ``index`` is the x axis (sorted ascending); ``value`` the measured
    quantity; rows whose ``timeout_key`` is truthy count as missing points
    (rendered as gaps), mirroring the paper's missing curves.
    """
    xs = sorted({row[index] for row in rows})
    names: List[str] = []
    data: Dict[str, Dict[Any, Optional[float]]] = {}
    timeouts: Dict[str, int] = {}
    for row in rows:
        name = str(row[series])
        if name not in data:
            names.append(name)
            data[name] = {}
            timeouts[name] = 0
        if timeout_key and row.get(timeout_key):
            data[name][row[index]] = None
            timeouts[name] += 1
        else:
            data[name][row[index]] = row.get(value)
    lines = []
    if title:
        lines.append(f"== {title} ==")
    width = max((len(n) for n in names), default=0)
    for name in names:
        values = [data[name].get(x) for x in xs]
        present = [v for v in values if v is not None]
        if present:
            annotation = f"{min(present):.3g} .. {max(present):.3g}"
        else:
            annotation = "(all timed out)"
        suffix = f"   ({timeouts[name]} timeouts)" if timeouts[name] else ""
        lines.append(f"{name.ljust(width)}  {sparkline(values)}  {annotation}{suffix}")
    lines.append(f"{'x'.ljust(width)}  {index}: {xs[0]} .. {xs[-1]}")
    return "\n".join(lines)


#: How to slice each experiment's rows into figure-like panels:
#: (group-by columns, x axis, series column, y value).
CHART_SPECS: Dict[str, Tuple[Tuple[str, ...], str, str, str]] = {
    "fig02": ((), "N", "complete", "time_ms"),
    "fig10": (("family", "m"), "sL", "algorithm", "time_ms"),
    "fig11": (("family", "m"), "sL", "algorithm", "time_ms"),
    "fig12": ((), "m", "system", "avg_time_ms"),
    "fig13": (("sL",), "edges", "engine", "time_ms"),
    "fig14": (("sL",), "edges", "engine", "time_ms"),
}


def charts_for_experiment(experiment: str, rows: Sequence[Dict[str, Any]]) -> str:
    """Render every panel of a known experiment (empty string otherwise)."""
    spec = CHART_SPECS.get(experiment)
    if spec is None or not rows:
        return ""
    group_columns, index, series, value = spec
    panels: Dict[Tuple, List[Dict[str, Any]]] = {}
    for row in rows:
        key = tuple(row.get(column) for column in group_columns)
        panels.setdefault(key, []).append(row)
    parts = []
    for key in sorted(panels, key=str):
        label = ", ".join(f"{c}={v}" for c, v in zip(group_columns, key))
        title = f"{experiment}{' [' + label + ']' if label else ''} — {value} (log) over {index}"
        parts.append(render_series_chart(panels[key], index, series, value, title))
    return "\n\n".join(parts)
