"""Rendering experiment reports as aligned text / markdown tables."""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from repro.bench.harness import ExperimentReport, format_cell


def render_table(rows: Sequence[Dict[str, Any]], columns: Sequence[str]) -> str:
    """A fixed-width table, one row per measurement."""
    if not rows:
        return "(no rows)"
    header = list(columns)
    rendered = [[format_cell(row.get(c)) for c in header] for row in rows]
    widths = [max(len(header[i]), max(len(r[i]) for r in rendered)) for i in range(len(header))]
    lines = [
        "  ".join(header[i].ljust(widths[i]) for i in range(len(header))),
        "  ".join("-" * widths[i] for i in range(len(header))),
    ]
    for row in rendered:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(header))))
    return "\n".join(lines)


def report_to_text(report: ExperimentReport) -> str:
    lines = [f"== {report.experiment}: {report.title} =="]
    if report.config:
        config = ", ".join(f"{k}={v}" for k, v in report.config.items())
        lines.append(f"config: {config}")
    lines.append(render_table(report.rows, report.columns()))
    for note in report.notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)


def report_to_markdown(report: ExperimentReport) -> str:
    lines = [f"### {report.experiment}: {report.title}", ""]
    if report.config:
        config = ", ".join(f"`{k}={v}`" for k, v in report.config.items())
        lines.append(f"*config:* {config}")
        lines.append("")
    columns = report.columns()
    if report.rows:
        lines.append("| " + " | ".join(columns) + " |")
        lines.append("|" + "|".join("---" for _ in columns) + "|")
        for row in report.rows:
            lines.append("| " + " | ".join(format_cell(row.get(c)) for c in columns) + " |")
    for note in report.notes:
        lines.append("")
        lines.append(f"> {note}")
    return "\n".join(lines)


def pivot(
    rows: Sequence[Dict[str, Any]],
    index: str,
    series: str,
    value: str,
) -> List[Dict[str, Any]]:
    """Pivot long-form measurements into one row per index value.

    Useful to render figure-style data (x axis = ``index``, one column per
    ``series`` value) the way the paper's plots present it.
    """
    series_values: List[Any] = []
    by_index: Dict[Any, Dict[str, Any]] = {}
    for row in rows:
        key = row[index]
        label = str(row[series])
        if label not in series_values:
            series_values.append(label)
        by_index.setdefault(key, {index: key})[label] = row.get(value)
    return [by_index[k] for k in sorted(by_index)]
