"""E-interning — frozenset vs interned tree state on the GAM-family loops.

Not tied to a paper figure.  Quantifies what the interning layer
(:mod:`repro.ctp.interning` — hash-consed edge-set handles, node bitmasks,
sat-bucketed merge partners, the balanced-pop size heap) buys over the
seed frozenset bookkeeping.  Every engine row runs the *same* engine twice
— ``SearchConfig(interning=False)`` selects the frozenset fallback with
the seed's linear partner scans — so the delta is exactly the tree-state
representation.

Two groups of rows:

* ``engine`` rows — end-to-end searches.  The merge-heavy rows use
  multi-node seed sets (the paper's keyword regime, Section 5.3): many
  trees per root share few distinct sat masks, which is where bucketed
  ``TreesRootedIn`` skips whole partner groups wholesale.  The ``gam`` /
  ``bft-am`` rows are the neutrality check — those engines get little
  from the index, and the pool must not tax them.
* ``primitive`` rows — raw Grow/Merge/history throughput on synthetic
  edge-set streams, where re-deriving a set the pool has seen is a memo
  hit (O(1)) against the frozenset build-and-rehash (O(|tree|)).

Interpretation guide: speedup = frozen_ms / interned_ms.  Expect >=1.5x
on the merge-heavy MoESP/MoLESP rows, ~1x on GAM/BFT (plain BFT on tiny
chains can pay up to ~15% — pool calls without any history/merge win —
while BFT-M/AM and real-graph workloads sit within ~5%).
"""

from __future__ import annotations

import random
import time
from typing import Callable, Optional, Tuple

from repro.bench.harness import ExperimentReport, Measurement
from repro.ctp.bft import BFTAMSearch
from repro.ctp.config import SearchConfig
from repro.ctp.gam import GAMSearch
from repro.ctp.interning import EdgeSetPool
from repro.ctp.moesp import MoESPSearch
from repro.ctp.molesp import MoLESPSearch
from repro.testing import random_graph, random_seed_sets
from repro.workloads.cdf import cdf_graph
from repro.workloads.synthetic import chain_graph, star_graph


def grouped_star(num_sets: int, tips_per_set: int, arm_length: int):
    """A star whose arm tips are grouped into few multi-node seed sets.

    This is the merge-cascade worst case the interning layer targets: all
    trees meet at the hub, every seed set contributes many alternative
    tips, so ``TreesRootedIn[hub]`` holds many trees over few distinct sat
    masks — exactly what the sat-bucket index skips wholesale.
    """
    graph, singleton = star_graph(num_sets * tips_per_set, arm_length)
    tips = [seeds[0] for seeds in singleton]
    seed_sets = tuple(
        tuple(tips[index * tips_per_set : (index + 1) * tips_per_set])
        for index in range(num_sets)
    )
    return graph, seed_sets


def labeled_random(num_labels: int = 8):
    """A dense random multigraph with diverse edge labels + LABEL filter."""
    graph = random_graph(random.Random(42), 60, 150, num_labels=num_labels)
    seed_sets = random_seed_sets(random.Random(43), graph, 3, max_size=6)
    labels = frozenset(f"l{index}" for index in range(max(2, num_labels - 3)))
    return graph, seed_sets, labels


def _ab(algorithm, graph, seed_sets, repeats: int, timeout: float, **config) -> Tuple[float, float, object]:
    """Interleaved best-of-N A/B of the two representations."""
    frozen = interned = float("inf")
    stats = None
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        algorithm.run(graph, seed_sets, SearchConfig(interning=False, timeout=timeout, **config))
        frozen = min(frozen, time.perf_counter() - started)
        started = time.perf_counter()
        result = algorithm.run(graph, seed_sets, SearchConfig(interning=True, timeout=timeout, **config))
        interned = min(interned, time.perf_counter() - started)
        stats = result.stats
    return frozen, interned, stats


# ----------------------------------------------------------------------
# primitive throughput (Grow / Merge / history) on synthetic streams
# ----------------------------------------------------------------------
def _grow_stream(path_edges: int, rounds: int) -> Tuple[Callable[[], int], Callable[[], int]]:
    """Re-derive the same Grow chain ``rounds`` times (prefixes of a path)."""

    def frozen() -> int:
        hist = set()
        total = 0
        for _ in range(rounds):
            edges = frozenset()
            for edge_id in range(path_edges):
                edges = edges | {edge_id}
                if edges not in hist:
                    hist.add(edges)
                    total += 1
        return total

    def interned() -> int:
        pool = EdgeSetPool()
        hist = set()
        total = 0
        for _ in range(rounds):
            eset = pool.EMPTY
            for edge_id in range(path_edges):
                eset = pool.union1(eset, edge_id)
                if eset not in hist:
                    hist.add(eset)
                    total += 1
        return total

    return frozen, interned


def _merge_stream(num_pieces: int, rounds: int) -> Tuple[Callable[[], int], Callable[[], int]]:
    """Merge disjoint 8-edge pieces pairwise, tournament style, repeatedly."""
    pieces = [frozenset(range(base * 8, base * 8 + 8)) for base in range(num_pieces)]

    def frozen() -> int:
        hist = set()
        total = 0
        for _ in range(rounds):
            level = pieces
            while len(level) > 1:
                merged = []
                for index in range(0, len(level) - 1, 2):
                    union = level[index] | level[index + 1]
                    if union not in hist:
                        hist.add(union)
                        total += 1
                    merged.append(union)
                level = merged
        return total

    def interned() -> int:
        pool = EdgeSetPool()
        ids = [pool.intern(piece) for piece in pieces]
        hist = set()
        total = 0
        for _ in range(rounds):
            level = ids
            while len(level) > 1:
                merged = []
                for index in range(0, len(level) - 1, 2):
                    union = pool.union2(level[index], level[index + 1])
                    if union not in hist:
                        hist.add(union)
                        total += 1
                    merged.append(union)
                level = merged
        return total

    return frozen, interned


def run(scale: float = 1.0, timeout: Optional[float] = None, repeats: int = 1) -> ExperimentReport:
    timeout = timeout if timeout is not None else 60.0
    report = ExperimentReport(
        experiment="interning",
        title="Interning micro-bench: frozenset vs hash-consed tree state (GAM-family hot loops)",
        config={"scale": scale, "timeout": timeout, "repeats": repeats},
    )

    # --- engine rows ---------------------------------------------------
    tips = max(2, round(5 * scale))
    tips_wide = max(3, round(8 * scale))
    chain_n = max(6, round(12 * scale))
    cdf_trees = max(6, round(20 * scale))
    star_groups_4 = grouped_star(4, tips, 2)
    star_groups_3 = grouped_star(3, tips_wide, 2)
    chain = chain_graph(chain_n)
    cdf = cdf_graph(num_trees=cdf_trees, num_links=2 * cdf_trees, link_length=3, m=2, seed=7)
    cdf_seeds = (tuple(cdf.eligible_top), tuple(cdf.eligible_bottom))
    gam_chain = chain_graph(max(5, round(9 * scale)))
    bft_star = star_graph(max(3, round(5 * scale)), 3)
    diverse_graph, diverse_seeds, diverse_labels = labeled_random()
    label_cap = max(2000, round(30000 * scale))

    engine_rows = (
        ("molesp", f"star-groups-4x{tips}", "merge-heavy", MoLESPSearch(), star_groups_4, {}),
        ("molesp", f"star-groups-3x{tips_wide}", "merge-heavy", MoLESPSearch(), star_groups_3, {}),
        ("moesp", f"star-groups-4x{tips}", "merge-heavy", MoESPSearch(), star_groups_4, {}),
        ("molesp", f"chain-{chain_n}", "merge-heavy", MoLESPSearch(), chain, {}),
        (
            "molesp",
            "random-labeled",
            "label-diverse",
            MoLESPSearch(),
            (diverse_graph, diverse_seeds),
            {"labels": diverse_labels, "max_trees": label_cap},
        ),
        ("molesp", "cdf-community-m2", "sparse-tax", MoLESPSearch(), (cdf.graph, cdf_seeds), {}),
        ("gam", "chain", "neutral", GAMSearch(), gam_chain, {}),
        ("bft-am", "star", "neutral", BFTAMSearch(), bft_star, {}),
    )
    for algo_name, workload, regime, algorithm, (graph, seed_sets), extra in engine_rows:
        frozen_s, interned_s, stats = _ab(algorithm, graph, seed_sets, repeats, timeout, **extra)
        report.add(
            Measurement(
                params={"group": "engine", "algo": algo_name, "workload": workload, "regime": regime},
                seconds=frozen_s,
                values={
                    "frozen_ms": round(frozen_s * 1000, 3),
                    "interned_ms": round(interned_s * 1000, 3),
                    "speedup": round(frozen_s / interned_s, 2) if interned_s else float("inf"),
                    "buckets_skipped": stats.merge_buckets_skipped,
                    "pool_sets": stats.pool_sets,
                },
            )
        )

    # --- primitive rows ------------------------------------------------
    rounds = max(1, round(200 * scale))
    primitives = (
        ("grow-history", _grow_stream(64, rounds)),
        ("merge-tournament", _merge_stream(32, rounds)),
    )
    for op_name, (frozen_op, interned_op) in primitives:
        frozen_op(), interned_op()  # warm-up
        frozen_s = interned_s = float("inf")
        for _ in range(max(1, repeats)):
            started = time.perf_counter()
            frozen_op()
            frozen_s = min(frozen_s, time.perf_counter() - started)
            started = time.perf_counter()
            interned_op()
            interned_s = min(interned_s, time.perf_counter() - started)
        report.add(
            Measurement(
                params={"group": "primitive", "algo": "-", "workload": op_name, "regime": "rederive"},
                seconds=frozen_s,
                values={
                    "frozen_ms": round(frozen_s * 1000, 3),
                    "interned_ms": round(interned_s * 1000, 3),
                    "speedup": round(frozen_s / interned_s, 2) if interned_s else float("inf"),
                },
            )
        )

    report.note(
        "speedup = frozen_ms / interned_ms; engine rows rerun the same engine with "
        "SearchConfig(interning=False) (seed frozenset bookkeeping + linear partner "
        "scans) vs the interned default (edge-set pool, node bitmasks, sat-bucketed "
        "TreesRootedIn, balanced-pop size heap)"
    )
    report.note(
        "merge-heavy rows use multi-node seed sets (keyword regime): many partners, "
        "few sat masks -> bucket skipping dominates; neutral rows check the pool tax "
        "on engines that cannot benefit (target: within ~5%)"
    )
    report.note(
        "the sparse-tax row is the documented worst case: on tree-shaped community "
        "graphs nearly every derived edge set is new and no merge pressure exists, "
        "so interning pays its bookkeeping (~25%) without a history win — use "
        "SearchConfig(interning=False) for that regime"
    )
    return report
