"""E-fig12 — Figure 12: GAM and MoLESP vs QGSTP on a DBPedia-like graph.

The paper runs the 312 CTPs of QGSTP's DBPedia workload (83/98/85/38/8
CTPs with m = 2..6), aligning semantics with ``UNI`` + ``LIMIT 1``.
Expected shape (Section 5.4.3): MoLESP is fastest across all m and scales
with m; GAM is competitive for small m but times out at m=6; QGSTP
(polynomial, single-answer) sits in between and stays flat.

We run the same m-distribution on the seeded scale-free DBPedia substitute
(see DESIGN.md §3) and report average per-CTP time grouped by m.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional

from repro.baselines.qgstp import QGSTPApproximation
from repro.bench.harness import ExperimentReport, time_call
from repro.ctp.config import SearchConfig
from repro.ctp.registry import get_algorithm
from repro.workloads.realworld import dbpedia_like, sample_ctp_workload

SYSTEMS = ("qgstp", "molesp", "gam")


def run(scale: float = 1.0, timeout: Optional[float] = None, repeats: int = 1) -> ExperimentReport:
    timeout = timeout if timeout is not None else 5.0
    graph_scale = 0.05 * scale
    workload_scale = 0.1 * scale
    dataset = dbpedia_like(scale=graph_scale)
    workload = sample_ctp_workload(dataset.graph, scale=workload_scale, seed=42)
    report = ExperimentReport(
        experiment="fig12",
        title="Figure 12: QGSTP vs GAM vs MoLESP on DBPedia-like CTPs (UNI, LIMIT 1)",
        config={
            "scale": scale,
            "timeout": timeout,
            "graph_edges": dataset.graph.num_edges,
            "ctp_count": len(workload),
        },
    )
    by_group: Dict[tuple, List[float]] = defaultdict(list)
    timeouts: Dict[tuple, int] = defaultdict(int)
    solved: Dict[tuple, int] = defaultdict(int)
    config = SearchConfig(uni=True, limit=1, timeout=timeout)
    for seed_sets in workload:
        m = len(seed_sets)
        for system in SYSTEMS:
            if system == "qgstp":
                algorithm = QGSTPApproximation()
            else:
                algorithm = get_algorithm(system)
            seconds, results = time_call(lambda: algorithm.run(dataset.graph, seed_sets, config), repeats)
            by_group[(m, system)].append(seconds)
            if results.timed_out:
                timeouts[(m, system)] += 1
            if len(results):
                solved[(m, system)] += 1
    for (m, system) in sorted(by_group):
        samples = by_group[(m, system)]
        report.add_row(
            m=m,
            system=system,
            ctps=len(samples),
            avg_time_ms=round(sum(samples) / len(samples) * 1000.0, 3),
            solved=solved[(m, system)],
            timeouts=timeouts[(m, system)],
        )
    report.note("paper shape: MoLESP ~6-7x faster than QGSTP for all m; GAM competitive for m<=5, times out at m=6")
    return report
