"""E-delta — serving under live ingest: delta overlay vs resnapshot-per-mutation.

Not tied to a paper figure.  This is the load generator for the MVCC
PR's claim: before, any mutation between dispatches forced the worker
pool to re-snapshot the whole graph and have every worker re-mmap it —
a *mutating* serving workload (ingest interleaved with queries) paid the
full freeze on every write.  The delta overlay ships only the mutations
since the frozen base to the warm workers, and the pool re-snapshots
only when the accumulated delta crosses the compaction threshold.

Three regimes drive the same query stream through one prewarmed
:class:`~repro.serve.QueryServer` (process dispatch):

* ``static`` — no writes at all: the floor every other regime is
  compared against (``p50_vs_static``).
* ``mutate-legacy`` — an ingest batch lands before every round, with
  ``compaction_threshold=0``: any mutation compacts (and therefore
  re-snapshots + re-mmaps) at the next dispatch boundary — the pre-MVCC
  cost model.
* ``mutate-delta`` — the same ingest schedule with a real threshold:
  mutations ride the picklable delta to the existing workers and only a
  threshold crossing pays a compaction.

Correctness gate: after every ingest round, the server's rows for each
query are asserted bit-identical to a fresh ``evaluate_query`` over a
full ``graph.freeze()`` at that generation — the ``identical`` column
must be true on every row of a checked-in JSON, and ``resnapshots``
must equal ``compactions`` in the delta regime (re-snapshots happen at
compaction events only).
"""

from __future__ import annotations

import math
import os
import time
from concurrent.futures import ThreadPoolExecutor
from itertools import permutations
from typing import List, Optional, Sequence, Tuple

from repro.bench.experiments.micro_query_context import grouped_star
from repro.bench.harness import ExperimentReport, Measurement
from repro.ctp.config import SearchConfig
from repro.query.evaluator import evaluate_query
from repro.serve import IngestRequest, QueryRequest, QueryServer

NUM_GROUPS = 5
#: Delta mutations tolerated before the pool compacts (delta regime).
DELTA_THRESHOLD = 8


def _delta_query(pair_a: Tuple[int, int], pair_b: Tuple[int, int], max_edges: int) -> str:
    """A 2-CTP EQL query over two seed-group pairs (cf. E-serve)."""
    (a1, a2), (b1, b2) = pair_a, pair_b
    return f"""
    SELECT ?w0 ?w1 WHERE {{
      FILTER(type(?x) = "g{a1}")
      FILTER(type(?y) = "g{a2}")
      FILTER(type(?u) = "g{b1}")
      FILTER(type(?v) = "g{b2}")
      CONNECT(?x, ?y) AS ?w0 MAX {max_edges}
      CONNECT(?u, ?v) AS ?w1 MAX {max_edges}
    }}
    """


def _query_stream(count: int) -> List[str]:
    """``count`` pairwise-distinct queries — memo-proof latency samples."""
    pairs = list(permutations(range(NUM_GROUPS), 2))
    combos = [
        (pairs[i], pairs[(i + offset) % len(pairs)], 6 + (i + offset) % 2)
        for offset in range(1, len(pairs))
        for i in range(len(pairs))
    ]
    if count > len(combos):
        raise ValueError(f"stream of {count} exceeds {len(combos)} distinct queries")
    return [_delta_query(*combo) for combo in combos[:count]]


def _ingest_batch(graph, round_index: int) -> IngestRequest:
    """A small write batch: one new typed tip wired into the star.

    The tip carries a rotating seed-group type, so round N's queries over
    that group genuinely see the new node — the equivalence gate fails if
    a stale view ever leaks through.
    """
    group = round_index % NUM_GROUPS
    hub = 0  # grouped_star's center node
    new_id = graph.num_nodes
    return IngestRequest(
        nodes=((f"D{round_index}", f"g{group}"),),
        edges=((hub, new_id, "e", 1.0),),
        weights=((round_index % max(1, graph.num_edges), 1.0 + 0.25 * (round_index % 3)),),
    )


def _percentile(latencies: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (exact for the small samples a bench has)."""
    if not latencies:
        return 0.0
    ordered = sorted(latencies)
    rank = min(len(ordered), max(1, math.ceil(q / 100.0 * len(ordered))))
    return ordered[rank - 1]


def _drive(clients: int, texts: Sequence[str], handle_one) -> Tuple[List[float], float]:
    """Run the stream through ``handle_one`` from N client threads."""

    def timed(text: str) -> float:
        started = time.perf_counter()
        handle_one(text)
        return time.perf_counter() - started

    wall_started = time.perf_counter()
    with ThreadPoolExecutor(max_workers=clients, thread_name_prefix="repro-load") as pool:
        latencies = list(pool.map(timed, texts))
    return latencies, time.perf_counter() - wall_started


def run(scale: float = 1.0, timeout: Optional[float] = None, repeats: int = 1) -> ExperimentReport:
    timeout = timeout if timeout is not None else 30.0
    workers = os.cpu_count() or 1
    clients = 2 if scale <= 0.25 else 4
    rounds = max(3, round(6 * scale))
    per_round = max(2, round(4 * scale)) * max(1, repeats)
    report = ExperimentReport(
        experiment="delta",
        title="Delta-overlay MVCC: serving under live ingest vs resnapshot-per-mutation",
        config={
            "scale": scale,
            "timeout": timeout,
            "repeats": repeats,
            "cpu_count": os.cpu_count(),
            "pool_workers": workers,
            "clients": clients,
            "rounds": rounds,
            "requests_per_round": per_round,
            "delta_compaction_threshold": DELTA_THRESHOLD,
        },
    )

    tips = max(2, round(4 * scale))
    process_config = SearchConfig(parallelism=2, parallelism_mode="process")
    regimes = (
        ("static", None, False),
        ("mutate-legacy", 0, True),
        ("mutate-delta", DELTA_THRESHOLD, True),
    )
    static_p50 = None
    for regime, threshold, mutate in regimes:
        graph = grouped_star(NUM_GROUPS, tips, 3)
        stream = _query_stream(rounds * per_round)
        latencies: List[float] = []
        wall = 0.0
        identical = True
        generations = set()
        with QueryServer(
            graph,
            base_config=process_config,
            workers=workers,
            max_pending=max(8, clients),
            default_timeout=timeout,
            compaction_threshold=threshold if threshold is not None else 256,
        ) as server:
            server.prewarm()

            def warm_one(text: str) -> None:
                nonlocal identical
                response = server.handle(QueryRequest(query=text))
                if response.status != "ok":
                    raise RuntimeError(f"request failed: {response.error}")
                generations.add(response.stats.generation)
                fresh = evaluate_query(
                    graph.freeze(),
                    text,
                    base_config=SearchConfig(),
                    default_timeout=timeout,
                )
                if response.columns != fresh.columns or response.rows != fresh.rows:
                    identical = False

            for round_index in range(rounds):
                if mutate:
                    result = server.ingest(_ingest_batch(graph, round_index))
                    if not result.ok:
                        raise RuntimeError(f"ingest failed: {result.error}")
                chunk = stream[round_index * per_round : (round_index + 1) * per_round]
                lat, seconds = _drive(clients, chunk, warm_one)
                latencies.extend(lat)
                wall += seconds
            pool_stats = server.pool.stats()
            final_generation = server.stats()["generation"]
        p50 = _percentile(latencies, 50)
        if regime == "static":
            static_p50 = p50
        total = rounds * per_round
        report.add(
            Measurement(
                params={"regime": regime, "clients": clients, "requests": total},
                seconds=wall,
                values={
                    "p50_ms": round(p50 * 1000, 3),
                    "p99_ms": round(_percentile(latencies, 99) * 1000, 3),
                    "qps": round(total / wall, 2) if wall else float("inf"),
                    "p50_vs_static": (
                        round(p50 / static_p50, 2) if static_p50 else float("inf")
                    ),
                    "resnapshots": pool_stats["resnapshots"],
                    "compactions": pool_stats["compactions"],
                    "resnapshots_avoided": pool_stats["resnapshots_avoided"],
                    "resnapshot_thrash": pool_stats["resnapshot_thrash"],
                    "final_delta_size": pool_stats["delta_size"],
                    "final_generation": final_generation,
                    "generations_served": len(generations),
                    "identical": identical,
                },
            )
        )
        if not identical:
            report.note(
                f"CONSISTENCY FAILURE: {regime} rows differ from a fresh full "
                f"freeze at the response's generation"
            )

    report.note(
        "static = no writes (the latency floor); mutate-legacy = an ingest batch "
        "before every round with compaction_threshold=0, so every mutation compacts "
        "and re-snapshots at the next dispatch boundary (the pre-MVCC cost model); "
        "mutate-delta = the same schedule with a real threshold — mutations ride the "
        "picklable delta overlay to the warm workers"
    )
    report.note(
        "identical = every response's rows bit-equal to evaluate_query over a fresh "
        "full graph.freeze() at that response's generation; in mutate-delta, "
        "resnapshots equals compactions (re-snapshots happen only at compaction "
        "events), and the claim under test is p50_vs_static <= 2.0"
    )
    return report
