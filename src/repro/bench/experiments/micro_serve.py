"""E-serve — the long-lived query server vs per-query cold dispatch.

Not tied to a paper figure.  This is the load generator for the PR's
amortization claim: before, every ``evaluate_query`` in process mode
built a ``ProcessPoolExecutor``, had each worker load the snapshot, ran
one query, and tore everything down — so a *serving* workload (many
queries, one graph: Section 5's investigation sessions) paid spin-up on
every request.  The persistent :class:`~repro.query.pool.WorkerPool`
behind :class:`~repro.serve.QueryServer` pays it once.

The generator drives the same request stream through both paths at N
concurrent client threads and reports per-request latency percentiles
plus throughput:

* ``cold`` — the pre-fix behaviour: each request is an independent
  ``evaluate_query`` with ``parallelism_mode="process"``, building and
  discarding its own executor (workers re-spawn and re-load the snapshot
  every time).
* ``warm`` — the same requests through one prewarmed ``QueryServer``
  (persistent pool + shared cross-request context).

Regimes:

* ``distinct`` — every request is a *different* 2-CTP query (different
  seed-group pairs and ``MAX`` bounds), so the cross-request memo cannot
  serve any of them: the warm/cold gap isolates pure pool amortization
  (spawn + per-worker snapshot load), which exists on any host — it is
  overhead elimination, not multi-core speedup, so single-core CI shows
  it too.
* ``repeated`` — every request is the *same* query: warm adds the
  cross-request memo on top (requests after the first are served without
  any search), the best case a serving deployment sees.

Determinism gate: every distinct warm response's rows are asserted
bit-identical to serial dispatch (``parallelism=1``, no pool) — the
``identical`` column must be true on every row of a checked-in JSON.
"""

from __future__ import annotations

import math
import os
import time
from concurrent.futures import ThreadPoolExecutor
from itertools import permutations
from typing import List, Optional, Sequence, Tuple

from repro.bench.experiments.micro_query_context import grouped_star
from repro.bench.harness import ExperimentReport, Measurement
from repro.ctp.config import SearchConfig
from repro.query.evaluator import evaluate_query
from repro.serve import QueryRequest, QueryServer

#: Concurrent client threads per measured point (smoke keeps the first two).
CLIENT_COUNTS = (1, 2, 4)
SMOKE_CLIENT_COUNTS = (1, 2)
NUM_GROUPS = 5


def _serve_query(pair_a: Tuple[int, int], pair_b: Tuple[int, int], max_edges: int) -> str:
    """A 2-CTP EQL query connecting two disjoint-ish seed-group pairs.

    Two CTPs (not one) so the dispatch layer always has parallel work —
    a single-job query collapses to serial in the cold path and would
    measure nothing.
    """
    (a1, a2), (b1, b2) = pair_a, pair_b
    return f"""
    SELECT ?w0 ?w1 WHERE {{
      FILTER(type(?x) = "g{a1}")
      FILTER(type(?y) = "g{a2}")
      FILTER(type(?u) = "g{b1}")
      FILTER(type(?v) = "g{b2}")
      CONNECT(?x, ?y) AS ?w0 MAX {max_edges}
      CONNECT(?u, ?v) AS ?w1 MAX {max_edges}
    }}
    """


def _query_stream(count: int) -> List[str]:
    """``count`` pairwise-distinct queries (distinct seeds and/or MAX)."""
    pairs = list(permutations(range(NUM_GROUPS), 2))  # 20 ordered pairs
    combos = [
        (pairs[i], pairs[(i + offset) % len(pairs)], 6 + (i + offset) % 2)
        for offset in range(1, len(pairs))
        for i in range(len(pairs))
    ]
    if count > len(combos):
        raise ValueError(f"stream of {count} exceeds {len(combos)} distinct queries")
    return [_serve_query(*combo) for combo in combos[:count]]


def _percentile(latencies: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (exact for the small samples a bench has)."""
    if not latencies:
        return 0.0
    ordered = sorted(latencies)
    rank = min(len(ordered), max(1, math.ceil(q / 100.0 * len(ordered))))
    return ordered[rank - 1]


def _drive(clients: int, texts: Sequence[str], handle_one) -> Tuple[List[float], float]:
    """Run the stream through ``handle_one`` from N client threads.

    Returns (per-request latencies, wall seconds).  Latencies are measured
    client-side so cold and warm pay for exactly the same span (dispatch,
    evaluation, response assembly).
    """

    def timed(text: str) -> float:
        started = time.perf_counter()
        handle_one(text)
        return time.perf_counter() - started

    wall_started = time.perf_counter()
    with ThreadPoolExecutor(max_workers=clients, thread_name_prefix="repro-load") as pool:
        latencies = list(pool.map(timed, texts))
    return latencies, time.perf_counter() - wall_started


def run(scale: float = 1.0, timeout: Optional[float] = None, repeats: int = 1) -> ExperimentReport:
    timeout = timeout if timeout is not None else 30.0
    workers = os.cpu_count() or 1
    client_counts = SMOKE_CLIENT_COUNTS if scale <= 0.25 else CLIENT_COUNTS
    per_client = max(2, round(4 * scale))
    report = ExperimentReport(
        experiment="serve",
        title="Long-lived query server: persistent pool vs per-query cold dispatch",
        config={
            "scale": scale,
            "timeout": timeout,
            "repeats": repeats,
            "cpu_count": os.cpu_count(),
            "pool_workers": workers,
            "requests_per_client": per_client,
        },
    )

    tips = max(2, round(4 * scale))
    graph = grouped_star(NUM_GROUPS, tips, 3)
    process_config = SearchConfig(parallelism=2, parallelism_mode="process")

    def cold_one(text: str) -> None:
        # The pre-fix path: per-call executor, workers spawn + load the
        # snapshot, evaluate, tear down.  Fresh per-query context — cold
        # shares nothing across requests, by definition.
        evaluate_query(graph, text, base_config=process_config, default_timeout=timeout)

    serial_rows = {}

    def serial_reference(text: str):
        if text not in serial_rows:
            result = evaluate_query(
                graph, text, base_config=SearchConfig(), default_timeout=timeout
            )
            serial_rows[text] = (result.columns, result.rows)
        return serial_rows[text]

    # --- distinct regime: memo-proof stream, pure pool amortization -----
    passes = max(1, repeats)
    for clients in client_counts:
        total = clients * per_client
        stream = _query_stream(total * passes)
        cold_lat: List[float] = []
        warm_lat: List[float] = []
        cold_wall = warm_wall = float("inf")
        identical = True
        with QueryServer(
            graph,
            base_config=process_config,
            workers=workers,
            max_pending=max(8, clients),
            default_timeout=timeout,
        ) as server:
            server.prewarm()  # deployment pays the cold cost off-path once

            def warm_one(text: str) -> None:
                nonlocal identical
                response = server.handle(QueryRequest(query=text))
                if response.status != "ok":
                    raise RuntimeError(f"warm request failed: {response.error}")
                columns, rows = serial_reference(text)
                if response.columns != columns or response.rows != rows:
                    identical = False

            for pass_index in range(passes):
                chunk = stream[pass_index * total : (pass_index + 1) * total]
                lat, wall = _drive(clients, chunk, cold_one)
                cold_lat.extend(lat)
                cold_wall = min(cold_wall, wall)
                lat, wall = _drive(clients, chunk, warm_one)
                warm_lat.extend(lat)
                warm_wall = min(warm_wall, wall)
            pool_stats = server.pool.stats()
        warm_p50 = _percentile(warm_lat, 50)
        cold_p50 = _percentile(cold_lat, 50)
        report.add(
            Measurement(
                params={"regime": "distinct", "clients": clients, "requests": total},
                seconds=warm_wall,
                values={
                    "cold_p50_ms": round(cold_p50 * 1000, 3),
                    "cold_p99_ms": round(_percentile(cold_lat, 99) * 1000, 3),
                    "cold_qps": round(total / cold_wall, 2) if cold_wall else float("inf"),
                    "warm_p50_ms": round(warm_p50 * 1000, 3),
                    "warm_p99_ms": round(_percentile(warm_lat, 99) * 1000, 3),
                    "warm_qps": round(total / warm_wall, 2) if warm_wall else float("inf"),
                    "p50_speedup": round(cold_p50 / warm_p50, 2) if warm_p50 else float("inf"),
                    "wall_speedup": round(cold_wall / warm_wall, 2) if warm_wall else float("inf"),
                    "pool_respawns": pool_stats["respawns"],
                    "identical": identical,
                },
            )
        )
        if not identical:
            report.note(
                f"DETERMINISM FAILURE: warm rows differ from serial dispatch at "
                f"{clients} client(s)"
            )

    # --- repeated regime: same query, memo on top of the warm pool ------
    repeated_clients = client_counts[-1]
    total = repeated_clients * per_client
    text = _serve_query((0, 1), (2, 3), 6)
    with QueryServer(
        graph,
        base_config=process_config,
        workers=workers,
        max_pending=max(8, repeated_clients),
        default_timeout=timeout,
    ) as server:
        server.prewarm()
        memo_hits = 0

        def warm_repeated(query_text: str) -> None:
            nonlocal memo_hits
            response = server.handle(QueryRequest(query=query_text))
            if response.status != "ok":
                raise RuntimeError(f"warm request failed: {response.error}")
            memo_hits += response.stats.memo_hits

        cold_lat, cold_wall = _drive(repeated_clients, [text] * total, cold_one)
        warm_lat, warm_wall = _drive(repeated_clients, [text] * total, warm_repeated)
    warm_p50 = _percentile(warm_lat, 50)
    cold_p50 = _percentile(cold_lat, 50)
    columns, rows = serial_reference(text)
    last = evaluate_query(graph, text, base_config=SearchConfig(), default_timeout=timeout)
    report.add(
        Measurement(
            params={"regime": "repeated", "clients": repeated_clients, "requests": total},
            seconds=warm_wall,
            values={
                "cold_p50_ms": round(cold_p50 * 1000, 3),
                "cold_qps": round(total / cold_wall, 2) if cold_wall else float("inf"),
                "warm_p50_ms": round(warm_p50 * 1000, 3),
                "warm_qps": round(total / warm_wall, 2) if warm_wall else float("inf"),
                "p50_speedup": round(cold_p50 / warm_p50, 2) if warm_p50 else float("inf"),
                "memo_served_ctps": memo_hits,
                "identical": last.columns == columns and last.rows == rows,
            },
        )
    )

    report.note(
        "cold = per-request evaluate_query(parallelism_mode='process'): every request "
        "builds a ProcessPoolExecutor, spawns workers, loads the snapshot per worker, "
        "and tears it all down (the pre-WorkerPool behaviour); warm = the same requests "
        "through one prewarmed QueryServer over a persistent WorkerPool"
    )
    report.note(
        "the distinct regime's warm/cold gap is eliminated spin-up overhead, not "
        "parallel speedup — it holds on a single-core host (see cpu_count); the "
        "repeated regime adds the shared cross-request memo, so warm requests after "
        "the first run no search at all"
    )
    report.note(
        "identical = warm server rows bit-equal to serial dispatch (parallelism=1, "
        "no pool) for every query of the stream; latencies are client-side "
        "(nearest-rank percentiles), throughput = requests / wall seconds"
    )
    return report
