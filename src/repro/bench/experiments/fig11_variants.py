"""E-fig11 — Figure 11: the GAM algorithm family.

Runs GAM, ESP, MoESP, LESP, MoLESP on the same Line / Comb / Star sweeps
and records both runtime (Fig 11 a-c) and the number of provenances built
(Fig 11 d-f).  Expected shapes (Section 5.4.2):

* ESP and LESP find **no** result on Line and Comb (edge-set pruning kills
  the only provenances that could be extended) — their ``results`` column
  is 0 while MoESP/MoLESP find everything;
* MoLESP is faster than GAM (×1.3 on Line up to ×15 on the largest Comb);
* on Star, where the LESP guard applies, MoESP and MoLESP are close;
* runtime tracks the number of provenances.
"""

from __future__ import annotations

from typing import Optional

from repro.bench.experiments._common import synthetic_sweep
from repro.bench.harness import ExperimentReport, Measurement, time_call
from repro.ctp.config import SearchConfig
from repro.ctp.registry import get_algorithm

ALGORITHMS = ("gam", "esp", "moesp", "lesp", "molesp")


def run(scale: float = 1.0, timeout: Optional[float] = None, repeats: int = 1) -> ExperimentReport:
    timeout = timeout if timeout is not None else 3.0
    report = ExperimentReport(
        experiment="fig11",
        title="Figure 11: GAM vs ESP / MoESP / LESP / MoLESP (runtime and provenances)",
        config={"scale": scale, "timeout": timeout},
    )
    for family, params, graph, seeds in synthetic_sweep(scale):
        for name in ALGORITHMS:
            algorithm = get_algorithm(name)
            config = SearchConfig(timeout=timeout)
            seconds, results = time_call(lambda: algorithm.run(graph, seeds, config), repeats)
            report.add(
                Measurement(
                    params={"family": family, **params, "algorithm": name},
                    seconds=seconds,
                    values={
                        "results": len(results),
                        "provenances": results.stats.provenances,
                        "timed_out": results.timed_out,
                    },
                )
            )
    report.note("results=0 for esp/lesp on line/comb reproduces their incompleteness (missing curves in the paper)")
    return report
