"""Shared sweep definitions for the synthetic-graph experiments.

Figures 10 and 11 run the same Line/Comb/Star sweeps (Section 5.3): the
x axis is the seed distance ``s_L`` in 2..10, the series are the seed-set
counts (``m`` in {3, 5, 10} for Line; ``n_A`` in {2, 4, 6} with
``n_S = 2`` for Comb, giving m in {6, 12, 18}).

Scale note: the paper uses m in {3, 5, 10} for Star as well; a Star's
search space is exponential in m (O(2^m * s_L^2) subtrees) and the paper's
testbed allows 10-minute timeouts, so at laptop budgets we default the Star
series to m in {3, 5, 8} — the crossovers and orderings are unchanged (see
EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Tuple

from repro.graph.graph import Graph
from repro.workloads.synthetic import comb_graph, line_graph, star_graph

SeedSets = Tuple[Tuple[int, ...], ...]
GraphPoint = Tuple[str, dict, Graph, SeedSets]


def scaled_sl_values(scale: float) -> List[int]:
    """The paper sweeps s_L = 2..10; scale trims the grid from the top."""
    full = [2, 3, 4, 5, 6, 7, 8, 9, 10]
    if scale >= 1.0:
        return full
    keep = max(2, round(len(full) * scale))
    step = len(full) / keep
    return sorted({full[min(len(full) - 1, int(i * step))] for i in range(keep)})


def synthetic_sweep(scale: float, families: Tuple[str, ...] = ("line", "comb", "star")) -> Iterator[GraphPoint]:
    """Yield (family, params, graph, seeds) for every sweep point."""
    sl_values = scaled_sl_values(scale)
    if "line" in families:
        for m in (3, 5, 10):
            for s_l in sl_values:
                graph, seeds = line_graph(m, s_l - 1)
                yield "line", {"m": m, "sL": s_l}, graph, seeds
    if "comb" in families:
        for n_a in (2, 4, 6):
            for s_l in sl_values:
                graph, seeds = comb_graph(n_a, 2, s_l)
                yield "comb", {"nA": n_a, "m": n_a * 3, "sL": s_l}, graph, seeds
    if "star" in families:
        for m in (3, 5, 8):
            for s_l in sl_values:
                graph, seeds = star_graph(m, s_l)
                yield "star", {"m": m, "sL": s_l}, graph, seeds
