"""E-fig13 — Figure 13: CDF benchmark for m=2 (paths between two leaf sets).

Engines compared (Section 5.5.1), in the paper's legend order:

* MoLESP (any path, return)      — full EQL query, bidirectional
* UNI MoLESP (any path, return)  — same with the UNI filter
* Postgres-like (any path, return)       — directed simple-path DFS
* JEDI-like (labelled path, return)      — per-pair directed paths
* Virtuoso-SPARQL-like (labelled, check) — BFS reachability, link labels
* Virtuoso-SQL-like (any path, check)    — BFS reachability, no labels
* Neo4j-like (any path, return)          — undirected enumeration

Expected shape: check-only engines are fastest (they return nothing);
UNI-MoLESP within a small factor (~3x); returning-path engines >=10x
slower (JEDI succeeds only on the smallest graph); Neo4j-like times out;
bidirectional MoLESP is the only feasible bidirectional engine and scales
linearly with graph size.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.baselines.path_engines import (
    jedi_like_engine,
    neo4j_like_engine,
    postgres_like_engine,
    virtuoso_sparql_like_engine,
    virtuoso_sql_like_engine,
)
from repro.bench.harness import ExperimentReport, time_call
from repro.query.evaluator import evaluate_query
from repro.workloads.cdf import cdf_graph, cdf_query


def default_grid(scale: float) -> List[Tuple[int, int]]:
    grid = [(10, 20), (20, 40), (40, 80), (80, 160)]
    keep = max(1, round(len(grid) * min(1.0, scale)))
    return grid[:keep]


def run(scale: float = 1.0, timeout: Optional[float] = None, repeats: int = 1) -> ExperimentReport:
    timeout = timeout if timeout is not None else 5.0
    report = ExperimentReport(
        experiment="fig13",
        title="Figure 13: CDF benchmark, m=2, SL in {3, 6}",
        config={"scale": scale, "timeout": timeout},
    )
    for s_l in (3, 6):
        for n_t, n_l in default_grid(scale):
            dataset = cdf_graph(n_t, n_l, s_l, m=2, seed=17)
            graph = dataset.graph
            sources = sorted({graph.edge(e).target for e in graph.edges_with_label("c")})
            targets = sorted({graph.edge(e).target for e in graph.edges_with_label("g")})
            base = {"sL": s_l, "NT": n_t, "NL": n_l, "edges": graph.num_edges}

            # MoLESP rows: the full EQL query (BGPs + CTP + join).
            for engine, filters in (("molesp", ""), ("uni-molesp", "UNI")):
                query = cdf_query(2, filters)
                seconds, result = time_call(
                    lambda: evaluate_query(graph, query, default_timeout=timeout), repeats
                )
                report.add_row(
                    **base,
                    engine=engine,
                    time_ms=round(seconds * 1000.0, 3),
                    answers=len(result),
                    timed_out=result.ctp_reports[0].result_set.timed_out,
                )

            # Baseline engines: the path workload between the two leaf sets.
            baselines = (
                postgres_like_engine(),
                jedi_like_engine(labels=("link",)),
                virtuoso_sparql_like_engine(labels=("link",)),
                virtuoso_sql_like_engine(),
                neo4j_like_engine(),
            )
            for engine in baselines:
                seconds, outcome = time_call(
                    lambda: engine.run(graph, sources, targets, timeout=timeout), repeats
                )
                answers = outcome.total_paths if outcome.paths else len(outcome.connected_pairs)
                report.add_row(
                    **base,
                    engine=engine.name,
                    time_ms=round(seconds * 1000.0, 3),
                    answers=answers,
                    timed_out=outcome.timed_out,
                )
    report.note("check-only engines report connected pairs, not paths; the paper's Virtuoso rows are check-only too")
    return report
