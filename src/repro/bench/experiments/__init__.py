"""One module per paper table/figure (see DESIGN.md §2 for the index)."""

from __future__ import annotations

from typing import Callable, Dict

from repro.bench.experiments import (
    abl01_design,
    fig02_chain,
    fig10_baselines,
    fig11_variants,
    fig12_qgstp,
    fig13_cdf_m2,
    fig14_cdf_m3,
    micro_backend,
    micro_chaos,
    micro_delta,
    micro_interning,
    micro_parallel,
    micro_process_parallel,
    micro_query_context,
    micro_scale,
    micro_schedule,
    micro_serve,
    table1_yago,
)
from repro.bench.harness import ExperimentReport
from repro.errors import ReproError

#: Experiment registry: id -> run(scale, timeout, repeats) -> ExperimentReport
EXPERIMENTS: Dict[str, Callable[..., ExperimentReport]] = {
    "fig02": fig02_chain.run,
    "fig10": fig10_baselines.run,
    "fig11": fig11_variants.run,
    "fig12": fig12_qgstp.run,
    "fig13": fig13_cdf_m2.run,
    "fig14": fig14_cdf_m3.run,
    "table1": table1_yago.run,
    "abl01": abl01_design.run,
    "backend": micro_backend.run,
    "chaos": micro_chaos.run,
    "delta": micro_delta.run,
    "interning": micro_interning.run,
    "parallel": micro_parallel.run,
    "process-parallel": micro_process_parallel.run,
    "query-context": micro_query_context.run,
    "scale": micro_scale.run,
    "schedule": micro_schedule.run,
    "serve": micro_serve.run,
}


def get_experiment(name: str) -> Callable[..., ExperimentReport]:
    """Look up an experiment runner by id (e.g. ``"fig11"``)."""
    try:
        return EXPERIMENTS[name.lower()]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ReproError(f"unknown experiment {name!r}; known: {known}") from None
