"""E-fig2 — the exponential chain of Figure 2 (Section 2).

The CTP ``(1, N+1, v)`` over the chain graph has exactly ``2^N`` results
(one per choice of parallel edge in each segment), the example the paper
uses to motivate CTP filters and timeouts.  This experiment verifies the
count, shows the exponential runtime growth, and demonstrates that a
timeout turns the evaluation into a best-effort partial enumeration.
"""

from __future__ import annotations

from typing import Optional

from repro.bench.harness import ExperimentReport, Measurement, time_call
from repro.ctp.config import SearchConfig
from repro.ctp.molesp import MoLESPSearch
from repro.workloads.synthetic import chain_graph


def run(scale: float = 1.0, timeout: Optional[float] = None, repeats: int = 1) -> ExperimentReport:
    timeout = timeout if timeout is not None else 5.0
    max_n = max(3, round(12 * scale))
    report = ExperimentReport(
        experiment="fig02",
        title="Figure 2: chain graph — 2^N results for the endpoint CTP",
        config={"scale": scale, "timeout": timeout, "max_n": max_n},
    )
    algorithm = MoLESPSearch()
    for n in range(2, max_n + 1):
        graph, seeds = chain_graph(n)
        config = SearchConfig(timeout=timeout)
        seconds, results = time_call(lambda: algorithm.run(graph, seeds, config), repeats)
        report.add(
            Measurement(
                params={"N": n, "edges": graph.num_edges},
                seconds=seconds,
                values={
                    "results": len(results),
                    "expected": 2**n,
                    "complete": results.complete,
                },
            )
        )
    # Demonstrate the timeout filter: a tight budget yields a partial result.
    max_n = max_n + 8  # large enough that 2ms cannot enumerate 2^N results
    graph, seeds = chain_graph(max_n)
    tight = SearchConfig(timeout=0.002)
    seconds, partial = time_call(lambda: algorithm.run(graph, seeds, tight), repeats)
    report.add(
        Measurement(
            params={"N": max_n, "edges": graph.num_edges},
            seconds=seconds,
            values={
                "results": len(partial),
                "expected": 2**max_n,
                "complete": partial.complete,
            },
        )
    )
    report.note("last row: TIMEOUT 0.01s — partial enumeration, complete=False (requirement R4 budgeted search)")
    return report
