"""E-query-context — query-scoped SearchContext vs a pool per CTP.

Not tied to a paper figure.  Measures what the query-scoped search context
(:class:`repro.ctp.interning.SearchContext` — one edge-set pool for all
CTPs of a query, a per-root rooted-result cache, and the evaluator's
cross-CTP memo of complete result sets) buys on multi-CTP queries,
end-to-end through :func:`repro.query.evaluator.evaluate_query`.  Every
row runs the *same* query twice — ``SearchConfig(shared_context=False)``
restores the pool-per-CTP behaviour of the pre-context evaluator — so the
delta is exactly the sharing.

Row regimes:

* ``memo`` — the same CONNECT repeated under several tree variables (the
  repeated-evaluation case the evaluator's cross-CTP memo targets: only
  the first run searches, the rest are cache hits).  Expect the speedup to
  approach the number of duplicate CTPs as search dominates the query.
* ``overlap`` — several CTPs sharing one seed set but connecting it to
  *different* targets: no memo hit is possible, the win is the shared pool
  (sibling CTPs re-intern overlapping edge sets as memo hits) plus rooted
  result-cache hits on connections both CTPs discover.  Expect a modest
  >= 1x.
* ``control`` — a single-CTP query, where sharing has nothing to share:
  the context must not tax it (target: within a few percent).

Every row also cross-checks that the shared-context rows are identical to
the per-CTP-pool rows (column ``identical``) — the context is reuse only,
never a semantics change.
"""

from __future__ import annotations

import time
from typing import Optional, Tuple

from repro.bench.harness import ExperimentReport, Measurement
from repro.ctp.config import SearchConfig
from repro.ctp.results import ResultTree
from repro.graph.datasets import figure1
from repro.graph.graph import Graph
from repro.query.ast import CTP, Condition, EQLQuery, Predicate
from repro.query.evaluator import QueryResult, evaluate_query


def grouped_star(num_sets: int, tips_per_set: int, arm_length: int) -> Graph:
    """A star whose arm tips carry one type per seed group.

    ``CONNECT`` over two groups is the merge-heavy keyword regime (many
    alternative tips per seed set, all trees meeting at the hub) — the same
    worst case the interning micro-bench uses, here driven through EQL type
    predicates so the evaluator derives the seed sets itself.
    """
    graph = Graph(f"grouped-star({num_sets}x{tips_per_set},arm={arm_length})")
    center = graph.add_node("center")
    for group in range(num_sets):
        for tip_index in range(tips_per_set):
            current = center
            for j in range(arm_length - 1):
                node = graph.add_node(f"R{group}_{tip_index}_{j}")
                graph.add_edge(current, node, "e")
                current = node
            tip = graph.add_node(f"S{group}_{tip_index}", types=(f"g{group}",))
            graph.add_edge(current, tip, "e")
    return graph


def _group_seed(var: str, group: int) -> Predicate:
    return Predicate(var, (Condition("type", "=", f"g{group}"),))


def _dup_query(num_ctps: int) -> EQLQuery:
    """``num_ctps`` identical CONNECTs over shared seed variables."""
    ctps = tuple(
        CTP((_group_seed("a", 0), _group_seed("b", 1)), f"w{j}") for j in range(num_ctps)
    )
    head = ("a", "b") + tuple(f"w{j}" for j in range(num_ctps))
    return EQLQuery(head=head, ctps=ctps)


def _overlap_query(num_ctps: int) -> EQLQuery:
    """CTPs sharing the g0 seed set, each connecting it to its own group."""
    ctps = tuple(
        CTP((_group_seed("a", 0), _group_seed(f"b{j}", j + 1)), f"w{j}")
        for j in range(num_ctps)
    )
    head = ("a",) + tuple(f"w{j}" for j in range(num_ctps))
    return EQLQuery(head=head, ctps=ctps)


def _control_query() -> EQLQuery:
    return EQLQuery(head=("a", "b", "w"), ctps=(CTP((_group_seed("a", 0), _group_seed("b", 1)), "w"),))


FIG1_TWO_CTP = """
SELECT ?x ?w1 ?w2 WHERE {
  ?x founded "OrgB" .
  CONNECT(?x, "France") AS ?w1 MAX 3
  CONNECT(?x, "France") AS ?w2 MAX 3
}
"""


def _canonical(result: QueryResult):
    """Order-independent row identity: trees collapse to (edges, weight)."""
    rows = [
        tuple(
            (tuple(sorted(value.edges)), round(value.weight, 9))
            if isinstance(value, ResultTree)
            else value
            for value in row
        )
        for row in result.rows
    ]
    return sorted(rows)


def _ab(
    graph: Graph,
    query,
    repeats: int,
    timeout: float,
    algorithm: str = "molesp",
) -> Tuple[float, float, QueryResult, bool]:
    """Interleaved best-of-N A/B: pool-per-CTP vs shared context."""
    per_ctp = shared = float("inf")
    shared_result: Optional[QueryResult] = None
    identical = True
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        baseline = evaluate_query(
            graph,
            query,
            algorithm=algorithm,
            base_config=SearchConfig(shared_context=False),
            default_timeout=timeout,
        )
        per_ctp = min(per_ctp, time.perf_counter() - started)
        started = time.perf_counter()
        shared_result = evaluate_query(
            graph,
            query,
            algorithm=algorithm,
            base_config=SearchConfig(shared_context=True),
            default_timeout=timeout,
        )
        shared = min(shared, time.perf_counter() - started)
        identical = identical and _canonical(shared_result) == _canonical(baseline)
    return per_ctp, shared, shared_result, identical


def run(scale: float = 1.0, timeout: Optional[float] = None, repeats: int = 1) -> ExperimentReport:
    timeout = timeout if timeout is not None else 60.0
    report = ExperimentReport(
        experiment="query-context",
        title="Query-context micro-bench: shared SearchContext vs pool-per-CTP (multi-CTP queries)",
        config={"scale": scale, "timeout": timeout, "repeats": repeats},
    )

    tips = max(2, round(5 * scale))
    tips_wide = max(2, round(6 * scale))
    star = grouped_star(2, tips, 2)
    # Longer arms keep the searches (not the final join) the dominant cost
    # on the overlap row, which shares seed sets but not whole CTPs.
    star_overlap = grouped_star(3, tips_wide, 3)
    fig1 = figure1()

    workloads = (
        ("dup-3-ctps", "memo", star, _dup_query(3)),
        ("dup-5-ctps", "memo", star, _dup_query(5)),
        ("fig1-dup-ctp", "memo", fig1, FIG1_TWO_CTP),
        ("overlap-2-ctps", "overlap", star_overlap, _overlap_query(2)),
        ("single-ctp", "control", star, _control_query()),
    )
    for name, regime, graph, query in workloads:
        per_ctp_s, shared_s, shared_result, identical = _ab(graph, query, repeats, timeout)
        ctx = shared_result.context_stats or {}
        report.add(
            Measurement(
                params={"workload": name, "regime": regime},
                seconds=per_ctp_s,
                values={
                    "per_ctp_ms": round(per_ctp_s * 1000, 3),
                    "shared_ms": round(shared_s * 1000, 3),
                    "speedup": round(per_ctp_s / shared_s, 2) if shared_s else float("inf"),
                    "rows": len(shared_result),
                    "ctp_cache_hits": ctx.get("ctp_cache_hits", 0),
                    "pool_union_hits": ctx.get("pool_union_hits", 0),
                    "rooted_hits": ctx.get("rooted_cache_hits", 0),
                    "identical": identical,
                },
            )
        )
        if not identical:
            report.note(f"EQUIVALENCE FAILURE on {name}: shared-context rows differ from per-CTP rows")

    report.note(
        "speedup = per_ctp_ms / shared_ms; both paths run evaluate_query on the same "
        "query, with SearchConfig(shared_context=...) toggling the query-scoped "
        "SearchContext (shared edge-set pool + per-root result cache + cross-CTP memo)"
    )
    report.note(
        "memo rows repeat one CONNECT under several tree variables: the evaluator's "
        "cross-CTP memo runs the search once and serves the rest from cache, so the "
        "speedup approaches the CTP multiplicity as search dominates; overlap rows "
        "share only the seed set (pool + rooted-cache reuse); the control row checks "
        "the no-sharing tax"
    )
    report.note(
        "identical=True asserts row-for-row equality (trees compared by edge set and "
        "weight) between the shared-context and per-CTP-pool paths"
    )
    return report
