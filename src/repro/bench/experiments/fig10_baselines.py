"""E-fig10 — Figure 10: complete CTP evaluation baselines.

Compares BFT, BFT-M, BFT-AM and GAM on the Line / Comb / Star sweeps.
Expected shape (Section 5.4.1): the breadth-first family wastes effort on
result minimization and duplicate construction, so it is orders of
magnitude slower than GAM and increasingly times out on Comb/Star; the
aggressive-merge variant is the most explosive.
"""

from __future__ import annotations

from typing import Optional

from repro.bench.experiments._common import synthetic_sweep
from repro.bench.harness import ExperimentReport, Measurement, time_call
from repro.ctp.config import SearchConfig
from repro.ctp.registry import get_algorithm

ALGORITHMS = ("bft", "bft-m", "bft-am", "gam")


def run(scale: float = 1.0, timeout: Optional[float] = None, repeats: int = 1) -> ExperimentReport:
    timeout = timeout if timeout is not None else 3.0
    report = ExperimentReport(
        experiment="fig10",
        title="Figure 10: BFT / BFT-M / BFT-AM vs GAM on Line, Comb, Star",
        config={"scale": scale, "timeout": timeout},
    )
    for family, params, graph, seeds in synthetic_sweep(scale):
        for name in ALGORITHMS:
            algorithm = get_algorithm(name)
            config = SearchConfig(timeout=timeout)
            seconds, results = time_call(lambda: algorithm.run(graph, seeds, config), repeats)
            measurement = Measurement(
                params={"family": family, **params, "algorithm": name},
                seconds=seconds,
                values={
                    "results": len(results),
                    "provenances": results.stats.provenances,
                    "timed_out": results.timed_out,
                },
            )
            report.add(measurement)
    report.note("timed_out=True corresponds to the paper's missing points (did not finish by the timeout)")
    return report
