"""E-chaos — fault injection against the serving stack, recovery measured.

Not tied to a paper figure.  This is the robustness PR's evidence: a
long-lived :class:`~repro.serve.QueryServer` is driven through every
fault class :mod:`repro.faults` can inject — worker **crash** mid-CTP,
**hang** past the watchdog, **slow** returns, **rss** growth cured by
recycling, a deterministic **scorer** exception, and a
**corrupt_snapshot** handed to the worker initializer — plus a crash
storm that trips the circuit **breaker** open and an **overload** run
that sheds low-priority traffic.

Each scenario reports recovery shape, not just survival:

* ``first_ok_ms`` — latency of the first successful request, which pays
  the recovery (respawn, watchdog expiry, breaker probe) on-path;
* ``steady_p50_ms`` — later requests, which must be back to normal;
* the resilience counters that fired (retries, hangs, respawns,
  recycles, breaker trips/state) and the degraded dispatch modes seen.

Determinism gate: every ``ok`` response's rows are asserted bit-identical
to serial dispatch (``parallelism=1``, no pool) — the ``identical``
column must be true on every row of a checked-in JSON.  A fault may cost
latency or a typed error, never a silently wrong answer.

Fault plans are seeded and epoch-gated (``epochs=(0,)`` fires only in the
first worker generation), so recovery is *observable*: the replacement
workers are clean by construction, and the whole run reproduces
byte-for-byte under ``PYTHONHASHSEED=0``.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro import faults
from repro.bench.experiments.micro_query_context import grouped_star
from repro.bench.experiments.micro_serve import NUM_GROUPS, _percentile, _serve_query
from repro.bench.harness import ExperimentReport, Measurement
from repro.ctp.config import SearchConfig
from repro.faults import FaultPlan, FaultSpec
from repro.query.evaluator import evaluate_query
from repro.query.resilience import CircuitBreaker, PoolResilienceConfig, RetryPolicy
from repro.serve import PRIORITY_LOW, QueryRequest, QueryServer

#: Chaos scenarios run single-worker, single-client: the subject is the
#: recovery machinery, and one worker makes every fault's firing schedule
#: (per-process invocation counters) exactly reproducible.
CHAOS_WORKERS = 1


def _stream(count: int) -> List[str]:
    """``count`` distinct 2-CTP queries (memo-proof, so every request
    really exercises the pooled dispatch path)."""
    pairs = [(i % NUM_GROUPS, (i + 1) % NUM_GROUPS) for i in range(count)]
    return [
        _serve_query(pair, ((pair[0] + 2) % NUM_GROUPS, (pair[1] + 2) % NUM_GROUPS), 6 + i % 2)
        for i, pair in enumerate(pairs)
    ]


def _run_scenario(
    graph: Any,
    texts: Sequence[str],
    plan: Optional[FaultPlan],
    serial_reference,
    request_timeout: Optional[float] = None,
    pool_config: Optional[Dict[str, Any]] = None,
    pause_before: Optional[Tuple[int, float]] = None,
) -> Dict[str, Any]:
    """Drive ``texts`` through a fresh server under ``plan``; summarize.

    ``pause_before=(index, seconds)`` sleeps before request ``index`` —
    the breaker scenario uses it to let the cooldown elapse so the
    half-open probe is reached deterministically.
    """
    process_config = SearchConfig(parallelism=2, parallelism_mode="process")
    latencies_ok: List[float] = []
    statuses: List[str] = []
    modes: List[str] = []
    identical = True
    retries = hangs = 0
    faults.install_plan(plan)
    try:
        with QueryServer(
            graph,
            base_config=process_config,
            workers=CHAOS_WORKERS,
            max_pending=4,
            default_timeout=30.0,
            pool_config=pool_config,
        ) as server:
            for index, text in enumerate(texts):
                if pause_before is not None and index == pause_before[0]:
                    time.sleep(pause_before[1])
                started = time.perf_counter()
                response = server.handle(QueryRequest(query=text, timeout=request_timeout))
                elapsed = time.perf_counter() - started
                statuses.append(response.status)
                if response.status == "ok":
                    latencies_ok.append(elapsed)
                    modes.extend(response.stats.dispatch_modes)
                    retries += response.stats.retries
                    hangs += response.stats.hangs
                    columns, rows = serial_reference(text)
                    if response.columns != columns or response.rows != rows:
                        identical = False
            pool_stats = server.pool.stats()
    finally:
        faults.clear_plan()
    first_ok = latencies_ok[0] if latencies_ok else 0.0
    return {
        "ok": statuses.count("ok"),
        "typed_errors": statuses.count("error"),
        "first_ok_ms": round(first_ok * 1000, 3),
        "steady_p50_ms": round(_percentile(latencies_ok[1:], 50) * 1000, 3),
        "retries": retries,
        "hangs": hangs,
        "respawns": pool_stats["respawns"],
        "recycles": pool_stats["recycles"],
        "breaker_trips": pool_stats["breaker_trips"],
        "breaker_state_final": pool_stats["breaker_state"],
        "degraded_ctps": sum(1 for mode in modes if mode.startswith("process->")),
        "identical": identical,
    }


def run(scale: float = 1.0, timeout: Optional[float] = None, repeats: int = 1) -> ExperimentReport:
    timeout = timeout if timeout is not None else 30.0
    requests = max(3, round(5 * scale))
    report = ExperimentReport(
        experiment="chaos",
        title="Fault injection: recovery latency and degradation under every fault class",
        config={
            "scale": scale,
            "timeout": timeout,
            "repeats": repeats,
            "workers": CHAOS_WORKERS,
            "requests_per_scenario": requests,
        },
    )

    graph = grouped_star(NUM_GROUPS, max(2, round(4 * scale)), 3)
    texts = _stream(requests)
    serial_rows: Dict[str, Tuple[Any, Any]] = {}

    def serial_reference(text: str):
        if text not in serial_rows:
            result = evaluate_query(graph, text, base_config=SearchConfig(), default_timeout=timeout)
            serial_rows[text] = (result.columns, result.rows)
        return serial_rows[text]

    # Every fault class, one scenario each.  Epoch gating (``epochs=(0,)``)
    # confines the fault to the first worker generation: recovery replaces
    # the workers, so the *same* plan proves both the failure and the cure.
    scenarios: List[Tuple[str, Dict[str, Any]]] = [
        ("baseline", dict(plan=None)),
        # First CTP run crashes the worker (os._exit): BrokenProcessPool ->
        # respawn -> retried fan-out succeeds on the clean epoch-1 workers.
        ("crash", dict(plan=FaultPlan(specs=(FaultSpec.crash(at=(0,), epochs=(0,)),)))),
        # First CTP run sleeps far past the watchdog: the per-submit budget
        # (2 jobs x 0.8s timeout + 0.4s grace) expires, the wedged worker is
        # kill-respawned, and the spent-budget request degrades to threads.
        (
            "hang",
            dict(
                plan=FaultPlan(specs=(FaultSpec.hang(seconds=30.0, at=(0,), epochs=(0,)),)),
                request_timeout=0.8,
                pool_config={"resilience": PoolResilienceConfig(hang_grace=0.4)},
            ),
        ),
        # Every epoch-0 run returns 50ms late: no failure, pure latency.
        ("slow", dict(plan=FaultPlan(specs=(FaultSpec.slow(seconds=0.05, every=1, epochs=(0,)),)))),
        # Every run retains 32 MiB of ballast; the RSS check (sampled every
        # dispatch) recycles the bloated worker between queries.
        (
            "rss",
            dict(
                plan=FaultPlan(specs=(FaultSpec.rss(grow_mb=32.0, every=1),)),
                pool_config={
                    "resilience": PoolResilienceConfig(max_worker_rss_mb=64.0, rss_check_every=1)
                },
            ),
        ),
        # First CTP run raises a deterministic user-code error: NOT retried
        # (it would raise identically), surfaces as one typed STATUS_ERROR.
        ("scorer", dict(plan=FaultPlan(specs=(FaultSpec.scorer(at=(0,), epochs=(0,)),)))),
        # The epoch-0 worker initializer loads a truncated snapshot copy and
        # dies on the format's real validation; respawn + retry recovers.
        (
            "corrupt_snapshot",
            dict(plan=FaultPlan(specs=(FaultSpec.corrupt_snapshot(at=(0,), epochs=(0,)),))),
        ),
        # Crash storm across two worker generations trips the breaker open
        # (threshold 2): the next request degrades without touching the
        # pool, then the post-cooldown half-open probe finds clean epoch-2
        # workers and closes the breaker again.
        (
            "breaker_trip",
            dict(
                plan=FaultPlan(specs=(FaultSpec.crash(every=1, epochs=(0, 1)),)),
                pool_config={"breaker": CircuitBreaker(failure_threshold=2, cooldown=0.15)},
                pause_before=(2, 0.25),
            ),
        ),
    ]

    for name, kwargs in scenarios:
        started = time.perf_counter()
        values = _run_scenario(graph, texts, serial_reference=serial_reference, **kwargs)
        report.add(
            Measurement(
                params={"scenario": name, "requests": requests},
                seconds=time.perf_counter() - started,
                values=values,
            )
        )
        if not values["identical"]:
            report.note(f"DETERMINISM FAILURE: scenario {name!r} returned rows != serial dispatch")

    # --- overload: low-priority work shed while slow requests dwell ------
    shed_values = _overload_scenario(graph, serial_reference)
    started = time.perf_counter()
    report.add(
        Measurement(
            params={"scenario": "overload", "requests": shed_values.pop("requests")},
            seconds=time.perf_counter() - started + shed_values.pop("wall_seconds"),
            values=shed_values,
        )
    )

    report.note(
        "each fault scenario drives a fresh single-worker QueryServer through the same "
        "distinct-query stream under a seeded, epoch-gated FaultPlan; first_ok_ms is the "
        "recovery latency (the first successful request pays the respawn/watchdog/probe "
        "on-path), steady_p50_ms the post-recovery median"
    )
    report.note(
        "identical = every ok response's rows bit-equal to serial dispatch (parallelism=1, "
        "no pool); a fault may cost latency or a typed error (scorer: typed_errors=1), "
        "never a silently wrong answer"
    )
    report.note(
        "overload drives concurrent slow normal-priority requests while low-priority "
        "requests arrive: past shed_threshold the low-priority ones get STATUS_SHED "
        "immediately, and a low-priority request after the load clears is served"
    )
    return report


def _overload_scenario(graph: Any, serial_reference) -> Dict[str, Any]:
    """Priority load shedding under synthetic pressure, summarized."""
    text = _serve_query((0, 1), (2, 3), 6)
    plan = FaultPlan(specs=(FaultSpec.slow(seconds=0.25, every=1),))
    faults.install_plan(plan)
    wall_started = time.perf_counter()
    shed = ok = rejected = 0
    low_after_load_ok = False
    identical = True
    try:
        with QueryServer(
            graph,
            base_config=SearchConfig(parallelism=2, parallelism_mode="process"),
            workers=CHAOS_WORKERS,
            max_pending=3,
            shed_threshold=1,
            default_timeout=30.0,
        ) as server:

            def normal_one(query_text: str) -> str:
                return server.handle(QueryRequest(query=query_text)).status

            with ThreadPoolExecutor(max_workers=2, thread_name_prefix="repro-chaos") as load:
                futures = [load.submit(normal_one, text) for _ in range(2)]
                time.sleep(0.1)  # let the slow normal requests occupy the gauge
                for _ in range(3):
                    status = server.handle(QueryRequest(query=text, priority=PRIORITY_LOW)).status
                    shed += status == "shed"
                    rejected += status == "rejected"
                statuses = [future.result() for future in futures]
            ok += statuses.count("ok")
            # Load gone: the same low-priority request must now be served.
            response = server.handle(QueryRequest(query=text, priority=PRIORITY_LOW))
            low_after_load_ok = response.status == "ok"
            ok += low_after_load_ok
            if low_after_load_ok:
                columns, rows = serial_reference(text)
                identical = response.columns == columns and response.rows == rows
            server_shed = server.shed
    finally:
        faults.clear_plan()
    return {
        "requests": 6,
        "wall_seconds": time.perf_counter() - wall_started,
        "ok": ok,
        "shed": shed,
        "rejected": rejected,
        "server_shed_counter": server_shed,
        "low_after_load_ok": low_after_load_ok,
        "identical": identical,
    }
