"""E-fig14 — Figure 14: CDF benchmark for m=3 (Y-shaped connecting trees).

Same engine line-up as Figure 13, but the CTP now connects **three** leaf
sets, which path-only engines can only emulate by *stitching* the paths
``tl -> bl1`` and ``tl -> bl2`` on their shared top leaf — producing
duplicates and non-tree joins that the paper's Section 2 analysis predicts
(we report the wasted fraction).  Expected shape: Postgres-like times out,
UNI-MoLESP outperforms every returning engine while returning true
connecting trees, and bidirectional MoLESP finds ~7x more CTP results than
the N_L expected answers (filtered by the BGP join).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.baselines.path_engines import (
    jedi_like_engine,
    neo4j_like_engine,
    postgres_like_engine,
    virtuoso_sparql_like_engine,
    virtuoso_sql_like_engine,
)
from repro.baselines.stitching import stitch_paths
from repro.bench.harness import ExperimentReport, time_call
from repro.query.evaluator import evaluate_query
from repro.workloads.cdf import cdf_graph, cdf_query


def default_grid(scale: float) -> List[Tuple[int, int]]:
    grid = [(8, 16), (16, 32), (32, 64), (64, 128)]
    keep = max(1, round(len(grid) * min(1.0, scale)))
    return grid[:keep]


def run(scale: float = 1.0, timeout: Optional[float] = None, repeats: int = 1) -> ExperimentReport:
    timeout = timeout if timeout is not None else 5.0
    report = ExperimentReport(
        experiment="fig14",
        title="Figure 14: CDF benchmark, m=3, SL in {3, 6}",
        config={"scale": scale, "timeout": timeout},
    )
    for s_l in (3, 6):
        for n_t, n_l in default_grid(scale):
            dataset = cdf_graph(n_t, n_l, s_l, m=3, seed=23)
            graph = dataset.graph
            sources = sorted({graph.edge(e).target for e in graph.edges_with_label("c")})
            targets_g = sorted({graph.edge(e).target for e in graph.edges_with_label("g")})
            targets_h = sorted({graph.edge(e).target for e in graph.edges_with_label("h")})
            base = {"sL": s_l, "NT": n_t, "NL": n_l, "edges": graph.num_edges}

            for engine, filters in (("molesp", ""), ("uni-molesp", "UNI")):
                query = cdf_query(3, filters)
                seconds, result = time_call(
                    lambda: evaluate_query(graph, query, default_timeout=timeout), repeats
                )
                ctp_results = len(result.ctp_reports[0].result_set)
                report.add_row(
                    **base,
                    engine=engine,
                    time_ms=round(seconds * 1000.0, 3),
                    answers=len(result),
                    ctp_results=ctp_results,
                    timed_out=result.ctp_reports[0].result_set.timed_out,
                )

            # Path-returning baselines: enumerate both path sets, stitch.
            for engine in (postgres_like_engine(), jedi_like_engine(labels=("link",))):
                def stitched_run(engine=engine):
                    half = timeout / 2.0
                    part_g = engine.run(graph, sources, targets_g, timeout=half)
                    part_h = engine.run(graph, sources, targets_h, timeout=half)
                    stitched = stitch_paths(graph, part_g.paths, part_h.paths, max_joins=2_000_000)
                    return part_g, part_h, stitched

                seconds, (part_g, part_h, stitched) = time_call(stitched_run, repeats)
                report.add_row(
                    **base,
                    engine=engine.name + "+stitch",
                    time_ms=round(seconds * 1000.0, 3),
                    answers=len(stitched.trees),
                    wasted=round(stitched.wasted_fraction, 3),
                    timed_out=part_g.timed_out or part_h.timed_out or stitched.truncated,
                )

            # Check-only baselines can only confirm pairwise connectivity.
            for engine in (
                virtuoso_sparql_like_engine(labels=("link",)),
                virtuoso_sql_like_engine(),
                neo4j_like_engine(),
            ):
                def pairwise_run(engine=engine):
                    half = timeout / 2.0
                    part_g = engine.run(graph, sources, targets_g, timeout=half)
                    part_h = engine.run(graph, sources, targets_h, timeout=half)
                    return part_g, part_h

                seconds, (part_g, part_h) = time_call(pairwise_run, repeats)
                answers = len(part_g.connected_pairs) + len(part_h.connected_pairs)
                if part_g.paths or part_h.paths:
                    answers = part_g.total_paths + part_h.total_paths
                report.add_row(
                    **base,
                    engine=engine.name,
                    time_ms=round(seconds * 1000.0, 3),
                    answers=answers,
                    timed_out=part_g.timed_out or part_h.timed_out,
                )
    report.note("ctp_results >> NL for bidirectional molesp: grandparent connections, filtered by the BGP join (Sec 5.5.1)")
    report.note("'wasted' = fraction of stitch joins discarded as duplicates or non-trees (Section 2 analysis)")
    return report
