"""E-backend — dict vs CSR graph backend on neighbor-expansion workloads.

Not tied to a paper figure.  Quantifies what :meth:`Graph.freeze` buys on
the loops that dominate connection search (Sections 4.2-4.7): undirected
BFS sweeps, label-constrained reachability (the check-only path-engine
regime of Section 5.5), and end-to-end MoLESP.  Each row times the same
operation on the mutable dict backend and on the frozen CSR backend and
reports the speedup; ``freeze_ms`` is the one-off snapshot cost.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from repro.baselines.path_engines import CheckOnlyPathEngine
from repro.bench.harness import ExperimentReport, Measurement, time_call
from repro.ctp.config import SearchConfig
from repro.ctp.molesp import MoLESPSearch
from repro.workloads.cdf import cdf_graph
from repro.workloads.synthetic import chain_graph, star_graph


def run(scale: float = 1.0, timeout: Optional[float] = None, repeats: int = 1) -> ExperimentReport:
    timeout = timeout if timeout is not None else 30.0
    report = ExperimentReport(
        experiment="backend",
        title="Backend micro-bench: dict vs CSR (Graph.freeze) on neighbor expansion",
        config={"scale": scale, "timeout": timeout},
    )
    chain_n = max(6, round(10 * scale))
    star_m = max(4, round(6 * scale))
    trees = max(8, round(30 * scale))
    community = cdf_graph(num_trees=trees, num_links=2 * trees, link_length=3, m=2, seed=7).graph
    chain, chain_seeds = chain_graph(chain_n)
    star, star_seeds = star_graph(star_m, 3)
    algorithm = MoLESPSearch()

    def bfs_sweep(graph) -> Callable[[], int]:
        from repro.graph.traversal import bfs_distances

        def op() -> int:
            total = 0
            for node in range(0, graph.num_nodes, 7):
                total += len(bfs_distances(graph, [node]))
            return total

        return op

    def labeled_reach(graph) -> Callable[[], object]:
        labels = sorted(graph.edge_labels())[:2]
        engine = CheckOnlyPathEngine(uni=False, labels=labels)
        sources = list(range(0, graph.num_nodes, 4))
        targets = list(range(2, graph.num_nodes, 4))
        return lambda: engine.run(graph, sources, targets)

    def molesp(graph, seeds) -> Callable[[], object]:
        config = SearchConfig(timeout=timeout)
        return lambda: algorithm.run(graph, seeds, config)

    cases: Tuple[Tuple[str, str, Callable], ...] = (
        ("community", "bfs-sweep", lambda g: bfs_sweep(g)),
        ("community", "labeled-reach", lambda g: labeled_reach(g)),
        ("chain", "molesp", lambda g: molesp(g, chain_seeds)),
        ("star", "molesp", lambda g: molesp(g, star_seeds)),
    )
    graphs = {"community": community, "chain": chain, "star": star}
    # Time the snapshot build once per graph: freeze() is memoized, so
    # re-timing it per case would report a cache lookup as the build cost.
    freeze_times = {name: time_call(g.freeze, 1) for name, g in graphs.items()}
    for workload, op_name, make_op in cases:
        graph = graphs[workload]
        freeze_seconds, frozen = freeze_times[workload]
        dict_op, csr_op = make_op(graph), make_op(frozen)
        dict_op(), csr_op()  # warm-up (builds the CSR view caches once)
        # Interleave the two backends and keep the best of `repeats` rounds:
        # best-of is robust against machine noise, and interleaving keeps a
        # slow patch from penalizing whichever backend runs later.
        dict_seconds = csr_seconds = float("inf")
        for _ in range(max(1, repeats)):
            seconds, _ = time_call(dict_op, 1)
            dict_seconds = min(dict_seconds, seconds)
            seconds, _ = time_call(csr_op, 1)
            csr_seconds = min(csr_seconds, seconds)
        report.add(
            Measurement(
                params={"workload": workload, "op": op_name, "edges": graph.num_edges},
                seconds=dict_seconds,
                values={
                    "dict_ms": round(dict_seconds * 1000, 3),
                    "csr_ms": round(csr_seconds * 1000, 3),
                    "speedup": round(dict_seconds / csr_seconds, 2) if csr_seconds else float("inf"),
                    "freeze_ms": round(freeze_seconds * 1000, 3),
                },
            )
        )
    report.note(
        "speedup = dict_ms / csr_ms; CSR wins where expansion repeats over the same "
        "frontier (cached neighbor tuples, cached label-filtered adjacency); freeze_ms "
        "is the one-off snapshot cost, amortized across queries"
    )
    return report
