"""E-parallel — worker-pool CTP dispatch vs the serial evaluator loop.

Not tied to a paper figure.  A/Bs ``SearchConfig(parallelism=N)`` for
N ∈ {1, 2, 4, 8} against serial dispatch (N=1), end-to-end through
:func:`repro.query.evaluator.evaluate_query`, plus the batch front-end
:func:`repro.query.parallel.evaluate_queries`.

Regimes — chosen to report *honestly* what a thread pool buys a CPython
process (see the repro.query.parallel module docstring):

* ``complete`` — a 4-CTP query whose searches run to completion.  Rows
  MUST be identical to serial at every worker count (column
  ``identical``); this is the determinism gate.  Wall-clock speedup here
  requires real CPU overlap, so expect ~1x under a GIL interpreter on a
  single core and scaling on free-threaded multi-core builds — the row
  exists to pin the dispatch overhead either way.
* ``deadline`` — a 4-CTP query on a graph large enough that every CTP
  exhausts its per-CTP ``TIMEOUT`` (the paper's ``T``).  Deadlines are
  wall-clock budgets, so m concurrent workers overlap them: serial pays
  ~4T, 4 workers pay ~T — a genuine >= 1.5x on any interpreter, GIL or
  not.  Timed-out result sets are CPU-share-dependent, so row identity is
  *not* asserted here (column reads ``n/a``); this is the regime the
  north-star's heavy-traffic serving cares about (bounded-latency
  answers), and the speedup acceptance row.
* ``batch`` — ``evaluate_queries`` over a query list with repeats, versus
  evaluating each query with its own fresh context: the cross-query memo
  regime (row identity asserted, hits counted).
"""

from __future__ import annotations

import time
from typing import List, Optional, Tuple

from repro.bench.experiments.micro_query_context import grouped_star
from repro.bench.harness import ExperimentReport, Measurement
from repro.ctp.config import SearchConfig
from repro.graph.graph import Graph
from repro.query.ast import CTP, Condition, EQLQuery, Predicate
from repro.query.evaluator import QueryResult, evaluate_query
from repro.query.parallel import evaluate_queries
from repro.query.scoring import get_score_function

WORKER_COUNTS = (2, 4, 8)


def _group_seed(var: str, group: int) -> Predicate:
    return Predicate(var, (Condition("type", "=", f"g{group}"),))


def _fan_query(num_ctps: int, first_group: int = 0) -> EQLQuery:
    """``num_ctps`` independent CTPs: CONNECT(a_j: g2j, b_j: g2j+1) AS wj."""
    ctps = tuple(
        CTP(
            (
                _group_seed(f"a{j}", first_group + 2 * j),
                _group_seed(f"b{j}", first_group + 2 * j + 1),
            ),
            f"w{j}",
        )
        for j in range(num_ctps)
    )
    head = tuple(f"w{j}" for j in range(num_ctps))
    return EQLQuery(head=head, ctps=ctps)


def _overlap_query(num_ctps: int) -> EQLQuery:
    """CTPs sharing the g0 seed set, each connecting to its own group —
    joins on ``a`` keep the final table linear, not a cross product."""
    ctps = tuple(
        CTP((_group_seed("a", 0), _group_seed(f"b{j}", j + 1)), f"w{j}")
        for j in range(num_ctps)
    )
    head = ("a",) + tuple(f"w{j}" for j in range(num_ctps))
    return EQLQuery(head=head, ctps=ctps)


def _typed_expander(num_groups: int, nodes_per_group: int, spokes: int, extra_edges: int) -> Graph:
    """A deterministic dense-ish graph with typed seed groups.

    Group members hang off a shared core ring through ``spokes``
    alternative attachment points plus modular chords, so connection
    search between two groups has combinatorially many minimal trees —
    enough that an unbounded enumeration blows any small per-CTP timeout.
    No RNG: the bench must be bit-reproducible.
    """
    graph = Graph(f"typed-expander({num_groups}x{nodes_per_group})")
    core = [graph.add_node(f"c{i}") for i in range(num_groups * spokes)]
    for i, node in enumerate(core):
        graph.add_edge(node, core[(i + 1) % len(core)], "ring")
    for step in range(2, 2 + extra_edges):
        for i in range(0, len(core), step):
            graph.add_edge(core[i], core[(i + step * step) % len(core)], f"chord{step}")
    for group in range(num_groups):
        for j in range(nodes_per_group):
            member = graph.add_node(f"g{group}_{j}", types=(f"g{group}",))
            for s in range(spokes):
                anchor = core[(group * spokes + s * (j + 1)) % len(core)]
                graph.add_edge(anchor, member, "attach")
    return graph


def _rows_identical(a: QueryResult, b: QueryResult) -> bool:
    """Bit-level determinism gate: same columns, same rows, same order."""
    return a.columns == b.columns and a.rows == b.rows


def _best_of(fn, repeats: int) -> Tuple[float, QueryResult]:
    best = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def run(scale: float = 1.0, timeout: Optional[float] = None, repeats: int = 1) -> ExperimentReport:
    timeout = timeout if timeout is not None else 60.0
    report = ExperimentReport(
        experiment="parallel",
        title="Parallel CTP dispatch: worker counts vs the serial evaluator (row-identical)",
        config={"scale": scale, "timeout": timeout, "repeats": repeats},
    )

    # --- complete regime: bounded searches, rows identical at any N -----
    tips = max(2, round(4 * scale))
    star = grouped_star(5, tips, 3)
    complete_query = _overlap_query(4)

    def eval_star(parallelism: int) -> QueryResult:
        return evaluate_query(
            star,
            complete_query,
            base_config=SearchConfig(parallelism=parallelism),
            default_timeout=timeout,
        )

    serial_s, serial_result = _best_of(lambda: eval_star(1), repeats)
    for workers in WORKER_COUNTS:
        par_s, par_result = _best_of(lambda: eval_star(workers), repeats)
        identical = _rows_identical(serial_result, par_result)
        report.add(
            Measurement(
                params={"regime": "complete", "workload": "overlap-4ctp", "workers": workers},
                seconds=par_s,
                values={
                    "serial_ms": round(serial_s * 1000, 3),
                    "parallel_ms": round(par_s * 1000, 3),
                    "speedup": round(serial_s / par_s, 2) if par_s else float("inf"),
                    "rows": len(par_result),
                    "identical": identical,
                },
            )
        )
        if not identical:
            report.note(
                f"DETERMINISM FAILURE: complete-regime rows differ at {workers} workers"
            )

    # --- deadline regime: every CTP exhausts its wall-clock budget ------
    ctp_timeout = max(0.05, 0.15 * scale)
    expander = _typed_expander(
        num_groups=8,
        nodes_per_group=max(2, round(4 * scale)),
        spokes=3,
        extra_edges=3,
    )
    deadline_query = _fan_query(4)
    deadline_config = dict(
        score=get_score_function("size"),
        top_k=2,  # keeps the final join tiny; the search still runs full T
    )

    def eval_deadline(parallelism: int) -> QueryResult:
        return evaluate_query(
            expander,
            deadline_query,
            base_config=SearchConfig(parallelism=parallelism, **deadline_config),
            default_timeout=ctp_timeout,
        )

    serial_s, serial_result = _best_of(lambda: eval_deadline(1), repeats)
    timed_out = sum(1 for r in serial_result.ctp_reports if r.result_set.timed_out)
    for workers in WORKER_COUNTS:
        par_s, par_result = _best_of(lambda: eval_deadline(workers), repeats)
        report.add(
            Measurement(
                params={"regime": "deadline", "workload": "fan-4ctp-timeout", "workers": workers},
                seconds=par_s,
                values={
                    "serial_ms": round(serial_s * 1000, 3),
                    "parallel_ms": round(par_s * 1000, 3),
                    "speedup": round(serial_s / par_s, 2) if par_s else float("inf"),
                    "rows": len(par_result),
                    "identical": "n/a (timeout-truncated)",
                    "ctps_timed_out": sum(
                        1 for r in par_result.ctp_reports if r.result_set.timed_out
                    ),
                },
            )
        )
    if timed_out < 4:
        report.note(
            f"deadline regime under-saturated: only {timed_out}/4 serial CTPs timed out "
            "(raise scale so every CTP exhausts its budget)"
        )

    # --- batch regime: one shared context across a query list ----------
    batch_queries: List[EQLQuery] = [
        _overlap_query(2),
        _fan_query(2, first_group=1),
        _overlap_query(2),  # repeated: every CTP is a cross-query memo hit
        _fan_query(2, first_group=1),
    ]

    def eval_batch():
        return evaluate_queries(star, batch_queries, default_timeout=timeout)

    def eval_per_query():
        return [
            evaluate_query(star, query, default_timeout=timeout) for query in batch_queries
        ]

    per_query_s, per_query_results = _best_of(eval_per_query, repeats)
    batch_s, batch_result = _best_of(eval_batch, repeats)
    identical = all(
        _rows_identical(a, b) for a, b in zip(per_query_results, batch_result.results)
    )
    stats = batch_result.context_stats() or {}
    report.add(
        Measurement(
            params={"regime": "batch", "workload": "4-queries-2-repeated", "workers": 1},
            seconds=batch_s,
            values={
                "serial_ms": round(per_query_s * 1000, 3),
                "parallel_ms": round(batch_s * 1000, 3),
                "speedup": round(per_query_s / batch_s, 2) if batch_s else float("inf"),
                "rows": sum(len(r) for r in batch_result),
                "identical": identical,
                "ctp_cache_hits": stats.get("ctp_cache_hits", 0),
            },
        )
    )
    if not identical:
        report.note("DETERMINISM FAILURE: batch rows differ from per-query evaluation")

    report.note(
        "speedup = serial_ms / parallel_ms; serial is SearchConfig(parallelism=1), parallel "
        "dispatches the query's CTPs to a ThreadPoolExecutor over one thread-safe "
        "SearchContext (sharded pool, locked caches)"
    )
    report.note(
        "complete regime: searches finish, so rows are asserted identical at every worker "
        "count; wall-clock gains need real CPU overlap (free-threaded/multi-core) — under a "
        "single-core GIL interpreter this row measures dispatch overhead"
    )
    report.note(
        "deadline regime: every CTP exhausts its per-CTP TIMEOUT, and timeouts are "
        "wall-clock budgets, so workers overlap them (serial ~4T vs 4 workers ~T) on any "
        "interpreter; timed-out result sets depend on CPU share, hence no row-identity "
        "check — this is the bounded-latency serving regime"
    )
    report.note(
        "batch regime: evaluate_queries shares one context across the query list; repeated "
        "queries hit the cross-query CTP memo (ctp_cache_hits), rows identical to "
        "per-query evaluation"
    )
    return report
