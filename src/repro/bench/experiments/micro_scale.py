"""E-scale — dense search-local node ids at a million nodes.

Not tied to a paper figure.  This is the proof artifact for the dense-id
refactor: the legacy pools key every mask and memo by *global* node and
edge ids, so a single tree's ``node_mask`` costs ``max(node_id)`` bits
(~125 KB of bigint at 10^6 nodes) and the per-search dicts scale with the
id space.  Dense mode (:class:`~repro.ctp.idremap.IdRemap` plus the flat
:class:`~repro.ctp.interning.FlatEdgeSetPool`) re-keys each search by its
*touched* set, so cost follows the CTP's radius-2 neighbourhood — a few
hundred nodes — no matter how large the graph is.

The bench builds one seeded scale-free graph per size (10^5 warm-up and
the headline 10^6), samples a tight-radius m=2 CTP batch
(:func:`~repro.workloads.realworld.scale_workload`), and runs a complete
(BFT) and a heuristic (MoLESP) engine over it twice — ``dense_ids`` on
and off — measuring wall-clock and peak RSS.  Three properties are
asserted as verdict rows the CI gate reads from the checked-in JSON:

* ``identity`` — per size, the canonical result rows of both paths hash
  to the same digest (``identical`` must be true): the remap is an
  implementation detail, not a semantics change.
* ``rss-ceiling`` — dense search-phase peak-RSS growth
  (``search_peak_delta_mb``) stays under a generous ceiling that the
  legacy path already exceeds at moderate sizes.
* legacy may DNF — each configuration runs in its own child process
  under a timeout; a legacy child that exceeds it is recorded as a
  ``dnf`` row (the documented size past which only dense is practical),
  never as a bench failure.

Each (size, mode) cell runs in a **subprocess** because ``ru_maxrss`` is
a lifetime high-water mark: two configurations sharing a process would
share one peak and the A-B comparison would be meaningless.  The child
reports peak RSS after build and after search separately, so
``search_peak_delta_mb`` isolates what the *search* adds over the graph
itself (the graph build transients are identical in both modes).
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys
from typing import Any, Dict, List, Optional

from repro.bench.harness import ExperimentReport, Measurement

#: Engines under test: one complete enumerator, one heuristic.
ALGORITHMS = ("bft", "molesp")
#: Deterministic bounds: preferential-attachment hubs make unbounded
#: complete enumeration explode, and count-based cuts (result limit +
#: expansion cap) are order-stable, so dense/legacy rows stay comparable.
MAX_EDGES = 4
LIMIT = 8
MAX_TREES = 4_000
NUM_CTPS = 6
SEED = 42
#: Ceiling on what the dense *search* phase may add over the built graph
#: (MB).  Measured: dense adds ~26 MB at 10^5 and ~170 MB at 10^6 (most
#: of it lazy adjacency-cache fill, paid identically by both modes),
#: while legacy adds ~65 MB and ~450 MB.  The ceiling sits between the
#: two: slack for allocator noise, but a global-id-sized mask regression
#: (the legacy curve) cannot fit under it.
DENSE_SEARCH_RSS_CEILING_MB = 256.0


def _canonical_rows(result_set) -> List[tuple]:
    return sorted(
        (
            tuple(sorted(r.edges)),
            tuple(sorted(r.nodes)),
            r.seeds,
            round(r.weight, 9),
            r.score,
        )
        for r in result_set
    )


def _child_main(argv: List[str]) -> None:
    """One (nodes, dense) cell: build, search, print a JSON line."""
    import resource
    import time

    from repro.ctp.config import SearchConfig
    from repro.ctp.registry import get_algorithm
    from repro.workloads.realworld import scale_workload

    nodes = int(argv[argv.index("--nodes") + 1])
    dense = "--dense" in argv

    def peak_mb() -> float:
        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0

    def rss_mb() -> float:
        with open("/proc/self/status", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) / 1024.0
        return 0.0

    started = time.perf_counter()
    graph, ctps = scale_workload(nodes, seed=SEED, num_ctps=NUM_CTPS)
    build_seconds = time.perf_counter() - started
    rss_build = rss_mb()
    peak_build = peak_mb()

    config = SearchConfig(
        max_edges=MAX_EDGES, limit=LIMIT, max_trees=MAX_TREES, dense_ids=dense
    )
    digest = hashlib.sha256()
    rows = 0
    started = time.perf_counter()
    for index, ctp in enumerate(ctps):
        for name in ALGORITHMS:
            result_set = get_algorithm(name).run(graph, ctp, config)
            rows += len(result_set)
            payload = (index, name, _canonical_rows(result_set))
            digest.update(repr(payload).encode("utf-8"))
    search_seconds = time.perf_counter() - started
    peak_total = peak_mb()

    print(
        json.dumps(
            {
                "digest": digest.hexdigest(),
                "rows": rows,
                "build_seconds": round(build_seconds, 3),
                "search_seconds": round(search_seconds, 3),
                "rss_build_mb": round(rss_build, 1),
                "peak_build_mb": round(peak_build, 1),
                "peak_mb": round(peak_total, 1),
                "search_peak_delta_mb": round(peak_total - peak_build, 1),
            }
        )
    )


def _run_child(nodes: int, dense: bool, timeout: float) -> Optional[Dict[str, Any]]:
    """Run one cell in a fresh process; ``None`` means DNF (timeout)."""
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = "0"
    env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
    command = [
        sys.executable,
        "-m",
        "repro.bench.experiments.micro_scale",
        "--child",
        "--nodes",
        str(nodes),
    ]
    if dense:
        command.append("--dense")
    try:
        proc = subprocess.run(
            command, env=env, capture_output=True, text=True, timeout=timeout
        )
    except subprocess.TimeoutExpired:
        return None
    if proc.returncode != 0:
        raise RuntimeError(
            f"scale child (nodes={nodes}, dense={dense}) failed:\n{proc.stderr}"
        )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def run(scale: float = 1.0, timeout: Optional[float] = None, repeats: int = 1) -> ExperimentReport:
    # The headline size: 10^6 nodes at scale 1.0 (smoke clamps to 10^5).
    nodes = max(20_000, int(1_000_000 * scale))
    sizes = sorted({max(10_000, nodes // 10), nodes})
    # Build alone is ~40 s at 10^6; give every child room, scaled up so a
    # slow legacy run is measured (and documented) rather than DNF'd early.
    child_timeout = timeout if timeout is not None else max(300.0, 1200.0 * scale)
    report = ExperimentReport(
        experiment="scale",
        title="Dense search-local ids: peak RSS and wall-clock vs legacy at 10^6 nodes",
        config={
            "scale": scale,
            "timeout": child_timeout,
            "repeats": repeats,
            "sizes": sizes,
            "algorithms": list(ALGORITHMS),
            "num_ctps": NUM_CTPS,
            "seed": SEED,
            "max_edges": MAX_EDGES,
            "limit": LIMIT,
            "max_trees": MAX_TREES,
            "rss_ceiling_mb": DENSE_SEARCH_RSS_CEILING_MB,
        },
    )
    digests: Dict[int, Dict[bool, Optional[str]]] = {}
    dense_deltas: Dict[int, float] = {}
    for size in sizes:
        digests[size] = {}
        for dense in (True, False):
            best: Optional[Dict[str, Any]] = None
            for _ in range(max(1, repeats)):
                child = _run_child(size, dense, child_timeout)
                if child is None:
                    best = None
                    break
                if best is None or child["search_seconds"] < best["search_seconds"]:
                    best = child
            if best is None:
                digests[size][dense] = None
                report.add_row(
                    nodes=size, dense_ids=dense, dnf=True, timeout_s=child_timeout
                )
                report.note(
                    f"DNF: legacy={'off' if dense else 'on'} at {size} nodes "
                    f"exceeded {child_timeout:.0f}s; dense remains the only "
                    f"practical path past this size"
                )
                continue
            digests[size][dense] = best["digest"]
            if dense:
                dense_deltas[size] = best["search_peak_delta_mb"]
            report.add(
                Measurement(
                    params={"nodes": size, "dense_ids": dense},
                    seconds=best["search_seconds"],
                    values={
                        "rows": best["rows"],
                        "build_s": best["build_seconds"],
                        "search_s": best["search_seconds"],
                        "rss_build_mb": best["rss_build_mb"],
                        "peak_mb": best["peak_mb"],
                        "search_peak_delta_mb": best["search_peak_delta_mb"],
                        "digest": best["digest"][:16],
                    },
                )
            )

    # --- identity gate: dense and legacy rows bit-identical per size ----
    comparable = {
        size: pair
        for size, pair in digests.items()
        if pair.get(True) is not None and pair.get(False) is not None
    }
    identical = all(pair[True] == pair[False] for pair in comparable.values())
    report.add_row(
        regime="identity",
        sizes_compared=len(comparable),
        identical=identical and bool(comparable),
    )
    if not identical:
        report.note("DETERMINISM FAILURE: dense_ids changed result rows")
    elif not comparable:
        report.note("IDENTITY GATE VACUOUS: no size completed on both paths")

    # --- RSS ceiling: dense search overhead stays flat ------------------
    worst = max(dense_deltas.values()) if dense_deltas else float("inf")
    under = worst <= DENSE_SEARCH_RSS_CEILING_MB
    report.add_row(
        regime="rss-ceiling",
        dense_worst_delta_mb=worst,
        ceiling_mb=DENSE_SEARCH_RSS_CEILING_MB,
        under_ceiling=under,
    )
    if not under:
        report.note(
            f"RSS FAILURE: dense search added {worst:.0f}MB, over the "
            f"{DENSE_SEARCH_RSS_CEILING_MB:.0f}MB ceiling"
        )
    return report


if __name__ == "__main__":
    if "--child" in sys.argv:
        _child_main(sys.argv)
    else:
        print(run().to_markdown())
