"""E-tab1 — Table 1: full EQL queries on a YAGO3-like graph.

Three queries of increasing hostility (Section 5.5.2):

* **J1** — 3 BGPs, 2 CTPs: selective seed sets; every engine can try.
* **J2** — 2 BGPs, 1 CTP with one *very large* seed set: requires the
  balanced-queue optimization of Section 4.9 (ii).
* **J3** — a single CTP with an ``N`` (wildcard) seed set: requires
  Section 4.9 (i).

We report per-engine seconds, and for the MoLESP pipeline the CTP share of
the total time (the paper: "MoLESP took around 30% of the total time, the
rest being spent ... in the BGP evaluation and final joins").  In the
paper Virtuoso OOMs after J1 and Neo4j/Postgres time out; our simulators
measure the same regimes at our scale (the check-only Virtuoso-like
engine does not run out of memory in-process — see EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.baselines.path_engines import jedi_like_engine, neo4j_like_engine
from repro.baselines.stitching import stitch_paths
from repro.bench.harness import ExperimentReport, time_call
from repro.ctp.config import SearchConfig
from repro.query.evaluator import evaluate_query
from repro.query.parser import parse_query
from repro.query.bgp import evaluate_bgp
from repro.workloads.realworld import j1_query, j2_query, j3_query, yago_like


def _molesp_row(graph, query_text: str, timeout: float, repeats: int) -> Tuple[float, dict]:
    seconds, result = time_call(
        lambda: evaluate_query(graph, query_text, default_timeout=timeout), repeats
    )
    total = result.timings.total_seconds or 1e-9
    return seconds, {
        "answers": len(result),
        "ctp_share": round(result.timings.ctp_seconds / total, 2),
        "timed_out": any(r.result_set.timed_out for r in result.ctp_reports),
    }


def _path_engine_row(graph, query_text: str, engine_factory: Callable, timeout: float, repeats: int) -> Tuple[float, dict]:
    """Drive a path engine over the query's CTP endpoints (BGPs via our engine).

    The real JEDI/Neo4j also evaluate the conjunctive part themselves; we
    delegate it to the shared BGP matcher so the comparison isolates the
    connection-search regime, as in the paper.
    """
    query = parse_query(query_text)

    def job():
        from repro.query.evaluator import _seed_sets_for_ctp, derive_binding_values  # shared logic
        from repro.ctp.config import WILDCARD

        bgp_tables = [evaluate_bgp(graph, bgp) for bgp in query.bgps()]
        seed_vars = {seed.var for ctp in query.ctps for seed in ctp.seeds}
        binding_values = derive_binding_values(bgp_tables, only=seed_vars)
        engine = engine_factory()
        total_answers = 0
        timed_out = False
        for ctp in query.ctps:
            seed_sets, _, _, _ = _seed_sets_for_ctp(graph, ctp, binding_values)
            resolved = [list(graph.node_ids()) if s is WILDCARD else list(s) for s in seed_sets]
            max_hops = ctp.filters.max_edges
            if max_hops is not None:
                engine.max_hops = max_hops
            sources = resolved[0]
            if len(resolved) == 2:
                outcome = engine.run(graph, sources, resolved[1], timeout=timeout)
                timed_out |= outcome.timed_out
                total_answers += outcome.total_paths or len(outcome.connected_pairs)
            else:
                part_a = engine.run(graph, sources, resolved[1], timeout=timeout / 2.0)
                part_b = engine.run(graph, sources, resolved[2], timeout=timeout / 2.0)
                stitched = stitch_paths(graph, part_a.paths, part_b.paths, max_joins=2_000_000)
                timed_out |= part_a.timed_out or part_b.timed_out or stitched.truncated
                total_answers += len(stitched.trees)
        return total_answers, timed_out

    seconds, (answers, timed_out) = time_call(job, repeats)
    return seconds, {"answers": answers, "ctp_share": None, "timed_out": timed_out}


def run(scale: float = 1.0, timeout: Optional[float] = None, repeats: int = 1) -> ExperimentReport:
    timeout = timeout if timeout is not None else 5.0
    dataset = yago_like(scale=0.05 * scale)
    graph = dataset.graph
    report = ExperimentReport(
        experiment="table1",
        title="Table 1: J1-J3 EQL queries on a YAGO3-like graph",
        config={"scale": scale, "timeout": timeout, "graph_edges": graph.num_edges},
    )
    queries: List[Tuple[str, str]] = [
        ("J1", j1_query(f"MAX 3 LIMIT 500 TIMEOUT {timeout}")),
        ("J2", j2_query(f"MAX 3 TIMEOUT {timeout}")),
        ("J3", j3_query(f"MAX 3 LIMIT 200 TIMEOUT {timeout}")),
    ]
    for name, text in queries:
        seconds, extra = _molesp_row(graph, text, timeout, repeats)
        report.add_row(query=name, engine="molesp-eql", time_s=round(seconds, 3), **extra)
        for engine_name, factory in (
            ("jedi-like", lambda: jedi_like_engine()),
            ("neo4j-like", lambda: neo4j_like_engine(max_hops=4)),
        ):
            try:
                seconds, extra = _path_engine_row(graph, text, factory, timeout, repeats)
                report.add_row(query=name, engine=engine_name, time_s=round(seconds, 3), **extra)
            except Exception as error:  # engines cannot express every query
                report.add_row(query=name, engine=engine_name, time_s=None, answers=None, ctp_share=None, timed_out=str(error))
    report.note("paper: Virtuoso completed J1 then OOM'd; Neo4j timed out on J1/J2; MoLESP ~30% of total time")
    return report
