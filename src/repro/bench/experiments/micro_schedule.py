"""E-schedule — cost-model scheduling: tail latency under a deadline.

Not tied to a paper figure.  This is the load generator for the
scheduling PR's claim: under a whole-query deadline the historical
dispatch freezes every CTP's budget at job-build time at ~the full
remaining deadline (all jobs are built at ~query start), so a serial
query with k deadline-hungry CTPs overshoots to ~k × deadline wall —
the deadline stops bounding the *query*.  The
:class:`~repro.query.costmodel.DeadlineLedger` gives each CTP a
cost-proportional share instead (rebalanced upward at execution time as
fast CTPs finish under their shares), pulling the query back to ~one
deadline of wall time.

The generator drives a mixed easy/hard batch — mostly cheap 1-CTP
queries plus a few 3-CTP queries whose every CTP alone exceeds the
deadline — through serial dispatch with ``scheduling`` off and on, and
reports per-query latency percentiles.  The easy queries dominate p50
(unchanged); the hard queries *are* the tail, so p99 shows the
overshoot (off ≈ k × deadline) against the ledger (on ≈ deadline).
The checked-in JSON must satisfy **p99 on ≤ p99 off** — CI asserts it.

Two gates ride along:

* ``identity`` — without a deadline, rows for both query shapes are
  asserted bit-identical to serial dispatch under every scheduling
  permutation (off/on × serial/thread/process/auto) — the ``identical``
  column must be true in a checked-in JSON.
* ``auto`` — ``parallelism_mode="auto"`` over the same mixed batch:
  the cost model must send cheap 1-CTP queries to serial dispatch and
  the expensive multi-CTP ones to a worker fan-out.
"""

from __future__ import annotations

import math
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.experiments.micro_query_context import grouped_star
from repro.bench.harness import ExperimentReport, Measurement
from repro.ctp.config import SearchConfig
from repro.query.evaluator import evaluate_query

#: Complete (enumerate-every-tree) algorithm: hardness is controlled by
#: ``MAX`` — one extra edge of budget on the merge-heavy star explodes
#: the frontier, which is exactly the easy/hard contrast the batch needs.
ALGORITHM = "bft"
NUM_GROUPS = 5
ARM_LENGTH = 3
#: Tips-to-tip distance through the hub is ``2 * ARM_LENGTH``: MAX 6 is
#: the minimal (easy) budget, MAX 7 admits one detour (hard).
EASY_MAX = 6
HARD_MAX = 7
#: CTPs per hard query — the deadline-overshoot factor scheduling fixes.
HARD_CTPS = 3


def _query(pairs: Sequence[Tuple[int, int, int]]) -> str:
    """An EQL query with one ``CONNECT ... MAX`` per ``(a, b, max)`` triple."""
    filters: List[str] = []
    connects: List[str] = []
    heads: List[str] = []
    for v, (a, b, max_edges) in enumerate(pairs):
        filters.append(f'FILTER(type(?s{v}) = "g{a}")')
        filters.append(f'FILTER(type(?t{v}) = "g{b}")')
        connects.append(f"CONNECT(?s{v}, ?t{v}) AS ?w{v} MAX {max_edges}")
        heads.append(f"?w{v}")
    body = "\n      ".join(filters + connects)
    return f"SELECT {' '.join(heads)} WHERE {{\n      {body}\n    }}"


def _mixed_batch(num_easy: int, num_hard: int) -> List[str]:
    """Deterministic easy/hard interleaving (hard spread through the batch).

    Each hard query leads with one *easy* CTP: it finishes far under its
    cost-proportional share, so the ledger's execution-time grants to the
    hard CTPs behind it visibly exceed their build budgets (the
    ``rebalances`` counter in the report).
    """
    easy = [
        _query([((i + 1) % NUM_GROUPS, (i + 2) % NUM_GROUPS, EASY_MAX)])
        for i in range(num_easy)
    ]
    hard = [
        _query(
            [(i % NUM_GROUPS, (i + 1) % NUM_GROUPS, EASY_MAX)]
            + [
                ((i + j) % NUM_GROUPS, (i + j + 1) % NUM_GROUPS, HARD_MAX)
                for j in range(1, HARD_CTPS)
            ]
        )
        for i in range(num_hard)
    ]
    batch = list(easy)
    stride = max(1, len(batch) // (num_hard + 1))
    for i, text in enumerate(hard):
        batch.insert(min(len(batch), (i + 1) * stride + i), text)
    return batch


def _percentile(latencies: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (exact for the small samples a bench has)."""
    if not latencies:
        return 0.0
    ordered = sorted(latencies)
    rank = min(len(ordered), max(1, math.ceil(q / 100.0 * len(ordered))))
    return ordered[rank - 1]


def _drive(graph, batch: Sequence[str], config: SearchConfig, timeout: float):
    """Serially evaluate the batch; return (latencies, results)."""
    latencies: List[float] = []
    results = []
    for text in batch:
        started = time.perf_counter()
        result = evaluate_query(
            graph, text, ALGORITHM, base_config=config, default_timeout=timeout
        )
        latencies.append(time.perf_counter() - started)
        results.append(result)
    return latencies, results


def run(scale: float = 1.0, timeout: Optional[float] = None, repeats: int = 1) -> ExperimentReport:
    timeout = timeout if timeout is not None else 30.0
    smoke = scale <= 0.25
    tips = 3 if smoke else 4
    # The hard queries' whole point is that each of their *hard* CTPs
    # alone exceeds this budget (~208ms at 3 tips, ~1s at 4, measured),
    # while the leading easy CTP (~30ms / ~130ms) finishes under its
    # cost-proportional share so the ledger has slack to rebalance.
    deadline = 0.15 if smoke else 0.5
    num_easy = max(6, round(16 * scale))
    num_hard = max(2, round(3 * scale))
    report = ExperimentReport(
        experiment="schedule",
        title="Cost-model scheduling: deadline tail latency, identity, auto mode",
        config={
            "scale": scale,
            "timeout": timeout,
            "repeats": repeats,
            "algorithm": ALGORITHM,
            "tips_per_group": tips,
            "deadline_s": deadline,
            "num_easy": num_easy,
            "num_hard": num_hard,
        },
    )
    graph = grouped_star(NUM_GROUPS, tips, ARM_LENGTH)
    batch = _mixed_batch(num_easy, num_hard)

    # --- deadline regime: serial dispatch, ledger off vs on -------------
    percentiles: Dict[bool, Dict[str, float]] = {}
    for scheduling in (False, True):
        config = SearchConfig(deadline=deadline, scheduling=scheduling)
        best: Optional[List[float]] = None
        rebalances = 0
        for _ in range(max(1, repeats)):
            latencies, results = _drive(graph, batch, config, timeout)
            if best is None or sum(latencies) < sum(best):
                best = latencies
                rebalances = sum(
                    r.schedule.rebalances for r in results if r.schedule is not None
                )
        assert best is not None
        stats = {
            "p50_ms": round(_percentile(best, 50) * 1000, 3),
            "p95_ms": round(_percentile(best, 95) * 1000, 3),
            "p99_ms": round(_percentile(best, 99) * 1000, 3),
        }
        percentiles[scheduling] = stats
        report.add(
            Measurement(
                params={"regime": "deadline", "scheduling": scheduling, "requests": len(batch)},
                seconds=sum(best),
                values={**stats, "rebalances": rebalances},
            )
        )
    p99_off = percentiles[False]["p99_ms"]
    p99_on = percentiles[True]["p99_ms"]
    report.add_row(
        regime="deadline-verdict",
        p99_off_ms=p99_off,
        p99_on_ms=p99_on,
        p99_speedup=round(p99_off / p99_on, 2) if p99_on else float("inf"),
        p99_not_worse=p99_on <= p99_off,
    )
    if p99_on > p99_off:
        report.note(
            f"TAIL-LATENCY FAILURE: p99 with scheduling on ({p99_on}ms) exceeds "
            f"off ({p99_off}ms) under a {deadline}s deadline"
        )

    # --- identity gate: no deadline, rows bit-identical to serial -------
    identity_batch = [batch[0], _query([(0, 1, EASY_MAX), (1, 2, EASY_MAX)])]
    identical = True
    for text in identity_batch:
        reference = evaluate_query(graph, text, ALGORITHM, default_timeout=timeout)
        for config in (
            SearchConfig(scheduling=True),
            SearchConfig(parallelism=2, scheduling=True),
            SearchConfig(parallelism=2, parallelism_mode="process", scheduling=True),
            SearchConfig(parallelism=2, parallelism_mode="auto"),
            SearchConfig(parallelism=2, parallelism_mode="auto", scheduling=True),
        ):
            result = evaluate_query(
                graph, text, ALGORITHM, base_config=config, default_timeout=timeout
            )
            if result.columns != reference.columns or result.rows != reference.rows:
                identical = False
    report.add_row(regime="identity", permutations=5 * len(identity_batch), identical=identical)
    if not identical:
        report.note("DETERMINISM FAILURE: scheduling permutation changed query rows")

    # --- auto mode: cheap queries stay serial, expensive ones fan out ---
    auto_config = SearchConfig(
        parallelism=2, parallelism_mode="auto", scheduling=True, deadline=deadline
    )
    selected: Dict[str, int] = {}
    _, results = _drive(graph, batch, auto_config, timeout)
    for result in results:
        if result.schedule is not None:
            mode = result.schedule.mode_selected
            selected[mode] = selected.get(mode, 0) + 1
    report.add_row(regime="auto", requests=len(batch), **{f"mode_{k}": v for k, v in sorted(selected.items())})
    return report
