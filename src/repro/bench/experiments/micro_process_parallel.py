"""E-process-parallel — process-pool CTP dispatch over mmap-shared snapshots.

Not tied to a paper figure.  A/Bs ``SearchConfig(parallelism_mode="process")``
— a ``ProcessPoolExecutor`` whose workers each load the graph **once** from
an mmap-shared binary CSR snapshot (:mod:`repro.graph.snapshot`) and run
CTP jobs against a worker-private context — against serial dispatch and
the PR-4 thread pool, end-to-end through
:func:`repro.query.evaluator.evaluate_query`.

Regimes:

* ``complete`` — a 4-CTP query whose searches run to completion: the
  CPU-bound regime where the thread pool measured ~0.9x under the GIL
  (see ``BENCH_parallel.json``).  Process workers are separate
  interpreters, so with W cores this is where real multi-core speedup
  appears; on a single-core host the workers timeshare one core and the
  row honestly measures dispatch+snapshot overhead instead (the
  ``cpu_count`` config field says which regime a checked-in JSON ran in).
  Rows MUST be identical to serial at every worker count (column
  ``identical``) — this is the determinism gate, and it holds on any
  hardware.
* ``deadline`` — a 4-CTP query where every CTP exhausts its per-CTP
  ``TIMEOUT`` (the paper's ``T``).  Deadlines are wall-clock budgets, so m
  worker processes overlap them exactly like the thread pool does
  (serial ~4T vs 4 workers ~T) — the bounded-latency serving regime, and
  a genuine >1.5x at 4 workers on any interpreter or core count.
* ``snapshot`` — the infrastructure cost: snapshot file size, one-time
  save, and per-worker load, mmap vs full materialization.  The mmap load
  is O(metadata) — adjacency pages fault in on demand and are shared
  between workers — which is what makes load-once-per-worker cheap.
"""

from __future__ import annotations

import os
import time
from typing import Optional

from repro.bench.experiments.micro_parallel import (
    _best_of,
    _fan_query,
    _overlap_query,
    _rows_identical,
    _typed_expander,
)
from repro.bench.experiments.micro_query_context import grouped_star
from repro.bench.harness import ExperimentReport, Measurement
from repro.ctp.config import SearchConfig
from repro.graph.snapshot import load_snapshot, save_snapshot
from repro.query.evaluator import QueryResult, evaluate_query
from repro.query.scoring import get_score_function

PROCESS_WORKER_COUNTS = (1, 2, 4)


def run(scale: float = 1.0, timeout: Optional[float] = None, repeats: int = 1) -> ExperimentReport:
    timeout = timeout if timeout is not None else 60.0
    report = ExperimentReport(
        experiment="process-parallel",
        title="Process-pool CTP dispatch over mmap-shared CSR snapshots",
        config={
            "scale": scale,
            "timeout": timeout,
            "repeats": repeats,
            "cpu_count": os.cpu_count(),
        },
    )

    # --- complete regime: CPU-bound searches run to completion ----------
    tips = max(2, round(4 * scale))
    star = grouped_star(5, tips, 3)
    complete_query = _overlap_query(4)

    def eval_star(parallelism: int, mode: str) -> QueryResult:
        return evaluate_query(
            star,
            complete_query,
            base_config=SearchConfig(parallelism=parallelism, parallelism_mode=mode),
            default_timeout=timeout,
        )

    serial_s, serial_result = _best_of(lambda: eval_star(1, "thread"), repeats)
    thread_s, _ = _best_of(lambda: eval_star(4, "thread"), repeats)
    for workers in PROCESS_WORKER_COUNTS:
        proc_s, proc_result = _best_of(lambda: eval_star(workers, "process"), repeats)
        identical = _rows_identical(serial_result, proc_result)
        report.add(
            Measurement(
                params={"regime": "complete", "workload": "overlap-4ctp", "workers": workers},
                seconds=proc_s,
                values={
                    "serial_ms": round(serial_s * 1000, 3),
                    "thread4_ms": round(thread_s * 1000, 3),
                    "process_ms": round(proc_s * 1000, 3),
                    "speedup_vs_serial": round(serial_s / proc_s, 2) if proc_s else float("inf"),
                    "speedup_vs_thread4": round(thread_s / proc_s, 2) if proc_s else float("inf"),
                    "rows": len(proc_result),
                    "identical": identical,
                },
            )
        )
        if not identical:
            report.note(
                f"DETERMINISM FAILURE: complete-regime rows differ at {workers} process workers"
            )

    # --- deadline regime: every CTP exhausts its wall-clock budget ------
    ctp_timeout = max(0.05, 0.15 * scale)
    expander = _typed_expander(
        num_groups=8,
        nodes_per_group=max(2, round(4 * scale)),
        spokes=3,
        extra_edges=3,
    )
    deadline_query = _fan_query(4)
    deadline_config = dict(
        score=get_score_function("size"),
        top_k=2,  # keeps the final join tiny; the search still runs full T
    )

    def eval_deadline(parallelism: int, mode: str) -> QueryResult:
        return evaluate_query(
            expander,
            deadline_query,
            base_config=SearchConfig(
                parallelism=parallelism, parallelism_mode=mode, **deadline_config
            ),
            default_timeout=ctp_timeout,
        )

    serial_s, serial_result = _best_of(lambda: eval_deadline(1, "thread"), repeats)
    timed_out = sum(1 for r in serial_result.ctp_reports if r.result_set.timed_out)
    for workers in (2, 4):
        proc_s, proc_result = _best_of(lambda: eval_deadline(workers, "process"), repeats)
        report.add(
            Measurement(
                params={"regime": "deadline", "workload": "fan-4ctp-timeout", "workers": workers},
                seconds=proc_s,
                values={
                    "serial_ms": round(serial_s * 1000, 3),
                    "process_ms": round(proc_s * 1000, 3),
                    "speedup_vs_serial": round(serial_s / proc_s, 2) if proc_s else float("inf"),
                    "rows": len(proc_result),
                    "identical": "n/a (timeout-truncated)",
                    "ctps_timed_out": sum(
                        1 for r in proc_result.ctp_reports if r.result_set.timed_out
                    ),
                },
            )
        )
    if timed_out < 4:
        report.note(
            f"deadline regime under-saturated: only {timed_out}/4 serial CTPs timed out "
            "(raise scale so every CTP exhausts its budget)"
        )

    # --- snapshot regime: serialization + per-worker load costs ---------
    import tempfile

    frozen = expander.freeze()
    fd, snap_path = tempfile.mkstemp(prefix="repro-bench-", suffix=".snapshot")
    os.close(fd)
    try:
        save_s, _ = _best_of(lambda: save_snapshot(frozen, snap_path), repeats)
        mmap_s, mmap_graph = _best_of(lambda: load_snapshot(snap_path, use_mmap=True), repeats)
        full_s, _ = _best_of(lambda: load_snapshot(snap_path, use_mmap=False), repeats)
        # Touch the loaded graph so the row proves the mapping works.
        sweep_started = time.perf_counter()
        touched = sum(mmap_graph.degree(n) for n in mmap_graph.node_ids())
        sweep_s = time.perf_counter() - sweep_started
        report.add(
            Measurement(
                params={"regime": "snapshot", "workload": "fan-4ctp-timeout", "workers": 1},
                seconds=mmap_s,
                values={
                    "file_bytes": os.path.getsize(snap_path),
                    "save_ms": round(save_s * 1000, 3),
                    "mmap_load_ms": round(mmap_s * 1000, 3),
                    "full_load_ms": round(full_s * 1000, 3),
                    "degree_sweep_ms": round(sweep_s * 1000, 3),
                    "identical": touched == sum(frozen.degree(n) for n in frozen.node_ids()),
                },
            )
        )
    finally:
        os.unlink(snap_path)

    report.note(
        "speedup_vs_serial = serial_ms / process_ms; serial is SearchConfig(parallelism=1), "
        "process dispatches the query's CTPs to a ProcessPoolExecutor whose workers each "
        "load the graph once from an mmap-shared CSR snapshot and search on a private "
        "SearchContext; the parent serves/files its cross-CTP memo in CTP order"
    )
    report.note(
        "complete regime: searches finish, so rows are asserted identical to serial at "
        "every worker count; real speedup here needs >1 core (workers are separate "
        "interpreters — no GIL sharing, unlike the thread pool's ~0.9x), see the "
        "cpu_count config field for what this host offered"
    )
    report.note(
        "deadline regime: every CTP exhausts its per-CTP TIMEOUT and timeouts are "
        "wall-clock budgets, so worker processes overlap them (serial ~4T vs 4 workers "
        "~T) on any host; timed-out result sets depend on CPU share, hence no "
        "row-identity check"
    )
    report.note(
        "snapshot regime: mmap load is O(metadata) — the adjacency columns are "
        "memoryview casts over a shared read-only mapping, faulted in on demand and "
        "shared between every worker mapping the same file"
    )
    return report
