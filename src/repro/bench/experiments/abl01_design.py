"""ABL-01 — ablations of this reproduction's two interpretation choices.

DESIGN.md §1.3 argues for two readings of the paper's pseudocode; this
experiment measures both choices so the argument is empirical, not just
textual:

1. **Merge2 relaxation.**  ``strict_merge2=True`` applies the literal
   ``sat(t1) ∩ sat(t2) = ∅``.  Expectation: on graphs whose results branch
   *at a seed* (Figure 4's comb shape), strict GAM loses results — i.e.
   the literal reading contradicts Property 1 — while on seed-leaf-only
   workloads (Star) both agree.

2. **Mo-injection condition.**  ``mo_inject_always=True`` injects Mo
   copies for every tree (Algorithm 3 read literally) instead of only on
   seed-coverage gains (the Section 4.5 text).  Expectation: identical
   results, strictly more provenances and time.
"""

from __future__ import annotations

from typing import Optional

from repro.bench.harness import ExperimentReport, time_call
from repro.ctp.config import SearchConfig
from repro.ctp.gam import GAMSearch
from repro.ctp.molesp import MoLESPSearch
from repro.graph.datasets import figure4
from repro.workloads.synthetic import comb_graph, line_graph, star_graph


def run(scale: float = 1.0, timeout: Optional[float] = None, repeats: int = 1) -> ExperimentReport:
    timeout = timeout if timeout is not None else 5.0
    report = ExperimentReport(
        experiment="abl01",
        title="Ablations: strict Merge2 and unconditional Mo injection (DESIGN.md §1.3)",
        config={"scale": scale, "timeout": timeout},
    )
    workloads = [
        ("figure4", *figure4()),
        ("line(5, sL=3)", *line_graph(5, 2)),
        ("comb(3, 2, 3)", *comb_graph(3, 2, 3)),
        ("star(6, 2)", *star_graph(6, 2)),
    ]
    relaxed = SearchConfig(timeout=timeout)
    strict = SearchConfig(timeout=timeout, strict_merge2=True)
    for name, graph, seeds in workloads:
        gam = GAMSearch()
        seconds_relaxed, res_relaxed = time_call(lambda: gam.run(graph, seeds, relaxed), repeats)
        seconds_strict, res_strict = time_call(lambda: gam.run(graph, seeds, strict), repeats)
        report.add_row(
            ablation="merge2",
            workload=name,
            relaxed_results=len(res_relaxed),
            strict_results=len(res_strict),
            lost_by_strict=len(res_relaxed.edge_sets() - res_strict.edge_sets()),
            relaxed_ms=round(seconds_relaxed * 1000.0, 3),
            strict_ms=round(seconds_strict * 1000.0, 3),
        )
    report.note("merge2: lost_by_strict > 0 shows the literal Merge2 breaks GAM completeness (Property 1)")

    gain_only = SearchConfig(timeout=timeout)
    always = SearchConfig(timeout=timeout, mo_inject_always=True)
    for name, graph, seeds in workloads:
        molesp = MoLESPSearch()
        seconds_gain, res_gain = time_call(lambda: molesp.run(graph, seeds, gain_only), repeats)
        seconds_always, res_always = time_call(lambda: molesp.run(graph, seeds, always), repeats)
        report.add_row(
            ablation="mo-inject",
            workload=name,
            gain_results=len(res_gain),
            always_results=len(res_always),
            same_results=res_gain.edge_sets() == res_always.edge_sets(),
            gain_provenances=res_gain.stats.provenances,
            always_provenances=res_always.stats.provenances,
            gain_ms=round(seconds_gain * 1000.0, 3),
            always_ms=round(seconds_always * 1000.0, 3),
        )
    report.note("mo-inject: always-inject keeps the same results while building more provenances")
    return report
