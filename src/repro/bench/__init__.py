"""Benchmark harness regenerating every table and figure of Section 5.

Each experiment lives in :mod:`repro.bench.experiments` and can be run
either programmatically or from the command line::

    python -m repro.bench fig11 --scale 0.5 --timeout 3

The ``scale`` knob shrinks graph sizes / workload counts proportionally so
the pure-Python engines finish on laptop budgets; the *shapes* the paper
reports (who wins, by what factor, where timeouts hit) are preserved — see
EXPERIMENTS.md for the recorded paper-vs-measured comparison.
"""

from repro.bench.harness import ExperimentReport, Measurement, time_call
from repro.bench.experiments import EXPERIMENTS, get_experiment

__all__ = ["EXPERIMENTS", "ExperimentReport", "Measurement", "get_experiment", "time_call"]
