"""Command-line entry point: ``python -m repro.bench <experiment> [...]``."""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bench.experiments import EXPERIMENTS, get_experiment
from repro.bench.reporting import report_to_text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures (see DESIGN.md for the index).",
    )
    parser.add_argument(
        "experiment",
        nargs="+",
        help=f"experiment id(s), or 'all'; known: {', '.join(sorted(EXPERIMENTS))}",
    )
    parser.add_argument("--scale", type=float, default=1.0, help="workload scale factor (default 1.0)")
    parser.add_argument("--timeout", type=float, default=None, help="per-run timeout in seconds (experiment default if omitted)")
    parser.add_argument("--repeats", type=int, default=1, help="repetitions per point (paper used 3)")
    parser.add_argument("--out", default="bench_results", help="directory for JSON results")
    parser.add_argument("--no-save", action="store_true", help="do not write JSON results")
    parser.add_argument("--chart", action="store_true", help="render figure-style sparkline charts")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI smoke mode: clamp --scale to 0.25 and imply --no-save "
        "(equivalence/determinism gates still run at full strictness)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.smoke:
        args.scale = min(args.scale, 0.25)
        args.no_save = True
    names = list(EXPERIMENTS) if "all" in args.experiment else args.experiment
    for name in names:
        runner = get_experiment(name)
        report = runner(scale=args.scale, timeout=args.timeout, repeats=args.repeats)
        print(report_to_text(report))
        if args.chart:
            from repro.bench.plots import charts_for_experiment

            charts = charts_for_experiment(report.experiment, report.rows)
            if charts:
                print()
                print(charts)
        print()
        if not args.no_save:
            target = report.save_json(args.out)
            print(f"[saved {target}]")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
