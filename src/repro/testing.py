"""Deterministic test/bench helpers: random graphs and result validation.

Historically these lived in ``tests/conftest.py`` and test modules pulled
them in with ``from conftest import ...``.  That import is ambiguous when
pytest runs from the repository root: ``benchmarks/conftest.py`` is loaded
first (directories are collected alphabetically) and registers itself in
``sys.modules`` under the bare name ``conftest``, shadowing the tests'
helpers and breaking collection.  The helpers are therefore packaged here,
importable unambiguously by tests, benchmarks, and library users alike.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from repro.ctp.results import CTPResultSet, validate_result
from repro.graph.graph import Graph


def random_graph(
    rng: random.Random,
    num_nodes: int,
    num_edges: int,
    num_labels: int = 3,
) -> Graph:
    """A random connected multigraph for cross-checking algorithms.

    A random spanning tree guarantees connectivity; the remaining edges are
    uniform random pairs (parallel edges allowed, self-loops skipped).
    Deterministic for a given ``rng`` state.
    """
    graph = Graph("random")
    for index in range(num_nodes):
        graph.add_node(f"n{index}")
    for node in range(1, num_nodes):
        partner = rng.randrange(node)
        label = f"l{rng.randrange(num_labels)}"
        if rng.random() < 0.5:
            graph.add_edge(node, partner, label)
        else:
            graph.add_edge(partner, node, label)
    for _ in range(max(0, num_edges - (num_nodes - 1))):
        a = rng.randrange(num_nodes)
        b = rng.randrange(num_nodes)
        if a == b:
            continue
        label = f"l{rng.randrange(num_labels)}"
        graph.add_edge(a, b, label)
    return graph


def random_seed_sets(
    rng: random.Random,
    graph: Graph,
    m: int,
    max_size: int = 2,
) -> Tuple[Tuple[int, ...], ...]:
    """m pairwise-disjoint random seed sets."""
    nodes = list(graph.node_ids())
    rng.shuffle(nodes)
    seed_sets: List[Tuple[int, ...]] = []
    cursor = 0
    for _ in range(m):
        size = rng.randint(1, max_size)
        seed_sets.append(tuple(nodes[cursor : cursor + size]))
        cursor += size
    return tuple(seed_sets)


def assert_all_valid(graph: Graph, results: CTPResultSet, seed_sets: Sequence, wildcard=()):
    """Every result satisfies Definition 2.8 (tree, one seed/set, minimal)."""
    for result in results:
        problems = validate_result(graph, result, seed_sets, wildcard)
        assert not problems, f"invalid result {sorted(result.edges)}: {problems}"


def assert_same_results(left: CTPResultSet, right: CTPResultSet):
    """Two complete algorithms must return the same set of edge sets."""
    assert left.edge_sets() == right.edge_sets()
