"""Deterministic test/bench helpers: random graphs and result validation.

Historically these lived in ``tests/conftest.py`` and test modules pulled
them in with ``from conftest import ...``.  That import is ambiguous when
pytest runs from the repository root: ``benchmarks/conftest.py`` is loaded
first (directories are collected alphabetically) and registers itself in
``sys.modules`` under the bare name ``conftest``, shadowing the tests'
helpers and breaking collection.  The helpers are therefore packaged here,
importable unambiguously by tests, benchmarks, and library users alike.
"""

from __future__ import annotations

import random
from concurrent.futures import Future
from typing import Any, List, Sequence, Tuple

from repro.ctp.results import CTPResultSet, validate_result
from repro.graph.graph import Graph


class FakeClock:
    """A manually-advanced monotonic clock for wall-time-free tests.

    Drop-in for the ``clock`` parameter of
    :class:`repro.query.costmodel.DeadlineLedger`: call it to read the
    time, :meth:`advance` to move it.  Scheduling decisions (build
    budgets, rebalance grants) become exact arithmetic instead of races
    against the host's scheduler.
    """

    def __init__(self, start: float = 0.0) -> None:
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> "FakeClock":
        if seconds < 0:
            raise ValueError("FakeClock cannot run backwards")
        self.now += seconds
        return self


class InlineExecutor:
    """A deterministic executor shim: every submit runs inline, in order.

    Quacks enough like ``concurrent.futures`` pools for the dispatch
    layer's fan-out (``submit`` returning real, already-resolved
    ``Future`` objects that ``as_completed`` consumes) while recording
    the exact submission order in :attr:`submitted` — so tests can pin
    *scheduling decisions* (longest-first ordering, rebalance timing)
    without threads, wall clocks, or flaky completion races.
    """

    def __init__(self) -> None:
        #: ``(fn, args)`` per submit, in submission order.
        self.submitted: List[Tuple[Any, Tuple[Any, ...]]] = []

    def submit(self, fn: Any, *args: Any, **kwargs: Any) -> "Future[Any]":
        self.submitted.append((fn, args))
        future: "Future[Any]" = Future()
        try:
            future.set_result(fn(*args, **kwargs))
        except BaseException as error:  # noqa: BLE001 - mirror executor semantics
            future.set_exception(error)
        return future

    def shutdown(self, wait: bool = True, cancel_futures: bool = False) -> None:
        """No-op (nothing is ever pending); present for pool parity."""


def random_graph(
    rng: random.Random,
    num_nodes: int,
    num_edges: int,
    num_labels: int = 3,
) -> Graph:
    """A random connected multigraph for cross-checking algorithms.

    A random spanning tree guarantees connectivity; the remaining edges are
    uniform random pairs (parallel edges allowed, self-loops skipped).
    Deterministic for a given ``rng`` state.
    """
    graph = Graph("random")
    for index in range(num_nodes):
        graph.add_node(f"n{index}")
    for node in range(1, num_nodes):
        partner = rng.randrange(node)
        label = f"l{rng.randrange(num_labels)}"
        if rng.random() < 0.5:
            graph.add_edge(node, partner, label)
        else:
            graph.add_edge(partner, node, label)
    for _ in range(max(0, num_edges - (num_nodes - 1))):
        a = rng.randrange(num_nodes)
        b = rng.randrange(num_nodes)
        if a == b:
            continue
        label = f"l{rng.randrange(num_labels)}"
        graph.add_edge(a, b, label)
    return graph


def random_seed_sets(
    rng: random.Random,
    graph: Graph,
    m: int,
    max_size: int = 2,
) -> Tuple[Tuple[int, ...], ...]:
    """m pairwise-disjoint random seed sets."""
    nodes = list(graph.node_ids())
    rng.shuffle(nodes)
    seed_sets: List[Tuple[int, ...]] = []
    cursor = 0
    for _ in range(m):
        size = rng.randint(1, max_size)
        seed_sets.append(tuple(nodes[cursor : cursor + size]))
        cursor += size
    return tuple(seed_sets)


def assert_all_valid(graph: Graph, results: CTPResultSet, seed_sets: Sequence, wildcard=()):
    """Every result satisfies Definition 2.8 (tree, one seed/set, minimal)."""
    for result in results:
        problems = validate_result(graph, result, seed_sets, wildcard)
        assert not problems, f"invalid result {sorted(result.edges)}: {problems}"


def assert_same_results(left: CTPResultSet, right: CTPResultSet):
    """Two complete algorithms must return the same set of edge sets."""
    assert left.edge_sets() == right.edge_sets()
