"""Triple-table view of a graph.

The paper stores every graph in a PostgreSQL relation ``graph(id, source,
edgeLabel, target)``.  :class:`TripleStore` reproduces that storage model in
memory: the full triple table, plus the secondary access paths (by edge
label, by source, by target) a relational engine would use for index scans.
It backs the Postgres-like baselines and offers an alternative, storage-level
way to evaluate edge patterns in tests.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.graph.graph import Graph
from repro.storage.table import Table

TRIPLE_COLUMNS = ("id", "source", "label", "target")


class TripleStore:
    """The ``graph(id, source, edgeLabel, target)`` relation over a graph."""

    def __init__(self, graph: Graph):
        self.graph = graph
        self._by_label: Dict[str, List[int]] = {}
        self._by_source: Dict[int, List[int]] = {}
        self._by_target: Dict[int, List[int]] = {}
        rows = []
        for edge in graph.edges():
            rows.append((edge.id, edge.source, edge.label, edge.target))
            self._by_label.setdefault(edge.label, []).append(edge.id)
            self._by_source.setdefault(edge.source, []).append(edge.id)
            self._by_target.setdefault(edge.target, []).append(edge.id)
        self.table = Table(TRIPLE_COLUMNS, rows)

    def __len__(self) -> int:
        return len(self.table)

    # ------------------------------------------------------------------
    # index scans
    # ------------------------------------------------------------------
    def scan(
        self,
        source: Optional[int] = None,
        label: Optional[str] = None,
        target: Optional[int] = None,
    ) -> List[int]:
        """Edge ids matching the bound components (index-based when possible)."""
        candidate_lists = []
        if source is not None:
            candidate_lists.append(self._by_source.get(source, []))
        if target is not None:
            candidate_lists.append(self._by_target.get(target, []))
        if label is not None:
            candidate_lists.append(self._by_label.get(label, []))
        if not candidate_lists:
            return list(self.graph.edge_ids())
        # Intersect starting from the smallest access path.
        candidate_lists.sort(key=len)
        result = candidate_lists[0]
        for other in candidate_lists[1:]:
            other_set = set(other)
            result = [e for e in result if e in other_set]
        return result

    def triples(self, source: Optional[int] = None, label: Optional[str] = None, target: Optional[int] = None) -> Table:
        """The matching subset of the triple table."""
        edge_ids = self.scan(source, label, target)
        graph = self.graph
        rows = []
        for edge_id in edge_ids:
            edge = graph.edge(edge_id)
            rows.append((edge.id, edge.source, edge.label, edge.target))
        return Table(TRIPLE_COLUMNS, rows)

    def estimated_count(self, source: Optional[int] = None, label: Optional[str] = None, target: Optional[int] = None) -> int:
        """Cheapest access-path cardinality (used for join ordering)."""
        counts = []
        if source is not None:
            counts.append(len(self._by_source.get(source, ())))
        if target is not None:
            counts.append(len(self._by_target.get(target, ())))
        if label is not None:
            counts.append(len(self._by_label.get(label, ())))
        if not counts:
            return len(self.table)
        return min(counts)
