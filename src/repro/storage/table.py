"""In-memory relations with named columns.

A :class:`Table` is an immutable list of tuples plus a column-name header.
It deliberately mirrors what the paper materializes during evaluation: the
``B_i`` tables of BGP embeddings and the ``CTP_j`` tables of connecting-tree
results (Section 3, steps A-C).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Iterator, List, Sequence, Tuple

from repro.errors import StorageError


class Table:
    """An immutable relation: a tuple of column names and a list of rows."""

    __slots__ = ("columns", "rows", "_index")

    def __init__(self, columns: Sequence[str], rows: Iterable[Sequence[Any]]):
        self.columns: Tuple[str, ...] = tuple(columns)
        if len(set(self.columns)) != len(self.columns):
            raise StorageError(f"duplicate column names in {self.columns}")
        width = len(self.columns)
        materialized: List[Tuple[Any, ...]] = []
        for row in rows:
            row = tuple(row)
            if len(row) != width:
                raise StorageError(f"row arity {len(row)} does not match {width} columns {self.columns}")
            materialized.append(row)
        self.rows = materialized
        self._index: Dict[str, int] = {name: i for i, name in enumerate(self.columns)}

    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, columns: Sequence[str]) -> "Table":
        return cls(columns, [])

    @classmethod
    def from_dicts(cls, columns: Sequence[str], dicts: Iterable[Dict[str, Any]]) -> "Table":
        columns = tuple(columns)
        return cls(columns, ([d[c] for c in columns] for d in dicts))

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        return iter(self.rows)

    def __repr__(self) -> str:
        return f"Table({self.columns}, {len(self.rows)} rows)"

    def column_position(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise StorageError(f"unknown column {name!r}; table has {self.columns}") from None

    def column(self, name: str) -> List[Any]:
        """All values of one column (with duplicates, in row order)."""
        position = self.column_position(name)
        return [row[position] for row in self.rows]

    def distinct_values(self, name: str) -> List[Any]:
        """Distinct values of one column, first-seen order (π with dedup)."""
        position = self.column_position(name)
        seen = set()
        out = []
        for row in self.rows:
            value = row[position]
            if value not in seen:
                seen.add(value)
                out.append(value)
        return out

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    # ------------------------------------------------------------------
    # operators
    # ------------------------------------------------------------------
    def project(self, columns: Sequence[str], distinct: bool = False) -> "Table":
        """π — keep only ``columns`` (optionally deduplicating rows)."""
        positions = [self.column_position(c) for c in columns]
        rows: Iterable[Tuple[Any, ...]] = (tuple(row[p] for p in positions) for row in self.rows)
        if distinct:
            seen = set()
            unique = []
            for row in rows:
                if row not in seen:
                    seen.add(row)
                    unique.append(row)
            rows = unique
        return Table(columns, rows)

    def select(self, predicate: Callable[[Dict[str, Any]], bool]) -> "Table":
        """σ — keep rows whose dict form satisfies ``predicate``."""
        return Table(self.columns, (row for row in self.rows if predicate(dict(zip(self.columns, row)))))

    def select_eq(self, column: str, value: Any) -> "Table":
        """σ column = value (the common fast path)."""
        position = self.column_position(column)
        return Table(self.columns, (row for row in self.rows if row[position] == value))

    def select_in(self, column: str, values: Iterable[Any]) -> "Table":
        value_set = set(values)
        position = self.column_position(column)
        return Table(self.columns, (row for row in self.rows if row[position] in value_set))

    def rename(self, mapping: Dict[str, str]) -> "Table":
        """ρ — rename columns according to ``mapping``."""
        return Table(tuple(mapping.get(c, c) for c in self.columns), self.rows)

    def distinct(self) -> "Table":
        seen = set()
        unique = []
        for row in self.rows:
            if row not in seen:
                seen.add(row)
                unique.append(row)
        return Table(self.columns, unique)

    def union(self, other: "Table") -> "Table":
        if self.columns != other.columns:
            raise StorageError(f"union of incompatible schemas {self.columns} vs {other.columns}")
        return Table(self.columns, list(self.rows) + list(other.rows))

    def cross(self, other: "Table") -> "Table":
        """Cartesian product (columns must be disjoint)."""
        overlap = set(self.columns) & set(other.columns)
        if overlap:
            raise StorageError(f"cross product with shared columns {overlap}; use natural_join")
        columns = self.columns + other.columns
        return Table(columns, (left + right for left in self.rows for right in other.rows))

    def sort(self, columns: Sequence[str]) -> "Table":
        positions = [self.column_position(c) for c in columns]
        return Table(self.columns, sorted(self.rows, key=lambda row: tuple(row[p] for p in positions)))
