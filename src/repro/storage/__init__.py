"""Relational substrate.

The paper stores graphs in a PostgreSQL table ``graph(id, source, edgeLabel,
target)`` and delegates BGP evaluation and the final joins of Section 3 to
the relational engine.  This package provides the minimal engine we need in
its place: named-column :class:`~repro.storage.table.Table` values, the
classic operators (selection, projection, natural join, distinct), and a
:class:`~repro.storage.triple_store.TripleStore` exposing the same
triple-table view of a graph.
"""

from repro.storage.table import Table
from repro.storage.relational import natural_join, natural_join_many
from repro.storage.triple_store import TripleStore

__all__ = ["Table", "TripleStore", "natural_join", "natural_join_many"]
