"""Join operators over :class:`~repro.storage.table.Table`.

Step (C) of the paper's evaluation strategy computes ``π_head(B_1 ⋈ ... ⋈
B_k ⋈ CTP_1 ⋈ ... ⋈ CTP_l)``; :func:`natural_join_many` implements the
n-way natural join with a greedy order (join the pair sharing columns with
the smallest intermediate first, falling back to cross products only when
the remaining tables are truly disconnected).
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

from repro.errors import StorageError
from repro.storage.table import Table


def natural_join(left: Table, right: Table) -> Table:
    """Hash-based natural join on all shared column names.

    With no shared columns this degrades to the Cartesian product, matching
    standard relational semantics.
    """
    shared = [c for c in left.columns if c in right.columns]
    if not shared:
        return left.cross(right)
    left_positions = [left.column_position(c) for c in shared]
    right_positions = [right.column_position(c) for c in shared]
    right_extra = [i for i, c in enumerate(right.columns) if c not in shared]
    # Build the hash table on the smaller operand.
    swap = len(right) < len(left)
    if swap:
        build, probe = right, left
        build_positions, probe_positions = right_positions, left_positions
    else:
        build, probe = left, right
        build_positions, probe_positions = left_positions, right_positions
    buckets: Dict[Tuple[Any, ...], List[Tuple[Any, ...]]] = {}
    for row in build.rows:
        key = tuple(row[p] for p in build_positions)
        buckets.setdefault(key, []).append(row)
    columns = left.columns + tuple(right.columns[i] for i in right_extra)
    out_rows: List[Tuple[Any, ...]] = []
    if swap:
        # probe = left; matched build rows are right rows
        for left_row in probe.rows:
            key = tuple(left_row[p] for p in probe_positions)
            for right_row in buckets.get(key, ()):
                out_rows.append(left_row + tuple(right_row[i] for i in right_extra))
    else:
        for right_row in probe.rows:
            key = tuple(right_row[p] for p in probe_positions)
            for left_row in buckets.get(key, ()):
                out_rows.append(left_row + tuple(right_row[i] for i in right_extra))
    return Table(columns, out_rows)


def natural_join_many(tables: Sequence[Table]) -> Table:
    """Join any number of tables, greedily preferring connected, small joins."""
    if not tables:
        raise StorageError("natural_join_many needs at least one table")
    remaining = list(tables)
    # Start from the smallest table.
    remaining.sort(key=len)
    current = remaining.pop(0)
    while remaining:
        current_columns = set(current.columns)
        best_index = None
        best_key = None
        for index, table in enumerate(remaining):
            shares = bool(current_columns & set(table.columns))
            key = (not shares, len(table))  # prefer connected, then small
            if best_key is None or key < best_key:
                best_key = key
                best_index = index
        current = natural_join(current, remaining.pop(best_index))
    return current


def semi_join(left: Table, right: Table) -> Table:
    """Rows of ``left`` that have at least one join partner in ``right``."""
    shared = [c for c in left.columns if c in right.columns]
    if not shared:
        return left if len(right) else Table.empty(left.columns)
    right_positions = [right.column_position(c) for c in shared]
    keys = {tuple(row[p] for p in right_positions) for row in right.rows}
    left_positions = [left.column_position(c) for c in shared]
    return Table(left.columns, (row for row in left.rows if tuple(row[p] for p in left_positions) in keys))
