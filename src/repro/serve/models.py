"""Typed request/response envelopes of the query server.

Plain dataclasses (no web framework, no serialization dependency): the
server is an in-process library component — N client threads calling
:meth:`~repro.serve.server.QueryServer.handle` — and a transport layer
(HTTP, socket) would marshal these envelopes without changing them.  The
fields mirror what a multi-user deployment actually varies per request:
the EQL text, the algorithm, a handful of search filters, a wall-clock
deadline, and result pagination.  Everything else (the graph, the worker
pool, the shared caches) is server state, deliberately *not* reachable
from a request.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from repro.errors import ValidationError

#: Request was evaluated; ``rows`` hold the (paginated) answer.
STATUS_OK = "ok"
#: Admission control refused the request (queue full); nothing ran.
STATUS_REJECTED = "rejected"
#: Load shedding refused the request: the server is under pressure and
#: the request's priority lost the triage (low-priority work is turned
#: away *before* the queue is hard-full, so high-priority requests still
#: find a slot).  Nothing ran; clients should back off, not fast-retry.
STATUS_SHED = "shed"
#: The request's deadline had already elapsed before evaluation started;
#: nothing ran.  (A deadline that truncates a *running* evaluation still
#: returns ``STATUS_OK`` with the honest partial rows and
#: ``stats.deadline_truncated`` set.)
STATUS_EXPIRED = "expired"
#: Evaluation failed (parse error, bad config, unknown score...).
STATUS_ERROR = "error"

#: Request priorities (:attr:`QueryRequest.priority`).  Under pressure the
#: server sheds ``PRIORITY_LOW`` work first; ``PRIORITY_HIGH`` is only
#: refused when the queue is hard-full.
PRIORITY_LOW = 0
PRIORITY_NORMAL = 1
PRIORITY_HIGH = 2


@dataclass(frozen=True)
class QueryRequest:
    """One client query: EQL text plus per-request knobs.

    Parameters
    ----------
    query:
        EQL text (``SELECT ... WHERE { ... }``).
    algorithm:
        CTP algorithm name for this request; ``None`` uses the server's
        default.  Validated against the registry at admission, so a typo
        is a typed error response, not a worker-side crash.
    timeout:
        Per-CTP budget in seconds (the paper's ``T``); ``None`` inherits
        the server default.
    deadline:
        Whole-query wall-clock budget in seconds, measured from the moment
        the server starts evaluating: every CTP's effective timeout is
        capped to the remaining budget, and a request whose deadline is
        already spent (``<= 0`` after queueing) receives ``STATUS_EXPIRED``
        without running.  ``None`` inherits the server default.
    limit / offset:
        Row pagination applied to the final answer (after the query's own
        ``LIMIT``, if any): ``rows[offset : offset + limit]``.
        ``total_rows`` on the response always reports the pre-pagination
        count.
    uni / labels / max_edges / score / top_k:
        Per-request overrides of the corresponding search filters
        (:class:`~repro.ctp.config.SearchConfig`); ``None`` inherits the
        server's base config.  ``score`` is a *registered score-function
        name* (``repro.query.scoring``) — requests cross thread and
        process boundaries, so they carry names, never callables.
    distinct:
        Whether the final projection deduplicates rows (default, EQL
        semantics).
    priority:
        Admission priority (:data:`PRIORITY_LOW` / :data:`PRIORITY_NORMAL`
        / :data:`PRIORITY_HIGH`).  Under load-shedding pressure the server
        refuses low-priority requests (``STATUS_SHED``) while slots
        remain for normal/high work; priorities never reorder requests
        already admitted.
    tag:
        Opaque client correlation value, echoed on the response.
    """

    query: str
    algorithm: Optional[str] = None
    timeout: Optional[float] = None
    deadline: Optional[float] = None
    limit: Optional[int] = None
    offset: int = 0
    uni: Optional[bool] = None
    labels: Optional[FrozenSet[str]] = None
    max_edges: Optional[int] = None
    score: Optional[str] = None
    top_k: Optional[int] = None
    distinct: bool = True
    priority: int = PRIORITY_NORMAL
    tag: Optional[str] = None

    def __post_init__(self) -> None:
        if not isinstance(self.query, str) or not self.query.strip():
            raise ValidationError("QueryRequest.query must be non-empty EQL text")
        if self.limit is not None and self.limit < 0:
            raise ValidationError("QueryRequest.limit must be >= 0 (or None for all rows)")
        if self.offset < 0:
            raise ValidationError("QueryRequest.offset must be >= 0")
        if self.priority not in (PRIORITY_LOW, PRIORITY_NORMAL, PRIORITY_HIGH):
            raise ValidationError(
                f"QueryRequest.priority must be one of {PRIORITY_LOW}/{PRIORITY_NORMAL}/"
                f"{PRIORITY_HIGH}, got {self.priority!r}"
            )
        if self.labels is not None:
            object.__setattr__(self, "labels", frozenset(self.labels))


@dataclass
class ResponseStats:
    """Where the answer came from — the amortization evidence, per response.

    ``warm_pool`` reports whether the worker pool was already warm (live,
    snapshot-loaded workers) *before* this request: the first request a
    server ever serves is cold by definition, everything after should be
    warm — the bench asserts exactly that.  ``memo_hits`` counts CTPs
    served from the shared cross-CTP/cross-request memo without running a
    search; ``dispatch_modes`` records what actually executed each CTP
    ("process" from a pool worker, "memo", or a degraded mode).
    """

    warm_pool: bool = False
    memo_hits: int = 0
    ctp_count: int = 0
    dispatch_modes: List[str] = field(default_factory=list)
    deadline_truncated: bool = False
    pool_dispatches: int = 0
    pool_respawns: int = 0
    pending: int = 0
    seconds: float = 0.0
    #: Resilience telemetry for THIS request: pooled fan-outs re-run
    #: after a crash/hang, and hang-watchdog kills it triggered.
    retries: int = 0
    hangs: int = 0
    #: Pool-level state as of this response: the circuit breaker's state
    #: ("closed"/"open"/"half_open") and the lifetime count of workers
    #: proactively recycled (request-count or RSS threshold).
    breaker_state: str = "closed"
    recycled_workers: int = 0
    #: MVCC view telemetry: the graph generation this response's rows are
    #: consistent with (rows match a full freeze at this generation), the
    #: size of the mutable delta overlay at evaluation time, and the
    #: pool's lifetime compaction/avoided-resnapshot/thrash counters.
    generation: Optional[int] = None
    delta_size: int = 0
    compactions: int = 0
    resnapshots_avoided: int = 0
    resnapshot_thrash: int = 0
    #: Cost-model scheduling telemetry
    #: (:meth:`repro.query.costmodel.ScheduleReport.as_dict`): per-CTP
    #: estimates vs. actual seconds, submission order, rebalance counters,
    #: pipeline overlap, and the dispatch mode the cost model selected.
    #: ``None`` when the request ran without scheduling or auto mode.
    schedule: Optional[Dict[str, Any]] = None


@dataclass(frozen=True)
class IngestRequest:
    """One write batch: nodes and edges to append, weights to update.

    Applied atomically with respect to query admission: a query pinned
    concurrently with an ingest sees either none or all of the batch
    (never a torn prefix), and its response records the generation it
    saw.  Fields carry plain tuples — like :class:`QueryRequest`, ingest
    envelopes cross thread boundaries and stay cheaply hashable/loggable.

    Parameters
    ----------
    nodes:
        ``(label, node_type)`` pairs to append; ids are assigned densely
        and reported on the result in order.  ``node_type`` may be ``""``
        for an untyped node.
    edges:
        ``(source, target, label, weight)`` tuples to append.  Sources /
        targets may reference nodes added earlier *in this same batch*
        by their future ids (existing ``num_nodes`` + batch offset).
    weights:
        ``(edge_id, new_weight)`` updates to existing edges — the one
        in-place mutation the model supports.
    tag:
        Opaque client correlation value, echoed on the result.
    """

    nodes: Tuple[Tuple[str, str], ...] = ()
    edges: Tuple[Tuple[int, int, str, float], ...] = ()
    weights: Tuple[Tuple[int, float], ...] = ()
    tag: Optional[str] = None

    def __post_init__(self) -> None:
        if not (self.nodes or self.edges or self.weights):
            raise ValidationError("IngestRequest must carry at least one mutation")
        object.__setattr__(self, "nodes", tuple(tuple(n) for n in self.nodes))
        object.__setattr__(self, "edges", tuple(tuple(e) for e in self.edges))
        object.__setattr__(self, "weights", tuple(tuple(w) for w in self.weights))
        for node in self.nodes:
            if len(node) != 2:
                raise ValidationError(f"IngestRequest nodes must be (label, type) pairs, got {node!r}")
        for edge in self.edges:
            if len(edge) != 4:
                raise ValidationError(
                    f"IngestRequest edges must be (source, target, label, weight) tuples, got {edge!r}"
                )
        for update in self.weights:
            if len(update) != 2:
                raise ValidationError(
                    f"IngestRequest weights must be (edge_id, weight) pairs, got {update!r}"
                )


@dataclass
class IngestResult:
    """What one ingest batch produced: new ids and the resulting generation."""

    status: str
    node_ids: Tuple[int, ...] = ()
    edge_ids: Tuple[int, ...] = ()
    #: Graph generation after the batch (queries pinned at or after this
    #: generation observe the batch).
    generation: int = 0
    #: Delta-overlay size after the batch — how far the graph has drifted
    #: from its frozen base (compaction resets this to 0).
    delta_size: int = 0
    error: Optional[str] = None
    tag: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK


@dataclass
class QueryResponse:
    """What the server hands back for one request, whatever happened.

    Exactly one of the four statuses; ``rows`` are only meaningful under
    ``STATUS_OK`` — check ``stats.deadline_truncated`` to learn whether a
    deadline cut the evaluation short (the rows are then the honest
    partial answer, never silently presented as complete).
    """

    status: str
    columns: Tuple[str, ...] = ()
    rows: List[Tuple[Any, ...]] = field(default_factory=list)
    total_rows: int = 0
    error: Optional[str] = None
    stats: Optional[ResponseStats] = None
    tag: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready view (rows stringified — ResultTree values are not
        JSON-native); transports and the bench harness use this."""
        return {
            "status": self.status,
            "columns": list(self.columns),
            "rows": [[repr(value) for value in row] for row in self.rows],
            "total_rows": self.total_rows,
            "error": self.error,
            "tag": self.tag,
        }
