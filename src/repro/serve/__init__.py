"""Long-lived query serving on top of the persistent worker pool.

``repro.serve`` is the multi-user front-end of the evaluator: a
:class:`~repro.serve.server.QueryServer` binds one graph to one
:class:`~repro.query.pool.WorkerPool` and one shared
:class:`~repro.ctp.interning.SearchContext`, then answers
:class:`~repro.serve.models.QueryRequest` envelopes from any number of
client threads — with admission control, per-request deadlines, and
per-response provenance (warm pool? memo hits? what dispatch ran?).

``python -m repro serve`` drives one from the command line;
``python -m repro.bench serve`` measures the warm-vs-cold claim.
"""

from repro.serve.models import (
    PRIORITY_HIGH,
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    STATUS_ERROR,
    STATUS_EXPIRED,
    STATUS_OK,
    STATUS_REJECTED,
    STATUS_SHED,
    IngestRequest,
    IngestResult,
    QueryRequest,
    QueryResponse,
    ResponseStats,
)
from repro.serve.server import DISPATCH_MODES, QueryServer

__all__ = [
    "QueryServer",
    "QueryRequest",
    "QueryResponse",
    "ResponseStats",
    "IngestRequest",
    "IngestResult",
    "DISPATCH_MODES",
    "PRIORITY_LOW",
    "PRIORITY_NORMAL",
    "PRIORITY_HIGH",
    "STATUS_OK",
    "STATUS_REJECTED",
    "STATUS_SHED",
    "STATUS_EXPIRED",
    "STATUS_ERROR",
]
