"""The long-lived query server: one graph, one warm pool, many requests.

This is the serving front-end ROADMAP.md's "persistent worker pools" item
asks for, and the shape the paper's integrated evaluator implies — a
journalist's investigation is *sessions* of queries against one graph
(Section 5's workloads re-run CONNECTs with varied filters), not a
process per query.  :class:`QueryServer` owns the state every request
shares:

* a :class:`~repro.query.pool.WorkerPool` — workers spawn once, load the
  mmap-shared snapshot once, and keep their per-worker contexts warm
  across requests (the amortization fix this PR exists for);
* a thread-safe :class:`~repro.ctp.interning.SearchContext` — the
  cross-CTP memo and interning pool span *requests*, so a CONNECT one
  client evaluated is a memo hit for every later client that repeats it;
* admission control — a bounded in-flight budget (``max_pending``):
  request N+1 gets a typed ``STATUS_REJECTED`` response immediately
  instead of queueing without bound while every caller's deadline rots.

:meth:`QueryServer.handle` is synchronous and thread-safe: a transport
layer runs it from N client threads.  Per-request deadlines are enforced
in two places — an already-expired deadline is refused up front
(``STATUS_EXPIRED``, nothing runs), and a live one caps every CTP's
effective timeout to the remaining budget
(:func:`repro.query.evaluator._cap_to_deadline`), so one expensive
CONNECT cannot eat the whole query's allowance.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, Optional

from repro.ctp.config import SearchConfig
from repro.ctp.interning import SearchContext
from repro.ctp.registry import get_algorithm
from repro.errors import ReproError
from repro.query.evaluator import evaluate_query
from repro.query.pool import WorkerPool
from repro.query.scoring import get_score_function
from repro.serve.models import (
    PRIORITY_LOW,
    STATUS_ERROR,
    STATUS_EXPIRED,
    STATUS_OK,
    STATUS_REJECTED,
    STATUS_SHED,
    IngestRequest,
    IngestResult,
    QueryRequest,
    QueryResponse,
    ResponseStats,
)

#: How the server executes each request's CTPs: ``"process"`` routes
#: through the persistent :class:`~repro.query.pool.WorkerPool` (the
#: default, and the only mode that pays a snapshot), ``"thread"`` uses
#: in-process thread dispatch, ``"serial"`` runs CTPs one at a time on
#: the handling thread.  All three pin the same MVCC read view, so the
#: consistency contract is identical.
DISPATCH_MODES = ("process", "thread", "serial")


class QueryServer:
    """Serve EQL queries against one graph from persistent workers.

    Parameters
    ----------
    graph:
        The graph every request runs against.
    algorithm:
        Default CTP algorithm (requests may override per call).
    base_config:
        Base :class:`SearchConfig` requests inherit from; the server
        normalizes it to ``parallelism_mode="process"`` and
        ``shared_context=True`` (those two are what make it a *server*).
        Defaults to one worker per core.
    workers:
        Worker process count for the pool (default: ``os.cpu_count()``).
    max_pending:
        In-flight request budget.  ``handle`` admits at most this many
        concurrent evaluations; the rest are rejected immediately with
        ``STATUS_REJECTED`` — bounded latency beats an unbounded queue
        whose tail requests all miss their deadlines anyway.
    shed_threshold:
        Load-shedding watermark (default: half of ``max_pending``).  Once
        this many requests are in flight, new ``PRIORITY_LOW`` requests
        receive ``STATUS_SHED`` instead of competing for the remaining
        slots — under pressure, background work is turned away *first*,
        so interactive traffic still finds capacity instead of losing a
        FIFO race to a bulk scan.  Normal/high-priority requests are only
        refused when the queue is hard-full.
    default_deadline / default_timeout:
        Applied when a request does not carry its own.
    pool_config:
        Extra keyword arguments for the server's
        :class:`~repro.query.pool.WorkerPool` — ``resilience``
        (:class:`~repro.query.resilience.PoolResilienceConfig`: recycling
        thresholds, hang watchdog budgets), ``retry_policy``, ``breaker``.
    dispatch_mode:
        How CTPs execute (:data:`DISPATCH_MODES`): ``"process"`` (the
        default — persistent worker pool, mmap snapshot), ``"thread"``
        (in-process threads, no pool), or ``"serial"`` (one CTP at a
        time on the handling thread).  All three pin the same MVCC read
        view per request, so :meth:`ingest` is safe under any of them.
    compaction_threshold:
        Delta-overlay mutations tolerated before base ∪ delta is
        refrozen into a fresh base snapshot (``None`` = never compact,
        ``0`` = compact on any mutation, i.e. the legacy
        resnapshot-per-mutation behavior).  Under process dispatch the
        worker pool compacts at its dispatch boundary; under
        thread/serial dispatch :meth:`ingest` compacts inline.

    Use as a context manager (or call :meth:`close`): the pool holds OS
    processes and a temp snapshot file, which should die with the server,
    not with the interpreter.  For an orderly shutdown under traffic,
    call :meth:`drain` first — it stops admissions, lets in-flight
    requests finish, then closes.
    """

    def __init__(
        self,
        graph: Any,
        algorithm: str = "molesp",
        base_config: Optional[SearchConfig] = None,
        workers: Optional[int] = None,
        max_pending: int = 8,
        shed_threshold: Optional[int] = None,
        default_deadline: Optional[float] = None,
        default_timeout: Optional[float] = None,
        pool_config: Optional[Dict[str, Any]] = None,
        dispatch_mode: str = "process",
        compaction_threshold: Optional[int] = 256,
    ):
        if max_pending < 1:
            raise ReproError(f"QueryServer needs max_pending >= 1, got {max_pending}")
        if shed_threshold is not None and not 1 <= shed_threshold <= max_pending:
            raise ReproError(
                f"QueryServer needs 1 <= shed_threshold <= max_pending, got {shed_threshold}"
            )
        if dispatch_mode not in DISPATCH_MODES:
            raise ReproError(
                f"QueryServer needs dispatch_mode in {DISPATCH_MODES}, got {dispatch_mode!r}"
            )
        get_algorithm(algorithm)  # fail fast on a bad default
        self.graph = graph
        self.algorithm = algorithm
        self.dispatch_mode = dispatch_mode
        self.compaction_threshold = compaction_threshold
        base = base_config or SearchConfig()
        if dispatch_mode == "process":
            self.base_config = base.with_(parallelism_mode="process", shared_context=True)
        elif dispatch_mode == "thread":
            self.base_config = base.with_(parallelism_mode="thread", shared_context=True)
        else:  # serial: one CTP at a time on the handling thread
            self.base_config = base.with_(parallelism=1, shared_context=True)
        self.default_deadline = default_deadline
        self.default_timeout = default_timeout
        self.max_pending = max_pending
        self.shed_threshold = (
            shed_threshold if shed_threshold is not None else max(1, max_pending // 2)
        )
        self.pool: Optional[WorkerPool] = None
        if dispatch_mode == "process":
            self.pool = WorkerPool(
                graph,
                workers=workers,
                interning=self.base_config.interning,
                dense_ids=self.base_config.dense_ids,
                compaction_threshold=compaction_threshold,
                **(pool_config or {}),
            )
        #: Shared across requests (thread-safe): cross-request memo + pool.
        self.context = SearchContext(
            interning=self.base_config.interning,
            thread_safe=True,
            dense_ids=self.base_config.dense_ids,
        )
        self._slots = threading.BoundedSemaphore(max_pending)
        self._gauge_lock = threading.Lock()
        #: Serializes write batches against read-view pinning: a query
        #: can never pin its MVCC view between two mutations of one
        #: :meth:`ingest` batch — it sees all of the batch or none of it.
        self._ingest_lock = threading.Lock()
        self._pending = 0
        self.served = 0
        self.rejected = 0
        self.expired = 0
        self.errors = 0
        self.shed = 0
        self.ingests = 0
        self._closed = False
        self._draining = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "QueryServer":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    @property
    def draining(self) -> bool:
        return self._draining

    def close(self) -> None:
        """Shut the worker pool down; later requests are rejected."""
        self._closed = True
        if self.pool is not None:
            self.pool.close()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Graceful shutdown: stop admitting, finish in-flight, close.

        New requests are rejected from the moment this is called;
        evaluations already admitted run to completion.  ``timeout``
        bounds the wait (seconds; ``None`` waits indefinitely).  Returns
        whether the server drained fully within the budget — either way
        the server ends up closed (a timed-out drain closes anyway:
        SIGTERM means *exit*, and the pool's shutdown cancels whatever is
        still queued).  Idempotent and safe from signal-handler context.
        """
        self._draining = True
        deadline = None if timeout is None else time.perf_counter() + timeout
        drained = True
        while True:
            with self._gauge_lock:
                if self._pending == 0:
                    break
            if deadline is not None and time.perf_counter() >= deadline:
                drained = False
                break
            time.sleep(0.01)
        self.close()
        return drained

    def prewarm(self) -> bool:
        """Spawn the workers and load the snapshot *before* traffic.

        Returns the pool's health verdict; a server started during
        deployment can pay the cold cost off the request path.
        """
        if self.pool is None:
            # Thread/serial dispatch: the only cold cost is the base freeze.
            if hasattr(self.graph, "ensure_base"):
                self.graph.ensure_base()
            return True
        self.pool.prepare()
        return self.pool.healthy()

    # ------------------------------------------------------------------
    # ingest (writes under live traffic)
    # ------------------------------------------------------------------
    def ingest(self, request: IngestRequest) -> IngestResult:
        """Apply one write batch; always returns a result, never raises.

        Thread-safe, and atomic with respect to query admission: the
        batch is validated up front and applied under the ingest lock, so
        a concurrent query's pinned view observes either the whole batch
        or none of it.  Queries already running are untouched — they keep
        reading their pinned generation (MVCC), and the next dispatch
        ships the enlarged delta to the pool's workers without respawning
        them.  Under thread/serial dispatch the server itself compacts
        the overlay once it outgrows ``compaction_threshold`` (the worker
        pool owns that decision under process dispatch, at its own
        dispatch boundary).
        """
        if self._closed or self._draining:
            reason = "server is draining" if self._draining and not self._closed else "server is closed"
            return IngestResult(status=STATUS_REJECTED, error=reason, tag=request.tag)
        try:
            with self._ingest_lock:
                # Validate the whole batch against the post-batch id space
                # BEFORE mutating: all-or-nothing, no torn prefixes.
                total_nodes = self.graph.num_nodes + len(request.nodes)
                total_edges = self.graph.num_edges + len(request.edges)
                for source, target, _label, _weight in request.edges:
                    if not (0 <= source < total_nodes and 0 <= target < total_nodes):
                        raise ReproError(
                            f"ingest edge ({source}, {target}) references a node id "
                            f"outside [0, {total_nodes}) (existing nodes + this batch)"
                        )
                for edge_id, _weight in request.weights:
                    if not 0 <= edge_id < total_edges:
                        raise ReproError(
                            f"ingest weight update targets edge {edge_id}, outside "
                            f"[0, {total_edges}) (existing edges + this batch)"
                        )
                node_ids = tuple(
                    self.graph.add_node(label, types=(node_type,) if node_type else ())
                    for label, node_type in request.nodes
                )
                edge_ids = tuple(
                    self.graph.add_edge(source, target, label, weight)
                    for source, target, label, weight in request.edges
                )
                for edge_id, weight in request.weights:
                    self.graph.set_edge_weight(edge_id, weight)
                if (
                    self.pool is None
                    and self.compaction_threshold is not None
                    and getattr(self.graph, "delta_size", 0) > self.compaction_threshold
                ):
                    self.graph.compact()
                generation = self.graph.generation
                delta_size = getattr(self.graph, "delta_size", 0)
        except ReproError as error:
            with self._gauge_lock:
                self.errors += 1
            return IngestResult(status=STATUS_ERROR, error=str(error), tag=request.tag)
        with self._gauge_lock:
            self.ingests += 1
        return IngestResult(
            status=STATUS_OK,
            node_ids=node_ids,
            edge_ids=edge_ids,
            generation=generation,
            delta_size=delta_size,
            tag=request.tag,
        )

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------
    def _config_for(self, request: QueryRequest) -> SearchConfig:
        """The request's effective search config (may raise ``ReproError``)."""
        changes: Dict[str, Any] = {}
        if request.timeout is not None:
            changes["timeout"] = request.timeout
        deadline = request.deadline if request.deadline is not None else self.default_deadline
        if deadline is not None:
            changes["deadline"] = deadline
        if request.uni is not None:
            changes["uni"] = request.uni
        if request.labels is not None:
            changes["labels"] = request.labels
        if request.max_edges is not None:
            changes["max_edges"] = request.max_edges
        if request.score is not None:
            changes["score"] = get_score_function(request.score)
        if request.top_k is not None:
            changes["top_k"] = request.top_k
        return self.base_config.with_(**changes) if changes else self.base_config

    def handle(self, request: QueryRequest) -> QueryResponse:
        """Evaluate one request; always returns a response, never raises.

        Thread-safe.  The admission check is non-blocking by design: a
        full server answers *now* with ``STATUS_REJECTED`` so the client
        can back off or retry elsewhere, instead of holding its deadline
        hostage in an invisible queue.  Under pressure (in-flight count
        at or past ``shed_threshold``) low-priority requests are shed
        before the queue hard-fills, so normal/high-priority work keeps
        finding slots.
        """
        if self._closed or self._draining:
            with self._gauge_lock:
                self.rejected += 1
            reason = "server is draining" if self._draining and not self._closed else "server is closed"
            return QueryResponse(status=STATUS_REJECTED, error=reason, tag=request.tag)
        if request.priority <= PRIORITY_LOW:
            with self._gauge_lock:
                under_pressure = self._pending >= self.shed_threshold
                if under_pressure:
                    self.shed += 1
            if under_pressure:
                return QueryResponse(
                    status=STATUS_SHED,
                    error=(
                        f"low-priority request shed under load "
                        f"({self.shed_threshold}+ requests in flight)"
                    ),
                    tag=request.tag,
                )
        if not self._slots.acquire(blocking=False):
            with self._gauge_lock:
                self.rejected += 1
            return QueryResponse(
                status=STATUS_REJECTED,
                error=f"server at capacity ({self.max_pending} requests in flight)",
                tag=request.tag,
            )
        with self._gauge_lock:
            self._pending += 1
            pending = self._pending
        try:
            return self._evaluate_admitted(request, pending)
        finally:
            with self._gauge_lock:
                self._pending -= 1
            self._slots.release()

    def _evaluate_admitted(self, request: QueryRequest, pending: int) -> QueryResponse:
        started = time.perf_counter()
        deadline = request.deadline if request.deadline is not None else self.default_deadline
        if deadline is not None and deadline <= 0:
            with self._gauge_lock:
                self.expired += 1
            return QueryResponse(
                status=STATUS_EXPIRED,
                error=f"deadline of {deadline}s already elapsed before evaluation",
                tag=request.tag,
            )
        # Capture warmth BEFORE evaluating: the claim is about what this
        # request found, not what it left behind.
        was_warm = self.pool.warm if self.pool is not None else False
        algorithm = request.algorithm or self.algorithm
        try:
            get_algorithm(algorithm)  # admission-time validation
            config = self._config_for(request)
            # Pin the MVCC read view under the ingest lock: the view is a
            # frozen base-∪-delta overlay (or the base itself) that no
            # concurrent ingest can mutate, so every CTP and BGP of this
            # request reads one consistent generation.
            with self._ingest_lock:
                view = self.graph.read_view() if hasattr(self.graph, "read_view") else self.graph
            result = evaluate_query(
                view,
                request.query,
                algorithm=algorithm,
                base_config=config,
                default_timeout=self.default_timeout,
                distinct=request.distinct,
                context=self.context,
                pool=self.pool,
            )
        except ReproError as error:
            with self._gauge_lock:
                self.errors += 1
            return QueryResponse(status=STATUS_ERROR, error=str(error), tag=request.tag)
        total = len(result.rows)
        end = None if request.limit is None else request.offset + request.limit
        rows = result.rows[request.offset : end]
        resilience = result.resilience
        stats = ResponseStats(
            warm_pool=was_warm,
            memo_hits=sum(1 for report in result.ctp_reports if report.cache_hit),
            ctp_count=len(result.ctp_reports),
            dispatch_modes=[report.dispatch_mode for report in result.ctp_reports],
            deadline_truncated=deadline is not None
            and any(report.result_set.timed_out for report in result.ctp_reports),
            pool_dispatches=self.pool.dispatches if self.pool is not None else 0,
            pool_respawns=self.pool.respawns if self.pool is not None else 0,
            pending=pending,
            seconds=time.perf_counter() - started,
            retries=resilience.retries if resilience is not None else 0,
            hangs=resilience.hangs if resilience is not None else 0,
            breaker_state=self.pool.breaker.state if self.pool is not None else "closed",
            recycled_workers=self.pool.recycles if self.pool is not None else 0,
            generation=result.generation,
            delta_size=getattr(self.graph, "delta_size", 0),
            compactions=(
                self.pool.compactions
                if self.pool is not None
                else getattr(self.graph, "compactions", 0)
            ),
            resnapshots_avoided=self.pool.resnapshots_avoided if self.pool is not None else 0,
            resnapshot_thrash=self.pool.resnapshot_thrash if self.pool is not None else 0,
            schedule=result.schedule.as_dict() if result.schedule is not None else None,
        )
        with self._gauge_lock:
            self.served += 1
        return QueryResponse(
            status=STATUS_OK,
            columns=result.columns,
            rows=rows,
            total_rows=total,
            stats=stats,
            tag=request.tag,
        )

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Server + pool + shared-context counters, one flat snapshot."""
        with self._gauge_lock:
            counters = {
                "served": self.served,
                "rejected": self.rejected,
                "expired": self.expired,
                "errors": self.errors,
                "shed": self.shed,
                "ingests": self.ingests,
                "pending": self._pending,
                "max_pending": self.max_pending,
                "shed_threshold": self.shed_threshold,
                "draining": self._draining,
                "dispatch_mode": self.dispatch_mode,
                "generation": getattr(self.graph, "generation", 0),
                "delta_size": getattr(self.graph, "delta_size", 0),
                "graph_compactions": getattr(self.graph, "compactions", 0),
            }
        counters["pool"] = self.pool.stats() if self.pool is not None else None
        counters["context"] = self.context.stats_dict()
        return counters

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"QueryServer({state}, served={self.served}, rejected={self.rejected}, "
            f"pool={self.pool!r})"
        )
