"""The paper's worked-example graphs, reconstructed as reusable datasets.

* :func:`figure1` — the running investigative-journalism example (Section 1
  and 2).  Node ids and edge labels follow the paper exactly; edge endpoints
  are reconstructed from every constraint stated in the text (the embeddings
  of BGP ``b1``, the seed sets of query ``Q1``, and the two spelled-out CTP
  results ``t_alpha = {e10, e9, e11}`` and ``t_beta = {e1, e2, e17, e16}``).
* :func:`figure3` — the 5-edge line used to show ESP incompleteness
  (Section 4.4) and the MoESP fix (Section 4.5).
* :func:`figure5` — the 3-arm star where MoESP fails and LESP's seed
  signatures protect the decisive Merge (Section 4.6).
* :func:`figure6` — the 4-seed graph where LESP remains incomplete.
* :func:`figure7` — a 6-seed instance whose decomposition consists of
  rooted merges, hence guaranteed for MoLESP (Property 9).
* :func:`figure4` — the 6-seed comb-like graph of the MoESP discussion with
  the 2-piecewise-simple result (Property 4).

Each function returns ``(graph, seeds)`` where ``seeds`` is the tuple of
seed *sets* (tuples of node ids) used in the paper's discussion.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph

SeedSets = Tuple[Tuple[int, ...], ...]


def figure1() -> Graph:
    """The sample data graph of Figure 1 (12 nodes, 19 edges).

    Edge ids match the paper's numbering (``e1`` is edge id 0, ..., ``e19``
    is edge id 18).  The CTP results discussed in Section 2 are::

        t_alpha = {e10, e9, e11}   (Carole, Doug, Elon)
        t_beta  = {e1, e2, e17, e16}  (Bob, Alice, Elon)
    """
    b = GraphBuilder("figure1")
    # Nodes in the paper's id order (graph ids are 0-based: n1 -> 0).
    b.node("OrgB", types=("company",))
    b.node("Bob", types=("entrepreneur",))
    b.node("Alice", types=("entrepreneur",))
    b.node("Carole", types=("entrepreneur",))
    b.node("OrgA", types=("company",))
    b.node("Doug", types=("entrepreneur",))
    b.node("OrgC", types=("company",))
    b.node("France", types=("country",))
    b.node("Elon", types=("politician",))
    b.node("USA", types=("country",))
    b.node("National Liberal Party")
    b.node("Falcon", types=("politician",))
    # Edges e1..e19 with the paper's labels; endpoints reconstructed from the
    # constraints in Section 2 (see module docstring).
    b.triple("Bob", "founded", "OrgB")  # e1
    b.triple("Alice", "investsIn", "OrgB")  # e2
    b.triple("Carole", "parentOf", "Bob")  # e3
    b.triple("OrgA", "locatedIn", "France")  # e4
    b.triple("Bob", "citizenOf", "USA")  # e5
    b.triple("Carole", "citizenOf", "USA")  # e6
    b.triple("Doug", "founded", "OrgA")  # e7
    b.triple("Carole", "CEO", "OrgA")  # e8
    b.triple("Doug", "investsIn", "OrgC")  # e9
    b.triple("Carole", "founded", "OrgC")  # e10
    b.triple("Elon", "parentOf", "Doug")  # e11
    b.triple("Alice", "citizenOf", "France")  # e12
    b.triple("Doug", "citizenOf", "France")  # e13
    b.triple("Elon", "citizenOf", "France")  # e14
    b.triple("OrgC", "locatedIn", "USA")  # e15
    b.triple("Elon", "affiliation", "National Liberal Party")  # e16
    b.triple("OrgB", "funds", "National Liberal Party")  # e17
    b.triple("Falcon", "affiliation", "National Liberal Party")  # e18
    b.triple("Falcon", "investsIn", "OrgC")  # e19
    return b.graph


def figure1_edge(paper_number: int) -> int:
    """Translate the paper's 1-based edge number to the graph's edge id."""
    return paper_number - 1


def figure1_seed_sets(graph: Graph) -> SeedSets:
    """The seed sets of query Q1: US entrepreneurs, French entrepreneurs,
    French politicians — ``S1={Bob, Carole}, S2={Alice, Doug}, S3={Elon}``."""
    ids: Dict[str, int] = {graph.node(n).label: n for n in graph.node_ids()}
    return (
        (ids["Bob"], ids["Carole"]),
        (ids["Alice"], ids["Doug"]),
        (ids["Elon"],),
    )


def figure3() -> Tuple[Graph, SeedSets]:
    """Figure 3: line ``A - 1 - 2 - B - 3 - C`` with seeds {A}, {B}, {C}."""
    b = GraphBuilder("figure3")
    b.triple("A", "e", "1")
    b.triple("1", "e", "2")
    b.triple("2", "e", "B")
    b.triple("B", "e", "3")
    b.triple("3", "e", "C")
    seeds = ((b.id_of("A"),), (b.id_of("B"),), (b.id_of("C"),))
    return b.graph, seeds


def figure4() -> Tuple[Graph, SeedSets]:
    """Figure 4: the 6-seed graph of the MoESP discussion.

    The 2-piecewise-simple result is the union of the simple edge sets
    ``{A-4-D, A-1-2-B, B-7-E, B-8-F, B-3-C}``; an extra path ``D-10-E``
    provides an alternative (non-minimal once combined) connection.
    """
    b = GraphBuilder("figure4")
    # main line
    b.triple("A", "e", "1")
    b.triple("1", "e", "2")
    b.triple("2", "e", "B")
    b.triple("B", "e", "3")
    b.triple("3", "e", "C")
    # bristles
    b.triple("A", "e", "4")
    b.triple("4", "e", "D")
    b.triple("B", "e", "7")
    b.triple("7", "e", "E")
    b.triple("B", "e", "8")
    b.triple("8", "e", "F")
    # alternative bottom path
    b.triple("D", "e", "10")
    b.triple("10", "e", "E")
    seeds = tuple((b.id_of(s),) for s in "ABCDEF")
    return b.graph, seeds


def figure4_result_edges(graph: Graph) -> frozenset:
    """Edge ids of the 2ps result highlighted in Figure 4."""
    wanted = {("A", "1"), ("1", "2"), ("2", "B"), ("B", "3"), ("3", "C"), ("A", "4"), ("4", "D"), ("B", "7"), ("7", "E"), ("B", "8"), ("8", "F")}
    out = set()
    for edge in graph.edges():
        pair = (graph.node(edge.source).label, graph.node(edge.target).label)
        if pair in wanted:
            out.add(edge.id)
    return frozenset(out)


def figure5() -> Tuple[Graph, SeedSets]:
    """Figure 5: center ``x`` with 2-edge arms to seeds A, B, C.

    The only result is 3-simple; MoESP may miss it, LESP protects it.
    """
    b = GraphBuilder("figure5")
    b.triple("A", "e", "1")
    b.triple("1", "e", "x")
    b.triple("B", "e", "2")
    b.triple("2", "e", "x")
    b.triple("C", "e", "3")
    b.triple("3", "e", "x")
    seeds = ((b.id_of("A"),), (b.id_of("B"),), (b.id_of("C"),))
    return b.graph, seeds


def figure6() -> Tuple[Graph, SeedSets]:
    """Figure 6: the 4-seed LESP incompleteness example.

    ``A-1-2-B`` and ``C-3-4-D`` with a bridge ``2-x-3``; the unique result is
    4-simple with two branching nodes (2 and 3), hence not a rooted merge.
    """
    b = GraphBuilder("figure6")
    b.triple("A", "e", "1")
    b.triple("1", "e", "2")
    b.triple("2", "e", "B")
    b.triple("2", "e", "x")
    b.triple("x", "e", "3")
    b.triple("3", "e", "C")
    b.triple("3", "e", "4")
    b.triple("4", "e", "D")
    seeds = tuple((b.id_of(s),) for s in "ABCD")
    return b.graph, seeds


def figure7() -> Tuple[Graph, SeedSets]:
    """A 6-seed instance covered by Property 9 (restricted completeness).

    Structurally equivalent to Figure 7: the unique result decomposes into a
    ``(3, x)``-rooted merge (arms to A, B, C) and a ``(4, y)``-rooted merge
    (arms to B, D, E, F) sharing the seed B, so MoLESP must find it.
    """
    b = GraphBuilder("figure7")
    # star 1, centre x, 2-edge arms to A, B, C
    b.triple("A", "e", "a1")
    b.triple("a1", "e", "x")
    b.triple("B", "e", "b1")
    b.triple("b1", "e", "x")
    b.triple("C", "e", "c1")
    b.triple("c1", "e", "x")
    # star 2, centre y, 2-edge arms to B, D, E, F
    b.triple("B", "e", "b2")
    b.triple("b2", "e", "y")
    b.triple("D", "e", "d1")
    b.triple("d1", "e", "y")
    b.triple("E", "e", "e1")
    b.triple("e1", "e", "y")
    b.triple("F", "e", "f1")
    b.triple("f1", "e", "y")
    seeds = tuple((b.id_of(s),) for s in "ABCDEF")
    return b.graph, seeds
