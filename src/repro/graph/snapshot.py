"""Binary CSR snapshots: one file, many processes, zero-copy columns.

The process-pool dispatcher (:mod:`repro.query.parallel`) needs every
worker to see the *same* graph without paying a per-worker copy of the
adjacency.  This module gives :class:`~repro.graph.backend.CSRGraph` a
binary on-disk form: the flat numeric columns (offsets, adjacency
edge/other/out, weights, endpoints, edge-label ids) are written verbatim,
8-byte aligned, and loaded back as ``mmap``-backed ``memoryview`` casts —
so N workers mapping one snapshot share one physical copy of the topology
(the kernel page cache), while node/edge *metadata* (labels, types,
properties, label indexes) rides along as a pickled blob materialized per
process.

File layout (version 1)::

    bytes 0-7    magic  b"REPROSNP"
    bytes 8-11   format version  (uint32, little-endian)
    bytes 12-15  header length H (uint32, little-endian)
    bytes 16-19  CRC-32 of the header JSON (uint32, little-endian)
    bytes 20-    header: UTF-8 JSON describing the payload sections
    data_start = 20 + H rounded up to the next multiple of 8
    data_start- column payloads (each 8-byte aligned, offsets relative to
                 data_start) followed by the pickled metadata blob

The header records the byte order, node/edge counts, the
``(name, typecode, offset, nbytes)`` of every section, the total payload
size, and a CRC-32 of the payload region.  Bad magic, unsupported
versions, endianness mismatches, truncation, and header corruption (the
header CRC is always checked) are detected up front and raised as
:class:`~repro.errors.SnapshotError`.  Payload integrity is checked
whenever the file is fully read — ``use_mmap=False``, or
``verify_payload=True`` — but NOT on a plain mmap load: checksumming
would fault in every page and defeat the O(metadata) lazy load, so an
mmap load trusts the payload bytes the way it trusts any mapped file.

Entry points:

:func:`save_snapshot`
    Freeze (if needed) and serialize a graph; memoizes the path on the
    snapshot so later dispatches reuse the file.
:func:`load_snapshot`
    Load a snapshot, zero-copy via ``mmap`` by default (``use_mmap=False``
    materializes plain ``array`` columns instead).
:func:`ensure_snapshot`
    The dispatcher's helper: return an existing snapshot file for a graph
    or write one to a pid-tagged temp file (released eagerly via
    :func:`release_auto_snapshot` when the owning pool closes, at
    interpreter exit otherwise; orphans of dead processes are reaped on
    later ``ensure_snapshot`` calls).
"""

from __future__ import annotations

import atexit
import json
import mmap
import os
import pickle
import re
import struct
import sys
import tempfile
import zlib
from array import array
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.errors import GraphError, SnapshotError
from repro.graph.backend import CSRGraph
from repro.graph.graph import Edge, Node

PathLike = Union[str, Path]

#: First 8 bytes of every snapshot file.
SNAPSHOT_MAGIC = b"REPROSNP"
#: Format version this build writes and the only one it reads.
SNAPSHOT_VERSION = 1

_PREFIX = struct.Struct("<8sIII")  # magic, version, header length, header CRC-32


def _align8(n: int) -> int:
    return (n + 7) & ~7


def _freeze(graph: Any) -> CSRGraph:
    if isinstance(graph, CSRGraph):
        return graph
    from repro.graph.delta import OverlayGraph  # local: delta imports graph

    if isinstance(graph, OverlayGraph):
        # An overlay's freeze() is itself; serialization needs one flat CSR.
        return graph.materialize()
    freezer = getattr(graph, "freeze", None)
    if freezer is None:
        raise GraphError(f"cannot snapshot {type(graph).__name__!r}: not a Graph/CSRGraph")
    return freezer()


def save_snapshot(graph: Any, path: PathLike) -> Path:
    """Serialize ``graph`` (frozen on the fly if needed) to ``path``.

    The written file is self-describing (see the module docstring); on
    success the snapshot's :attr:`~repro.graph.backend.CSRGraph.snapshot_path`
    is set to ``path`` so process-pool dispatches over the same graph
    reuse the file instead of re-serializing.
    """
    csr = _freeze(graph)
    sections: List[Tuple[str, str, bytes]] = [
        (attr, typecode, csr.__dict__[attr].tobytes()) for attr, typecode in csr._COLUMN_SPECS
    ]
    meta = {
        "name": csr.name,
        "nodes": [(n.label, tuple(sorted(n.types)), n.props or None) for n in csr._nodes],
        "edges": [(e.label, e.props or None) for e in csr._edges],
        "label_names": list(csr._label_names),
        "nodes_by_label": dict(csr._nodes_by_label),
        "nodes_by_type": dict(csr._nodes_by_type),
        "edges_by_label": {label: ids.tolist() for label, ids in csr._edges_by_label.items()},
        # MVCC: the source generation this snapshot can serve as a delta
        # base for (None when the CSR has no live lineage, e.g. round-
        # tripped through pickle).  Older files simply lack the key.
        "source_generation": getattr(csr, "base_generation", csr.source_generation),
    }
    meta_blob = pickle.dumps(meta, protocol=4)

    payload = bytearray()
    columns = []
    for attr, typecode, raw in sections:
        payload.extend(bytes(_align8(len(payload)) - len(payload)))  # alignment padding
        columns.append([attr, typecode, len(payload), len(raw)])
        payload.extend(raw)
    payload.extend(bytes(_align8(len(payload)) - len(payload)))
    meta_offset = len(payload)
    payload.extend(meta_blob)
    header = {
        "byteorder": sys.byteorder,
        "num_nodes": csr.num_nodes,
        "num_edges": csr.num_edges,
        "columns": columns,
        "meta": [meta_offset, len(meta_blob)],
        "data_bytes": len(payload),
        "payload_crc32": zlib.crc32(payload),
    }
    header_blob = json.dumps(header, separators=(",", ":")).encode("utf-8")
    data_start = _align8(_PREFIX.size + len(header_blob))

    path = Path(path)
    with open(path, "wb") as handle:
        handle.write(
            _PREFIX.pack(
                SNAPSHOT_MAGIC, SNAPSHOT_VERSION, len(header_blob), zlib.crc32(header_blob)
            )
        )
        handle.write(header_blob)
        handle.write(bytes(data_start - _PREFIX.size - len(header_blob)))
        handle.write(payload)
    csr.snapshot_path = os.path.abspath(path)
    return path


def _read_header(buffer: Any, total_size: int, path: Path) -> Tuple[Dict[str, Any], int]:
    """Parse and validate the prefix + JSON header; return (header, data_start)."""
    if total_size < _PREFIX.size:
        raise SnapshotError(f"{path}: truncated snapshot ({total_size} bytes, no header)")
    magic, version, header_len, header_crc = _PREFIX.unpack_from(buffer)
    if magic != SNAPSHOT_MAGIC:
        raise SnapshotError(f"{path}: not a repro CSR snapshot (bad magic {magic!r})")
    if version != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"{path}: snapshot format version {version} is not supported "
            f"(this build reads version {SNAPSHOT_VERSION})"
        )
    if total_size < _PREFIX.size + header_len:
        raise SnapshotError(f"{path}: truncated snapshot (incomplete header)")
    header_blob = bytes(buffer[_PREFIX.size : _PREFIX.size + header_len])
    if zlib.crc32(header_blob) != header_crc:
        raise SnapshotError(f"{path}: corrupt snapshot header (checksum mismatch)")
    try:
        header = json.loads(header_blob.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise SnapshotError(f"{path}: corrupt snapshot header ({error})") from None
    if header.get("byteorder") != sys.byteorder:
        raise SnapshotError(
            f"{path}: snapshot written on a {header.get('byteorder')}-endian machine "
            f"cannot be mapped on this {sys.byteorder}-endian one"
        )
    data_start = _align8(_PREFIX.size + header_len)
    if not isinstance(header.get("data_bytes"), int) or total_size < data_start + header["data_bytes"]:
        raise SnapshotError(
            f"{path}: truncated snapshot (expected {data_start + header.get('data_bytes', 0)} "
            f"bytes, file has {total_size})"
        )
    return header, data_start


_ITEMSIZE = {"q": 8, "d": 8, "b": 1}


def _validate_columns(header: Dict[str, Any], columns: Dict[str, Any], path: Path) -> None:
    """Cross-check column lengths against the recorded graph shape."""
    num_nodes = header["num_nodes"]
    num_edges = header["num_edges"]
    try:
        offsets = columns["_offsets"]
        if len(offsets) != num_nodes + 1:
            raise SnapshotError(
                f"{path}: corrupt snapshot (offsets column has {len(offsets)} entries "
                f"for {num_nodes} nodes)"
            )
        adjacency_len = offsets[num_nodes] if num_nodes else 0
        expected = {
            "_adj_edge": adjacency_len,
            "_adj_other": adjacency_len,
            "_adj_out": adjacency_len,
            "_weights": num_edges,
            "_edge_source": num_edges,
            "_edge_target": num_edges,
            "_edge_label_ids": num_edges,
        }
        for name, length in expected.items():
            if len(columns[name]) != length:
                raise SnapshotError(
                    f"{path}: corrupt snapshot (column {name} has {len(columns[name])} "
                    f"entries, expected {length})"
                )
    except KeyError as error:
        raise SnapshotError(f"{path}: corrupt snapshot (missing column {error})") from None


def read_snapshot_header(path: PathLike) -> Dict[str, Any]:
    """Parse and validate only the prefix + header of a snapshot file.

    O(header) — the payload is not read.  Raises :class:`SnapshotError`
    on the same up-front problems :func:`load_snapshot` would.
    """
    path = Path(path)
    total_size = os.path.getsize(path)
    with open(path, "rb") as handle:
        prefix = handle.read(_PREFIX.size)
        if len(prefix) < _PREFIX.size:
            raise SnapshotError(f"{path}: truncated snapshot ({total_size} bytes, no header)")
        header_len = _PREFIX.unpack(prefix)[2]
        buffer = prefix + handle.read(header_len)
    header, _ = _read_header(buffer, total_size, path)
    return header


def load_snapshot(path: PathLike, use_mmap: bool = True, verify_payload: bool = False) -> CSRGraph:
    """Load a snapshot written by :func:`save_snapshot`.

    With ``use_mmap=True`` (default) the numeric columns are
    ``memoryview`` casts over a read-only shared mapping of the file — the
    load is O(metadata), the adjacency pages are demand-faulted, and every
    process mapping the same file shares one physical copy.  The mapping
    lives as long as the returned graph.  ``use_mmap=False`` copies the
    columns into plain ``array`` objects instead (no file dependence after
    the call).

    The payload CRC is checked whenever the bytes are all read anyway
    (``use_mmap=False``) or when ``verify_payload=True`` forces it; a
    plain mmap load skips it so the load stays O(metadata) — see the
    module docstring for the integrity contract.
    """
    from repro import faults  # local: test-only hook, zero-cost without a plan

    if faults.active_plan() is not None:
        path = faults.corrupted_path(path)
    path = Path(path)
    columns: Dict[str, Any] = {}
    mmap_obj = None
    if use_mmap:
        with open(path, "rb") as handle:
            size = os.fstat(handle.fileno()).st_size
            if size:
                mmap_obj = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        buffer: Any = mmap_obj if mmap_obj is not None else b""
    else:
        buffer = path.read_bytes()
    try:
        header, data_start = _read_header(buffer, len(buffer), path)
        if (verify_payload or not use_mmap) and "payload_crc32" in header:
            payload = bytes(buffer[data_start : data_start + header["data_bytes"]])
            if zlib.crc32(payload) != header["payload_crc32"]:
                raise SnapshotError(f"{path}: corrupt snapshot payload (checksum mismatch)")
        view = memoryview(buffer) if use_mmap else None
        for name, typecode, rel_offset, nbytes in header["columns"]:
            if typecode not in _ITEMSIZE or nbytes % _ITEMSIZE[typecode]:
                raise SnapshotError(f"{path}: corrupt snapshot (column {name} misaligned)")
            start = data_start + rel_offset
            if use_mmap:
                columns[name] = view[start : start + nbytes].cast(typecode)
            else:
                column = array(typecode)
                column.frombytes(buffer[start : start + nbytes])
                columns[name] = column
        _validate_columns(header, columns, path)
        meta_offset, meta_len = header["meta"]
        meta_raw = bytes(buffer[data_start + meta_offset : data_start + meta_offset + meta_len])
        try:
            meta = pickle.loads(meta_raw)
        except Exception as error:  # noqa: BLE001 - any unpickling failure is corruption
            raise SnapshotError(f"{path}: corrupt snapshot metadata ({error})") from None
        if len(meta["nodes"]) != header["num_nodes"] or len(meta["edges"]) != header["num_edges"]:
            raise SnapshotError(f"{path}: corrupt snapshot (metadata/column count mismatch)")
    except Exception:
        if mmap_obj is not None:
            # The graph never materialized; drop our handle (any exported
            # column views die with the exception).
            columns.clear()
            try:
                mmap_obj.close()
            except (BufferError, ValueError):
                pass
        raise

    nodes = [
        Node(node_id, label, types, props)
        for node_id, (label, types, props) in enumerate(meta["nodes"])
    ]
    sources = columns["_edge_source"]
    targets = columns["_edge_target"]
    weights = columns["_weights"]
    edges = [
        Edge(edge_id, sources[edge_id], targets[edge_id], label, weights[edge_id], props)
        for edge_id, (label, props) in enumerate(meta["edges"])
    ]
    csr = CSRGraph._from_columns(
        name=meta["name"],
        nodes=nodes,
        edges=edges,
        columns=columns,
        label_names=list(meta["label_names"]),
        nodes_by_label={label: tuple(ids) for label, ids in meta["nodes_by_label"].items()},
        nodes_by_type={label: tuple(ids) for label, ids in meta["nodes_by_type"].items()},
        edges_by_label={label: array("q", ids) for label, ids in meta["edges_by_label"].items()},
        mmap_obj=mmap_obj,
        snapshot_path=os.path.abspath(path),
    )
    # MVCC: a loaded snapshot can serve as the base of a delta overlay when
    # the writer recorded its source generation.  source_generation stays
    # None (the freeze-memo key — a loaded CSR has no live source graph).
    csr.base_generation = meta.get("source_generation")
    return csr


# ----------------------------------------------------------------------
# dispatcher helper: snapshot-on-demand with eager + exit-time cleanup
# ----------------------------------------------------------------------
_AUTO_SNAPSHOTS: set = set()

#: Auto-snapshot files are named ``repro-csr-<pid>-<random>.snapshot`` so a
#: *different* process can tell whether the owner is still alive and reap
#: the strays a killed owner left behind (atexit never ran there).
_AUTO_PREFIX_RE = re.compile(r"^repro-csr-(\d+)-.*\.snapshot$")


def _cleanup_auto_snapshots() -> None:  # pragma: no cover - exit hook
    for auto_path in list(_AUTO_SNAPSHOTS):
        try:
            os.unlink(auto_path)
        except OSError:
            pass
    _AUTO_SNAPSHOTS.clear()


atexit.register(_cleanup_auto_snapshots)


def release_auto_snapshot(path: Optional[str]) -> bool:
    """Eagerly delete an auto-snapshot file this process owns.

    The ``atexit`` hook only fires on a clean interpreter exit — a pool
    that closes mid-run must unlink its snapshot *now*, or a long-lived
    server leaks one temp file per pool generation.  Only paths created by
    :func:`ensure_snapshot` are touched (an explicitly saved snapshot is
    the user's file); unlinking is safe while workers still map the file —
    POSIX keeps the mapping alive until the last handle drops.  Returns
    whether a file was released.
    """
    if path is None or path not in _AUTO_SNAPSHOTS:
        return False
    _AUTO_SNAPSHOTS.discard(path)
    try:
        os.unlink(path)
    except OSError:
        return False
    return True


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):
        return True  # exists (owned by someone else) — not ours to judge
    return True


def _reap_stale_snapshots(directory: Optional[PathLike] = None) -> int:
    """Delete auto-snapshot files whose owning process is gone.

    A worker killed with SIGKILL, or a parent that crashed before its
    ``atexit`` hook, strands its ``repro-csr-<pid>-*.snapshot`` files in
    tmp forever.  Every :func:`ensure_snapshot` call sweeps the temp
    directory for such orphans: a file whose embedded pid no longer names
    a live process is unlinked (our own pid is skipped — its files are
    live by definition).  Returns the number of files reaped; all I/O
    errors are swallowed (reaping is best-effort hygiene, never a reason
    to fail a dispatch).
    """
    directory = Path(directory) if directory is not None else Path(tempfile.gettempdir())
    reaped = 0
    try:
        entries = list(os.scandir(directory))
    except OSError:
        return 0
    own_pid = os.getpid()
    for entry in entries:
        match = _AUTO_PREFIX_RE.match(entry.name)
        if match is None:
            continue
        pid = int(match.group(1))
        if pid == own_pid or _pid_alive(pid):
            continue
        try:
            os.unlink(entry.path)
            reaped += 1
        except OSError:
            pass
    return reaped


def _snapshot_matches(csr: CSRGraph, path: str) -> bool:
    """Cheap sanity check before reusing a memoized snapshot file.

    The file may have been deleted, overwritten with a *different* graph's
    snapshot, or replaced with junk since the path was memoized — reusing
    it blindly would hand worker processes the wrong graph.  Validating
    the header (magic, version, CRC) and the node/edge counts is O(header)
    and catches every such swap short of a same-shape graph replacement.
    """
    try:
        header = read_snapshot_header(path)
    except (SnapshotError, OSError):
        return False
    return header["num_nodes"] == csr.num_nodes and header["num_edges"] == csr.num_edges


def ensure_snapshot(graph: Any) -> Tuple[CSRGraph, str]:
    """Return ``(frozen graph, snapshot file path)`` for any graph.

    A graph that already has a snapshot file (loaded from one, or saved
    earlier) reuses it after an O(header) validation
    (:func:`_snapshot_matches`); otherwise the frozen graph is serialized
    once to a pid-tagged temporary file — released eagerly by the owning
    pool (:func:`release_auto_snapshot`), at interpreter exit otherwise,
    and reaped by *any* later process when the owner died without cleaning
    up (:func:`_reap_stale_snapshots`).  The path is memoized on the
    snapshot object, so repeated process-pool dispatches over one graph
    serialize at most once.
    """
    csr = _freeze(graph)
    existing = csr.snapshot_path
    if existing is not None and _snapshot_matches(csr, existing):
        return csr, existing
    _reap_stale_snapshots()  # hygiene: collect orphans of dead processes
    fd, tmp_path = tempfile.mkstemp(prefix=f"repro-csr-{os.getpid()}-", suffix=".snapshot")
    os.close(fd)
    try:
        save_snapshot(csr, tmp_path)
    except BaseException:
        # Serialization failed (e.g. unpicklable node properties): don't
        # leak the temp file — the caller degrades and may retry on every
        # dispatch.
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    _AUTO_SNAPSHOTS.add(tmp_path)
    return csr, tmp_path
