"""Core graph model (Definition 2.1 of the paper).

A graph ``G(N, E)`` has labelled nodes and labelled, *directed* edges.  The
paper's connection search treats the graph as undirected (requirement R3), so
the adjacency index stores, for every node, all incident edges together with
their orientation; the direction is retained because the ``UNI`` CTP filter
and several baselines need it.

Nodes and edges both expose ``label`` plus a free-form property mapping
(``P`` in Definition 2.2); node *types* (RDF types / PG labels) are kept in a
dedicated set because they are so frequently filtered on.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.errors import GraphError

# An adjacency entry: (edge id, other endpoint id, edge leaves this node?).
AdjacencyEntry = Tuple[int, int, bool]


class Node:
    """A graph node: integer id, label, types, and arbitrary properties."""

    __slots__ = ("id", "label", "types", "props")

    def __init__(self, node_id: int, label: str = "", types: Iterable[str] = (), props: Optional[Dict[str, Any]] = None):
        self.id = node_id
        self.label = label
        self.types = frozenset(types)
        self.props: Dict[str, Any] = props or {}

    def property(self, name: str) -> Any:
        """Value of property ``name`` (``label``/``type`` are virtual props)."""
        if name == "label":
            return self.label
        if name == "type":
            return self.types
        return self.props.get(name)

    def __repr__(self) -> str:
        type_part = f" ({','.join(sorted(self.types))})" if self.types else ""
        return f"Node({self.id}, {self.label!r}{type_part})"


class Edge:
    """A directed graph edge with label, weight and arbitrary properties."""

    __slots__ = ("id", "source", "target", "label", "weight", "props")

    def __init__(
        self,
        edge_id: int,
        source: int,
        target: int,
        label: str = "",
        weight: float = 1.0,
        props: Optional[Dict[str, Any]] = None,
    ):
        self.id = edge_id
        self.source = source
        self.target = target
        self.label = label
        self.weight = weight
        self.props: Dict[str, Any] = props or {}

    def property(self, name: str) -> Any:
        if name == "label":
            return self.label
        if name == "weight":
            return self.weight
        return self.props.get(name)

    def other(self, node_id: int) -> int:
        """The endpoint opposite ``node_id`` on this edge."""
        if node_id == self.source:
            return self.target
        if node_id == self.target:
            return self.source
        raise GraphError(f"node {node_id} is not an endpoint of edge {self.id}")

    def __repr__(self) -> str:
        return f"Edge({self.id}, {self.source}-[{self.label}]->{self.target})"


class Graph:
    """A directed multigraph with bidirectional adjacency and label indexes.

    The class is append-only: nodes and edges can be added but not removed,
    which lets the CTP engines treat ids, degrees, and indexes as stable for
    the duration of a search.  (The paper precomputes node degrees ``d_n``
    before evaluating queries, see Section 4.6.)

    Example
    -------
    >>> g = Graph()
    >>> a = g.add_node("Alice", types=("entrepreneur",))
    >>> b = g.add_node("OrgB", types=("company",))
    >>> e = g.add_edge(a, b, "founded")
    >>> g.degree(a)
    1
    """

    #: Backend identifier (see :mod:`repro.graph.backend`).
    backend = "dict"
    frozen = False

    def __init__(self, name: str = ""):
        self.name = name
        self._nodes: List[Node] = []
        self._edges: List[Edge] = []
        self._adjacency: List[List[AdjacencyEntry]] = []
        self._nodes_by_label: Dict[str, List[int]] = {}
        self._nodes_by_type: Dict[str, List[int]] = {}
        self._edges_by_label: Dict[str, List[int]] = {}
        self._frozen_snapshot = None  # memoized CSR view (see freeze())
        self._generation = 0  # monotonic mutation counter (see generation)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, label: str = "", types: Iterable[str] = (), **props: Any) -> int:
        """Add a node and return its id (ids are dense, starting at 0)."""
        self._generation += 1
        node_id = len(self._nodes)
        node = Node(node_id, label, types, props or None)
        self._nodes.append(node)
        self._adjacency.append([])
        self._nodes_by_label.setdefault(label, []).append(node_id)
        for type_name in node.types:
            self._nodes_by_type.setdefault(type_name, []).append(node_id)
        return node_id

    def add_edge(self, source: int, target: int, label: str = "", weight: float = 1.0, **props: Any) -> int:
        """Add a directed edge ``source -> target`` and return its id."""
        self._check_node(source)
        self._check_node(target)
        self._generation += 1
        edge_id = len(self._edges)
        edge = Edge(edge_id, source, target, label, weight, props or None)
        self._edges.append(edge)
        self._adjacency[source].append((edge_id, target, True))
        if target != source:
            self._adjacency[target].append((edge_id, source, False))
        self._edges_by_label.setdefault(label, []).append(edge_id)
        return edge_id

    def _check_node(self, node_id: int) -> None:
        if not 0 <= node_id < len(self._nodes):
            raise GraphError(f"unknown node id {node_id}")

    def set_edge_weight(self, edge_id: int, weight: float) -> None:
        """Change the weight of an existing edge.

        The one *same-size* mutation the model supports: the graph keeps
        its node/edge counts but its search results may change, so the
        mutation generation is bumped — a memoized :meth:`freeze` snapshot
        and every generation-keyed cache entry are invalidated.  (Writing
        ``edge.weight`` directly bypasses that bookkeeping and will serve
        stale frozen/cached state; always mutate through this method.)
        """
        if not 0 <= edge_id < len(self._edges):
            raise GraphError(f"unknown edge id {edge_id}")
        self._generation += 1
        self._edges[edge_id].weight = weight

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    @property
    def generation(self) -> int:
        """Monotonic mutation counter: bumped by *every* mutator.

        Node/edge counts cannot distinguish same-size mutations (e.g. a
        weight update), so caches and snapshots key on this counter
        instead — any entry recorded under an older generation is stale by
        definition.  The counter only ever grows and is process-local (it
        does not survive pickling or binary snapshots, which create new
        graph objects anyway).
        """
        return self._generation

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def node(self, node_id: int) -> Node:
        self._check_node(node_id)
        return self._nodes[node_id]

    def edge(self, edge_id: int) -> Edge:
        if not 0 <= edge_id < len(self._edges):
            raise GraphError(f"unknown edge id {edge_id}")
        return self._edges[edge_id]

    def nodes(self) -> Iterator[Node]:
        return iter(self._nodes)

    def edges(self) -> Iterator[Edge]:
        return iter(self._edges)

    def node_ids(self) -> range:
        return range(len(self._nodes))

    def edge_ids(self) -> range:
        return range(len(self._edges))

    # ------------------------------------------------------------------
    # adjacency (bidirectional: requirement R3)
    # ------------------------------------------------------------------
    def adjacent(self, node_id: int) -> Sequence[AdjacencyEntry]:
        """All edges incident to ``node_id`` as ``(edge_id, other, outgoing)``.

        Self-loops appear once, with ``outgoing=True``.
        """
        return self._adjacency[node_id]

    def degree(self, node_id: int) -> int:
        """Number of incident edges (``d_n`` in Section 4.6)."""
        return len(self._adjacency[node_id])

    def neighbors(self, node_id: int) -> List[int]:
        """Distinct neighbouring node ids, ignoring edge direction."""
        seen = set()
        out = []
        for _, other, _ in self._adjacency[node_id]:
            if other not in seen:
                seen.add(other)
                out.append(other)
        return out

    def neighbor_ids(self, node_id: int) -> Sequence[int]:
        """Distinct neighbour ids (backend API; cached on the CSR backend)."""
        return self.neighbors(node_id)

    def adjacent_filtered(
        self, node_id: int, labels: Optional[Iterable[str]] = None
    ) -> Sequence[AdjacencyEntry]:
        """Incident edges whose label is in ``labels`` (all when ``None``)."""
        entries = self._adjacency[node_id]
        if labels is None:
            return entries
        edges = self._edges
        return [entry for entry in entries if edges[entry[0]].label in labels]

    def edge_weight(self, edge_id: int) -> float:
        """Weight of edge ``edge_id`` (hot-path scalar accessor, unchecked)."""
        return self._edges[edge_id].weight

    def edge_label(self, edge_id: int) -> str:
        """Label of edge ``edge_id`` (hot-path scalar accessor, unchecked)."""
        return self._edges[edge_id].label

    def edge_endpoints(self, edge_id: int) -> Tuple[int, int]:
        """``(source, target)`` of edge ``edge_id`` (hot-path, unchecked)."""
        edge = self._edges[edge_id]
        return edge.source, edge.target

    def edge_source(self, edge_id: int) -> int:
        """Source node of edge ``edge_id`` (hot-path, unchecked)."""
        return self._edges[edge_id].source

    def edge_target(self, edge_id: int) -> int:
        """Target node of edge ``edge_id`` (hot-path, unchecked)."""
        return self._edges[edge_id].target

    def out_edges(self, node_id: int) -> List[Edge]:
        return [self._edges[e] for e, _, outgoing in self._adjacency[node_id] if outgoing]

    def in_edges(self, node_id: int) -> List[Edge]:
        return [self._edges[e] for e, _, outgoing in self._adjacency[node_id] if not outgoing]

    # ------------------------------------------------------------------
    # label / type indexes
    # ------------------------------------------------------------------
    def nodes_with_label(self, label: str) -> List[int]:
        return list(self._nodes_by_label.get(label, ()))

    def nodes_with_type(self, type_name: str) -> List[int]:
        return list(self._nodes_by_type.get(type_name, ()))

    def edges_with_label(self, label: str) -> List[int]:
        return list(self._edges_by_label.get(label, ()))

    def node_labels(self) -> List[str]:
        return list(self._nodes_by_label)

    def edge_labels(self) -> List[str]:
        return list(self._edges_by_label)

    def find_nodes(self, predicate: Callable[[Node], bool]) -> List[int]:
        """Ids of all nodes satisfying ``predicate`` (full scan)."""
        return [node.id for node in self._nodes if predicate(node)]

    def find_node_by_label(self, label: str) -> int:
        """The unique node carrying ``label`` (convenience for tests/examples)."""
        ids = self._nodes_by_label.get(label, ())
        if len(ids) != 1:
            raise GraphError(f"expected exactly one node labelled {label!r}, found {len(ids)}")
        return ids[0]

    # ------------------------------------------------------------------
    # backends
    # ------------------------------------------------------------------
    def freeze(self, force: bool = False):
        """A CSR (compressed sparse row) snapshot of this graph.

        The snapshot is memoized: repeated calls return the same
        :class:`~repro.graph.backend.CSRGraph` until the graph *mutates*
        (the memo is keyed on :attr:`generation`, so both appends and
        same-size mutations like :meth:`set_edge_weight` rebuild it).  The
        frozen view is read-only; keep mutating *this* graph and
        re-freeze.

        Mutating a ``weight``/``label`` *in place* on an existing
        :class:`Edge` object bypasses the generation counter and is not
        reflected by a memoized snapshot; use :meth:`set_edge_weight` (or
        pass ``force=True``) after such a mutation.
        """
        from repro.graph.backend import CSRGraph

        snapshot = self._frozen_snapshot
        if (
            not force
            and snapshot is not None
            and snapshot.source_generation == self._generation
        ):
            return snapshot
        snapshot = CSRGraph(self)
        self._frozen_snapshot = snapshot
        return snapshot

    # ------------------------------------------------------------------
    # display helpers
    # ------------------------------------------------------------------
    def describe_edge(self, edge_id: int) -> str:
        edge = self.edge(edge_id)
        source = self._nodes[edge.source].label or str(edge.source)
        target = self._nodes[edge.target].label or str(edge.target)
        label = edge.label or "-"
        return f"{source} -[{label}]-> {target}"

    def describe_tree(self, edge_ids: Iterable[int]) -> str:
        """Human-readable rendering of a set of edges (a CTP result)."""
        parts = sorted(self.describe_edge(e) for e in edge_ids)
        if not parts:
            return "(single node)"
        return "; ".join(parts)

    def __repr__(self) -> str:
        name = f" {self.name!r}" if self.name else ""
        return f"Graph({name} nodes={self.num_nodes}, edges={self.num_edges})"


def induced_edge_subgraph(graph: Graph, edge_ids: Iterable[int]) -> Dict[int, List[int]]:
    """Undirected adjacency (node -> neighbour list) of a subset of edges.

    Used to analyse CTP results: leaf detection, path checks, decomposition
    into simple edge sets (Definitions 4.5-4.7).
    """
    adjacency: Dict[int, List[int]] = {}
    for edge_id in edge_ids:
        edge = graph.edge(edge_id)
        adjacency.setdefault(edge.source, []).append(edge.target)
        adjacency.setdefault(edge.target, []).append(edge.source)
    return adjacency
